"""Chemogenomics analytics on a Chem2Bio2RDF-style warehouse.

Replays the paper's real-world case study (Section 5, queries from the
Chen et al. Chem2Bio2RDF case studies): compound-target counting across
PubChem/DrugBank/KEGG-shaped data, including the map-join-friendly
small-table queries where Hive is competitive, and a multi-grouping
comparison (MG6) where composite rewriting pays off.

Run:  python examples/drug_discovery.py
"""

from repro.bench.catalog import get_query
from repro.bench.harness import chem_config, run_experiment
from repro.bench.reporting import render_cost_table
from repro.core.engines import PAPER_ENGINES, make_engine, to_analytical
from repro.datasets import chem2bio2rdf


def show_query(qid: str, graph) -> None:
    query = get_query(qid)
    report = make_engine("rapid-analytics").execute(
        to_analytical(query.sparql), graph, chem_config()
    )
    print(f"{qid}: {query.description}")
    print(f"  rows={len(report.rows)} cycles={report.cycles} cost={report.cost_seconds:.1f}s")
    for row in sorted(report.rows, key=str)[:3]:
        rendered = {v.name: t.n3() for v, t in sorted(row.items(), key=lambda kv: kv[0].name)}
        print(f"    {rendered}")
    print()


def main() -> None:
    graph = chem2bio2rdf.generate(chem2bio2rdf.preset("paper"))
    print(f"Chem2Bio2RDF-style warehouse: {len(graph)} triples\n")

    # G5: drug-like compounds sharing targets with Dexamethasone.
    show_query("G5", graph)
    # G7: pathways containing targets of hepatotoxicity-linked drugs.
    show_query("G7", graph)

    # MG6: targets per compound-gene combination vs per compound —
    # identical graph patterns, the ideal case for shared execution.
    result = run_experiment(
        "example-mg6",
        "MG6/MG9 across engines (Chem2Bio2RDF)",
        [get_query("MG6"), get_query("MG9")],
        graph,
        PAPER_ENGINES,
        chem_config(),
        verify=True,
    )
    assert not result.mismatches
    print(render_cost_table(result))
    print()
    mg6 = result.for_query("MG6")
    print(
        "MG6 cycle counts — paper: Hive(Naive)=13, Hive(MQO)=8, RAPID+=7, "
        "RAPIDAnalytics=4; measured: "
        + ", ".join(f"{e}={m.cycles}" for e, m in sorted(mg6.items()))
    )


if __name__ == "__main__":
    main()
