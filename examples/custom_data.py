"""Bring your own data: N-Triples in, analytics out.

Shows the full round trip a downstream user takes with their own RDF:
serialize a graph to N-Triples, load it back, profile it, EXPLAIN the
plan an engine would run, execute, and export CSV — no benchmark
machinery involved.

Run:  python examples/custom_data.py
"""

import io

from repro import Graph, IRI, Literal, Triple, run_query
from repro.core.explain import explain
from repro.rdf import ntriples
from repro.rdf.stats import profile
from repro.rdf.triples import RDF_TYPE

VOCAB = "http://library.example.org/"


def iri(name: str) -> IRI:
    return IRI(VOCAB + name)


def build_library() -> Graph:
    """A small library: books with genres, copies with loan counts."""
    graph = Graph()
    books = {
        "dune": ("scifi", (12, 31)),
        "hyperion": ("scifi", (25,)),
        "emma": ("classic", (7, 9, 4)),
        "ulysses": ("classic", (2,)),
        "gormenghast": ("fantasy", (11, 8)),
    }
    for title, (genre, loan_counts) in books.items():
        book = iri(title)
        graph.add(Triple(book, RDF_TYPE, iri("Book")))
        graph.add(Triple(book, iri("title"), Literal(title)))
        graph.add(Triple(book, iri("genre"), iri(genre)))
        for index, loans in enumerate(loan_counts):
            copy = iri(f"{title}-copy{index}")
            graph.add(Triple(copy, iri("copyOf"), book))
            graph.add(Triple(copy, iri("loans"), Literal.from_python(loans)))
    return graph


QUERY = f"""
PREFIX lib: <{VOCAB}>
SELECT ?genre ?genreLoans ?allLoans {{
  {{ SELECT ?genre (SUM(?l1) AS ?genreLoans) {{
      ?b a lib:Book ; lib:title ?t1 ; lib:genre ?genre .
      ?c lib:copyOf ?b ; lib:loans ?l1 .
    }} GROUP BY ?genre
  }}
  {{ SELECT (SUM(?l2) AS ?allLoans) {{
      ?b2 a lib:Book ; lib:title ?t2 .
      ?c2 lib:copyOf ?b2 ; lib:loans ?l2 .
    }}
  }}
}} ORDER BY DESC(?genreLoans)
"""


def main() -> None:
    # 1. Serialize and re-load as N-Triples (what you'd do with a file).
    text = ntriples.serialize(build_library())
    graph = ntriples.parse_graph(io.StringIO(text))
    print(f"loaded {len(graph)} triples from N-Triples\n")

    # 2. Profile the dataset.
    print(profile(graph).describe())
    print()

    # 3. Inspect the plan before running anything.
    print(explain(QUERY, engine="rapid-analytics"))
    print()

    # 4. Execute and read the results.
    report = run_query(QUERY, graph, engine="rapid-analytics")
    print("loans per genre vs total (ordered):")
    for row in report.rows:
        rendered = {v.name: t.n3() for v, t in sorted(row.items(), key=lambda kv: kv[0].name)}
        print(f"  {rendered}")
    print(f"\n{report.cycles} MR cycles, {report.cost_seconds:.1f} simulated seconds")


if __name__ == "__main__":
    main()
