"""E-commerce business intelligence on BSBM (the paper's Section 1 use case).

Generates a BSBM-BI dataset and answers two multi-grouping analytical
questions on all four engines, showing the execution-plan differences
the paper's Figure 8(a) measures:

* MG1 — average product price per feature vs. across all features;
* MG3 — average price per (country, feature) vs. per country.

Run:  python examples/ecommerce_bi.py
"""

from repro.bench.catalog import get_query
from repro.bench.harness import bsbm_config, run_experiment
from repro.bench.reporting import render_cost_table, render_gains_table
from repro.core.engines import PAPER_ENGINES, make_engine, to_analytical
from repro.datasets import bsbm


def main() -> None:
    graph = bsbm.generate(bsbm.preset("500k"))
    print(f"BSBM-BI dataset: {len(graph)} triples\n")

    # Show one query's results first.
    mg1 = get_query("MG1")
    report = make_engine("rapid-analytics").execute(to_analytical(mg1.sparql), graph)
    print(f"MG1 ({mg1.description}) — first 5 of {len(report.rows)} rows:")
    for row in sorted(report.rows, key=str)[:5]:
        rendered = {v.name: t.n3() for v, t in sorted(row.items(), key=lambda kv: kv[0].name)}
        print(f"  {rendered}")
    print()

    # The Figure 8(a)-style engine comparison.
    result = run_experiment(
        "example-fig8a",
        "MG1/MG3 across engines (BSBM-500K scale model)",
        [get_query("MG1"), get_query("MG3")],
        graph,
        PAPER_ENGINES,
        bsbm_config(),
        verify=True,
    )
    assert not result.mismatches, "engines disagreed with the reference!"
    print(render_cost_table(result))
    print()
    print(render_gains_table(result, baseline="hive-naive"))
    print()
    print(render_gains_table(result, baseline="rapid-plus"))


if __name__ == "__main__":
    main()
