"""Quickstart: run a SPARQL analytical query on RAPIDAnalytics.

Builds a small product catalog by hand, expresses the paper's AQ1-style
question — "compare the average price per feature against the average
price across all features" — as a SPARQL 1.1 analytical query, and runs
it on the optimizing engine, printing results and execution metrics.

Run:  python examples/quickstart.py
"""

from repro import Graph, IRI, Literal, Triple, run_query
from repro.rdf.triples import RDF_TYPE

EX = "http://shop.example.org/"


def iri(name: str) -> IRI:
    return IRI(EX + name)


def build_catalog() -> Graph:
    graph = Graph()
    prices = {"laptop": (900, 1100), "tablet": (400, 450), "phone": (700, 650)}
    features = {
        "laptop": ("keyboard", "touchscreen"),
        "tablet": ("touchscreen",),
        "phone": ("touchscreen", "camera"),
    }
    for product_name, offer_prices in prices.items():
        product = iri(product_name)
        graph.add(Triple(product, RDF_TYPE, iri("Electronics")))
        graph.add(Triple(product, iri("label"), Literal(product_name)))
        for feature in features[product_name]:
            graph.add(Triple(product, iri("feature"), iri(feature)))
        for index, price in enumerate(offer_prices):
            offer = iri(f"offer-{product_name}-{index}")
            graph.add(Triple(offer, iri("product"), product))
            graph.add(Triple(offer, iri("price"), Literal.from_python(price)))
    return graph


QUERY = f"""
PREFIX shop: <{EX}>
SELECT ?feature ?avgWithFeature ?avgOverall {{
  {{ SELECT ?feature (AVG(?p1) AS ?avgWithFeature) {{
      ?prod a shop:Electronics ; shop:label ?l1 ; shop:feature ?feature .
      ?off shop:product ?prod ; shop:price ?p1 .
    }} GROUP BY ?feature
  }}
  {{ SELECT (AVG(?p2) AS ?avgOverall) {{
      ?prod2 a shop:Electronics ; shop:label ?l2 .
      ?off2 shop:product ?prod2 ; shop:price ?p2 .
    }}
  }}
}}
"""


def main() -> None:
    graph = build_catalog()
    print(f"catalog: {len(graph)} triples\n")

    report = run_query(QUERY, graph, engine="rapid-analytics")

    print("Average price per feature vs. overall:")
    for row in sorted(report.rows, key=str):
        feature = next(t for v, t in row.items() if v.name == "feature")
        with_feature = next(t for v, t in row.items() if v.name == "avgWithFeature")
        overall = next(t for v, t in row.items() if v.name == "avgOverall")
        print(
            f"  {feature.local_name():12s} "
            f"avg={float(with_feature.python_value()):8.2f}  "
            f"overall={float(overall.python_value()):8.2f}"
        )

    print()
    print(f"engine           : {report.engine}")
    print(f"MR cycles        : {report.cycles} ({report.map_only_cycles} map-only)")
    print(f"simulated cost   : {report.cost_seconds:.1f}s")
    print(f"plan             : {' -> '.join(report.plan)}")
    print()
    print("composite graph pattern:")
    print(report.plan_description)


if __name__ == "__main__":
    main()
