"""PubMed analytics and the MG13 disk-exhaustion study (Table 4).

Runs the grant/country and MeSH-heading workloads on a synthetic
Bio2RDF-PubMed dataset, then reproduces the paper's MG13 finding: under
a bounded HDFS capacity, naive Hive — which materializes the expanded
multi-valued MeSH join twice — runs out of disk, while RAPIDAnalytics'
nested triplegroups and shared execution finish comfortably.

Run:  python examples/pubmed_scalability.py
"""

from repro.bench.catalog import get_query
from repro.bench.harness import pubmed_config, run_experiment
from repro.bench.reporting import render_cost_table, render_io_table
from repro.core.engines import PAPER_ENGINES, make_engine, to_analytical
from repro.datasets import pubmed
from repro.errors import HDFSOutOfSpaceError

CAPACITY = 11_000_000  # simulated HDFS bytes


def main() -> None:
    graph = pubmed.generate(pubmed.preset("paper"))
    print(f"PubMed-style dataset: {len(graph)} triples\n")

    result = run_experiment(
        "example-table4",
        "MG11/MG13/MG16 across engines (PubMed)",
        [get_query("MG11"), get_query("MG13"), get_query("MG16")],
        graph,
        PAPER_ENGINES,
        pubmed_config(),
        verify=True,
    )
    assert not result.mismatches
    print(render_cost_table(result))
    print()
    print(render_io_table(result))
    print()

    print(f"--- MG13 under an HDFS capacity of {CAPACITY:,} bytes ---")
    analytical = to_analytical(get_query("MG13").sparql)
    for engine in PAPER_ENGINES:
        config = pubmed_config(hdfs_capacity=CAPACITY)
        try:
            report = make_engine(engine).execute(analytical, graph, config)
        except HDFSOutOfSpaceError as error:
            print(f"  {engine:16s} FAILED: {error}")
        else:
            used = report.load_bytes + report.stats.total_materialized_bytes
            print(f"  {engine:16s} completed, {used:,} bytes of HDFS used")
    print()
    print(
        "The paper reports the same outcome at cluster scale: naive Hive's\n"
        "MG13 run 'eventually failed due to insufficient HDFS disk space'\n"
        "(a 190GB star-join output materialized twice), while the\n"
        "triplegroup-based plans completed."
    )


if __name__ == "__main__":
    main()
