"""OLAP extensions: ROLLUP and CUBE on RDF (the paper's future work).

The paper concludes that "a natural extension of this work is to
support more complex OLAP queries on RDF data models".  This example
exercises that extension: the n-way composite rewrite evaluates a full
ROLLUP — (country, feature), (country), grand total — and a CUBE over
the same dimensions, each in a constant number of MR cycles on
RAPIDAnalytics, while the naive relational plan grows by ~5 cycles per
additional grouping set.

Run:  python examples/olap_rollup.py
"""

from repro.core.engines import PAPER_ENGINES, make_engine
from repro.core.olap import cube, grouping_sets, rollup, template_from_sparql
from repro.datasets import bsbm
from repro.rdf.terms import Variable

TEMPLATE = """
PREFIX bsbm: <http://bsbm.example.org/vocabulary/>
SELECT ?c ?f (SUM(?pr) AS ?sum) (COUNT(?pr) AS ?cnt) {
  ?p a bsbm:ProductType1 ; bsbm:productFeature ?f .
  ?o bsbm:product ?p ; bsbm:price ?pr ; bsbm:vendor ?v .
  ?v bsbm:country ?c .
} GROUP BY ?c ?f
"""


def main() -> None:
    graph = bsbm.generate(bsbm.preset("500k"))
    template = template_from_sparql(TEMPLATE)
    country, feature = Variable("c"), Variable("f")

    print("ROLLUP(country, feature) — avg price per (country, feature) with")
    print("per-country subtotals and the grand total on every row:\n")
    query = rollup(template, (country, feature))
    report = make_engine("rapid-analytics").execute(query, graph)
    for row in sorted(report.rows, key=str)[:5]:
        values = {v.name: t.n3() for v, t in sorted(row.items(), key=lambda kv: kv[0].name)}
        print(f"  {values}")
    print(f"  ... {len(report.rows)} rows total\n")

    print(f"{'grouping sets':>14s} | " + " | ".join(f"{e:>16s}" for e in PAPER_ENGINES))
    for label, analytical in (
        ("2 (MG1-like)", grouping_sets(template, [(country, feature), ()])),
        ("3 (ROLLUP)", rollup(template, (country, feature))),
        ("4 (CUBE)", cube(template, (country, feature))),
    ):
        cycles = []
        for engine in PAPER_ENGINES:
            cycles.append(make_engine(engine).execute(analytical, graph).cycles)
        print(
            f"{label:>14s} | "
            + " | ".join(f"{c:13d} cy" for c in cycles)
        )
    print(
        "\nRAPIDAnalytics answers every variant in the same 3-4 cycles\n"
        "(one composite pass, one fused parallel Agg-Join, one map-only\n"
        "join), while the sequential plans grow with each grouping set."
    )


if __name__ == "__main__":
    main()
