"""Unit tests for vertically partitioned storage."""

import pytest

from repro.core.query_model import PropKey
from repro.errors import PlanningError
from repro.hive.tables import VPStore, load_vertical_partitions
from repro.mapreduce.hdfs import HDFS
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.rdf.triples import RDF_TYPE, Triple


@pytest.fixture
def loaded():
    graph = Graph(
        [
            Triple(IRI("urn:a"), RDF_TYPE, IRI("urn:C1")),
            Triple(IRI("urn:b"), RDF_TYPE, IRI("urn:C2")),
            Triple(IRI("urn:a"), IRI("urn:p"), Literal("x")),
            Triple(IRI("urn:b"), IRI("urn:p"), Literal("y")),
            Triple(IRI("urn:a"), IRI("urn:q"), Literal("z")),
        ]
    )
    hdfs = HDFS()
    return hdfs, load_vertical_partitions(graph, hdfs)


def test_plain_property_tables(loaded):
    hdfs, store = loaded
    path = store.path_for(PropKey(IRI("urn:p")))
    records = hdfs.read(path).records
    assert set(records) == {(IRI("urn:a"), Literal("x")), (IRI("urn:b"), Literal("y"))}


def test_type_partitions_per_class(loaded):
    hdfs, store = loaded
    c1 = store.path_for(PropKey(RDF_TYPE, IRI("urn:C1")))
    c2 = store.path_for(PropKey(RDF_TYPE, IRI("urn:C2")))
    assert c1 != c2
    assert hdfs.read(c1).records == [(IRI("urn:a"),)]


def test_tables_are_orc_compressed(loaded):
    hdfs, store = loaded
    file = hdfs.read(store.path_for(PropKey(IRI("urn:p"))))
    assert file.compressed
    assert file.size_bytes < file.raw_bytes


def test_missing_property_falls_back_to_empty(loaded):
    hdfs, store = loaded
    path = store.path_for(PropKey(IRI("urn:nope")))
    assert path == store.empty_path
    assert hdfs.read(path).records == []


def test_missing_class_falls_back_to_empty(loaded):
    _, store = loaded
    assert store.path_for(PropKey(RDF_TYPE, IRI("urn:C999"))) == store.empty_path


def test_has(loaded):
    _, store = loaded
    assert store.has(PropKey(IRI("urn:p")))
    assert not store.has(PropKey(IRI("urn:nope")))
    assert store.has(PropKey(RDF_TYPE, IRI("urn:C1")))


def test_unconfigured_store_raises():
    store = VPStore()
    with pytest.raises(PlanningError):
        store.path_for(PropKey(IRI("urn:p")))


def test_total_bytes_accumulates(loaded):
    _, store = loaded
    assert store.total_bytes > 0
