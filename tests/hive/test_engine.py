"""Engine-level tests for the Hive engines."""

import pytest

from repro.core.engines import to_analytical
from repro.core.results import EngineConfig
from repro.errors import HDFSOutOfSpaceError, PlanningError
from repro.hive.engine import HiveEngine, hive_mqo_engine, hive_naive_engine
from repro.hive.executor import HiveExecutor
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.runner import MapReduceRunner


def test_engine_names_and_modes():
    assert hive_naive_engine().name == "hive-naive"
    assert hive_mqo_engine().name == "hive-mqo"


def test_unknown_mode_rejected():
    with pytest.raises(PlanningError):
        HiveExecutor(HDFS(), object(), MapReduceRunner(HDFS()), EngineConfig(), "spark")


def test_report_plan_matches_cycles(product_graph, mg1_style_query):
    report = hive_naive_engine().execute(to_analytical(mg1_style_query), product_graph)
    assert len(report.plan) == report.cycles
    assert report.load_bytes > 0
    assert "VP tables" in report.plan_description


def test_capacity_too_small_for_load_fails(product_graph, mg1_style_query):
    config = EngineConfig(hdfs_capacity=1)
    with pytest.raises(HDFSOutOfSpaceError):
        hive_naive_engine().execute(to_analytical(mg1_style_query), product_graph, config)


def test_mqo_plan_contains_composite_jobs(product_graph, mg1_style_query):
    report = hive_mqo_engine().execute(to_analytical(mg1_style_query), product_graph)
    assert any("mqo-star" in name for name in report.plan)
    assert any("group-by" in name for name in report.plan)


def test_engine_instances_are_stateless(product_graph, mg1_style_query):
    """Two runs of the same engine object must not interfere."""
    engine = HiveEngine("naive")
    analytical = to_analytical(mg1_style_query)
    first = engine.execute(analytical, product_graph)
    second = engine.execute(analytical, product_graph)
    assert first.cycles == second.cycles
    assert len(first.rows) == len(second.rows)
