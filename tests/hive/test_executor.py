"""Hive executor tests: plan shapes, map-join decisions, correctness."""

import pytest

from repro.core.engines import make_engine, to_analytical
from repro.core.results import EngineConfig
from repro.mapreduce.cost import ClusterConfig
from tests.conftest import canonical_rows


def reference_rows(query, graph):
    return canonical_rows(make_engine("reference").execute(to_analytical(query), graph).rows)


SINGLE_GROUPING = """
PREFIX ex: <http://ex.org/>
SELECT ?f (COUNT(?pr) AS ?c) (SUM(?pr) AS ?s) {
  ?p a ex:PT1 ; ex:label ?l ; ex:feature ?f .
  ?o ex:product ?p ; ex:price ?pr .
} GROUP BY ?f
"""


class TestNaive:
    def test_single_grouping_cycle_count(self, product_graph):
        """G-class plan: 2 star formations + 1 star-join + 1 grouping = 4."""
        report = make_engine("hive-naive").execute(
            to_analytical(SINGLE_GROUPING), product_graph
        )
        assert report.cycles == 4

    def test_single_grouping_correct(self, product_graph):
        report = make_engine("hive-naive").execute(
            to_analytical(SINGLE_GROUPING), product_graph
        )
        assert canonical_rows(report.rows) == reference_rows(SINGLE_GROUPING, product_graph)

    def test_mg1_total_cycles(self, product_graph, mg1_style_query):
        """Paper: 3 cycles per graph pattern + 2 groupings + final = 9."""
        report = make_engine("hive-naive").execute(
            to_analytical(mg1_style_query), product_graph
        )
        assert report.cycles == 9

    def test_mapjoin_threshold_controls_cycle_kind(self, product_graph):
        analytical = to_analytical(SINGLE_GROUPING)
        tiny = EngineConfig(mapjoin_threshold=0)
        generous = EngineConfig(mapjoin_threshold=10**9)
        no_mapjoin = make_engine("hive-naive").execute(analytical, product_graph, tiny)
        mapjoin = make_engine("hive-naive").execute(analytical, product_graph, generous)
        assert no_mapjoin.map_only_cycles == 0
        assert mapjoin.map_only_cycles > no_mapjoin.map_only_cycles
        # Same answers either way.
        assert canonical_rows(no_mapjoin.rows) == canonical_rows(mapjoin.rows)

    def test_filter_pushdown_correctness(self, product_graph):
        query = """
        PREFIX ex: <http://ex.org/>
        SELECT (COUNT(?pr) AS ?c) {
          ?p a ex:PT1 ; ex:label ?lbl .
          ?o ex:product ?p ; ex:price ?pr .
          FILTER(?pr > 300)
        }
        """
        report = make_engine("hive-naive").execute(to_analytical(query), product_graph)
        assert canonical_rows(report.rows) == reference_rows(query, product_graph)


class TestMQO:
    def test_mg1_total_cycles(self, product_graph, mg1_style_query):
        """Paper: composite in 3 cycles + extraction/aggregation (here 3:
        one extraction for the subset pattern, two aggregations) + final = 7."""
        report = make_engine("hive-mqo").execute(
            to_analytical(mg1_style_query), product_graph
        )
        assert report.cycles == 7

    def test_mg1_correct(self, product_graph, mg1_style_query):
        report = make_engine("hive-mqo").execute(
            to_analytical(mg1_style_query), product_graph
        )
        assert canonical_rows(report.rows) == reference_rows(mg1_style_query, product_graph)

    def test_identical_patterns_skip_extraction(self, product_graph):
        """When both patterns cover all composite columns, no DISTINCT
        extraction cycle is needed (the paper's MG6 case)."""
        query = """
        PREFIX ex: <http://ex.org/>
        SELECT ?f ?a ?b {
          { SELECT ?f (COUNT(?pr) AS ?a) {
              ?p a ex:PT1 ; ex:feature ?f . ?o ex:product ?p ; ex:price ?pr .
            } GROUP BY ?f }
          { SELECT (COUNT(?pr2) AS ?b) {
              ?p2 a ex:PT1 ; ex:feature ?f2 . ?o2 ex:product ?p2 ; ex:price ?pr2 .
            } }
        }
        """
        report = make_engine("hive-mqo").execute(to_analytical(query), product_graph)
        assert not any("extract" in name for name in report.plan)
        assert canonical_rows(report.rows) == reference_rows(query, product_graph)

    def test_falls_back_to_naive_on_non_overlap(self, product_graph):
        query = """
        PREFIX ex: <http://ex.org/>
        SELECT ?a ?b {
          { SELECT (COUNT(?x) AS ?a) { ?s ex:product ?v . ?v ex:feature ?x . } }
          { SELECT (COUNT(?y) AS ?b) { ?s2 ex:product ?w . ?t ex:feature ?w . } }
        }
        """
        report = make_engine("hive-mqo").execute(to_analytical(query), product_graph)
        assert not any("mqo" in name for name in report.plan)

    def test_composite_table_not_early_projected(self, product_graph, mg1_style_query):
        """MQO materializes the composite with all columns (the paper's
        criticism): its intermediate volume exceeds naive's projected rows
        for the same phase."""
        analytical = to_analytical(mg1_style_query)
        config = EngineConfig(mapjoin_threshold=0)
        naive = make_engine("hive-naive").execute(analytical, product_graph, config)
        mqo = make_engine("hive-mqo").execute(analytical, product_graph, config)
        naive_join_bytes = max(
            j.output_bytes for j in naive.stats.jobs if "join" in j.name
        )
        mqo_join_bytes = max(
            j.output_bytes for j in mqo.stats.jobs if "mqo-join" in j.name
        )
        assert mqo_join_bytes > naive_join_bytes


class TestGroupByAllDefaults:
    def test_empty_rollup_gets_default_row(self, product_graph):
        query = """
        PREFIX ex: <http://ex.org/>
        SELECT (COUNT(?pr) AS ?c) (SUM(?pr) AS ?s) {
          ?p a ex:NoSuchType ; ex:label ?lbl .
          ?o ex:product ?p ; ex:price ?pr .
        }
        """
        for engine in ("hive-naive", "hive-mqo"):
            report = make_engine(engine).execute(to_analytical(query), product_graph)
            assert canonical_rows(report.rows) == reference_rows(query, product_graph)
            assert len(report.rows) == 1
