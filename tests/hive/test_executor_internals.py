"""Unit tests for Hive executor internals (record conversion, filters)."""

import pytest

from repro.hive.executor import (
    _BoundFilter,
    _compatible_merge,
    _project,
    _pushable,
    _vp_row,
)
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.expressions import BinaryExpr, ConstExpr, VarExpr

S, O = Variable("s"), Variable("o")
P = IRI("urn:p")


def gt(variable, value):
    return BinaryExpr(">", VarExpr(variable), ConstExpr(Literal.from_python(value)))


class TestVPRow:
    def test_plain_record(self):
        tp = TriplePattern(S, P, O)
        row = _vp_row(tp, (IRI("urn:a"), Literal("x")), [])
        assert row == {S: IRI("urn:a"), O: Literal("x")}

    def test_type_record_single_column(self):
        tp = TriplePattern(S, IRI("urn:type"), IRI("urn:C"))
        row = _vp_row(tp, (IRI("urn:a"),), [])
        assert row == {S: IRI("urn:a")}

    def test_concrete_object_match_and_mismatch(self):
        tp = TriplePattern(S, P, Literal("News"))
        assert _vp_row(tp, (IRI("urn:a"), Literal("News")), []) == {S: IRI("urn:a")}
        assert _vp_row(tp, (IRI("urn:a"), Literal("Review")), []) is None

    def test_concrete_subject(self):
        tp = TriplePattern(IRI("urn:a"), P, O)
        assert _vp_row(tp, (IRI("urn:a"), Literal("x")), []) == {O: Literal("x")}
        assert _vp_row(tp, (IRI("urn:b"), Literal("x")), []) is None

    def test_same_variable_subject_object(self):
        tp = TriplePattern(S, P, S)
        assert _vp_row(tp, (IRI("urn:a"), IRI("urn:a")), []) == {S: IRI("urn:a")}
        assert _vp_row(tp, (IRI("urn:a"), IRI("urn:b")), []) is None

    def test_pushed_filter(self):
        tp = TriplePattern(S, P, O)
        filters = [gt(O, 10)]
        assert _vp_row(tp, (IRI("urn:a"), Literal.from_python(20)), filters) is not None
        assert _vp_row(tp, (IRI("urn:a"), Literal.from_python(5)), filters) is None


class TestPushable:
    def test_single_variable_filter_on_object(self):
        tp = TriplePattern(S, P, O)
        filters = [gt(O, 1), gt(S, 1), BinaryExpr("<", VarExpr(O), VarExpr(S))]
        pushed = _pushable(filters, tp)
        assert pushed == [filters[0]]

    def test_concrete_object_pushes_nothing(self):
        tp = TriplePattern(S, P, Literal("x"))
        assert _pushable([gt(O, 1)], tp) == []


class TestRowHelpers:
    def test_compatible_merge(self):
        left = {S: IRI("urn:a")}
        right = {S: IRI("urn:a"), O: Literal("x")}
        assert _compatible_merge(left, right) == right
        conflicting = {S: IRI("urn:b")}
        assert _compatible_merge(left, conflicting) is None

    def test_project(self):
        row = {S: IRI("urn:a"), O: Literal("x")}
        assert _project(row, frozenset({S})) == {S: IRI("urn:a")}
        assert _project(row, None) == row

    def test_bound_filter_is_frozen_marker(self):
        marker = _BoundFilter(S)
        assert marker.variable == S
        assert _BoundFilter(S) == marker
