"""Unit tests for cost model and size estimation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.cost import ClusterConfig, CostModel, estimate_size
from repro.rdf.terms import BNode, IRI, Literal
from repro.rdf.triples import Triple


class TestEstimateSize:
    @pytest.mark.parametrize(
        "value",
        [None, True, 5, 2.5, "hello", IRI("urn:a"), BNode("b"), Literal("x"),
         Literal("5", datatype="urn:int"), Literal("x", language="en"),
         (1, 2), [1, 2], {1: 2}, {1, 2}],
    )
    def test_positive(self, value):
        assert estimate_size(value) > 0

    def test_string_scales_with_length(self):
        assert estimate_size("x" * 100) > estimate_size("x")

    def test_triple_sums_components(self):
        triple = Triple(IRI("urn:s"), IRI("urn:p"), Literal("o"))
        assert estimate_size(triple) >= (
            estimate_size(triple.subject)
            + estimate_size(triple.property)
            + estimate_size(triple.object)
        )

    def test_respects_estimated_size_protocol(self):
        class Sized:
            def estimated_size(self):
                return 1234

        assert estimate_size(Sized()) == 1234

    def test_deterministic(self):
        value = {"a": [1, 2, (IRI("urn:x"), Literal("y"))]}
        assert estimate_size(value) == estimate_size(value)


class TestClusterConfig:
    def test_slots(self):
        cluster = ClusterConfig(nodes=5, map_slots_per_node=3, reduce_slots_per_node=2)
        assert cluster.map_slots == 15
        assert cluster.reduce_slots == 10

    def test_splits(self):
        cluster = ClusterConfig(block_size=100)
        # Zero-byte files occupy no blocks: no mapper is charged for
        # them (the runner floors a job's *total* tasks at one).
        assert cluster.splits_for(0) == 0
        assert cluster.splits_for(100) == 1
        assert cluster.splits_for(101) == 2
        assert cluster.splits_for(1000) == 10

    def test_zero_map_tasks_still_charges_one_wave(self):
        cost = CostModel()
        cluster = ClusterConfig()
        empty = cost.job_cost(
            cluster,
            input_bytes=0,
            shuffle_bytes=0,
            output_bytes=0,
            map_tasks=0,
            reduce_tasks=0,
        )
        assert empty >= cost.map_only_startup + cost.map_task_overhead


class TestCostModel:
    def _cost(self, **kwargs):
        defaults = dict(
            input_bytes=0, shuffle_bytes=0, output_bytes=0, map_tasks=1, reduce_tasks=0
        )
        defaults.update(kwargs)
        return CostModel().job_cost(ClusterConfig(), **defaults)

    def test_startup_floor(self):
        assert self._cost() >= CostModel().map_only_startup
        assert self._cost(reduce_tasks=1) >= CostModel().job_startup

    def test_map_only_startup_is_cheaper(self):
        assert CostModel().map_only_startup < CostModel().job_startup

    def test_monotone_in_input(self):
        assert self._cost(input_bytes=10**6, map_tasks=1) > self._cost(input_bytes=10**3, map_tasks=1)

    def test_monotone_in_shuffle(self):
        base = self._cost(reduce_tasks=1)
        assert self._cost(shuffle_bytes=10**6, reduce_tasks=1) > base

    def test_map_only_cheaper_than_full(self):
        full = self._cost(input_bytes=1000, shuffle_bytes=1000, output_bytes=100, reduce_tasks=4)
        map_only = self._cost(input_bytes=1000, output_bytes=100, reduce_tasks=0)
        assert map_only < full

    def test_more_mappers_faster_scan(self):
        """The paper's ORC observation: fewer mappers = worse utilization."""
        few = self._cost(input_bytes=10**7, map_tasks=1)
        many = self._cost(input_bytes=10**7, map_tasks=20)
        assert many < few


@settings(max_examples=60, deadline=None)
@given(
    input_bytes=st.integers(0, 10**8),
    shuffle_bytes=st.integers(0, 10**8),
    output_bytes=st.integers(0, 10**8),
    map_tasks=st.integers(1, 200),
    reduce_tasks=st.integers(0, 50),
)
def test_cost_always_positive_and_finite(input_bytes, shuffle_bytes, output_bytes, map_tasks, reduce_tasks):
    cost = CostModel().job_cost(
        ClusterConfig(),
        input_bytes=input_bytes,
        shuffle_bytes=shuffle_bytes,
        output_bytes=output_bytes,
        map_tasks=map_tasks,
        reduce_tasks=reduce_tasks,
    )
    assert cost > 0
    assert cost < float("inf")


class TestExchangePhaseDecomposition:
    """Regression: the sharded exchange term must appear as its own
    ``exchange`` phase in :meth:`CostModel.job_cost_phases` — not lumped
    into the shuffle term — and the phase decomposition must always sum
    to :meth:`CostModel.job_cost` for the same arguments."""

    GRID = [
        # (input, shuffle, output, map_tasks, reduce_tasks, exchange)
        (0, 0, 0, 1, 0, 0),                       # empty map-only
        (10**5, 0, 10**4, 4, 0, 0),               # map-only, no exchange
        (10**5, 0, 10**4, 4, 0, 3_000),           # map-only with exchange
        (10**6, 5 * 10**5, 10**5, 8, 5, 0),       # full, no exchange
        (10**6, 5 * 10**5, 10**5, 8, 5, 40_000),  # full with exchange
        (10**7, 10**6, 10**6, 40, 10, 123_456),   # big sharded assemble
        (0, 0, 0, 1, 1, 1),                       # minimal exchange
    ]

    @pytest.mark.parametrize("params", GRID)
    def test_phases_sum_to_job_cost(self, params):
        input_bytes, shuffle_bytes, output_bytes, map_tasks, reduce_tasks, xb = params
        model, cluster = CostModel(), ClusterConfig()
        kwargs = dict(
            input_bytes=input_bytes,
            shuffle_bytes=shuffle_bytes,
            output_bytes=output_bytes,
            map_tasks=map_tasks,
            reduce_tasks=reduce_tasks,
            exchange_bytes=xb,
        )
        phases = model.job_cost_phases(cluster, **kwargs)
        total = model.job_cost(cluster, **kwargs)
        assert sum(seconds for _, seconds in phases) == pytest.approx(total)

    @pytest.mark.parametrize("params", GRID)
    def test_exchange_phase_gated_on_bytes(self, params):
        input_bytes, shuffle_bytes, output_bytes, map_tasks, reduce_tasks, xb = params
        phases = dict(
            CostModel().job_cost_phases(
                ClusterConfig(),
                input_bytes=input_bytes,
                shuffle_bytes=shuffle_bytes,
                output_bytes=output_bytes,
                map_tasks=map_tasks,
                reduce_tasks=reduce_tasks,
                exchange_bytes=xb,
            )
        )
        if xb > 0:
            assert phases["exchange"] > 0
        else:
            # Unsharded decompositions keep their historical shape.
            assert "exchange" not in phases

    def test_exchange_not_lumped_into_shuffle(self):
        """Adding exchange bytes must leave the shuffle phase untouched
        and surface entirely in the exchange phase."""
        model, cluster = CostModel(), ClusterConfig()
        kwargs = dict(
            input_bytes=10**6,
            shuffle_bytes=5 * 10**5,
            output_bytes=10**5,
            map_tasks=8,
            reduce_tasks=5,
        )
        without = dict(model.job_cost_phases(cluster, **kwargs, exchange_bytes=0))
        with_xb = dict(
            model.job_cost_phases(cluster, **kwargs, exchange_bytes=64_000)
        )
        assert with_xb["shuffle"] == without["shuffle"]
        assert with_xb["map"] == without["map"]
        assert with_xb["materialize"] == without["materialize"]
        delta = model.job_cost(cluster, **kwargs, exchange_bytes=64_000) - model.job_cost(
            cluster, **kwargs, exchange_bytes=0
        )
        assert with_xb["exchange"] == pytest.approx(delta)

    def test_exchange_rides_slower_rate_than_shuffle(self):
        assert CostModel().exchange_rate < CostModel().shuffle_rate
