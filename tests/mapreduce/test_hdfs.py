"""Unit tests for the simulated HDFS."""

import pytest

from repro.errors import HDFSError, HDFSOutOfSpaceError
from repro.mapreduce.hdfs import HDFS


def test_write_and_read():
    hdfs = HDFS()
    file = hdfs.write("a/b", [1, 2, 3])
    assert file.records == [1, 2, 3]
    assert hdfs.read("a/b").size_bytes == file.size_bytes


def test_read_missing_raises():
    with pytest.raises(HDFSError):
        HDFS().read("nope")


def test_exists_and_delete():
    hdfs = HDFS()
    hdfs.write("x", [1])
    assert hdfs.exists("x")
    hdfs.delete("x")
    assert not hdfs.exists("x")
    hdfs.delete("x")  # idempotent


def test_overwrite_replaces():
    hdfs = HDFS()
    hdfs.write("x", [1, 2, 3])
    hdfs.write("x", [9])
    assert hdfs.read("x").records == [9]
    assert hdfs.used_bytes() == hdfs.read("x").size_bytes


def test_compression_reduces_stored_size_keeps_raw():
    hdfs = HDFS()
    raw_file = hdfs.write("raw", ["x" * 100] * 10)
    compressed = hdfs.write("orc", ["x" * 100] * 10, compressed=True)
    assert compressed.size_bytes < raw_file.size_bytes
    assert compressed.raw_bytes == raw_file.raw_bytes
    assert compressed.compressed


def test_capacity_enforced():
    hdfs = HDFS(capacity=50)
    hdfs.write("a", ["x" * 20])
    with pytest.raises(HDFSOutOfSpaceError) as exc_info:
        hdfs.write("b", ["y" * 200])
    assert exc_info.value.capacity == 50


def test_capacity_counts_replaced_file_as_freed():
    hdfs = HDFS(capacity=120)
    hdfs.write("a", ["x" * 100])
    # Replacing the same path frees its old bytes first.
    hdfs.write("a", ["y" * 100])
    assert hdfs.exists("a")


def test_available_bytes():
    hdfs = HDFS(capacity=1000)
    assert hdfs.available_bytes() == 1000
    hdfs.write("a", [1])
    assert hdfs.available_bytes() < 1000
    assert HDFS().available_bytes() is None


def test_listdir_prefix():
    hdfs = HDFS()
    hdfs.write("vp/a", [])
    hdfs.write("vp/b", [])
    hdfs.write("other", [])
    assert hdfs.listdir("vp/") == ["vp/a", "vp/b"]


def test_listdir_respects_directory_boundaries():
    """Regression: the raw startswith match leaked sibling directories
    sharing a name prefix ('vp2/x' under 'vp')."""
    hdfs = HDFS()
    hdfs.write("vp", [])  # a file named exactly like the directory
    hdfs.write("vp/a", [])
    hdfs.write("vp2/x", [])
    hdfs.write("vpextra", [])
    assert hdfs.listdir("vp") == ["vp", "vp/a"]
    assert hdfs.listdir("vp/") == ["vp", "vp/a"]
    assert hdfs.listdir("vp2") == ["vp2/x"]
    assert hdfs.listdir() == ["vp", "vp/a", "vp2/x", "vpextra"]


def test_total_records():
    hdfs = HDFS()
    hdfs.write("a", [1, 2])
    hdfs.write("b", [3])
    assert hdfs.total_records() == 3


def test_incremental_used_bytes_matches_recount():
    """The running total must track write/overwrite/delete exactly."""
    hdfs = HDFS()
    hdfs.write("a", ["x" * 10] * 3)
    hdfs.write("b", ["y" * 50], compressed=True)
    hdfs.write("a", ["z" * 7])  # overwrite shrinks
    hdfs.delete("b")
    hdfs.delete("missing")  # no-op must not corrupt the total
    recounted = sum(f.size_bytes for f in [hdfs.read(p) for p in hdfs.listdir()])
    assert hdfs.used_bytes() == recounted


def test_capacity_overflow_after_many_writes():
    """MG13-style regression: the capacity check must use the *current*
    total, so a workflow that keeps materializing intermediates trips the
    limit at the right write, and a rejected write changes nothing."""
    hdfs = HDFS(capacity=1000)
    written = 0
    path = 0
    with pytest.raises(HDFSOutOfSpaceError):
        while True:
            hdfs.write(f"tmp/{path}", ["x" * 99])  # 100 bytes each
            written += 100
            path += 1
    assert written == 1000  # exactly ten fit, the eleventh overflows
    assert hdfs.used_bytes() == 1000
    assert not hdfs.exists(f"tmp/{path}")
    # Deleting one file frees exactly one file's worth of space again.
    hdfs.delete("tmp/0")
    assert hdfs.available_bytes() == 100
    hdfs.write("tmp/again", ["x" * 99])
    assert hdfs.used_bytes() == 1000
