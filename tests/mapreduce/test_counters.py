"""Unit tests for job counters."""

from repro.mapreduce.counters import Counters


def test_increment_and_get():
    counters = Counters()
    counters.increment("x")
    counters.increment("x", 4)
    assert counters.get("x") == 5
    assert counters["x"] == 5


def test_missing_counter_is_zero():
    assert Counters().get("nope") == 0


def test_merge():
    a, b = Counters(), Counters()
    a.increment("x", 2)
    b.increment("x", 3)
    b.increment("y", 1)
    a.merge(b)
    assert a.get("x") == 5
    assert a.get("y") == 1


def test_iteration_sorted():
    counters = Counters()
    counters.increment("zz")
    counters.increment("aa")
    assert [name for name, _ in counters] == ["aa", "zz"]


def test_as_dict_and_repr():
    counters = Counters()
    counters.increment("a", 7)
    assert counters.as_dict() == {"a": 7}
    assert "a=7" in repr(counters)
