"""Unit and property tests for deterministic fault injection/recovery.

The load-bearing invariant: a fault plan may change only the charged
cost and the fault counters — result records and every base counter
must be bit-identical to the fault-free run, and cost must be monotone
non-decreasing in the fault rates.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MapReduceError, TaskFailedError
from repro.mapreduce.cost import ClusterConfig
from repro.mapreduce.faults import FAULT_COUNTERS, FaultPlan
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runner import MapReduceRunner


def wordcount_job():
    return MapReduceJob(
        name="wc",
        inputs=("in",),
        output="out",
        mapper=lambda record: [(record, 1)],
        reducer=lambda key, values: [(key, sum(values))],
    )


def run_wordcount(records, plan=None, **cluster_kwargs):
    hdfs = HDFS()
    hdfs.write("in", records)
    runner = MapReduceRunner(hdfs, ClusterConfig(**cluster_kwargs), fault_plan=plan)
    stats = runner.run_workflow([wordcount_job()])
    return hdfs, stats


class TestFaultPlanDecisions:
    def test_deterministic(self):
        a = FaultPlan(seed=7, task_failure_rate=0.3, straggler_rate=0.3)
        b = FaultPlan(seed=7, task_failure_rate=0.3, straggler_rate=0.3)
        for index in range(50):
            assert a.task_failures("j", "map", index) == b.task_failures("j", "map", index)
            assert a.is_straggler("j", "map", index) == b.is_straggler("j", "map", index)
        assert a.write_failures("j") == b.write_failures("j")

    def test_seed_changes_decisions(self):
        plans = [FaultPlan(seed=s, task_failure_rate=0.3) for s in range(4)]
        patterns = {
            tuple(plan.task_failures("j", "map", i) for i in range(64)) for plan in plans
        }
        assert len(patterns) > 1

    def test_failure_count_within_budget(self):
        plan = FaultPlan(seed=1, task_failure_rate=0.9, max_attempts=3)
        for index in range(100):
            assert 0 <= plan.task_failures("j", "map", index) <= 3

    def test_zero_rates_inject_nothing(self):
        plan = FaultPlan(seed=5)
        assert plan.is_noop
        assert plan.task_failures("j", "map", 0) == 0
        assert not plan.is_straggler("j", "map", 0)
        assert plan.write_failures("j") == 0

    def test_failures_monotone_in_rate(self):
        """Fixed unit floats: a higher rate can only add failures."""
        for low, high in [(0.05, 0.2), (0.2, 0.6), (0.0, 0.9)]:
            a = FaultPlan(seed=3, task_failure_rate=low)
            b = FaultPlan(seed=3, task_failure_rate=high)
            for index in range(80):
                assert a.task_failures("j", "map", index) <= b.task_failures(
                    "j", "map", index
                )

    def test_rate_frequency_is_roughly_calibrated(self):
        plan = FaultPlan(seed=11, task_failure_rate=0.25)
        failed = sum(
            1 for i in range(2000) if plan.task_failures("j", "map", i) > 0
        )
        assert 400 < failed < 600  # ~25% of 2000, generous tolerance


class TestFaultPlanConstruction:
    def test_from_spec_two_fields_drives_all_rates(self):
        plan = FaultPlan.from_spec("7,0.05")
        assert plan.seed == 7
        assert plan.task_failure_rate == 0.05
        assert plan.straggler_rate == 0.05
        assert plan.hdfs_write_failure_rate == 0.05

    def test_from_spec_explicit_rates(self):
        plan = FaultPlan.from_spec("3, 0.1, 0.2, 0.3")
        assert (plan.seed, plan.task_failure_rate) == (3, 0.1)
        assert plan.straggler_rate == 0.2
        assert plan.hdfs_write_failure_rate == 0.3

    @pytest.mark.parametrize("spec", ["7", "a,0.1", "7,x", "7,0.1,0.1,0.1,0.1", ""])
    def test_from_spec_rejects_malformed(self, spec):
        with pytest.raises(MapReduceError):
            FaultPlan.from_spec(spec)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_failure_rate": 1.0},
            {"task_failure_rate": -0.1},
            {"straggler_rate": 1.5},
            {"hdfs_write_failure_rate": 2.0},
            {"max_attempts": 0},
            {"straggler_slowdown": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(MapReduceError):
            FaultPlan(seed=1, **kwargs)


RECORDS = ["a", "b", "a", "c", "a", "b", "d"] * 8


class TestRecovery:
    def test_noop_plan_is_dropped(self):
        runner = MapReduceRunner(HDFS(), fault_plan=FaultPlan(seed=9))
        assert runner.fault_plan is None

    def test_results_and_base_counters_identical(self):
        hdfs_base, base = run_wordcount(RECORDS, block_size=32)
        plan = FaultPlan.from_spec("7,0.3")
        hdfs_faulted, faulted = run_wordcount(RECORDS, plan, block_size=32)
        assert hdfs_faulted.read("out").records == hdfs_base.read("out").records
        base_counters = {
            k: v for k, v in faulted.counters.as_dict().items() if k not in FAULT_COUNTERS
        }
        assert base_counters == base.counters.as_dict()
        assert faulted.total_cost >= base.total_cost

    def test_fault_counters_appear_only_under_faults(self):
        _, base = run_wordcount(RECORDS, block_size=32)
        assert not FAULT_COUNTERS & set(base.counters.as_dict())
        plan = FaultPlan(seed=7, task_failure_rate=0.5, max_attempts=30)
        _, faulted = run_wordcount(RECORDS, plan, block_size=32)
        assert faulted.counters["retried_tasks"] > 0
        assert faulted.counters["wasted_bytes"] > 0
        assert faulted.jobs[0].retried_tasks == faulted.counters["retried_tasks"]

    def test_exhausted_budget_aborts_and_deletes_output(self):
        plan = FaultPlan(seed=2, task_failure_rate=0.97, max_attempts=2)
        hdfs = HDFS()
        hdfs.write("in", RECORDS)
        runner = MapReduceRunner(hdfs, ClusterConfig(block_size=32), fault_plan=plan)
        with pytest.raises(TaskFailedError) as exc_info:
            runner.run_job(wordcount_job())
        error = exc_info.value
        assert error.job_name == "wc"
        assert error.attempts == 2
        assert "aborting job" in str(error)
        assert not hdfs.exists("out")  # an aborted job commits nothing

    def test_speculation_counts_duplicates(self):
        plan = FaultPlan(seed=4, straggler_rate=0.8, speculation=True)
        _, stats = run_wordcount(RECORDS, plan, block_size=16)
        assert stats.counters["speculative_tasks"] > 0
        assert stats.counters["straggler_tasks"] >= stats.counters["speculative_tasks"]

    def test_unspeculated_stragglers_cost_more_than_healthy(self):
        _, base = run_wordcount(RECORDS, block_size=16)
        plan = FaultPlan(
            seed=4, straggler_rate=0.8, speculation=False, straggler_slowdown=8.0
        )
        _, slow = run_wordcount(RECORDS, plan, block_size=16)
        assert "speculative_tasks" not in slow.counters.as_dict()
        assert slow.counters["straggler_tasks"] > 0
        assert slow.total_cost > base.total_cost

    def test_straggler_slowdown_scales_cost(self):
        mild_plan = FaultPlan(
            seed=4, straggler_rate=0.8, speculation=False, straggler_slowdown=2.0
        )
        harsh_plan = FaultPlan(
            seed=4, straggler_rate=0.8, speculation=False, straggler_slowdown=16.0
        )
        _, mild = run_wordcount(RECORDS, mild_plan, block_size=16)
        _, harsh = run_wordcount(RECORDS, harsh_plan, block_size=16)
        assert harsh.total_cost > mild.total_cost

    def test_write_failures_are_retried_and_charged(self):
        # Write-failure-only plan: isolates the HDFS retry channel.
        plan = FaultPlan(seed=1, hdfs_write_failure_rate=0.9, max_attempts=40)
        hdfs, stats = run_wordcount(RECORDS, plan, block_size=32)
        _, base = run_wordcount(RECORDS, block_size=32)
        assert stats.counters["hdfs_write_retries"] > 0
        assert stats.total_cost > base.total_cost
        assert hdfs.exists("out")  # transient failures still commit in the end


# -- property tests ------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    records=st.lists(st.sampled_from("abcdef"), min_size=1, max_size=60),
    seed=st.integers(0, 2**32),
    rate=st.floats(0.0, 0.6),
    block_size=st.integers(16, 256),
)
def test_faults_never_change_results(records, seed, rate, block_size):
    """Any seeded plan: same rows, same base counters, cost only grows."""
    hdfs_base, base = run_wordcount(records, block_size=block_size)
    plan = FaultPlan(
        seed=seed,
        task_failure_rate=rate,
        straggler_rate=rate,
        hdfs_write_failure_rate=rate,
        max_attempts=50,  # huge budget: property run should never abort
    )
    hdfs_faulted, faulted = run_wordcount(records, plan, block_size=block_size)
    assert hdfs_faulted.read("out").records == hdfs_base.read("out").records
    base_counters = {
        k: v for k, v in faulted.counters.as_dict().items() if k not in FAULT_COUNTERS
    }
    assert base_counters == base.counters.as_dict()
    assert faulted.total_cost >= base.total_cost


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32),
    low=st.floats(0.0, 0.5),
    delta=st.floats(0.0, 0.4),
)
def test_cost_monotone_in_fault_rate(seed, low, delta):
    """Raising every rate can only add faults, hence cost (abort = inf)."""
    high = low + delta

    def cost_at(rate):
        plan = FaultPlan(
            seed=seed,
            task_failure_rate=rate,
            straggler_rate=rate,
            hdfs_write_failure_rate=rate,
        )
        try:
            _, stats = run_wordcount(RECORDS, plan, block_size=32)
        except TaskFailedError:
            return float("inf")
        return stats.total_cost

    assert cost_at(low) <= cost_at(high)
