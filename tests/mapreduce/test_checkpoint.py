"""Unit and property tests for checkpointed workflow recovery."""

from collections import Counter as PyCounter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import CheckpointError, TaskFailedError, WorkflowAbortedError
from repro.mapreduce.checkpoint import (
    RECOVERY_COUNTERS,
    CommitLedger,
    LedgerEntry,
    RecoveryPolicy,
    RecoveryStats,
    fingerprint_inputs,
)
from repro.mapreduce.counters import Counters
from repro.mapreduce.cost import ClusterConfig
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runner import MapReduceRunner


def wordcount_job(name="wc", inputs=("in",), output="out"):
    return MapReduceJob(
        name=name,
        inputs=inputs,
        output=output,
        mapper=lambda record: [(record, 1)],
        reducer=lambda key, values: [(key, sum(values))],
    )


def passthrough_job(name, inputs, output):
    return MapReduceJob(
        name=name,
        inputs=inputs,
        output=output,
        mapper=lambda record: [(record, 1)],
        reducer=lambda key, values: [(key, sum(values))],
    )


def two_stage_workflow():
    """wc over 'in' -> 'mid', then re-count 'mid' pairs -> 'out'."""
    first = wordcount_job("stage1", ("in",), "mid")
    second = MapReduceJob(
        name="stage2",
        inputs=("mid",),
        output="out",
        mapper=lambda pair: [(pair[0], pair[1])],
        reducer=lambda key, values: [(key, sum(values))],
    )
    return [first, second]


def make_runner(hdfs, fault_plan=None, recovery=None):
    return MapReduceRunner(
        hdfs, ClusterConfig(), fault_plan=fault_plan, recovery=recovery
    )


class TestRecoveryPolicy:
    def test_defaults(self):
        assert RecoveryPolicy().max_resubmissions == 8

    @pytest.mark.parametrize("budget", [0, -1, -8])
    def test_rejects_non_positive_budget(self, budget):
        with pytest.raises(CheckpointError):
            RecoveryPolicy(max_resubmissions=budget)


class TestFingerprint:
    def test_stable_for_unchanged_inputs(self):
        hdfs = HDFS()
        hdfs.write("in", ["a", "b"])
        job = wordcount_job()
        assert fingerprint_inputs(hdfs, job) == fingerprint_inputs(hdfs, job)

    def test_changes_when_input_changes(self):
        hdfs = HDFS()
        hdfs.write("in", ["a", "b"])
        job = wordcount_job()
        before = fingerprint_inputs(hdfs, job)
        hdfs.delete("in")
        hdfs.write("in", ["a", "b", "c"])
        assert fingerprint_inputs(hdfs, job) != before

    def test_absent_input_fingerprints_distinctly(self):
        hdfs = HDFS()
        job = wordcount_job()
        absent = fingerprint_inputs(hdfs, job)
        hdfs.write("in", [])
        assert fingerprint_inputs(hdfs, job) != absent

    def test_covers_side_inputs(self):
        hdfs = HDFS()
        hdfs.write("in", ["a"])
        hdfs.write("side", ["x"])
        plain = wordcount_job()
        with_side = MapReduceJob(
            name="wc",
            inputs=("in",),
            output="out",
            mapper_factory=lambda side: (lambda r: [(r, 1)]),
            reducer=lambda k, v: [(k, sum(v))],
            side_inputs=("side",),
        )
        assert fingerprint_inputs(hdfs, plain) != fingerprint_inputs(hdfs, with_side)


class TestCommitLedger:
    def entry(self, fingerprint="fp", name="j1", output="out"):
        return LedgerEntry(
            job_name=name,
            output=output,
            fingerprint=fingerprint,
            output_bytes=100,
            output_records=10,
            cost_seconds=5.0,
            stats=None,
            counters={"map_tasks": 1},
        )

    def test_commit_and_lookup(self):
        ledger = CommitLedger()
        ledger.commit(self.entry())
        assert ledger.lookup("j1", "out", "fp") is not None
        assert ledger.committed_jobs() == ("j1",)
        assert ledger.total_bytes == 100
        assert len(ledger) == 1

    def test_lookup_mismatched_fingerprint_invalidates(self):
        ledger = CommitLedger()
        ledger.commit(self.entry(fingerprint="old"))
        assert ledger.lookup("j1", "out", "new") is None
        # The stale entry is gone: the old fingerprint no longer hits.
        assert ledger.lookup("j1", "out", "old") is None
        assert len(ledger) == 0

    def test_invalidate(self):
        ledger = CommitLedger()
        ledger.commit(self.entry())
        ledger.invalidate("j1", "out")
        assert ledger.lookup("j1", "out", "fp") is None


class TestCheckpointSkip:
    def test_second_run_skips_committed_job(self):
        hdfs = HDFS()
        hdfs.write("in", ["a", "b", "a"])
        runner = make_runner(hdfs, recovery=RecoveryPolicy())
        first = runner.run_job(wordcount_job())
        assert len(hdfs.ledger) == 1
        counters = Counters()
        second = runner.run_job(wordcount_job(), counters)
        assert runner.recovery_stats.jobs_skipped == 1
        assert runner.recovery_stats.salvaged_bytes == first.output_bytes
        # The skip replays the committed stats and counters verbatim.
        assert second.cost_seconds == first.cost_seconds
        assert second.output_records == first.output_records
        assert counters.as_dict().get("map_tasks", 0) > 0
        assert dict(hdfs.read("out").records) == {"a": 2, "b": 1}

    def test_changed_input_invalidates_checkpoint(self):
        hdfs = HDFS()
        hdfs.write("in", ["a"])
        runner = make_runner(hdfs, recovery=RecoveryPolicy())
        runner.run_job(wordcount_job())
        hdfs.delete("in")
        hdfs.write("in", ["a", "b"])
        hdfs.delete("out")
        runner.run_job(wordcount_job())
        assert runner.recovery_stats.jobs_skipped == 0
        assert dict(hdfs.read("out").records) == {"a": 1, "b": 1}

    def test_missing_output_is_a_checkpoint_error(self):
        hdfs = HDFS()
        hdfs.write("in", ["a"])
        runner = make_runner(hdfs, recovery=RecoveryPolicy())
        runner.run_job(wordcount_job())
        hdfs.delete("out")
        with pytest.raises(CheckpointError):
            runner.run_job(wordcount_job())

    def test_no_recovery_means_no_ledger_writes(self):
        hdfs = HDFS()
        hdfs.write("in", ["a"])
        make_runner(hdfs).run_job(wordcount_job())
        assert len(hdfs.ledger) == 0


def run_recovered(seed, rate, budget=64, attempts=1, records=("a", "b", "a")):
    hdfs = HDFS()
    hdfs.write("in", list(records))
    plan = FaultPlan(seed=seed, task_failure_rate=rate, max_attempts=attempts)
    runner = make_runner(
        hdfs, fault_plan=plan, recovery=RecoveryPolicy(max_resubmissions=budget)
    )
    stats = runner.run_workflow(two_stage_workflow())
    runner.finalize(stats)
    return hdfs, stats


class TestWorkflowResume:
    def test_resumed_workflow_matches_fault_free(self):
        clean_hdfs = HDFS()
        clean_hdfs.write("in", ["a", "b", "a"])
        clean_runner = make_runner(clean_hdfs)
        clean = clean_runner.run_workflow(two_stage_workflow())
        # Seed 5 at 50%/attempts=1 aborts deterministically at least once.
        hdfs, stats = run_recovered(seed=5, rate=0.5)
        assert dict(hdfs.read("out").records) == dict(clean_hdfs.read("out").records)
        assert stats.recovery is not None
        assert stats.recovery.resubmissions > 0
        assert stats.recovery.wasted_seconds > 0
        assert stats.total_cost > clean.total_cost
        counters = stats.counters.as_dict()
        assert counters["workflow_resubmissions"] == stats.recovery.resubmissions
        assert set(counters) & RECOVERY_COUNTERS  # finalize surfaced them

    def test_recovery_counters_surface_in_workflow_counters(self):
        _, stats = run_recovered(seed=5, rate=0.5)
        counters = stats.counters.as_dict()
        assert counters["workflow_resubmissions"] == stats.recovery.resubmissions

    def test_budget_exhaustion_raises_typed_abort(self):
        hdfs = HDFS()
        hdfs.write("in", ["a", "b", "a"])
        plan = FaultPlan(seed=1, task_failure_rate=0.97, max_attempts=1)
        runner = make_runner(
            hdfs, fault_plan=plan, recovery=RecoveryPolicy(max_resubmissions=2)
        )
        with pytest.raises(WorkflowAbortedError) as exc_info:
            runner.run_workflow(two_stage_workflow())
        error = exc_info.value
        assert error.resubmissions == 2
        assert error.failed_job in ("stage1", "stage2")
        assert isinstance(error.cause, TaskFailedError)
        assert error.partial_stats is not None
        assert isinstance(error.committed_jobs, tuple)
        assert "still failing after 2 resubmission" in str(error)

    def test_task_failed_error_carries_partial_stats_without_recovery(self):
        """Satellite: an unrecovered workflow abort keeps its accounting."""
        hdfs = HDFS()
        hdfs.write("in", ["a", "b", "a"])
        plan = FaultPlan(seed=11, task_failure_rate=0.97, max_attempts=1)
        runner = make_runner(hdfs, fault_plan=plan)
        with pytest.raises(TaskFailedError) as exc_info:
            runner.run_workflow(two_stage_workflow())
        error = exc_info.value
        assert error.partial_stats is not None
        assert error.wasted_seconds > 0
        assert error.wasted_bytes >= 0
        assert error.job_counters is not None

    def test_events_emitted(self):
        with obs.tracing() as recorder:
            run_recovered(seed=5, rate=0.5)
        names = PyCounter(event.name for event in recorder.events)
        assert names["checkpoint-commit"] > 0
        assert names["workflow-resume"] > 0

    def test_abort_event_emitted(self):
        hdfs = HDFS()
        hdfs.write("in", ["a"])
        plan = FaultPlan(seed=1, task_failure_rate=0.97, max_attempts=1)
        runner = make_runner(
            hdfs, fault_plan=plan, recovery=RecoveryPolicy(max_resubmissions=1)
        )
        with obs.tracing() as recorder:
            with pytest.raises(WorkflowAbortedError):
                runner.run_workflow([wordcount_job()])
        assert any(event.name == "workflow-abort" for event in recorder.events)


class TestRecoveryCostProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_zero_rate_means_zero_recovery_cost(self, seed):
        """Resume cost is identically zero without faults: recovery adds
        nothing to a clean run (cost stays bit-identical)."""
        clean_hdfs = HDFS()
        clean_hdfs.write("in", ["a", "b", "a"])
        clean = make_runner(clean_hdfs).run_workflow(two_stage_workflow())
        hdfs, stats = run_recovered(seed=seed, rate=0.0)
        assert stats.recovery.resubmissions == 0
        assert stats.recovery.extra_seconds == 0.0
        assert stats.total_cost == clean.total_cost

    @staticmethod
    def _single_job_recovery(seed, rate):
        hdfs = HDFS()
        hdfs.write("in", ["a", "b", "a"])
        plan = FaultPlan(seed=seed, task_failure_rate=rate, max_attempts=1)
        runner = make_runner(
            hdfs, fault_plan=plan, recovery=RecoveryPolicy(max_resubmissions=64)
        )
        stats = runner.run_workflow([wordcount_job()])
        return runner.finalize(stats).recovery

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        low=st.floats(min_value=0.0, max_value=0.5),
        high=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_resume_cost_monotone_in_rate(self, seed, low, high):
        """For a single-job workflow with one seed, the fault sets are
        monotone in rate, so every submission that fails at the low rate
        also fails at the high rate: the resubmission count and hence
        the resume surcharge can only grow.  (Multi-job workflows are
        deliberately out of scope: *which* job aborts changes the
        ledger size at resubmission time, so the per-failure overhead
        is not comparable across rates.)"""
        if low > high:
            low, high = high, low
        cheap = self._single_job_recovery(seed, low)
        costly = self._single_job_recovery(seed, high)
        assert cheap.resubmissions <= costly.resubmissions
        assert cheap.extra_seconds <= costly.extra_seconds
        assert costly.extra_seconds >= 0.0


class TestRecoveryStats:
    def test_as_dict_roundtrip_keys(self):
        stats = RecoveryStats(resubmissions=2, jobs_skipped=3, salvaged_bytes=10)
        data = stats.as_dict()
        assert data["resubmissions"] == 2
        assert data["jobs_skipped"] == 3
        assert data["salvaged_bytes"] == 10
        assert set(data) >= {
            "salvaged_seconds", "wasted_seconds", "overhead_seconds",
        }

    def test_salvage_ratio_none_when_nothing_at_risk(self):
        assert RecoveryStats().salvage_ratio is None
