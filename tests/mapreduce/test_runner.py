"""Unit and property tests for the MapReduce runner."""

from collections import Counter, defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MapReduceError
from repro.mapreduce.cost import ClusterConfig
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runner import MapReduceRunner


def make_runner(hdfs=None, **cluster_kwargs):
    return MapReduceRunner(hdfs or HDFS(), ClusterConfig(**cluster_kwargs))


def wordcount_job(combiner=False):
    return MapReduceJob(
        name="wc",
        inputs=("in",),
        output="out",
        mapper=lambda record: [(record, 1)],
        reducer=lambda key, values: [(key, sum(values))],
        combiner=(lambda key, values: [(key, sum(values))]) if combiner else None,
    )


class TestBasicExecution:
    def test_wordcount(self):
        hdfs = HDFS()
        hdfs.write("in", ["a", "b", "a", "c", "a"])
        stats = make_runner(hdfs).run_job(wordcount_job())
        assert dict(hdfs.read("out").records) == {"a": 3, "b": 1, "c": 1}
        assert not stats.map_only
        assert stats.input_records == 5

    def test_map_only(self):
        hdfs = HDFS()
        hdfs.write("in", [1, 2, 3])
        job = MapReduceJob(
            name="mo", inputs=("in",), output="out", mapper=lambda r: [r * 10]
        )
        stats = make_runner(hdfs).run_job(job)
        assert stats.map_only
        assert stats.shuffle_bytes == 0
        assert hdfs.read("out").records == [10, 20, 30]

    def test_full_job_requires_kv_pairs(self):
        hdfs = HDFS()
        hdfs.write("in", [1])
        job = MapReduceJob(
            name="bad",
            inputs=("in",),
            output="out",
            mapper=lambda r: [r],  # not a pair
            reducer=lambda k, v: [],
        )
        with pytest.raises(MapReduceError):
            make_runner(hdfs).run_job(job)

    def test_tagged_inputs(self):
        hdfs = HDFS()
        hdfs.write("left", [1])
        hdfs.write("right", [2])
        seen = []
        job = MapReduceJob(
            name="tagged",
            inputs=("left", "right"),
            output="out",
            mapper=lambda pair: seen.append(pair) or [],
            tag_inputs=True,
        )
        make_runner(hdfs).run_job(job)
        assert ("left", 1) in seen and ("right", 2) in seen

    def test_empty_inputs_still_run_one_map_task(self):
        """Regression: a job over only empty intermediates charged zero
        map tasks (and hence a zero-wave map phase)."""
        hdfs = HDFS()
        hdfs.write("empty", [])
        job = MapReduceJob(
            name="noop", inputs=("empty",), output="out", mapper=lambda r: [r]
        )
        stats = make_runner(hdfs).run_job(job)
        assert stats.map_tasks == 1
        assert stats.cost_seconds > 0
        assert hdfs.read("out").records == []

    def test_many_zero_byte_files_share_one_map_task(self):
        """Regression: each zero-byte file charged a whole split, so N
        empty intermediates cost N mappers instead of one."""
        hdfs = HDFS()
        for index in range(20):
            hdfs.write(f"empty/{index}", [])
        job = MapReduceJob(
            name="merge",
            inputs=tuple(f"empty/{index}" for index in range(20)),
            output="out",
            mapper=lambda r: [r],
        )
        stats = make_runner(hdfs).run_job(job)
        assert stats.map_tasks == 1

    def test_map_only_rejects_pair_shaped_output(self):
        """A map-only job whose mapper emits only (key, value) pairs is
        almost always missing its reducer; the error names the producer."""
        hdfs = HDFS()
        hdfs.write("in", ["a", "b"])
        job = MapReduceJob(
            name="halfjoin",
            inputs=("in",),
            output="out",
            mapper=lambda r: [(r, 1)],
        )
        with pytest.raises(MapReduceError) as exc_info:
            make_runner(hdfs).run_job(job)
        message = str(exc_info.value)
        assert "halfjoin" in message
        assert "forget the reducer" in message

    def test_map_only_pair_output_allowed_when_declared(self):
        hdfs = HDFS()
        hdfs.write("in", ["a", "b"])
        job = MapReduceJob(
            name="pairs-ok",
            inputs=("in",),
            output="out",
            mapper=lambda r: [(r, 1)],
            emits_pairs=True,
        )
        make_runner(hdfs).run_job(job)
        assert hdfs.read("out").records == [("a", 1), ("b", 1)]

    def test_map_only_mixed_output_not_flagged(self):
        """Only an all-pairs output is suspicious; mixed shapes pass."""
        hdfs = HDFS()
        hdfs.write("in", ["a"])
        job = MapReduceJob(
            name="mixed",
            inputs=("in",),
            output="out",
            mapper=lambda r: [(r, 1), r],
        )
        make_runner(hdfs).run_job(job)
        assert hdfs.read("out").records == [("a", 1), "a"]

    def test_side_inputs_with_factory(self):
        hdfs = HDFS()
        hdfs.write("in", [1, 2])
        hdfs.write("lookup", [(1, "one"), (2, "two")])

        def factory(side):
            table = dict(side["lookup"])
            return lambda record: [table[record]]

        job = MapReduceJob(
            name="join",
            inputs=("in",),
            output="out",
            mapper_factory=factory,
            side_inputs=("lookup",),
        )
        stats = make_runner(hdfs).run_job(job)
        assert hdfs.read("out").records == ["one", "two"]
        assert stats.side_input_bytes > 0


class TestJobValidation:
    def test_needs_exactly_one_mapper_kind(self):
        with pytest.raises(MapReduceError):
            MapReduceJob(name="x", inputs=("a",), output="o")
        with pytest.raises(MapReduceError):
            MapReduceJob(
                name="x",
                inputs=("a",),
                output="o",
                mapper=lambda r: [],
                mapper_factory=lambda side: (lambda r: []),
            )

    def test_side_inputs_need_factory(self):
        with pytest.raises(MapReduceError):
            MapReduceJob(
                name="x", inputs=("a",), output="o", mapper=lambda r: [], side_inputs=("s",)
            )

    def test_map_only_cannot_combine(self):
        with pytest.raises(MapReduceError):
            MapReduceJob(
                name="x",
                inputs=("a",),
                output="o",
                mapper=lambda r: [],
                combiner=lambda k, v: [],
            )

    def test_needs_input(self):
        with pytest.raises(MapReduceError):
            MapReduceJob(name="x", inputs=(), output="o", mapper=lambda r: [])


class TestCombiner:
    def test_combiner_reduces_shuffle(self):
        records = ["a"] * 100 + ["b"] * 50
        hdfs1, hdfs2 = HDFS(), HDFS()
        hdfs1.write("in", records)
        hdfs2.write("in", records)
        plain = make_runner(hdfs1, block_size=64).run_job(wordcount_job(combiner=False))
        combined = make_runner(hdfs2, block_size=64).run_job(wordcount_job(combiner=True))
        assert combined.shuffle_bytes < plain.shuffle_bytes
        assert hdfs1.read("out").records == hdfs2.read("out").records


class TestWorkflow:
    def test_chained_jobs(self):
        hdfs = HDFS()
        hdfs.write("in", list(range(10)))
        job1 = MapReduceJob(
            name="evens", inputs=("in",), output="mid", mapper=lambda r: [r] if r % 2 == 0 else []
        )
        job2 = MapReduceJob(
            name="sum",
            inputs=("mid",),
            output="out",
            mapper=lambda r: [("all", r)],
            reducer=lambda k, v: [sum(v)],
        )
        stats = make_runner(hdfs).run_workflow([job1, job2])
        assert hdfs.read("out").records == [20]
        assert stats.cycles == 2
        assert stats.map_only_cycles == 1
        assert stats.full_cycles == 1
        assert stats.total_cost > 0
        assert "TOTAL" in stats.describe()

    def test_counters_accumulate(self):
        hdfs = HDFS()
        hdfs.write("in", ["a", "b"])
        stats = make_runner(hdfs).run_workflow([wordcount_job()])
        assert stats.counters["mr_cycles"] == 1
        assert stats.counters["map_input_records"] == 2


# -- property tests ------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    records=st.lists(st.tuples(st.sampled_from("abcdef"), st.integers(-100, 100)), max_size=80),
    block_size=st.integers(16, 4096),
    use_combiner=st.booleans(),
)
def test_mapreduce_groupby_equals_in_memory(records, block_size, use_combiner):
    """map+shuffle+reduce ≡ in-memory groupby-sum, combiner or not."""
    hdfs = HDFS()
    hdfs.write("in", records)
    job = MapReduceJob(
        name="sum",
        inputs=("in",),
        output="out",
        mapper=lambda pair: [pair],
        reducer=lambda key, values: [(key, sum(values))],
        combiner=(lambda key, values: [(key, sum(values))]) if use_combiner else None,
    )
    make_runner(hdfs, block_size=block_size).run_job(job)
    expected = defaultdict(int)
    for key, value in records:
        expected[key] += value
    assert dict(hdfs.read("out").records) == dict(expected)


@settings(max_examples=60, deadline=None)
@given(records=st.lists(st.integers(-50, 50), max_size=60), block_size=st.integers(8, 512))
def test_map_only_preserves_multiset(records, block_size):
    hdfs = HDFS()
    hdfs.write("in", records)
    job = MapReduceJob(name="id", inputs=("in",), output="out", mapper=lambda r: [r])
    make_runner(hdfs, block_size=block_size).run_job(job)
    assert Counter(hdfs.read("out").records) == Counter(records)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from("abc"), min_size=1, max_size=60))
def test_stats_invariants(records):
    hdfs = HDFS()
    hdfs.write("in", records)
    stats = make_runner(hdfs, block_size=32).run_job(wordcount_job(combiner=True))
    assert stats.map_tasks >= 1
    assert stats.reduce_tasks >= 1
    assert stats.cost_seconds > 0
    assert stats.input_records == len(records)
    assert stats.output_records == len(set(records))
