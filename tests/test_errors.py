"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DatasetError,
    HDFSError,
    HDFSOutOfSpaceError,
    MapReduceError,
    NTriplesParseError,
    OverlapError,
    PlanningError,
    RDFError,
    ReproError,
    SparqlError,
    SparqlEvaluationError,
    SparqlSyntaxError,
    UnsupportedQueryError,
)


@pytest.mark.parametrize(
    "exc_class",
    [
        RDFError,
        NTriplesParseError,
        SparqlError,
        SparqlSyntaxError,
        SparqlEvaluationError,
        UnsupportedQueryError,
        PlanningError,
        OverlapError,
        MapReduceError,
        HDFSError,
        DatasetError,
    ],
)
def test_all_derive_from_repro_error(exc_class):
    assert issubclass(exc_class, ReproError)


def test_specific_hierarchies():
    assert issubclass(NTriplesParseError, RDFError)
    assert issubclass(SparqlSyntaxError, SparqlError)
    assert issubclass(UnsupportedQueryError, SparqlError)
    assert issubclass(OverlapError, PlanningError)
    assert issubclass(HDFSOutOfSpaceError, HDFSError)
    assert issubclass(HDFSError, MapReduceError)


def test_ntriples_error_line_number():
    error = NTriplesParseError("bad triple", line_number=12)
    assert error.line_number == 12
    assert "line 12" in str(error)
    bare = NTriplesParseError("bad triple")
    assert bare.line_number is None


def test_sparql_syntax_error_position():
    error = SparqlSyntaxError("unexpected token", position=42)
    assert error.position == 42
    assert "offset 42" in str(error)


def test_out_of_space_error_payload():
    error = HDFSOutOfSpaceError(requested=100, available=10, capacity=50)
    assert error.requested == 100
    assert error.available == 10
    assert error.capacity == 50
    assert "100 bytes" in str(error)


def test_single_catch_at_api_boundary():
    """Catching ReproError covers every library-raised failure."""
    from repro.core.engines import make_engine

    with pytest.raises(ReproError):
        make_engine("no-such-engine")
