"""Unit tests for the SPARQL parser."""

import pytest

from repro.errors import SparqlSyntaxError, UnsupportedQueryError
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import RDF_TYPE, TriplePattern
from repro.sparql.ast import (
    AggregateExpr,
    FilterPattern,
    OptionalPattern,
    SubSelect,
    TriplesBlock,
    UnionPattern,
)
from repro.sparql.expressions import BinaryExpr, FunctionExpr, VarExpr
from repro.sparql.parser import parse_query


def patterns_of(query):
    return query.where.triple_patterns()


class TestBasicSelect:
    def test_simple_bgp(self):
        query = parse_query("SELECT ?s { ?s <urn:p> ?o }")
        assert query.projected_variables() == (Variable("s"),)
        assert patterns_of(query) == (
            TriplePattern(Variable("s"), IRI("urn:p"), Variable("o")),
        )

    def test_select_star(self):
        query = parse_query("SELECT * { ?s <urn:p> ?o }")
        assert query.select_star

    def test_where_keyword_optional(self):
        query = parse_query("SELECT ?s WHERE { ?s <urn:p> ?o }")
        assert len(patterns_of(query)) == 1

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT ?s { ?s <urn:p> ?o }").distinct

    def test_prefix_expansion(self):
        query = parse_query("PREFIX ex: <http://e/> SELECT ?s { ?s ex:p ex:o }")
        pattern = patterns_of(query)[0]
        assert pattern.property == IRI("http://e/p")
        assert pattern.object == IRI("http://e/o")

    def test_undeclared_prefix(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?s { ?s zz:p ?o }")

    def test_external_prefixes(self):
        query = parse_query("SELECT ?s { ?s ex:p ?o }", prefixes={"ex": "http://e/"})
        assert patterns_of(query)[0].property == IRI("http://e/p")

    def test_a_expands_to_rdf_type(self):
        query = parse_query("SELECT ?s { ?s a <urn:C> }")
        assert patterns_of(query)[0].property == RDF_TYPE


class TestTriplesAbbreviations:
    def test_predicate_object_list(self):
        query = parse_query("SELECT ?s { ?s <urn:p1> ?a ; <urn:p2> ?b . }")
        assert len(patterns_of(query)) == 2
        assert all(p.subject == Variable("s") for p in patterns_of(query))

    def test_object_list(self):
        query = parse_query("SELECT ?s { ?s <urn:p> ?a , ?b }")
        assert len(patterns_of(query)) == 2

    def test_multiple_subjects(self):
        query = parse_query("SELECT ?s { ?s <urn:p> ?o . ?o <urn:q> ?z }")
        assert len(patterns_of(query)) == 2

    def test_literal_objects(self):
        query = parse_query('SELECT ?s { ?s <urn:p> "News" ; <urn:q> 5 ; <urn:r> 2.5 ; <urn:b> true }')
        objects = [p.object for p in patterns_of(query)]
        assert objects[0] == Literal("News")
        assert objects[1].python_value() == 5
        assert objects[2].python_value() == 2.5
        assert objects[3].python_value() is True

    def test_language_and_datatype_literals(self):
        query = parse_query('SELECT ?s { ?s <urn:p> "x"@en ; <urn:q> "5"^^<urn:int> }')
        objects = [p.object for p in patterns_of(query)]
        assert objects[0] == Literal("x", language="en")
        assert objects[1] == Literal("5", datatype="urn:int")

    def test_negative_number(self):
        query = parse_query("SELECT ?s { ?s <urn:p> -3 }")
        assert patterns_of(query)[0].object.python_value() == -3


class TestProjection:
    def test_aliased_aggregate(self):
        query = parse_query("SELECT (COUNT(?x) AS ?c) { ?s <urn:p> ?x }")
        item = query.projection[0]
        assert item.alias == Variable("c")
        assert isinstance(item.expression, AggregateExpr)
        assert item.expression.func == "COUNT"

    def test_alias_without_as_keyword(self):
        """The paper's appendix writes (COUNT(?pr2) ?cntF)."""
        query = parse_query("SELECT (COUNT(?x) ?c) { ?s <urn:p> ?x }")
        assert query.projection[0].alias == Variable("c")

    def test_count_star(self):
        query = parse_query("SELECT (COUNT(*) AS ?c) { ?s <urn:p> ?x }")
        assert query.projection[0].expression.arg is None

    def test_count_distinct(self):
        query = parse_query("SELECT (COUNT(DISTINCT ?x) AS ?c) { ?s <urn:p> ?x }")
        assert query.projection[0].expression.distinct

    def test_arithmetic_expression(self):
        query = parse_query("SELECT (?a / ?b AS ?r) ?a ?b { ?s <urn:p> ?a ; <urn:q> ?b }")
        assert isinstance(query.projection[0].expression, BinaryExpr)

    def test_sum_star_rejected(self):
        with pytest.raises((SparqlSyntaxError, ValueError)):
            parse_query("SELECT (SUM(*) AS ?c) { ?s <urn:p> ?x }")

    def test_empty_projection_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT { ?s <urn:p> ?o }")


class TestPatterns:
    def test_filter_comparison(self):
        query = parse_query("SELECT ?s { ?s <urn:p> ?x . FILTER(?x > 5) }")
        filters = [e for e in query.where.elements if isinstance(e, FilterPattern)]
        assert len(filters) == 1

    def test_filter_regex_without_parens(self):
        query = parse_query('SELECT ?s { ?s <urn:p> ?x . FILTER REGEX(?x, "abc", "i") }')
        filters = [e for e in query.where.elements if isinstance(e, FilterPattern)]
        assert isinstance(filters[0].expression, FunctionExpr)

    def test_optional(self):
        query = parse_query("SELECT ?s { ?s <urn:p> ?x OPTIONAL { ?s <urn:q> ?y } }")
        assert any(isinstance(e, OptionalPattern) for e in query.where.elements)

    def test_union(self):
        query = parse_query(
            "SELECT ?s { { ?s <urn:p> ?x } UNION { ?s <urn:q> ?x } }"
        )
        assert any(isinstance(e, UnionPattern) for e in query.where.elements)

    def test_subselect(self):
        query = parse_query(
            "SELECT ?c { { SELECT (COUNT(?x) AS ?c) { ?s <urn:p> ?x } } }"
        )
        subs = query.subselects()
        assert len(subs) == 1
        assert subs[0].has_aggregates()

    def test_nested_group(self):
        query = parse_query("SELECT ?s { { ?s <urn:p> ?x . } }")
        assert len(query.where.triple_patterns()) == 1


class TestSolutionModifiers:
    def test_group_by(self):
        query = parse_query("SELECT ?g (COUNT(?x) AS ?c) { ?s <urn:p> ?x ; <urn:g> ?g } GROUP BY ?g")
        assert query.group_by == (Variable("g"),)

    def test_group_by_multiple(self):
        query = parse_query(
            "SELECT ?g ?h (COUNT(?x) AS ?c) { ?s <urn:p> ?x ; <urn:g> ?g ; <urn:h> ?h } GROUP BY ?g ?h"
        )
        assert query.group_by == (Variable("g"), Variable("h"))

    def test_group_by_requires_variable(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT (COUNT(?x) AS ?c) { ?s <urn:p> ?x } GROUP BY")

    def test_having(self):
        query = parse_query(
            "SELECT ?g (COUNT(?x) AS ?c) { ?s <urn:p> ?x ; <urn:g> ?g } GROUP BY ?g HAVING (?c > 2)"
        )
        assert query.having is not None

    def test_order_limit_offset(self):
        query = parse_query(
            "SELECT ?s { ?s <urn:p> ?x } ORDER BY DESC(?x) LIMIT 10 OFFSET 5"
        )
        assert query.order_by[0].descending
        assert query.limit == 10
        assert query.offset == 5

    def test_limit_rejects_float(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?s { ?s <urn:p> ?x } LIMIT 1.5")


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?s { ?s <urn:p> ?o } } ")

    def test_unclosed_group(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?s { ?s <urn:p> ?o ")

    def test_nested_aggregate_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_query("SELECT (SUM(COUNT(?x)) AS ?c) { ?s <urn:p> ?x }")


def test_full_analytical_query_shape(mg1_style_query):
    query = parse_query(mg1_style_query)
    subqueries = query.subselects()
    assert len(subqueries) == 2
    assert subqueries[0].group_by == (Variable("f"),)
    assert subqueries[1].group_by is None
    assert subqueries[1].has_aggregates()
