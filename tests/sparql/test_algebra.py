"""Unit tests for AST → algebra translation."""

import pytest

from repro.errors import UnsupportedQueryError
from repro.rdf.terms import Variable
from repro.sparql.algebra import (
    Aggregate,
    AlgebraUnion,
    BGP,
    Distinct,
    Extend,
    Filter,
    Join,
    LeftJoin,
    OrderBy,
    Project,
    Slice,
    translate_query,
)
from repro.sparql.parser import parse_query


def translate(text):
    return translate_query(parse_query(text))


def test_bgp_merging_across_statements():
    node = translate("SELECT ?s { ?s <urn:p> ?o . ?o <urn:q> ?z }")
    assert isinstance(node, Project)
    assert isinstance(node.input, BGP)
    assert len(node.input.patterns) == 2


def test_filter_applies_after_group_members():
    node = translate("SELECT ?s { FILTER(?x > 1) ?s <urn:p> ?x . }")
    assert isinstance(node.input, Filter)
    assert isinstance(node.input.input, BGP)


def test_optional_becomes_left_join():
    node = translate("SELECT ?s { ?s <urn:p> ?x OPTIONAL { ?s <urn:q> ?y } }")
    assert isinstance(node.input, LeftJoin)


def test_union_node():
    node = translate("SELECT ?s { { ?s <urn:p> ?x } UNION { ?s <urn:q> ?x } }")
    assert isinstance(node.input, AlgebraUnion)


def test_subselect_joins_with_outer():
    node = translate(
        "SELECT ?s ?c { ?s <urn:p> ?x { SELECT (COUNT(?y) AS ?c) { ?z <urn:q> ?y } } }"
    )
    assert isinstance(node.input, Join)


def test_grouped_query_builds_aggregate():
    node = translate(
        "SELECT ?g (COUNT(?x) AS ?c) { ?s <urn:p> ?x ; <urn:g> ?g } GROUP BY ?g"
    )
    assert isinstance(node, Project)
    assert isinstance(node.input, Aggregate)
    assert node.input.group_vars == (Variable("g"),)


def test_implicit_group_by_all():
    node = translate("SELECT (COUNT(?x) AS ?c) { ?s <urn:p> ?x }")
    assert isinstance(node.input, Aggregate)
    assert node.input.group_vars is None


def test_expression_projection_becomes_extend():
    node = translate("SELECT (?x + 1 AS ?y) ?x { ?s <urn:p> ?x }")
    assert isinstance(node, Project)
    assert isinstance(node.input, Extend)


def test_distinct_order_slice_wrapping():
    node = translate(
        "SELECT DISTINCT ?x { ?s <urn:p> ?x } ORDER BY ?x LIMIT 5 OFFSET 2"
    )
    assert isinstance(node, Slice)
    assert node.offset == 2 and node.limit == 5
    assert isinstance(node.input, OrderBy)
    assert isinstance(node.input.input, Distinct)


def test_select_star_with_grouping_rejected():
    with pytest.raises(UnsupportedQueryError):
        translate("SELECT * { ?s <urn:p> ?x } GROUP BY ?x")


def test_ungrouped_aggregate_mix_rejected():
    with pytest.raises(UnsupportedQueryError):
        translate("SELECT ?other (COUNT(?x) AS ?c) { ?s <urn:p> ?x ; <urn:q> ?other } GROUP BY ?g")


def test_having_becomes_filter():
    node = translate(
        "SELECT ?g (COUNT(?x) AS ?c) { ?s <urn:p> ?x ; <urn:g> ?g } GROUP BY ?g HAVING (?c > 1)"
    )
    assert isinstance(node, Filter)
