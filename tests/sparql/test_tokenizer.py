"""Unit tests for the SPARQL tokenizer."""

import pytest

from repro.errors import SparqlSyntaxError
from repro.sparql.tokenizer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


def test_keywords_case_insensitive():
    assert [t.text for t in tokenize("select Where GROUP by")][:-1] == [
        "SELECT",
        "WHERE",
        "GROUP",
        "BY",
    ]


def test_variables():
    assert kinds("?x $y") == ["VAR", "VAR"]


def test_iri_and_pname():
    assert kinds("<urn:x> ex:price") == ["IRIREF", "PNAME"]


def test_pname_ns():
    assert kinds("PREFIX ex: <urn:x>") == ["KEYWORD", "PNAME_NS", "IRIREF"]


def test_string_with_escapes():
    tokens = tokenize(r'"a\"b"')
    assert tokens[0].kind == "STRING"


def test_language_tag_and_datatype():
    assert kinds('"x"@en "5"^^<urn:int>') == ["STRING", "LANGTAG", "STRING", "DTYPE", "IRIREF"]


def test_numbers():
    assert kinds("5 3.25 1e6") == ["NUMBER", "NUMBER", "NUMBER"]


def test_operators():
    assert texts("<= >= != || && ! < >") == ["<=", ">=", "!=", "||", "&&", "!", "<", ">"]


def test_punctuation():
    assert texts("{ } ( ) . ; , * / + - =") == list("{}().;,*/+-=")


def test_comments_skipped():
    assert kinds("?x # trailing comment\n?y") == ["VAR", "VAR"]


def test_eof_token_present():
    tokens = tokenize("?x")
    assert tokens[-1].kind == "EOF"


def test_unknown_character_rejected():
    with pytest.raises(SparqlSyntaxError):
        tokenize("?x @@ ?y")


def test_bare_unknown_name_rejected():
    with pytest.raises(SparqlSyntaxError):
        tokenize("SELECT frobnicate")


def test_positions_recorded():
    tokens = tokenize("SELECT ?x")
    assert tokens[0].position == 0
    assert tokens[1].position == 7
