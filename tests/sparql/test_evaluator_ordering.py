"""ORDER BY edge cases in the reference evaluator."""

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import Triple
from repro.sparql.evaluator import evaluate_query


def iri(name):
    return IRI("urn:" + name)


@pytest.fixture
def mixed_graph():
    g = Graph()
    g.add_all(
        [
            Triple(iri("a"), iri("p"), Literal.from_python(10)),
            Triple(iri("b"), iri("p"), Literal("text")),
            Triple(iri("c"), iri("p"), iri("other")),
            Triple(iri("d"), iri("p"), Literal.from_python(2)),
        ]
    )
    return g


def values(rows, name):
    return [row.get(Variable(name)) for row in rows]


def test_mixed_types_order_by_type_rank(mixed_graph):
    rows = evaluate_query("SELECT ?s ?o { ?s <urn:p> ?o } ORDER BY ?o", mixed_graph)
    objects = values(rows, "o")
    # Numbers before strings before IRIs (deterministic type ranking).
    assert objects[0] == Literal.from_python(2)
    assert objects[1] == Literal.from_python(10)
    assert objects[2] == Literal("text")
    assert objects[3] == iri("other")


def test_descending_strings():
    g = Graph(
        [
            Triple(iri("a"), iri("p"), Literal("alpha")),
            Triple(iri("b"), iri("p"), Literal("beta")),
            Triple(iri("c"), iri("p"), Literal("gamma")),
        ]
    )
    rows = evaluate_query("SELECT ?o { ?s <urn:p> ?o } ORDER BY DESC(?o)", g)
    assert [r[Variable("o")].lexical for r in rows] == ["gamma", "beta", "alpha"]


def test_multi_key_ordering():
    g = Graph(
        [
            Triple(iri("a"), iri("g"), Literal("x")),
            Triple(iri("a"), iri("v"), Literal.from_python(2)),
            Triple(iri("b"), iri("g"), Literal("x")),
            Triple(iri("b"), iri("v"), Literal.from_python(1)),
            Triple(iri("c"), iri("g"), Literal("w")),
            Triple(iri("c"), iri("v"), Literal.from_python(9)),
        ]
    )
    rows = evaluate_query(
        "SELECT ?g ?v { ?s <urn:g> ?g ; <urn:v> ?v } ORDER BY ?g DESC(?v)", g
    )
    pairs = [(r[Variable("g")].lexical, r[Variable("v")].python_value()) for r in rows]
    assert pairs == [("w", 9), ("x", 2), ("x", 1)]


def test_unbound_sorts_first():
    g = Graph(
        [
            Triple(iri("a"), iri("p"), Literal("x")),
            Triple(iri("a"), iri("q"), Literal("extra")),
            Triple(iri("b"), iri("p"), Literal("y")),
        ]
    )
    rows = evaluate_query(
        "SELECT ?s ?e { ?s <urn:p> ?o OPTIONAL { ?s <urn:q> ?e } } ORDER BY ?e", g
    )
    assert Variable("e") not in rows[0]
