"""Unit tests for SPARQL expression evaluation."""

import pytest

from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql.expressions import (
    BinaryExpr,
    ConstExpr,
    ExpressionError,
    FunctionExpr,
    UnaryExpr,
    VarExpr,
    effective_boolean_value,
    evaluate,
    evaluate_filter,
    expression_variables,
)


def const(value):
    return ConstExpr(Literal.from_python(value))


def var(name):
    return VarExpr(Variable(name))


X = Variable("x")
Y = Variable("y")


class TestEvaluate:
    def test_constant(self):
        assert evaluate(const(5), {}) == 5

    def test_variable_lookup(self):
        assert evaluate(var("x"), {X: Literal.from_python(7)}) == 7

    def test_unbound_variable_errors(self):
        with pytest.raises(ExpressionError):
            evaluate(var("x"), {})

    def test_iri_value(self):
        assert evaluate(var("x"), {X: IRI("urn:a")}) == IRI("urn:a")

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("+", 2, 3, 5),
            ("-", 2, 3, -1),
            ("*", 2, 3, 6),
            ("/", 6, 3, 2),
            ("=", 2, 2, True),
            ("!=", 2, 3, True),
            ("<", 2, 3, True),
            (">", 2, 3, False),
            ("<=", 3, 3, True),
            (">=", 2, 3, False),
        ],
    )
    def test_binary_ops(self, op, left, right, expected):
        assert evaluate(BinaryExpr(op, const(left), const(right)), {}) == expected

    def test_division_by_zero_errors(self):
        with pytest.raises(ExpressionError):
            evaluate(BinaryExpr("/", const(1), const(0)), {})

    def test_string_comparison(self):
        assert evaluate(BinaryExpr("<", const("abc"), const("abd")), {}) is True

    def test_mixed_type_ordering_errors(self):
        with pytest.raises(ExpressionError):
            evaluate(BinaryExpr("<", const("a"), const(1)), {})

    def test_unary_negation(self):
        assert evaluate(UnaryExpr("-", const(5)), {}) == -5

    def test_unary_not(self):
        assert evaluate(UnaryExpr("!", const(True)), {}) is False

    def test_logical_and_short_circuit(self):
        expr = BinaryExpr("&&", const(False), var("missing"))
        assert evaluate(expr, {}) is False

    def test_logical_or_recovers_from_error(self):
        expr = BinaryExpr("||", var("missing"), const(True))
        assert evaluate(expr, {}) is True

    def test_logical_or_error_when_other_false(self):
        expr = BinaryExpr("||", var("missing"), const(False))
        with pytest.raises(ExpressionError):
            evaluate(expr, {})

    def test_logical_and_error_when_other_true(self):
        expr = BinaryExpr("&&", var("missing"), const(True))
        with pytest.raises(ExpressionError):
            evaluate(expr, {})


class TestFunctions:
    def test_bound_true_false(self):
        assert evaluate(FunctionExpr("BOUND", (var("x"),)), {X: IRI("urn:a")}) is True
        assert evaluate(FunctionExpr("BOUND", (var("x"),)), {}) is False

    def test_str_of_iri(self):
        assert evaluate(FunctionExpr("STR", (var("x"),)), {X: IRI("urn:a")}) == "urn:a"

    def test_str_of_number(self):
        assert evaluate(FunctionExpr("STR", (const(5),)), {}) == "5"

    def test_regex_basic(self):
        expr = FunctionExpr("REGEX", (const("hepatomegaly"), const("hepato")))
        assert evaluate(expr, {}) is True

    def test_regex_case_insensitive_flag(self):
        expr = FunctionExpr("REGEX", (const("MAPK pathway"), const("mapk"), const("i")))
        assert evaluate(expr, {}) is True

    def test_regex_no_match(self):
        expr = FunctionExpr("REGEX", (const("abc"), const("zzz")))
        assert evaluate(expr, {}) is False

    def test_regex_non_string_errors(self):
        expr = FunctionExpr("REGEX", (const(5), const("a")))
        with pytest.raises(ExpressionError):
            evaluate(expr, {})

    def test_unknown_function(self):
        with pytest.raises(ExpressionError):
            evaluate(FunctionExpr("NOPE", ()), {})


class TestEffectiveBooleanValue:
    @pytest.mark.parametrize(
        "value,expected",
        [(True, True), (False, False), (1, True), (0, False), ("x", True), ("", False)],
    )
    def test_ebv(self, value, expected):
        assert effective_boolean_value(value) is expected

    def test_ebv_of_iri_errors(self):
        with pytest.raises(ExpressionError):
            effective_boolean_value(IRI("urn:a"))


class TestEvaluateFilter:
    def test_true(self):
        assert evaluate_filter(BinaryExpr(">", const(5), const(2)), {})

    def test_error_is_false(self):
        assert not evaluate_filter(var("missing"), {})


def test_expression_variables():
    expr = BinaryExpr("+", var("x"), FunctionExpr("STR", (var("y"),)))
    assert expression_variables(expr) == frozenset({X, Y})
