"""Unit and property tests for the solution-mapping combinators and BGP
matching in the reference evaluator."""

from itertools import product as iter_product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import Triple, TriplePattern
from repro.sparql.evaluator import (
    compatible,
    evaluate_bgp,
    hash_join,
    left_join,
    merge_rows,
    rows_to_multiset,
)

A, B, C = Variable("a"), Variable("b"), Variable("c")


def lit(value):
    return Literal.from_python(value)


class TestCompatible:
    def test_disjoint_rows_compatible(self):
        assert compatible({A: lit(1)}, {B: lit(2)})

    def test_agreeing_shared_variable(self):
        assert compatible({A: lit(1), B: lit(2)}, {A: lit(1)})

    def test_conflicting_shared_variable(self):
        assert not compatible({A: lit(1)}, {A: lit(2)})


class TestHashJoin:
    def test_cartesian_when_no_shared_vars(self):
        left = [{A: lit(1)}, {A: lit(2)}]
        right = [{B: lit(9)}]
        assert len(hash_join(left, right)) == 2

    def test_joins_on_shared_key(self):
        left = [{A: lit(1), B: lit(10)}, {A: lit(2), B: lit(20)}]
        right = [{A: lit(1), C: lit(100)}, {A: lit(3), C: lit(300)}]
        joined = hash_join(left, right)
        assert joined == [{A: lit(1), B: lit(10), C: lit(100)}]

    def test_multiset_semantics(self):
        left = [{A: lit(1)}, {A: lit(1)}]
        right = [{A: lit(1), B: lit(9)}]
        assert len(hash_join(left, right)) == 2

    def test_empty_inputs(self):
        assert hash_join([], [{A: lit(1)}]) == []
        assert hash_join([{A: lit(1)}], []) == []

    def test_partial_binding_falls_back_to_nested_loop(self):
        # One right row lacks the shared variable (OPTIONAL output).
        left = [{A: lit(1)}]
        right = [{A: lit(1), B: lit(9)}, {B: lit(8)}]
        joined = hash_join(left, right)
        assert {frozenset(r.items()) for r in joined} == {
            frozenset({(A, lit(1)), (B, lit(9))}),
            frozenset({(A, lit(1)), (B, lit(8))}),
        }


class TestLeftJoin:
    def test_unmatched_left_rows_survive(self):
        left = [{A: lit(1)}, {A: lit(2)}]
        right = [{A: lit(1), B: lit(9)}]
        joined = left_join(left, right, None)
        assert {frozenset(r.items()) for r in joined} == {
            frozenset({(A, lit(1)), (B, lit(9))}),
            frozenset({(A, lit(2))}),
        }

    def test_condition_filters_matches(self):
        from repro.sparql.expressions import BinaryExpr, ConstExpr, VarExpr

        condition = BinaryExpr(">", VarExpr(B), ConstExpr(lit(100)))
        left = [{A: lit(1)}]
        right = [{A: lit(1), B: lit(9)}]
        joined = left_join(left, right, condition)
        assert joined == [{A: lit(1)}]  # match rejected, left row kept bare


def _brute_force_bgp(patterns, graph):
    """All assignments over observed terms, checked pattern by pattern."""
    variables = sorted(
        {v for p in patterns for v in p.variables()}, key=lambda v: v.name
    )
    terms = set()
    for triple in graph:
        terms.update([triple.subject, triple.property, triple.object])
    solutions = []
    for assignment in iter_product(sorted(terms, key=str), repeat=len(variables)):
        binding = dict(zip(variables, assignment))

        def resolve(component):
            return binding.get(component, component)

        if all(
            Triple(resolve(p.subject), resolve(p.property), resolve(p.object)) in graph
            for p in patterns
        ):
            solutions.append(binding)
    return solutions


_small_triples = st.lists(
    st.tuples(
        st.sampled_from(["urn:s1", "urn:s2", "urn:s3"]),
        st.sampled_from(["urn:p1", "urn:p2"]),
        st.sampled_from(["urn:s1", "urn:o1", "urn:o2"]),
    ),
    min_size=0,
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(triples=_small_triples, pattern_shape=st.integers(0, 3))
def test_bgp_matches_brute_force(triples, pattern_shape):
    graph = Graph(Triple(IRI(s), IRI(p), IRI(o)) for s, p, o in triples)
    shapes = [
        [TriplePattern(A, IRI("urn:p1"), B)],
        [TriplePattern(A, IRI("urn:p1"), B), TriplePattern(B, IRI("urn:p2"), C)],
        [TriplePattern(A, IRI("urn:p1"), B), TriplePattern(A, IRI("urn:p2"), C)],
        [TriplePattern(A, IRI("urn:p1"), A)],
    ]
    patterns = shapes[pattern_shape]
    expected = rows_to_multiset(_brute_force_bgp(patterns, graph))
    actual = rows_to_multiset(evaluate_bgp(patterns, graph))
    assert actual == expected


def test_merge_rows_right_precedence_is_irrelevant_for_compatible():
    left, right = {A: lit(1)}, {B: lit(2)}
    merged = merge_rows(left, right)
    assert merged == {A: lit(1), B: lit(2)}
    assert left == {A: lit(1)}  # inputs untouched
