"""Unit and property tests for aggregate accumulators.

The merge property (split-update-merge ≡ sequential update) is what
makes mapper-side partial aggregation — the paper's TG_AgJ local
combiner — correct, so it gets hypothesis coverage.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SparqlEvaluationError
from repro.sparql.aggregates import (
    AccumulatorTuple,
    UNBOUND,
    aggregate_values,
    make_accumulator,
)


class TestBasics:
    def test_count(self):
        assert aggregate_values("COUNT", ["a", "b", "a"]) == 3

    def test_sum(self):
        assert aggregate_values("SUM", [1, 2, 3.5]) == 6.5

    def test_avg(self):
        assert aggregate_values("AVG", [2, 4]) == 3

    def test_min_max(self):
        assert aggregate_values("MIN", [3, 1, 2]) == 1
        assert aggregate_values("MAX", [3, 1, 2]) == 3

    def test_unknown_function(self):
        with pytest.raises(SparqlEvaluationError):
            make_accumulator("MEDIAN")

    def test_sum_non_numeric_errors(self):
        with pytest.raises(SparqlEvaluationError):
            aggregate_values("SUM", ["a"])

    def test_min_incomparable_errors(self):
        with pytest.raises(SparqlEvaluationError):
            aggregate_values("MIN", [1, "a"])


class TestEmptyGroups:
    """SPARQL: Sum({})=0, Avg({})=0, Count({})=0, Min/Max({}) unbound."""

    def test_count_empty(self):
        assert aggregate_values("COUNT", []) == 0

    def test_sum_empty(self):
        assert aggregate_values("SUM", []) == 0

    def test_avg_empty(self):
        assert aggregate_values("AVG", []) == 0

    def test_min_empty_unbound(self):
        assert aggregate_values("MIN", []) is UNBOUND

    def test_max_empty_unbound(self):
        assert aggregate_values("MAX", []) is UNBOUND


class TestDistinct:
    def test_count_distinct(self):
        assert aggregate_values("COUNT", ["a", "b", "a"], distinct=True) == 2

    def test_sum_distinct(self):
        assert aggregate_values("SUM", [5, 5, 3], distinct=True) == 8

    def test_result_idempotent(self):
        accumulator = make_accumulator("COUNT", distinct=True)
        for value in ("a", "b", "a"):
            accumulator.update(value)
        assert accumulator.result() == 2
        assert accumulator.result() == 2

    def test_merge_distinct(self):
        left = make_accumulator("COUNT", distinct=True)
        right = make_accumulator("COUNT", distinct=True)
        for value in ("a", "b"):
            left.update(value)
        for value in ("b", "c"):
            right.update(value)
        left.merge(right)
        assert left.result() == 3

    def test_merge_distinct_with_plain_rejected(self):
        left = make_accumulator("COUNT", distinct=True)
        right = make_accumulator("COUNT")
        with pytest.raises(SparqlEvaluationError):
            left.merge(right)


class TestMergeMismatch:
    @pytest.mark.parametrize("left,right", [("COUNT", "SUM"), ("SUM", "AVG"), ("MIN", "MAX")])
    def test_cross_function_merge_rejected(self, left, right):
        with pytest.raises(SparqlEvaluationError):
            make_accumulator(left).merge(make_accumulator(right))


_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@settings(max_examples=150, deadline=None)
@given(
    func=st.sampled_from(_FUNCS),
    values=st.lists(st.integers(-1000, 1000), min_size=0, max_size=50),
    split=st.integers(0, 50),
)
def test_merge_equals_sequential(func, values, split):
    """Partial aggregation + merge must equal one-shot aggregation."""
    split = min(split, len(values))
    left = make_accumulator(func)
    right = make_accumulator(func)
    for value in values[:split]:
        left.update(value)
    for value in values[split:]:
        right.update(value)
    left.merge(right)
    expected = aggregate_values(func, values)
    result = left.result()
    if isinstance(expected, float):
        assert result == pytest.approx(expected)
    else:
        assert result == expected


@settings(max_examples=100, deadline=None)
@given(
    func=st.sampled_from(_FUNCS),
    values=st.lists(st.integers(-100, 100), min_size=0, max_size=40),
    chunks=st.integers(1, 5),
)
def test_multiway_merge(func, values, chunks):
    """Merging any number of partials is associative-equivalent."""
    partials = [make_accumulator(func) for _ in range(chunks)]
    for index, value in enumerate(values):
        partials[index % chunks].update(value)
    first = partials[0]
    for other in partials[1:]:
        first.merge(other)
    expected = aggregate_values(func, values)
    result = first.result()
    if isinstance(expected, float):
        assert result == pytest.approx(expected)
    else:
        assert result == expected


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(st.integers(-50, 50), max_size=30),
    split=st.integers(0, 30),
)
def test_accumulator_tuple_merge(values, split):
    split = min(split, len(values))
    specs = [("COUNT", False), ("SUM", False), ("AVG", False)]
    left, right = AccumulatorTuple.fresh(specs), AccumulatorTuple.fresh(specs)
    for value in values[:split]:
        for accumulator in left.accumulators:
            accumulator.update(value)
    for value in values[split:]:
        for accumulator in right.accumulators:
            accumulator.update(value)
    left.merge(right)
    count, total, avg = left.results()
    assert count == len(values)
    assert total == sum(values)
    assert avg == pytest.approx(sum(values) / len(values)) if values else avg == 0


def test_accumulator_tuple_estimated_size_positive():
    bundle = AccumulatorTuple.fresh([("SUM", False), ("COUNT", True)])
    bundle.accumulators[0].update(5)
    assert bundle.estimated_size() > 0
