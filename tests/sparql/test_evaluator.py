"""Unit tests for the reference SPARQL evaluator (the oracle)."""

import pytest

from repro.errors import UnsupportedQueryError
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import RDF_TYPE, Triple
from repro.sparql.evaluator import evaluate_query, rows_to_multiset


def iri(name):
    return IRI("http://ex.org/" + name)


@pytest.fixture
def graph():
    g = Graph()
    g.add_all(
        [
            Triple(iri("alice"), RDF_TYPE, iri("Person")),
            Triple(iri("alice"), iri("age"), Literal.from_python(30)),
            Triple(iri("alice"), iri("city"), iri("paris")),
            Triple(iri("bob"), RDF_TYPE, iri("Person")),
            Triple(iri("bob"), iri("age"), Literal.from_python(25)),
            Triple(iri("bob"), iri("city"), iri("paris")),
            Triple(iri("carol"), RDF_TYPE, iri("Person")),
            Triple(iri("carol"), iri("age"), Literal.from_python(35)),
            Triple(iri("carol"), iri("city"), iri("tokyo")),
            Triple(iri("dave"), RDF_TYPE, iri("Person")),  # no age, no city
        ]
    )
    return g


PREFIX = "PREFIX ex: <http://ex.org/>\n"


def names(rows, variable):
    return sorted(str(row.get(Variable(variable))) for row in rows)


class TestBGP:
    def test_simple_match(self, graph):
        rows = evaluate_query(PREFIX + "SELECT ?s { ?s a ex:Person }", graph)
        assert len(rows) == 4

    def test_join_within_bgp(self, graph):
        rows = evaluate_query(
            PREFIX + "SELECT ?s ?age { ?s a ex:Person ; ex:age ?age }", graph
        )
        assert len(rows) == 3

    def test_no_match(self, graph):
        rows = evaluate_query(PREFIX + "SELECT ?s { ?s a ex:Robot }", graph)
        assert rows == []

    def test_concrete_object(self, graph):
        rows = evaluate_query(PREFIX + "SELECT ?s { ?s ex:city ex:paris }", graph)
        assert len(rows) == 2


class TestFilter:
    def test_comparison(self, graph):
        rows = evaluate_query(
            PREFIX + "SELECT ?s { ?s ex:age ?a . FILTER(?a > 28) }", graph
        )
        assert len(rows) == 2

    def test_regex(self, graph):
        rows = evaluate_query(
            PREFIX + 'SELECT ?s { ?s ex:age ?a . FILTER REGEX(STR(?s), "ali") }', graph
        )
        assert len(rows) == 1

    def test_error_in_filter_is_false(self, graph):
        # ?missing is unbound for everyone -> filter drops all rows.
        rows = evaluate_query(
            PREFIX + "SELECT ?s { ?s a ex:Person . FILTER(?missing > 1) }", graph
        )
        assert rows == []


class TestOptional:
    def test_optional_keeps_unmatched(self, graph):
        rows = evaluate_query(
            PREFIX + "SELECT ?s ?a { ?s a ex:Person OPTIONAL { ?s ex:age ?a } }", graph
        )
        assert len(rows) == 4
        unbound = [row for row in rows if Variable("a") not in row]
        assert len(unbound) == 1


class TestUnion:
    def test_union_concatenates(self, graph):
        rows = evaluate_query(
            PREFIX + "SELECT ?s { { ?s ex:city ex:paris } UNION { ?s ex:city ex:tokyo } }",
            graph,
        )
        assert len(rows) == 3


class TestGrouping:
    def test_group_by_with_count(self, graph):
        rows = evaluate_query(
            PREFIX
            + "SELECT ?c (COUNT(?s) AS ?n) { ?s ex:city ?c } GROUP BY ?c",
            graph,
        )
        result = {str(row[Variable("c")]): row[Variable("n")].python_value() for row in rows}
        assert result == {"<http://ex.org/paris>": 2, "<http://ex.org/tokyo>": 1}

    def test_group_by_all(self, graph):
        rows = evaluate_query(
            PREFIX + "SELECT (SUM(?a) AS ?total) (AVG(?a) AS ?mean) { ?s ex:age ?a }",
            graph,
        )
        assert len(rows) == 1
        assert rows[0][Variable("total")].python_value() == 90
        assert rows[0][Variable("mean")].python_value() == 30

    def test_group_by_all_empty_input_yields_one_row(self, graph):
        rows = evaluate_query(
            PREFIX + "SELECT (COUNT(?a) AS ?n) { ?s a ex:Robot ; ex:age ?a }", graph
        )
        assert len(rows) == 1
        assert rows[0][Variable("n")].python_value() == 0

    def test_group_by_empty_input_yields_no_rows(self, graph):
        rows = evaluate_query(
            PREFIX + "SELECT ?c (COUNT(?s) AS ?n) { ?s a ex:Robot ; ex:city ?c } GROUP BY ?c",
            graph,
        )
        assert rows == []

    def test_min_of_empty_group_left_unbound(self, graph):
        rows = evaluate_query(
            PREFIX + "SELECT (MIN(?a) AS ?m) { ?s a ex:Robot ; ex:age ?a }", graph
        )
        assert rows == [{}]

    def test_count_skips_unbound(self, graph):
        rows = evaluate_query(
            PREFIX
            + "SELECT (COUNT(?a) AS ?n) (COUNT(*) AS ?all) "
            + "{ ?s a ex:Person OPTIONAL { ?s ex:age ?a } }",
            graph,
        )
        assert rows[0][Variable("n")].python_value() == 3
        assert rows[0][Variable("all")].python_value() == 4

    def test_having(self, graph):
        rows = evaluate_query(
            PREFIX
            + "SELECT ?c (COUNT(?s) AS ?n) { ?s ex:city ?c } GROUP BY ?c HAVING (?n > 1)",
            graph,
        )
        assert len(rows) == 1

    def test_projection_of_ungrouped_variable_rejected(self, graph):
        with pytest.raises(UnsupportedQueryError):
            evaluate_query(
                PREFIX + "SELECT ?s (COUNT(?a) AS ?n) { ?s ex:age ?a } GROUP BY ?c",
                graph,
            )


class TestModifiers:
    def test_distinct(self, graph):
        rows = evaluate_query(PREFIX + "SELECT DISTINCT ?c { ?s ex:city ?c }", graph)
        assert len(rows) == 2

    def test_order_by(self, graph):
        rows = evaluate_query(
            PREFIX + "SELECT ?s ?a { ?s ex:age ?a } ORDER BY ?a", graph
        )
        ages = [row[Variable("a")].python_value() for row in rows]
        assert ages == [25, 30, 35]

    def test_order_by_desc(self, graph):
        rows = evaluate_query(
            PREFIX + "SELECT ?s ?a { ?s ex:age ?a } ORDER BY DESC(?a)", graph
        )
        ages = [row[Variable("a")].python_value() for row in rows]
        assert ages == [35, 30, 25]

    def test_limit_offset(self, graph):
        rows = evaluate_query(
            PREFIX + "SELECT ?s ?a { ?s ex:age ?a } ORDER BY ?a LIMIT 1 OFFSET 1", graph
        )
        assert rows[0][Variable("a")].python_value() == 30

    def test_projection_expression(self, graph):
        rows = evaluate_query(
            PREFIX + "SELECT (?a * 2 AS ?double) ?a { ?s ex:age ?a } ORDER BY ?a LIMIT 1",
            graph,
        )
        assert rows[0][Variable("double")].python_value() == 50


class TestSubqueries:
    def test_subquery_join(self, graph):
        query = PREFIX + """
SELECT ?c ?n ?total {
  { SELECT ?c (COUNT(?s) AS ?n) { ?s ex:city ?c } GROUP BY ?c }
  { SELECT (COUNT(?s2) AS ?total) { ?s2 ex:city ?c2 } }
}
"""
        rows = evaluate_query(query, graph)
        assert len(rows) == 2
        for row in rows:
            assert row[Variable("total")].python_value() == 3


def test_rows_to_multiset():
    row = {Variable("x"): Literal("a")}
    assert rows_to_multiset([row, dict(row)]) == {frozenset(row.items()): 2}
