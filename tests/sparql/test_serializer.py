"""Serializer tests: parse ∘ serialize is the identity on ASTs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparql.parser import parse_query
from repro.sparql.serializer import serialize_query
from tests.conftest import MG1_STYLE_QUERY


def round_trip(text: str):
    first = parse_query(text)
    rendered = serialize_query(first)
    second = parse_query(rendered)
    return first, second


@pytest.mark.parametrize(
    "text",
    [
        "SELECT ?s { ?s <urn:p> ?o }",
        "SELECT * { ?s <urn:p> ?o }",
        "SELECT DISTINCT ?s { ?s <urn:p> ?o . ?o <urn:q> ?z }",
        'SELECT ?s { ?s <urn:p> "lit"@en ; <urn:q> "5"^^<urn:int> , 7 }',
        "SELECT (COUNT(*) AS ?c) { ?s <urn:p> ?o }",
        "SELECT ?g (SUM(?x) AS ?t) { ?s <urn:p> ?x ; <urn:g> ?g } GROUP BY ?g",
        "SELECT ?g (COUNT(DISTINCT ?x) AS ?c) { ?s <urn:p> ?x ; <urn:g> ?g } GROUP BY ?g HAVING (?c > 1)",
        'SELECT ?s { ?s <urn:p> ?x . FILTER REGEX(STR(?x), "abc", "i") }',
        "SELECT ?s { ?s <urn:p> ?x OPTIONAL { ?s <urn:q> ?y } }",
        "SELECT ?s { { ?s <urn:p> ?x } UNION { ?s <urn:q> ?x } }",
        "SELECT ?s ?x { ?s <urn:p> ?x } ORDER BY DESC(?x) LIMIT 3 OFFSET 1",
        "SELECT ((?a + 2) * ?b AS ?r) ?a ?b { ?s <urn:p> ?a ; <urn:q> ?b }",
        "SELECT ?s { ?s <urn:p> true ; <urn:q> -4 ; <urn:r> 2.5 }",
    ],
)
def test_round_trip_fixed_queries(text):
    first, second = round_trip(text)
    assert first == second


def test_round_trip_analytical_query():
    first, second = round_trip(MG1_STYLE_QUERY)
    assert first == second
    assert len(second.subselects()) == 2


_var_names = st.sampled_from(["s", "o", "x", "y", "g", "price"])
_props = st.sampled_from(["urn:p1", "urn:p2", "urn:q"])


@st.composite
def random_select_queries(draw):
    triple_count = draw(st.integers(1, 4))
    triples = []
    for _ in range(triple_count):
        subject = "?" + draw(_var_names)
        prop = f"<{draw(_props)}>"
        if draw(st.booleans()):
            obj = "?" + draw(_var_names)
        else:
            obj = str(draw(st.integers(-5, 100)))
        triples.append(f"{subject} {prop} {obj} .")
    body = "\n".join(triples)
    if draw(st.booleans()):
        filter_var = "?" + draw(_var_names)
        body += f"\nFILTER({filter_var} > {draw(st.integers(0, 50))})"
    projection = "?" + draw(_var_names)
    return f"SELECT {projection} {{ {body} }}"


@settings(max_examples=120, deadline=None)
@given(text=random_select_queries())
def test_round_trip_property(text):
    first, second = round_trip(text)
    assert first == second
