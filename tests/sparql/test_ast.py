"""Unit tests for AST node validation and helpers."""

import pytest

from repro.rdf.terms import IRI, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.ast import (
    AggregateExpr,
    GroupGraphPattern,
    ProjectionItem,
    SelectQuery,
    SubSelect,
    TriplesBlock,
)
from repro.sparql.expressions import VarExpr
from repro.sparql.parser import parse_query


def test_aggregate_requires_valid_function():
    with pytest.raises(ValueError):
        AggregateExpr("MEDIAN", VarExpr(Variable("x")))


def test_only_count_allows_star():
    with pytest.raises(ValueError):
        AggregateExpr("SUM", None)
    assert AggregateExpr("COUNT", None).arg is None


def test_aggregate_str():
    assert str(AggregateExpr("COUNT", None)) == "COUNT(*)"
    assert (
        str(AggregateExpr("SUM", VarExpr(Variable("x")), distinct=True))
        == "SUM(DISTINCT ?x)"
    )


def test_group_graph_pattern_triple_collection():
    tp = TriplePattern(Variable("s"), IRI("urn:p"), Variable("o"))
    nested = GroupGraphPattern((TriplesBlock((tp,)),))
    outer = GroupGraphPattern((nested, TriplesBlock((tp,))))
    assert len(outer.triple_patterns()) == 2


def test_select_query_helpers():
    query = parse_query(
        "SELECT ?g (COUNT(?x) AS ?c) { ?s <urn:p> ?x ; <urn:g> ?g } GROUP BY ?g"
    )
    assert query.is_grouped()
    assert query.has_aggregates()
    assert query.projected_variables() == (Variable("g"), Variable("c"))
    assert query.subselects() == ()


def test_grouped_without_aggregates_is_still_grouped():
    query = parse_query("SELECT ?g (COUNT(?x) AS ?c) { ?s <urn:p> ?x ; <urn:g> ?g } GROUP BY ?g")
    bare = SelectQuery(
        projection=(ProjectionItem(VarExpr(Variable("g")), Variable("g")),),
        where=query.where,
        group_by=(Variable("g"),),
    )
    assert bare.is_grouped()
    assert not bare.has_aggregates()


def test_subselects_extraction(mg1_style_query):
    query = parse_query(mg1_style_query)
    subqueries = query.subselects()
    assert all(isinstance(sub, SelectQuery) for sub in subqueries)
    assert any(isinstance(e, SubSelect) for e in query.where.elements)
