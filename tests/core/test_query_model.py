"""Unit tests for the analytical query model."""

import pytest

from repro.core.query_model import (
    AnalyticalQuery,
    GraphPattern,
    PropKey,
    StarPattern,
    decompose_stars,
    from_select_query,
    literal_filters_for_star,
    parse_analytical,
    prop_key_of,
)
from repro.errors import PlanningError, UnsupportedQueryError
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import RDF_TYPE, TriplePattern
from repro.sparql.parser import parse_query

P1, P2, P3 = IRI("urn:p1"), IRI("urn:p2"), IRI("urn:p3")
S, T, O = Variable("s"), Variable("t"), Variable("o")


def tp(subject, prop, obj):
    return TriplePattern(subject, prop, obj)


class TestPropKey:
    def test_plain_property(self):
        assert prop_key_of(tp(S, P1, O)) == PropKey(P1)

    def test_type_with_concrete_class(self):
        key = prop_key_of(tp(S, RDF_TYPE, IRI("urn:C")))
        assert key.type_object == IRI("urn:C")
        assert "C" in key.short()

    def test_type_with_variable_class(self):
        key = prop_key_of(tp(S, RDF_TYPE, O))
        assert key.type_object is None

    def test_unbound_property_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            prop_key_of(tp(S, Variable("p"), O))


class TestStarPattern:
    def test_props(self):
        star = StarPattern(S, (tp(S, P1, O), tp(S, P2, Variable("o2"))))
        assert star.props() == frozenset({PropKey(P1), PropKey(P2)})

    def test_subject_mismatch_rejected(self):
        with pytest.raises(PlanningError):
            StarPattern(S, (tp(T, P1, O),))

    def test_empty_rejected(self):
        with pytest.raises(PlanningError):
            StarPattern(S, ())

    def test_pattern_for(self):
        pattern = tp(S, P1, O)
        star = StarPattern(S, (pattern,))
        assert star.pattern_for(PropKey(P1)) is pattern
        with pytest.raises(PlanningError):
            star.pattern_for(PropKey(P2))

    def test_type_keys(self):
        star = StarPattern(S, (tp(S, RDF_TYPE, IRI("urn:C")), tp(S, P1, O)))
        assert star.type_keys() == frozenset({PropKey(RDF_TYPE, IRI("urn:C"))})


class TestDecomposeStars:
    def test_groups_by_subject_in_order(self):
        patterns = [tp(S, P1, T), tp(T, P2, O), tp(S, P3, O)]
        stars = decompose_stars(patterns)
        assert len(stars) == 2
        assert stars[0].subject == S and len(stars[0]) == 2
        assert stars[1].subject == T


class TestGraphPattern:
    def _two_star(self):
        star1 = StarPattern(S, (tp(S, P1, T),))
        star2 = StarPattern(T, (tp(T, P2, O),))
        return GraphPattern((star1, star2))

    def test_star_joins(self):
        joins = self._two_star().star_joins()
        assert len(joins) == 1
        assert joins[0].variable == T
        assert joins[0].left_role() == "object"
        assert joins[0].right_role() == "subject"

    def test_join_count(self):
        assert self._two_star().join_count() == 1

    def test_connectivity(self):
        assert self._two_star().is_connected()
        disconnected = GraphPattern(
            (
                StarPattern(S, (tp(S, P1, O),)),
                StarPattern(T, (tp(T, P2, Variable("z")),)),
            )
        )
        assert not disconnected.is_connected()


class TestAnalyticalDecomposition:
    def test_single_grouping(self):
        query = parse_analytical(
            "SELECT ?g (COUNT(?x) AS ?c) { ?s <urn:p1> ?x ; <urn:g> ?g } GROUP BY ?g"
        )
        assert len(query.subqueries) == 1
        assert not query.is_multi_grouping()
        assert query.subqueries[0].group_by == (Variable("g"),)
        assert query.projection == (Variable("g"), Variable("c"))

    def test_multi_grouping(self, mg1_style_query):
        query = parse_analytical(mg1_style_query)
        assert query.is_multi_grouping()
        assert len(query.subqueries) == 2
        assert query.subqueries[0].group_by == (Variable("f"),)
        assert query.subqueries[1].group_by == ()

    def test_outer_expression_extends(self):
        query = parse_analytical(
            """
            SELECT ?r {
              { SELECT (SUM(?x) AS ?a) { ?s <urn:p1> ?x } }
              { SELECT (SUM(?y) AS ?b) { ?t <urn:p2> ?y } }
            }
            """.replace("?r {", "(?a / ?b AS ?r) {")
        )
        assert len(query.outer_extends) == 1

    def test_group_by_all_subquery(self, mg1_style_query):
        query = parse_analytical(mg1_style_query)
        roll_up = query.subqueries[1]
        assert roll_up.group_by == ()
        assert {a.func for a in roll_up.aggregates} == {"SUM", "COUNT"}

    def test_mixing_subselects_and_triples_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_analytical(
                """
                SELECT ?c { ?s <urn:p1> ?o .
                  { SELECT (COUNT(?x) AS ?c) { ?t <urn:p2> ?x } }
                }
                """
            )

    def test_non_grouped_query_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_analytical("SELECT ?s { ?s <urn:p1> ?o }")

    def test_projection_of_unknown_variable_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_analytical(
                "SELECT ?zz { { SELECT (COUNT(?x) AS ?c) { ?s <urn:p1> ?x } } }"
            )

    def test_aggregate_over_expression_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_analytical("SELECT (SUM(?x + 1) AS ?c) { ?s <urn:p1> ?x }")

    def test_filters_collected_on_pattern(self):
        query = parse_analytical(
            "SELECT (COUNT(?x) AS ?c) { ?s <urn:p1> ?x . FILTER(?x > 3) }"
        )
        assert len(query.subqueries[0].pattern.filters) == 1

    def test_from_select_query_matches_parse(self, mg1_style_query):
        parsed = parse_query(mg1_style_query)
        assert isinstance(from_select_query(parsed), AnalyticalQuery)


def test_literal_filters_for_star():
    star = StarPattern(
        S, (tp(S, P1, Literal("News")), tp(S, P2, O), tp(S, RDF_TYPE, IRI("urn:C")))
    )
    constraints = literal_filters_for_star(star)
    assert constraints == {PropKey(P1): Literal("News")}
