"""CLI tests (invoked in-process through repro.cli.main)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_catalog_lists_queries(capsys):
    code, out, _ = run_cli(capsys, "catalog")
    assert code == 0
    assert "MG1" in out and "MG18" in out and "G9" in out


def test_catalog_verbose(capsys):
    code, out, _ = run_cli(capsys, "catalog", "-v")
    assert code == 0
    assert "avg price per feature" in out


def test_explain_command(capsys):
    code, out, _ = run_cli(capsys, "explain", "MG1")
    assert code == 0
    assert "rapid-analytics plan (3 MR cycles)" in out


def test_run_catalog_query(capsys):
    code, out, _ = run_cli(
        capsys, "run", "G1", "--dataset", "bsbm", "--preset", "tiny", "--limit", "2"
    )
    assert code == 0
    assert "cycles=2" in out
    assert "rows" in out


def test_compare_command(capsys):
    code, out, _ = run_cli(capsys, "compare", "G1", "--preset", "tiny")
    assert code == 0
    for engine in ("hive-naive", "hive-mqo", "rapid-plus", "rapid-analytics"):
        assert engine in out


def test_run_sparql_file(tmp_path, capsys):
    query_file = tmp_path / "query.rq"
    query_file.write_text(
        "PREFIX bsbm: <http://bsbm.example.org/vocabulary/>\n"
        "SELECT ?c (COUNT(?v) AS ?n) { ?v bsbm:country ?c } GROUP BY ?c\n"
    )
    code, out, _ = run_cli(
        capsys, "run", str(query_file), "--dataset", "bsbm", "--preset", "tiny"
    )
    assert code == 0
    assert "rows" in out


def test_generate_and_query_ntriples(tmp_path, capsys):
    data_file = tmp_path / "data.nt"
    code, out, _ = run_cli(capsys, "generate", "bsbm", str(data_file), "--preset", "tiny")
    assert code == 0
    assert "wrote" in out
    assert data_file.exists()

    code, out, _ = run_cli(capsys, "run", "G1", "--data", str(data_file))
    assert code == 0
    assert "cycles=2" in out


def test_run_csv_format(capsys):
    code, out, _ = run_cli(
        capsys, "run", "G3", "--preset", "tiny", "--format", "csv"
    )
    assert code == 0
    header = out.splitlines()[0]
    assert set(header.split(",")) == {"f", "cnt", "sum"}
    assert len(out.splitlines()) > 1


def test_stats_command(capsys):
    code, out, _ = run_cli(capsys, "stats", "--dataset", "pubmed", "--preset", "tiny")
    assert code == 0
    assert "multi-valued" in out
    assert "mesh_heading" in out


def test_unknown_experiment_fails_cleanly(capsys):
    code, _, err = run_cli(capsys, "bench", "figure99")
    assert code == 2
    assert "unknown experiment" in err


def test_missing_file_reports_error(capsys):
    code, _, err = run_cli(capsys, "run", "/nonexistent/query.rq")
    assert code == 1
    assert "error:" in err


def test_parser_rejects_bad_engine():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "G1", "--engine", "spark"])
