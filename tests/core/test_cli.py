"""CLI tests (invoked in-process through repro.cli.main)."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_catalog_lists_queries(capsys):
    code, out, _ = run_cli(capsys, "catalog")
    assert code == 0
    assert "MG1" in out and "MG18" in out and "G9" in out


def test_catalog_verbose(capsys):
    code, out, _ = run_cli(capsys, "catalog", "-v")
    assert code == 0
    assert "avg price per feature" in out


def test_explain_command(capsys):
    code, out, _ = run_cli(capsys, "explain", "MG1")
    assert code == 0
    assert "rapid-analytics plan (3 MR cycles)" in out


def test_run_catalog_query(capsys):
    code, out, _ = run_cli(
        capsys, "run", "G1", "--dataset", "bsbm", "--preset", "tiny", "--limit", "2"
    )
    assert code == 0
    assert "cycles=2" in out
    assert "rows" in out


def test_compare_command(capsys):
    code, out, _ = run_cli(capsys, "compare", "G1", "--preset", "tiny")
    assert code == 0
    for engine in ("hive-naive", "hive-mqo", "rapid-plus", "rapid-analytics"):
        assert engine in out


def test_run_sparql_file(tmp_path, capsys):
    query_file = tmp_path / "query.rq"
    query_file.write_text(
        "PREFIX bsbm: <http://bsbm.example.org/vocabulary/>\n"
        "SELECT ?c (COUNT(?v) AS ?n) { ?v bsbm:country ?c } GROUP BY ?c\n"
    )
    code, out, _ = run_cli(
        capsys, "run", str(query_file), "--dataset", "bsbm", "--preset", "tiny"
    )
    assert code == 0
    assert "rows" in out


def test_generate_and_query_ntriples(tmp_path, capsys):
    data_file = tmp_path / "data.nt"
    code, out, _ = run_cli(capsys, "generate", "bsbm", str(data_file), "--preset", "tiny")
    assert code == 0
    assert "wrote" in out
    assert data_file.exists()

    code, out, _ = run_cli(capsys, "run", "G1", "--data", str(data_file))
    assert code == 0
    assert "cycles=2" in out


def test_run_csv_format(capsys):
    code, out, _ = run_cli(
        capsys, "run", "G3", "--preset", "tiny", "--format", "csv"
    )
    assert code == 0
    header = out.splitlines()[0]
    assert set(header.split(",")) == {"f", "cnt", "sum"}
    assert len(out.splitlines()) > 1


def test_stats_command(capsys):
    code, out, _ = run_cli(capsys, "stats", "--dataset", "pubmed", "--preset", "tiny")
    assert code == 0
    assert "multi-valued" in out
    assert "mesh_heading" in out


def test_explain_hive_engine_with_graph(capsys):
    code, out, _ = run_cli(
        capsys, "explain", "G1", "--engine", "hive-naive", "--preset", "tiny"
    )
    assert code == 0
    assert "hive" in out.lower()


def test_explain_rejects_bad_engine():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["explain", "MG1", "--engine", "spark"])


def test_run_verbose_prints_workflow_and_counters(capsys):
    code, out, _ = run_cli(
        capsys, "run", "G1", "--preset", "tiny", "--verbose"
    )
    assert code == 0
    assert "TOTAL:" in out
    assert "counters:" in out
    assert "mr_cycles=" in out


def test_stats_json(capsys):
    code, out, _ = run_cli(
        capsys, "stats", "--dataset", "pubmed", "--preset", "tiny", "--json"
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["schema"] == "repro-graph-stats/v1.2"
    assert payload["total_triples"] > 0
    assert any("mesh_heading" in prop for prop in payload["properties"])
    multi = [p for p in payload["properties"].values() if p["multi_valued"]]
    assert multi
    assert payload["equivalence_classes"]
    for prop in payload["properties"].values():
        histogram = prop["fanout_histogram"]
        assert sum(histogram.values()) == prop["distinct_subjects"]
        assert sum(int(f) * n for f, n in histogram.items()) == prop["triples"]
        assert prop["max_fanout"] == max(int(f) for f in histogram)
    # Multi-valued properties carry mass at fanout > 1 — the profile now
    # predicts which properties the factorized representation compresses.
    assert any(
        any(int(f) > 1 for f in p["fanout_histogram"])
        for p in payload["properties"].values()
        if p["multi_valued"]
    )


def test_stats_json_matches_describe_totals(capsys):
    code, text_out, _ = run_cli(capsys, "stats", "--dataset", "bsbm", "--preset", "tiny")
    assert code == 0
    code, json_out, _ = run_cli(
        capsys, "stats", "--dataset", "bsbm", "--preset", "tiny", "--json"
    )
    assert code == 0
    payload = json.loads(json_out)
    assert f"{payload['total_triples']} triples" in text_out


def test_run_trace_and_trace_subcommands(tmp_path, capsys):
    trace_path = tmp_path / "run.jsonl"
    code, _, err = run_cli(
        capsys,
        "run", "MG1", "--preset", "tiny",
        "--engine", "rapid-analytics", "--trace", str(trace_path),
    )
    assert code == 0
    assert f"wrote trace {trace_path}" in err
    assert trace_path.exists()
    first = json.loads(trace_path.read_text().splitlines()[0])
    assert first == {"type": "header", "schema": "repro-trace/v1",
                     "generator": "repro.obs", "created_at": first["created_at"]}

    code, out, _ = run_cli(capsys, "trace", "summary", str(trace_path))
    assert code == 0
    assert "rapid-analytics" in out
    assert "MG1" in out

    code, out, _ = run_cli(capsys, "trace", "tree", str(trace_path), "--depth", "2")
    assert code == 0
    assert "MG1 [query]" in out
    assert "sim=" in out

    export_path = tmp_path / "run.perfetto.json"
    code, out, _ = run_cli(
        capsys,
        "trace", "export", str(trace_path),
        "--format", "perfetto", "--output", str(export_path), "--check",
    )
    assert code == 0
    chrome = json.loads(export_path.read_text())
    assert chrome["traceEvents"]
    assert chrome["otherData"]["schema"] == "repro-trace/v1"


def test_compare_trace_covers_all_engines(tmp_path, capsys):
    trace_path = tmp_path / "compare.jsonl"
    code, _, _ = run_cli(
        capsys, "compare", "G1", "--preset", "tiny", "--trace", str(trace_path)
    )
    assert code == 0
    engines = {
        json.loads(line)["attrs"]["engine"]
        for line in trace_path.read_text().splitlines()
        if '"kind":"engine"' in line
    }
    assert engines == {"hive-naive", "hive-mqo", "rapid-plus", "rapid-analytics"}


def test_trace_export_to_stdout(tmp_path, capsys):
    trace_path = tmp_path / "run.jsonl"
    run_cli(capsys, "run", "G1", "--preset", "tiny", "--trace", str(trace_path))
    code, out, _ = run_cli(capsys, "trace", "export", str(trace_path))
    assert code == 0
    assert json.loads(out)["traceEvents"]


def test_trace_rejects_non_trace_file(tmp_path, capsys):
    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text("not json\n")
    code, _, err = run_cli(capsys, "trace", "summary", str(bogus))
    assert code == 1
    assert "error:" in err


def test_unknown_experiment_fails_cleanly(capsys):
    code, _, err = run_cli(capsys, "bench", "figure99")
    assert code == 2
    assert "unknown experiment" in err


def test_missing_file_reports_error(capsys):
    code, _, err = run_cli(capsys, "run", "/nonexistent/query.rq")
    assert code == 1
    assert "error:" in err


def test_parser_rejects_bad_engine():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "G1", "--engine", "spark"])


def test_run_with_faults_and_recovery(capsys):
    """An abort-prone plan plus --recover completes with the fault-free
    rows and prints the recovery breakdown under -v."""
    code, clean_out, _ = run_cli(
        capsys, "run", "G1", "--preset", "tiny", "--format", "csv"
    )
    assert code == 0
    code, out, _ = run_cli(
        capsys, "run", "G1", "--preset", "tiny", "--format", "csv",
        "--faults", "13,0.1,0,0,1", "--recover", "32",
    )
    assert code == 0
    assert out == clean_out


def test_run_recover_budget_exhaustion_exits_2(capsys):
    """With a one-resubmission budget against a near-certain abort, the
    typed WorkflowAbortedError surfaces as a one-line exit-2 diagnostic."""
    code, _, err = run_cli(
        capsys, "run", "G1", "--preset", "tiny",
        "--faults", "1,0.97,0,0,1", "--recover", "1",
    )
    assert code == 2
    assert "workflow aborted" in err
    assert err.count("\n") == 1  # a single line, not a traceback


def test_run_invalid_recovery_budget_exits_2(capsys):
    code, _, err = run_cli(
        capsys, "run", "G1", "--preset", "tiny", "--recover", "0"
    )
    assert code == 2
    assert "error:" in err


def test_bench_chaos_smoke(capsys, tmp_path):
    out_path = tmp_path / "chaos.json"
    code, out, _ = run_cli(
        capsys, "bench", "table3-bsbm-tiny",
        "--chaos", "seeds=1,rate=0.1", "--output", str(out_path),
    )
    assert code == 0
    assert "chaos soak" in out
    assert "bit-identical to fault-free: True" in out
    report = json.loads(out_path.read_text())
    assert report["schema"] == "repro-chaos-soak/v1"
    assert report["verdicts"]["all_bit_identical"] is True


def test_bench_chaos_golden_roundtrip(capsys, tmp_path):
    out_path = tmp_path / "chaos.json"
    run_cli(
        capsys, "bench", "table3-bsbm-tiny",
        "--chaos", "seeds=1,rate=0.1", "--output", str(out_path),
    )
    code, out, _ = run_cli(
        capsys, "bench", "table3-bsbm-tiny",
        "--chaos", "seeds=1,rate=0.1", "--golden", str(out_path),
    )
    assert code == 0
    assert "chaos golden ok" in out


def test_bench_chaos_bad_spec_exits_2(capsys):
    code, _, err = run_cli(
        capsys, "bench", "table3-bsbm-tiny", "--chaos", "seeds=,rate"
    )
    assert code == 2
    assert "invalid chaos spec" in err


def test_bench_chaos_unknown_experiment(capsys):
    code, _, err = run_cli(capsys, "bench", "nope", "--chaos", "seeds=1,rate=0.1")
    assert code == 2
    assert "unknown chaos experiment" in err


def test_bench_chaos_mutually_exclusive_with_profile(capsys):
    code, _, err = run_cli(
        capsys, "bench", "figure8a", "--chaos", "seeds=1,rate=0.1", "--profile"
    )
    assert code == 2
    assert "mutually exclusive" in err


def test_serve_smoke(capsys, tmp_path):
    out_path = tmp_path / "serve.json"
    code, out, _ = run_cli(
        capsys, "serve",
        "--workload", "seeds=1,clients=2,mix=chem-overlap,requests=6",
        "--output", str(out_path),
    )
    assert code == 0
    assert "chem-overlap serve workload" in out
    assert "answers bit-identical to cold solo runs: True" in out
    report = json.loads(out_path.read_text())
    assert report["schema"] == "repro-serve-workload/v2"
    assert report["verdicts"]["all_rows_match"] is True
    assert report["verdicts"]["cost_strictly_reduced"] is True
    assert report["verdicts"]["slo_pass"] is True


def test_serve_golden_roundtrip(capsys, tmp_path):
    out_path = tmp_path / "serve.json"
    run_cli(
        capsys, "serve",
        "--workload", "seeds=1,clients=2,mix=chem-overlap,requests=6",
        "--output", str(out_path),
    )
    code, out, _ = run_cli(
        capsys, "serve",
        "--workload", "seeds=1,clients=2,mix=chem-overlap,requests=6",
        "--golden", str(out_path),
    )
    assert code == 0
    assert "serve golden ok" in out


def test_serve_bad_workload_spec_exits_2(capsys):
    code, _, err = run_cli(capsys, "serve", "--workload", "seeds=banana")
    assert code == 2
    assert "invalid workload spec" in err
    assert err.count("\n") == 1  # a single line, not a traceback


def test_serve_unknown_mix_exits_2(capsys):
    code, _, err = run_cli(
        capsys, "serve", "--workload", "seeds=1,clients=1,mix=nope"
    )
    assert code == 2
    assert "unknown mix" in err


def test_serve_resilience_ab_smoke(capsys, tmp_path):
    out_path = tmp_path / "resilience.json"
    code, out, _ = run_cli(
        capsys, "serve",
        "--workload", "seeds=1,clients=2,mix=chem-overlap,requests=6",
        "--faults", "11,0.02,0,0,1",
        "--resilience", "default",
        "--output", str(out_path),
    )
    assert code == 0
    assert "resilience A/B" in out
    assert "pooled availability" in out
    report = json.loads(out_path.read_text())
    assert report["schema"] == "repro-serve-resilience/v1"
    assert report["verdicts"]["ok_rows_match_fault_free"] is True


def test_serve_resilience_golden_roundtrip(capsys, tmp_path):
    out_path = tmp_path / "resilience.json"
    argv = (
        "serve",
        "--workload", "seeds=1,clients=2,mix=chem-overlap,requests=6",
        "--faults", "11,0.02,0,0,1",
        "--resilience", "default",
    )
    run_cli(capsys, *argv, "--output", str(out_path))
    code, out, _ = run_cli(capsys, *argv, "--golden", str(out_path))
    assert code == 0
    assert "serve golden ok" in out


def test_serve_faults_alone_runs_the_ab_with_defaults(capsys):
    """--faults without --resilience still runs the A/B (default
    policies on the on arm)."""
    code, out, _ = run_cli(
        capsys, "serve",
        "--workload", "seeds=1,clients=2,mix=chem-overlap,requests=6",
        "--faults", "11,0.02,0,0,1",
    )
    assert code == 0
    assert "resilience A/B" in out


def test_serve_bad_faults_spec_exits_2(capsys):
    code, _, err = run_cli(
        capsys, "serve",
        "--workload", "seeds=1,clients=1,mix=chem-overlap,requests=4",
        "--faults", "banana",
    )
    assert code == 2
    assert "error:" in err
    assert err.count("\n") == 1


def test_serve_bad_resilience_spec_exits_2(capsys):
    for spec in ("retries=-1", "banana=1", "retries"):
        code, _, err = run_cli(
            capsys, "serve",
            "--workload", "seeds=1,clients=1,mix=chem-overlap,requests=4",
            "--faults", "11,0.02",
            "--resilience", spec,
        )
        assert code == 2, spec
        assert "invalid resilience spec" in err
        assert err.count("\n") == 1  # one-line diagnostic, no traceback


def test_serve_resilience_requires_faults(capsys):
    code, _, err = run_cli(
        capsys, "serve",
        "--workload", "seeds=1,clients=1,mix=chem-overlap,requests=4",
        "--resilience", "default",
    )
    assert code == 2
    assert "--resilience requires --faults" in err


def test_serve_metrics_and_faults_are_exclusive(capsys, tmp_path):
    code, _, err = run_cli(
        capsys, "serve",
        "--workload", "seeds=1,clients=1,mix=chem-overlap,requests=4",
        "--faults", "11,0.02",
        "--metrics", str(tmp_path / "m.json"),
    )
    assert code == 2
    assert "--metrics" in err


def test_run_bad_faults_spec_exits_2(capsys):
    code, _, err = run_cli(
        capsys, "run", "G1", "--preset", "tiny", "--faults", "1,9.5"
    )
    assert code == 2
    assert "error:" in err
    assert err.count("\n") == 1


def test_bench_faults_bad_spec_exits_2(capsys):
    code, _, err = run_cli(
        capsys, "bench", "table3-bsbm-tiny", "--faults", "banana"
    )
    assert code == 2
    assert "error:" in err
    assert err.count("\n") == 1


def test_run_sharded_csv_matches_unsharded(capsys):
    code, base, _ = run_cli(
        capsys, "run", "MG1", "--preset", "tiny", "--format", "csv"
    )
    assert code == 0
    code, sharded, _ = run_cli(
        capsys,
        "run", "MG1", "--preset", "tiny", "--format", "csv",
        "--shards", "4,min-edge-cut",
    )
    assert code == 0
    assert sharded == base


def test_run_sharded_verbose_shows_per_shard_jobs(capsys):
    code, out, _ = run_cli(
        capsys,
        "run", "MG1", "--preset", "tiny", "--verbose", "--shards", "2",
    )
    assert code == 0
    assert "@s0" in out and "@r0" in out
    assert "exchange=" in out


def test_run_sharded_rejects_non_ntga_engine(capsys):
    code, _, err = run_cli(
        capsys,
        "run", "MG1", "--preset", "tiny",
        "--engine", "hive-naive", "--shards", "2",
    )
    assert code == 2
    assert "does not support sharded execution" in err
    assert err.count("\n") == 1


def test_run_bad_shards_spec_exits_2(capsys):
    code, _, err = run_cli(
        capsys, "run", "MG1", "--preset", "tiny", "--shards", "4,metis"
    )
    assert code == 2
    assert "error:" in err
    assert err.count("\n") == 1


def test_explain_sharded_renders_partition_layout(capsys):
    code, out, _ = run_cli(
        capsys,
        "explain", "MG1", "--preset", "tiny", "--shards", "4,min-edge-cut",
    )
    assert code == 0
    assert "sharding (min-edge-cut, 4 shards):" in out
    assert "estimated exchange" in out


def test_explain_sharded_json_carries_sharding_section(capsys):
    code, out, _ = run_cli(
        capsys, "explain", "MG1", "--preset", "tiny", "--shards", "4", "--json"
    )
    assert code == 0
    report = json.loads(out)
    assert report["schema"] == "repro-explain/v1"
    assert report["sharding"]["shards"] == 4
    assert len(report["sharding"]["per_shard"]) == 4


def test_bench_shards_ab_smoke(capsys, tmp_path):
    output = tmp_path / "shard_ab.json"
    code, out, _ = run_cli(
        capsys,
        "bench", "MG1", "--shards", "2,hash", "--output", str(output),
    )
    assert code == 0
    assert "shard A/B (2 shards)" in out
    report = json.loads(output.read_text())
    assert report["schema"] == "repro-shard-ab/v1"
    assert report["verdicts"]["answers_all_match"] is True


def test_bench_bad_shards_spec_exits_2(capsys):
    code, _, err = run_cli(
        capsys, "bench", "mg", "--shards", "banana"
    )
    assert code == 2
    assert "error:" in err
    assert err.count("\n") == 1
