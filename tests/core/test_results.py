"""Tests for execution reports and engine configuration."""

import pytest

from repro.core.results import EngineConfig, ExecutionReport
from repro.mapreduce.job import JobStats
from repro.mapreduce.runner import WorkflowStats
from repro.rdf.terms import Literal, Variable


def _job(name="j", map_only=False, cost=1.0, shuffle=10, out=20):
    return JobStats(
        name=name,
        map_only=map_only,
        map_tasks=1,
        reduce_tasks=0 if map_only else 1,
        input_bytes=100,
        side_input_bytes=0,
        shuffle_bytes=shuffle,
        output_bytes=out,
        input_records=5,
        output_records=2,
        cost_seconds=cost,
    )


def _stats():
    stats = WorkflowStats()
    stats.jobs.append(_job("a", map_only=False, cost=2.0))
    stats.jobs.append(_job("b", map_only=True, cost=1.0))
    return stats


class TestWorkflowStats:
    def test_cycle_accounting(self):
        stats = _stats()
        assert stats.cycles == 2
        assert stats.map_only_cycles == 1
        assert stats.full_cycles == 1

    def test_totals(self):
        stats = _stats()
        assert stats.total_cost == 3.0
        assert stats.total_shuffle_bytes == 20
        assert stats.total_materialized_bytes == 40

    def test_describe(self):
        assert "TOTAL: 2 cycles" in _stats().describe()


class TestExecutionReport:
    def _report(self):
        row = {Variable("x"): Literal("v")}
        return ExecutionReport(
            engine="test", rows=[row, dict(row)], stats=_stats(), plan=["a", "b"]
        )

    def test_delegated_properties(self):
        report = self._report()
        assert report.cycles == 2
        assert report.full_cycles == 1
        assert report.map_only_cycles == 1
        assert report.cost_seconds == 3.0

    def test_statless_report(self):
        report = ExecutionReport(engine="reference", rows=[], stats=None)
        assert report.cycles == 0
        assert report.cost_seconds == 0.0

    def test_row_multiset(self):
        report = self._report()
        multiset = report.row_multiset()
        assert list(multiset.values()) == [2]

    def test_summary(self):
        text = self._report().summary()
        assert "test: 2 rows, 2 cycles" in text


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.cluster.nodes == 10
        assert config.hdfs_capacity is None
        assert config.mapjoin_threshold > 0

    def test_frozen(self):
        config = EngineConfig()
        with pytest.raises(AttributeError):
            config.mapjoin_threshold = 5  # type: ignore[misc]
