"""Tests for the EXPLAIN facility."""

import pytest

from repro.core.explain import describe_analytical, explain
from repro.core.query_model import parse_analytical
from repro.errors import PlanningError
from tests.conftest import MG1_STYLE_QUERY


def test_describe_analytical_structure():
    text = describe_analytical(parse_analytical(MG1_STYLE_QUERY))
    assert "GP1: stars 3:2, GROUP BY {f}" in text
    assert "GP2: stars 2:2, GROUP BY ALL" in text
    assert "SUM(?pr2) AS ?sumF" in text
    assert "projection:" in text


def test_explain_rapid_analytics_needs_no_graph():
    text = explain(MG1_STYLE_QUERY, engine="rapid-analytics")
    assert "rapid-analytics plan (3 MR cycles)" in text
    assert "TG_AlphaJoin" in text
    assert "TG_AgJ" in text
    assert "alpha_0: feature != ∅" in text


def test_explain_rapid_plus():
    text = explain(MG1_STYLE_QUERY, engine="rapid-plus")
    assert "rapid-plus plan (5 MR cycles)" in text


def test_explain_hive_requires_graph():
    with pytest.raises(PlanningError):
        explain(MG1_STYLE_QUERY, engine="hive-naive")


def test_explain_hive_with_graph(product_graph):
    text = explain(MG1_STYLE_QUERY, engine="hive-naive", graph=product_graph)
    assert "hive-naive plan (9 MR cycles" in text
    assert "group-by" in text


def test_explain_reference():
    text = explain(MG1_STYLE_QUERY, engine="reference")
    assert "in-memory" in text


def test_explain_unknown_engine():
    with pytest.raises(PlanningError):
        explain(MG1_STYLE_QUERY, engine="spark")


def test_explain_outer_expressions():
    query = """
    SELECT (?a / ?b AS ?ratio) {
      { SELECT (SUM(?x) AS ?a) { ?s <urn:p> ?x } }
      { SELECT (SUM(?y) AS ?b) { ?t <urn:q> ?y } }
    }
    """
    text = describe_analytical(parse_analytical(query))
    assert "outer expressions: ?ratio" in text
