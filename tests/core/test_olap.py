"""Tests for the OLAP extensions: GROUPING SETS, ROLLUP, CUBE."""

import pytest

from repro.core.engines import PAPER_ENGINES, make_engine
from repro.core.olap import cube, grouping_sets, rollup, template_from_sparql
from repro.errors import PlanningError
from repro.rdf.terms import Variable
from tests.conftest import canonical_rows

TEMPLATE_SPARQL = """
PREFIX ex: <http://ex.org/>
SELECT ?f (SUM(?pr) AS ?sum) (COUNT(?pr) AS ?cnt) {
  ?p a ex:PT1 ; ex:label ?l ; ex:feature ?f .
  ?o ex:product ?p ; ex:price ?pr .
} GROUP BY ?f
"""


@pytest.fixture(scope="module")
def template():
    return template_from_sparql(TEMPLATE_SPARQL)


F = Variable("f")
L = Variable("l")


class TestBuilders:
    def test_grouping_sets_structure(self, template):
        query = grouping_sets(template, [(F,), ()])
        assert len(query.subqueries) == 2
        assert query.subqueries[0].group_by == (F,)
        assert query.subqueries[1].group_by == ()
        aliases = {a.alias.name for sq in query.subqueries for a in sq.aggregates}
        assert aliases == {"sum_f", "cnt_f", "sum_all", "cnt_all"}

    def test_projection_covers_groups_and_aliases(self, template):
        query = grouping_sets(template, [(F,), ()])
        names = {v.name for v in query.projection}
        assert names == {"f", "sum_f", "cnt_f", "sum_all", "cnt_all"}

    def test_rollup_prefix_sets(self, template):
        query = rollup(template, (F, L))
        assert [sq.group_by for sq in query.subqueries] == [(F, L), (F,), ()]

    def test_cube_all_subsets(self, template):
        query = cube(template, (F, L))
        sets = {sq.group_by for sq in query.subqueries}
        assert sets == {(F, L), (F,), (L,), ()}
        assert query.subqueries[-1].group_by == ()  # grand total last

    def test_rejects_unknown_dimension(self, template):
        with pytest.raises(PlanningError):
            grouping_sets(template, [(Variable("nope"),)])

    def test_rejects_duplicate_sets(self, template):
        with pytest.raises(PlanningError):
            grouping_sets(template, [(F,), (F,)])

    def test_rejects_empty_inputs(self, template):
        with pytest.raises(PlanningError):
            grouping_sets(template, [])
        with pytest.raises(PlanningError):
            rollup(template, ())
        with pytest.raises(PlanningError):
            cube(template, ())

    def test_template_requires_single_subquery(self, mg1_style_query):
        with pytest.raises(PlanningError):
            template_from_sparql(mg1_style_query)


class TestExecution:
    def test_rollup_equivalence_across_engines(self, template, product_graph):
        query = rollup(template, (F,))
        expected = canonical_rows(
            make_engine("reference").execute(query, product_graph).rows
        )
        for engine in PAPER_ENGINES:
            report = make_engine(engine).execute(query, product_graph)
            assert canonical_rows(report.rows) == expected, engine

    def test_rollup_constant_cycles_on_rapid_analytics(self, template, product_graph):
        """Any number of grouping sets costs the same 3 cycles on RA
        (composite pass + fused Agg-Join + final join)."""
        two = grouping_sets(template, [(F,), ()])
        report2 = make_engine("rapid-analytics").execute(two, product_graph)
        assert report2.cycles == 3

    def test_rollup_mqo_uses_nway_composite(self, template, product_graph):
        """Hive-MQO shares the composite for ≥3 grouping sets too."""
        query = grouping_sets(template, [(F,), (L,), ()])
        mqo = make_engine("hive-mqo").execute(query, product_graph)
        naive = make_engine("hive-naive").execute(query, product_graph)
        assert any("mqo" in name for name in mqo.plan)
        assert mqo.cycles < naive.cycles
        expected = canonical_rows(
            make_engine("reference").execute(query, product_graph).rows
        )
        assert canonical_rows(mqo.rows) == expected

    def test_cube_values_consistent(self, template, product_graph):
        """Every fine row's roll-up columns equal the coarser groups."""
        query = grouping_sets(template, [(F,), ()])
        report = make_engine("rapid-analytics").execute(query, product_graph)
        totals = {
            tuple(sorted((v.name, str(t)) for v, t in row.items() if v.name.endswith("_all")))
            for row in report.rows
        }
        assert len(totals) == 1  # the grand total repeats identically
