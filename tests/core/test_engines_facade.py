"""Tests for the public facade (run_query / run_all_engines / coercions)."""

import pytest

from repro import run_all_engines, run_query
from repro.core.engines import make_engine, to_analytical
from repro.core.query_model import AnalyticalQuery
from repro.errors import PlanningError
from repro.sparql.parser import parse_query
from tests.conftest import MG1_STYLE_QUERY, canonical_rows


def test_run_query_accepts_text(product_graph):
    report = run_query(MG1_STYLE_QUERY, product_graph)
    assert report.engine == "rapid-analytics"
    assert report.rows


def test_run_query_accepts_parsed_ast(product_graph):
    parsed = parse_query(MG1_STYLE_QUERY)
    report = run_query(parsed, product_graph, engine="hive-naive")
    assert report.engine == "hive-naive"


def test_run_query_accepts_analytical_model(product_graph):
    analytical = to_analytical(MG1_STYLE_QUERY)
    assert isinstance(analytical, AnalyticalQuery)
    report = run_query(analytical, product_graph, engine="reference")
    assert report.rows


def test_to_analytical_is_idempotent():
    analytical = to_analytical(MG1_STYLE_QUERY)
    assert to_analytical(analytical) is analytical


def test_run_all_engines_consistent(product_graph):
    reports = run_all_engines(MG1_STYLE_QUERY, product_graph)
    assert set(reports) == {"hive-naive", "hive-mqo", "rapid-plus", "rapid-analytics"}
    reference = canonical_rows(run_query(MG1_STYLE_QUERY, product_graph, engine="reference").rows)
    for engine, report in reports.items():
        assert canonical_rows(report.rows) == reference, engine


def test_unknown_engine_lists_known():
    with pytest.raises(PlanningError) as exc_info:
        make_engine("spark")
    assert "rapid-analytics" in str(exc_info.value)


def test_readme_quickstart_shape(bsbm_small):
    """The README's quickstart claim: 3 vs 9 MR cycles on MG1."""
    from repro.bench.catalog import get_query

    sparql = get_query("MG1").sparql
    assert run_query(sparql, bsbm_small, engine="rapid-analytics").cycles == 3
    assert run_query(sparql, bsbm_small, engine="hive-naive").cycles == 9
