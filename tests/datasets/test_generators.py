"""Dataset generator tests: determinism, schema coverage, selectivity."""

import pytest

from repro.datasets import bsbm, chem2bio2rdf, pubmed
from repro.datasets.seeds import make_rng, sample_without_replacement, weighted_choice, zipf_weights
from repro.errors import DatasetError
from repro.rdf.namespaces import BSBM_NS, CHEM_NS, PUBMED_NS
from repro.rdf.terms import Literal
from repro.rdf.triples import RDF_TYPE


class TestSeeds:
    def test_zipf_weights_sum_to_one(self):
        weights = zipf_weights(10)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)

    def test_zipf_rejects_empty(self):
        with pytest.raises(DatasetError):
            zipf_weights(0)

    def test_weighted_choice_deterministic(self):
        items = ["a", "b", "c"]
        weights = zipf_weights(3)
        assert weighted_choice(make_rng(1), items, weights) == weighted_choice(
            make_rng(1), items, weights
        )

    def test_sample_without_replacement_caps_count(self):
        assert len(sample_without_replacement(make_rng(1), [1, 2], 10)) == 2


class TestBSBM:
    def test_deterministic(self):
        config = bsbm.BSBMConfig(products=50, seed=11)
        assert set(bsbm.generate(config)) == set(bsbm.generate(config))

    def test_different_seeds_differ(self):
        a = bsbm.generate(bsbm.BSBMConfig(products=50, seed=1))
        b = bsbm.generate(bsbm.BSBMConfig(products=50, seed=2))
        assert set(a) != set(b)

    def test_every_type_represented(self):
        graph = bsbm.generate(bsbm.BSBMConfig(products=20))
        for index in range(1, 10):
            assert graph.subjects(RDF_TYPE, bsbm.product_type(index)), index

    def test_type_selectivity_ordering(self):
        graph = bsbm.generate(bsbm.BSBMConfig(products=600))
        type1 = len(graph.subjects(RDF_TYPE, bsbm.product_type(1)))
        type9 = len(graph.subjects(RDF_TYPE, bsbm.product_type(9)))
        assert type1 > 5 * type9  # lo vs hi selectivity

    def test_offer_structure(self):
        config = bsbm.BSBMConfig(products=30, offers_per_product=3)
        graph = bsbm.generate(config)
        offers = graph.subjects(BSBM_NS.product)
        assert len(offers) == 90
        # Every offer has a price and a vendor.
        for offer in list(offers)[:10]:
            assert graph.objects(offer, BSBM_NS.price)
            assert graph.objects(offer, BSBM_NS.vendor)

    def test_feature_multivalued(self):
        graph = bsbm.generate(bsbm.BSBMConfig(products=200, min_features=2, max_features=4))
        counts = [
            len(graph.objects(product, BSBM_NS.productFeature))
            for product in graph.subjects(BSBM_NS.label)
            if graph.objects(product, BSBM_NS.productFeature)
        ]
        assert counts and min(counts) >= 2

    def test_presets_scale(self):
        small = bsbm.preset("500k")
        large = bsbm.preset("2m")
        assert large.products == 4 * small.products  # the paper's scale ratio

    def test_unknown_preset(self):
        with pytest.raises(DatasetError):
            bsbm.preset("nope")

    def test_invalid_config(self):
        with pytest.raises(DatasetError):
            bsbm.BSBMConfig(products=0)
        with pytest.raises(DatasetError):
            bsbm.BSBMConfig(min_features=5, max_features=2)


class TestChem:
    def test_deterministic(self):
        config = chem2bio2rdf.ChemConfig(seed=5)
        assert set(chem2bio2rdf.generate(config)) == set(chem2bio2rdf.generate(config))

    def test_schema_properties_present(self):
        graph = chem2bio2rdf.generate(chem2bio2rdf.preset("tiny"))
        for prop in (
            CHEM_NS.CID, CHEM_NS.outcome, CHEM_NS.Score, CHEM_NS.gi,
            CHEM_NS.geneSymbol, CHEM_NS.gene, CHEM_NS.DBID, CHEM_NS.Generic_Name,
            CHEM_NS.protein, CHEM_NS.Pathway_name, CHEM_NS.pathwayid,
            CHEM_NS.side_effect, CHEM_NS.cid, CHEM_NS.SwissProt_ID, CHEM_NS.disease,
        ):
            assert prop in graph.properties(), prop

    def test_dexamethasone_exists(self):
        graph = chem2bio2rdf.generate(chem2bio2rdf.preset("tiny"))
        assert graph.subjects(CHEM_NS.Generic_Name, Literal("Dexamethasone"))

    def test_publication_tables_dominate(self):
        """The medline-style tables must be the big ones (G9 narrative)."""
        graph = chem2bio2rdf.generate(chem2bio2rdf.preset("paper"))
        counts = graph.property_counts()
        assert counts[CHEM_NS.gene] > counts[CHEM_NS.CID]

    def test_invalid_config(self):
        with pytest.raises(DatasetError):
            chem2bio2rdf.ChemConfig(compounds=0)


class TestPubMed:
    def test_deterministic(self):
        config = pubmed.PubMedConfig(publications=40, seed=3)
        assert set(pubmed.generate(config)) == set(pubmed.generate(config))

    def test_pub_type_selectivity(self):
        graph = pubmed.generate(pubmed.PubMedConfig(publications=600))
        journal = len(graph.subjects(PUBMED_NS.pub_type, Literal("Journal Article")))
        news = len(graph.subjects(PUBMED_NS.pub_type, Literal("News")))
        assert journal > 5 * news  # MG15 (lo) vs MG16 (hi)
        assert news > 0

    def test_mesh_headings_heavily_multivalued(self):
        config = pubmed.PubMedConfig(publications=50, min_mesh=4, max_mesh=12)
        graph = pubmed.generate(config)
        for pub in list(graph.subjects(PUBMED_NS.pub_type))[:10]:
            assert len(graph.objects(pub, PUBMED_NS.mesh_heading)) >= 4

    def test_grants_have_agency_and_country(self):
        graph = pubmed.generate(pubmed.preset("tiny"))
        grants = {o for o in graph.objects(None, PUBMED_NS.grant)}
        assert grants
        for grant in list(grants)[:10]:
            assert graph.objects(grant, PUBMED_NS.grant_agency)
            assert graph.objects(grant, PUBMED_NS.grant_country)

    def test_authors_have_last_names(self):
        graph = pubmed.generate(pubmed.preset("tiny"))
        authors = {o for o in graph.objects(None, PUBMED_NS.author)}
        for author in list(authors)[:10]:
            assert graph.objects(author, PUBMED_NS.last_name)

    def test_invalid_config(self):
        with pytest.raises(DatasetError):
            pubmed.PubMedConfig(publications=0)
        with pytest.raises(DatasetError):
            pubmed.PubMedConfig(min_mesh=9, max_mesh=2)
