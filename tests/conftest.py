"""Shared fixtures: small benchmark graphs and row-comparison helpers."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.datasets import bsbm, chem2bio2rdf, pubmed
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.rdf.triples import RDF_TYPE, Triple

EX = "http://ex.org/"


def ex(name: str) -> IRI:
    return IRI(EX + name)


def canonical_rows(rows) -> Counter:
    """Engine-independent multiset form of solution rows."""
    return Counter(
        frozenset((variable.name, str(term)) for variable, term in row.items())
        for row in rows
    )


def canonical_sorted_rows(rows) -> list[tuple[tuple[str, str], ...]]:
    """Engine-independent *sorted canonical form*: every row rendered as
    sorted ``(name, n3)`` pairs, rows sorted — duplicates preserved, so
    equality is bag-equality and a mismatch diff is readable.  The
    differential suite's and the scheduler tests' shared oracle form."""
    return sorted(
        tuple(sorted((variable.name, term.n3()) for variable, term in row.items()))
        for row in rows
    )


@pytest.fixture(scope="session")
def bsbm_small() -> Graph:
    return bsbm.generate(bsbm.BSBMConfig(products=80, vendors=10, offers_per_product=2))


@pytest.fixture(scope="session")
def chem_tiny() -> Graph:
    return chem2bio2rdf.generate(chem2bio2rdf.preset("tiny"))


@pytest.fixture(scope="session")
def pubmed_tiny() -> Graph:
    return pubmed.generate(pubmed.preset("tiny"))


@pytest.fixture(scope="session")
def product_graph() -> Graph:
    """A hand-built MG1-style micro dataset with known aggregates.

    6 products of type PT1; product 3 has no feature (contributes only
    to roll-ups); product 5 has two features (multi-valued); each
    product has two offers with prices 100*(i+1) and 100*(i+1)+1.
    """
    graph = Graph()
    triples = []
    for i in range(6):
        product = ex(f"prod{i}")
        triples.append(Triple(product, RDF_TYPE, ex("PT1")))
        triples.append(Triple(product, ex("label"), Literal(f"product {i}")))
        if i != 3:
            triples.append(Triple(product, ex("feature"), ex(f"feat{i % 2}")))
        if i == 5:
            triples.append(Triple(product, ex("feature"), ex("feat0")))
        for j in range(2):
            offer = ex(f"offer{i}_{j}")
            triples.append(Triple(offer, ex("product"), product))
            triples.append(Triple(offer, ex("price"), Literal.from_python(100 * (i + 1) + j)))
    graph.add_all(triples)
    return graph


MG1_STYLE_QUERY = """
PREFIX ex: <http://ex.org/>
SELECT ?f ?sumF ?cntF ?sumT ?cntT {
  { SELECT ?f (SUM(?pr2) AS ?sumF) (COUNT(?pr2) AS ?cntF) {
      ?p2 a ex:PT1 ; ex:label ?l2 ; ex:feature ?f .
      ?o2 ex:product ?p2 ; ex:price ?pr2 .
    } GROUP BY ?f
  }
  { SELECT (SUM(?pr) AS ?sumT) (COUNT(?pr) AS ?cntT) {
      ?p1 a ex:PT1 ; ex:label ?l1 .
      ?o1 ex:product ?p1 ; ex:price ?pr .
    }
  }
}
"""


@pytest.fixture(scope="session")
def mg1_style_query() -> str:
    return MG1_STYLE_QUERY
