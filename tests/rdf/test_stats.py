"""Tests for graph profiling."""

import pytest

from repro.datasets import pubmed
from repro.rdf.graph import Graph
from repro.rdf.namespaces import PUBMED_NS
from repro.rdf.stats import profile
from repro.rdf.terms import IRI, Literal
from repro.rdf.triples import RDF_TYPE, Triple


@pytest.fixture
def small_graph():
    g = Graph()
    g.add_all(
        [
            Triple(IRI("urn:a"), RDF_TYPE, IRI("urn:C1")),
            Triple(IRI("urn:b"), RDF_TYPE, IRI("urn:C1")),
            Triple(IRI("urn:c"), RDF_TYPE, IRI("urn:C2")),
            Triple(IRI("urn:a"), IRI("urn:tag"), Literal("x")),
            Triple(IRI("urn:a"), IRI("urn:tag"), Literal("y")),
            Triple(IRI("urn:a"), IRI("urn:tag"), Literal("z")),
            Triple(IRI("urn:b"), IRI("urn:name"), Literal("bee")),
        ]
    )
    return g


def test_totals(small_graph):
    stats = profile(small_graph)
    assert stats.total_triples == 7
    assert set(stats.properties) == {RDF_TYPE, IRI("urn:tag"), IRI("urn:name")}


def test_property_fanout_and_multivalue(small_graph):
    stats = profile(small_graph)
    tag = stats.property_stats(IRI("urn:tag"))
    assert tag.triples == 3
    assert tag.distinct_subjects == 1
    assert tag.avg_fanout == 3.0
    assert tag.is_multi_valued
    name = stats.property_stats(IRI("urn:name"))
    assert not name.is_multi_valued


def test_fanout_histogram(small_graph):
    stats = profile(small_graph)
    tag = stats.property_stats(IRI("urn:tag"))
    # urn:a carries all three tag objects.
    assert tag.fanout_histogram == ((3, 1),)
    assert tag.max_fanout == 3
    rdf_type = stats.property_stats(RDF_TYPE)
    assert rdf_type.fanout_histogram == ((1, 3),)
    assert rdf_type.max_fanout == 1


def test_fanout_histogram_in_as_dict(small_graph):
    payload = profile(small_graph).as_dict()
    assert payload["schema"] == "repro-graph-stats/v1.2"
    tag = payload["properties"]["urn:tag"]
    assert tag["fanout_histogram"] == {"3": 1}
    assert tag["max_fanout"] == 3
    for prop in payload["properties"].values():
        assert sum(prop["fanout_histogram"].values()) == prop["distinct_subjects"]
        assert (
            sum(int(f) * n for f, n in prop["fanout_histogram"].items())
            == prop["triples"]
        )


def test_class_selectivity(small_graph):
    stats = profile(small_graph)
    assert stats.class_sizes == {IRI("urn:C1"): 2, IRI("urn:C2"): 1}
    assert stats.class_selectivity(IRI("urn:C2")) == pytest.approx(1 / 3)
    # Unknown classes get a small nonzero floor (half a subject's
    # share, clamped), so a cost-based plan never prices a typed star
    # at exactly zero just because the class is absent from the sample.
    assert stats.class_selectivity(IRI("urn:C9")) == pytest.approx(0.5 / 3)


def test_equivalence_class_histogram(small_graph):
    stats = profile(small_graph)
    # a: {type, tag}; b: {type, name}; c: {type}
    assert len(stats.equivalence_class_histogram) == 3


def test_rankings(small_graph):
    stats = profile(small_graph)
    assert stats.most_multi_valued(1)[0].property == IRI("urn:tag")
    # rdf:type and urn:tag tie at 3 triples; both are valid winners.
    top = stats.largest_properties(1)[0]
    assert top.triples == 3
    assert top.property in (RDF_TYPE, IRI("urn:tag"))


def test_describe_renders(small_graph):
    text = profile(small_graph).describe()
    assert "7 triples" in text
    assert "multi-valued" in text


def test_empty_graph():
    stats = profile(Graph())
    assert stats.total_triples == 0
    assert stats.class_selectivity(IRI("urn:C")) == 0.0
    assert stats.most_multi_valued() == []


def test_max_fanout_on_empty_histogram():
    from repro.rdf.stats import PropertyStats

    empty = PropertyStats(
        property=IRI("urn:p"), triples=0, distinct_subjects=0, distinct_objects=0
    )
    assert empty.max_fanout == 0


def test_pubmed_mesh_is_most_multi_valued():
    """The dataset property driving MG13's blowup shows up in the profile."""
    stats = profile(pubmed.generate(pubmed.preset("tiny")))
    top = {s.property for s in stats.most_multi_valued(3)}
    assert PUBMED_NS.mesh_heading in top
