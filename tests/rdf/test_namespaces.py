"""Unit tests for namespace management."""

import pytest

from repro.errors import RDFError
from repro.rdf.namespaces import Namespace, NamespaceManager, default_manager
from repro.rdf.terms import IRI


def test_namespace_attribute_access():
    ns = Namespace("http://ex.org/v/")
    assert ns.price == IRI("http://ex.org/v/price")
    assert ns["price"] == IRI("http://ex.org/v/price")


def test_namespace_contains():
    ns = Namespace("http://ex.org/v/")
    assert IRI("http://ex.org/v/price") in ns
    assert IRI("http://other.org/price") not in ns


def test_namespace_underscore_attribute_raises():
    ns = Namespace("http://ex.org/v/")
    with pytest.raises(AttributeError):
        ns._private  # noqa: B018


def test_manager_expand():
    manager = NamespaceManager()
    manager.bind("ex", "http://ex.org/v/")
    assert manager.expand("ex:price") == IRI("http://ex.org/v/price")


def test_manager_expand_unknown_prefix():
    manager = NamespaceManager()
    with pytest.raises(RDFError):
        manager.expand("zz:price")


def test_manager_expand_requires_colon():
    manager = NamespaceManager()
    with pytest.raises(RDFError):
        manager.expand("price")


def test_manager_shrink_prefers_longest_base():
    manager = NamespaceManager()
    manager.bind("a", "http://ex.org/")
    manager.bind("b", "http://ex.org/v/")
    assert manager.shrink(IRI("http://ex.org/v/price")) == "b:price"


def test_manager_shrink_falls_back_to_n3():
    manager = NamespaceManager()
    assert manager.shrink(IRI("urn:x")) == "<urn:x>"


def test_default_manager_has_benchmark_prefixes():
    manager = default_manager()
    prefixes = manager.prefixes()
    for prefix in ("rdf", "bsbm", "chem", "pubmed", "xsd"):
        assert prefix in prefixes
    assert manager.expand("rdf:type").value.endswith("#type")
