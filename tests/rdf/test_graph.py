"""Unit tests for the indexed graph."""

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import Triple, TriplePattern


@pytest.fixture
def graph() -> Graph:
    g = Graph()
    g.add_all(
        [
            Triple(IRI("urn:a"), IRI("urn:p1"), IRI("urn:b")),
            Triple(IRI("urn:a"), IRI("urn:p2"), Literal("x")),
            Triple(IRI("urn:b"), IRI("urn:p1"), IRI("urn:c")),
            Triple(IRI("urn:c"), IRI("urn:p2"), Literal("x")),
        ]
    )
    return g


def test_len_and_contains(graph):
    assert len(graph) == 4
    assert Triple(IRI("urn:a"), IRI("urn:p1"), IRI("urn:b")) in graph


def test_add_duplicate_returns_false(graph):
    assert not graph.add(Triple(IRI("urn:a"), IRI("urn:p1"), IRI("urn:b")))
    assert len(graph) == 4


def test_discard(graph):
    triple = Triple(IRI("urn:a"), IRI("urn:p1"), IRI("urn:b"))
    assert graph.discard(triple)
    assert triple not in graph
    assert not graph.discard(triple)
    # The indexes must be consistent after removal.
    assert list(graph.triples(IRI("urn:a"), IRI("urn:p1"), None)) == []


@pytest.mark.parametrize(
    "lookup,expected_count",
    [
        ((IRI("urn:a"), None, None), 2),
        ((None, IRI("urn:p1"), None), 2),
        ((None, None, Literal("x")), 2),
        ((IRI("urn:a"), IRI("urn:p2"), None), 1),
        ((None, IRI("urn:p1"), IRI("urn:c")), 1),
        ((IRI("urn:a"), IRI("urn:p1"), IRI("urn:b")), 1),
        ((None, None, None), 4),
        ((IRI("urn:zz"), None, None), 0),
        ((None, IRI("urn:zz"), None), 0),
        ((None, None, IRI("urn:zz")), 0),
    ],
)
def test_triples_lookup(graph, lookup, expected_count):
    assert len(list(graph.triples(*lookup))) == expected_count


def test_match_bindings(graph):
    pattern = TriplePattern(Variable("s"), IRI("urn:p2"), Variable("o"))
    subjects = {b[Variable("s")] for b in graph.match(pattern)}
    assert subjects == {IRI("urn:a"), IRI("urn:c")}


def test_match_repeated_variable(graph):
    graph2 = graph.copy()
    graph2.add(Triple(IRI("urn:d"), IRI("urn:p1"), IRI("urn:d")))
    pattern = TriplePattern(Variable("x"), IRI("urn:p1"), Variable("x"))
    matches = list(graph2.match(pattern))
    assert matches == [{Variable("x"): IRI("urn:d")}]


def test_subjects_objects_properties(graph):
    assert graph.subjects(IRI("urn:p1")) == {IRI("urn:a"), IRI("urn:b")}
    assert graph.objects(IRI("urn:a")) == {IRI("urn:b"), Literal("x")}
    assert graph.properties() == {IRI("urn:p1"), IRI("urn:p2")}


def test_property_counts(graph):
    assert graph.property_counts() == {IRI("urn:p1"): 2, IRI("urn:p2"): 2}


def test_subject_grouped(graph):
    grouped = graph.subject_grouped()
    assert set(grouped) == {IRI("urn:a"), IRI("urn:b"), IRI("urn:c")}
    assert len(grouped[IRI("urn:a")]) == 2


def test_copy_is_independent(graph):
    clone = graph.copy()
    clone.add(Triple(IRI("urn:z"), IRI("urn:p1"), IRI("urn:z")))
    assert len(clone) == 5
    assert len(graph) == 4
