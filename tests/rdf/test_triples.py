"""Unit tests for triples and triple patterns."""

import pytest

from repro.errors import RDFError
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import RDF_TYPE, Triple, TriplePattern, join_variables

S, P, O = IRI("urn:s"), IRI("urn:p"), IRI("urn:o")


class TestTriple:
    def test_construction_and_iteration(self):
        triple = Triple(S, P, O)
        assert list(triple) == [S, P, O]

    def test_literal_subject_rejected(self):
        with pytest.raises(RDFError):
            Triple(Literal("x"), P, O)

    def test_variable_component_rejected(self):
        with pytest.raises(RDFError):
            Triple(S, P, Variable("v"))  # type: ignore[arg-type]

    def test_non_iri_property_rejected(self):
        with pytest.raises(RDFError):
            Triple(S, Literal("p"), O)  # type: ignore[arg-type]

    def test_n3(self):
        assert Triple(S, P, O).n3() == "<urn:s> <urn:p> <urn:o> ."


class TestTriplePattern:
    def test_variables(self):
        pattern = TriplePattern(Variable("s"), P, Variable("o"))
        assert pattern.variables() == frozenset({Variable("s"), Variable("o")})

    def test_prop_bound(self):
        assert TriplePattern(Variable("s"), P, O).prop() == P

    def test_prop_unbound(self):
        assert TriplePattern(Variable("s"), Variable("p"), O).prop() is None

    def test_is_rdf_type(self):
        assert TriplePattern(Variable("s"), RDF_TYPE, O).is_rdf_type()
        assert not TriplePattern(Variable("s"), P, O).is_rdf_type()

    def test_role_of(self):
        pattern = TriplePattern(Variable("s"), P, Variable("o"))
        assert pattern.role_of(Variable("s")) == "subject"
        assert pattern.role_of(Variable("o")) == "object"

    def test_role_of_missing_variable(self):
        pattern = TriplePattern(Variable("s"), P, O)
        with pytest.raises(RDFError):
            pattern.role_of(Variable("zz"))

    def test_bind_success(self):
        pattern = TriplePattern(Variable("s"), P, Variable("o"))
        bindings = pattern.bind(Triple(S, P, O))
        assert bindings == {Variable("s"): S, Variable("o"): O}

    def test_bind_property_mismatch(self):
        pattern = TriplePattern(Variable("s"), IRI("urn:other"), Variable("o"))
        assert pattern.bind(Triple(S, P, O)) is None

    def test_bind_repeated_variable_consistency(self):
        pattern = TriplePattern(Variable("x"), P, Variable("x"))
        assert pattern.bind(Triple(S, P, O)) is None
        assert pattern.bind(Triple(S, P, S)) == {Variable("x"): S}

    def test_matches(self):
        assert TriplePattern(Variable("s"), P, O).matches(Triple(S, P, O))
        assert not TriplePattern(Variable("s"), P, IRI("urn:x")).matches(Triple(S, P, O))


def test_join_variables():
    tp1 = TriplePattern(Variable("a"), P, Variable("b"))
    tp2 = TriplePattern(Variable("b"), P, Variable("c"))
    assert join_variables(tp1, tp2) == frozenset({Variable("b")})
