"""Unit tests for RDF terms."""

import pytest

from repro.errors import RDFError
from repro.rdf.terms import (
    BNode,
    IRI,
    Literal,
    Variable,
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
    is_concrete,
    term_sort_key,
)


class TestIRI:
    def test_n3(self):
        assert IRI("http://ex.org/a").n3() == "<http://ex.org/a>"

    def test_empty_rejected(self):
        with pytest.raises(RDFError):
            IRI("")

    def test_local_name_hash(self):
        assert IRI("http://ex.org/v#price").local_name() == "price"

    def test_local_name_slash(self):
        assert IRI("http://ex.org/v/price").local_name() == "price"

    def test_local_name_opaque(self):
        assert IRI("urn:thing").local_name() == "urn:thing"

    def test_equality_and_hash(self):
        assert IRI("urn:a") == IRI("urn:a")
        assert hash(IRI("urn:a")) == hash(IRI("urn:a"))
        assert IRI("urn:a") != IRI("urn:b")


class TestBNode:
    def test_n3(self):
        assert BNode("b0").n3() == "_:b0"

    def test_empty_rejected(self):
        with pytest.raises(RDFError):
            BNode("")


class TestLiteral:
    def test_plain(self):
        assert Literal("hi").n3() == '"hi"'

    def test_language(self):
        assert Literal("hi", language="en").n3() == '"hi"@en'

    def test_typed(self):
        assert Literal("5", datatype=XSD_INTEGER).n3() == f'"5"^^<{XSD_INTEGER}>'

    def test_datatype_and_language_conflict(self):
        with pytest.raises(RDFError):
            Literal("x", datatype=XSD_INTEGER, language="en")

    def test_escaping(self):
        assert Literal('a"b\nc').n3() == '"a\\"b\\nc"'

    @pytest.mark.parametrize(
        "value,datatype,expected",
        [
            (42, XSD_INTEGER, 42),
            (2.5, XSD_DOUBLE, 2.5),
            (True, XSD_BOOLEAN, True),
        ],
    )
    def test_from_python_round_trip(self, value, datatype, expected):
        literal = Literal.from_python(value)
        assert literal.datatype == datatype
        assert literal.python_value() == expected

    def test_from_python_string(self):
        literal = Literal.from_python("plain")
        assert literal.datatype is None
        assert literal.python_value() == "plain"

    def test_from_python_rejects_other(self):
        with pytest.raises(RDFError):
            Literal.from_python(object())  # type: ignore[arg-type]

    def test_invalid_integer_lexical(self):
        with pytest.raises(RDFError):
            Literal("abc", datatype=XSD_INTEGER).python_value()

    def test_invalid_boolean_lexical(self):
        with pytest.raises(RDFError):
            Literal("maybe", datatype=XSD_BOOLEAN).python_value()

    def test_boolean_numeric_forms(self):
        assert Literal("1", datatype=XSD_BOOLEAN).python_value() is True
        assert Literal("0", datatype=XSD_BOOLEAN).python_value() is False

    def test_is_numeric(self):
        assert Literal("5", datatype=XSD_INTEGER).is_numeric()
        assert not Literal("5").is_numeric()


class TestVariable:
    def test_n3(self):
        assert Variable("x").n3() == "?x"

    def test_sigil_rejected(self):
        with pytest.raises(RDFError):
            Variable("?x")

    def test_empty_rejected(self):
        with pytest.raises(RDFError):
            Variable("")


def test_is_concrete():
    assert is_concrete(IRI("urn:a"))
    assert is_concrete(Literal("x"))
    assert not is_concrete(Variable("v"))


def test_term_sort_key_orders_types():
    terms = [Literal("z"), BNode("a"), IRI("urn:z")]
    ordered = sorted(terms, key=term_sort_key)
    assert isinstance(ordered[0], IRI)
    assert isinstance(ordered[1], BNode)
    assert isinstance(ordered[2], Literal)


def test_term_sort_key_rejects_variables():
    with pytest.raises(RDFError):
        term_sort_key(Variable("v"))  # type: ignore[arg-type]
