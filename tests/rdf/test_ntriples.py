"""Unit and property tests for N-Triples parsing/serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NTriplesParseError
from repro.rdf.graph import Graph
from repro.rdf.ntriples import parse, parse_graph, parse_line, serialize
from repro.rdf.terms import BNode, IRI, Literal
from repro.rdf.triples import Triple


class TestParseLine:
    def test_iri_triple(self):
        triple = parse_line("<urn:s> <urn:p> <urn:o> .")
        assert triple == Triple(IRI("urn:s"), IRI("urn:p"), IRI("urn:o"))

    def test_plain_literal(self):
        triple = parse_line('<urn:s> <urn:p> "hello" .')
        assert triple.object == Literal("hello")

    def test_language_literal(self):
        triple = parse_line('<urn:s> <urn:p> "bonjour"@fr .')
        assert triple.object == Literal("bonjour", language="fr")

    def test_typed_literal(self):
        triple = parse_line('<urn:s> <urn:p> "5"^^<urn:int> .')
        assert triple.object == Literal("5", datatype="urn:int")

    def test_bnode_subject(self):
        triple = parse_line("_:b0 <urn:p> <urn:o> .")
        assert triple.subject == BNode("b0")

    def test_escapes(self):
        triple = parse_line(r'<urn:s> <urn:p> "a\"b\nc\t\\d" .')
        assert triple.object.lexical == 'a"b\nc\t\\d'

    def test_unicode_escape(self):
        triple = parse_line(r'<urn:s> <urn:p> "é" .')
        assert triple.object.lexical == "é"

    def test_comment_and_blank_lines(self):
        assert parse_line("# a comment") is None
        assert parse_line("   ") is None

    @pytest.mark.parametrize(
        "bad",
        [
            "<urn:s> <urn:p> <urn:o>",  # missing dot
            "<urn:s> <urn:p> .",  # missing object
            '"lit" <urn:p> <urn:o> .',  # literal subject
            "<urn:s> _:b <urn:o> .",  # bnode property
            "<urn:s> <urn:p> <urn:o> . extra",  # trailing junk
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(NTriplesParseError):
            parse_line(bad, line_number=3)

    def test_error_carries_line_number(self):
        with pytest.raises(NTriplesParseError) as exc_info:
            parse_line("<urn:s> oops", line_number=7)
        assert exc_info.value.line_number == 7
        assert "line 7" in str(exc_info.value)


def test_parse_multi_line_document():
    document = """# header
<urn:a> <urn:p> <urn:b> .

<urn:b> <urn:p> "x"@en .
"""
    triples = list(parse(document))
    assert len(triples) == 2


def test_parse_graph():
    graph = parse_graph("<urn:a> <urn:p> <urn:b> .\n<urn:a> <urn:p> <urn:b> .\n")
    assert len(graph) == 1  # graphs deduplicate


_terms = st.one_of(
    st.from_regex(r"urn:[a-z]{1,10}", fullmatch=True).map(IRI),
    st.from_regex(r"[A-Za-z][A-Za-z0-9]{0,8}", fullmatch=True).map(BNode),
)
_objects = st.one_of(
    _terms,
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs",), min_codepoint=32),
        max_size=30,
    ).map(Literal),
    st.integers(-10**9, 10**9).map(Literal.from_python),
    st.from_regex(r"[a-z]{1,8}", fullmatch=True).map(lambda s: Literal(s, language="en")),
)
_triples = st.builds(
    Triple,
    subject=_terms,
    property=st.from_regex(r"urn:p[a-z]{0,8}", fullmatch=True).map(IRI),
    object=_objects,
)


@settings(max_examples=200, deadline=None)
@given(st.lists(_triples, max_size=20))
def test_round_trip_property(triples):
    """serialize → parse is the identity on triple lists."""
    assert list(parse(serialize(triples))) == triples


@settings(max_examples=50, deadline=None)
@given(st.lists(_triples, max_size=20))
def test_graph_round_trip_property(triples):
    graph = Graph(triples)
    assert parse_graph(serialize(graph))._triples == graph._triples
