"""Perfetto (Chrome trace-event) export tests."""

from __future__ import annotations

from repro import obs
from repro.core.engines import run_all_engines, run_query
from repro.obs.perfetto import to_chrome_trace, validate_chrome_trace
from repro.obs.sink import trace_records


def traced(product_graph, mg1_style_query, **kwargs):
    with obs.tracing() as recorder:
        run_all_engines(
            mg1_style_query,
            product_graph,
            engines=("hive-naive", "rapid-analytics"),
            **kwargs,
        )
    return trace_records(recorder)


class TestExport:
    def test_validates_against_trace_event_shape(self, product_graph, mg1_style_query):
        chrome = to_chrome_trace(traced(product_graph, mg1_style_query))
        assert validate_chrome_trace(chrome) == []

    def test_one_track_per_engine(self, product_graph, mg1_style_query):
        chrome = to_chrome_trace(traced(product_graph, mg1_style_query))
        thread_names = {
            e["args"]["name"]: e["tid"]
            for e in chrome["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names["hive-naive"] != thread_names["rapid-analytics"]
        assert thread_names["control"] == 0
        # every engine's job spans sit on that engine's track
        jobs_by_tid: dict[int, list[str]] = {}
        for e in chrome["traceEvents"]:
            if e["ph"] == "X" and e["cat"] == "job":
                jobs_by_tid.setdefault(e["tid"], []).append(e["name"])
        hive_jobs = jobs_by_tid[thread_names["hive-naive"]]
        rapid_jobs = jobs_by_tid[thread_names["rapid-analytics"]]
        assert all(name.startswith("job:hive:") for name in hive_jobs)
        assert all(name.startswith("job:ra:") for name in rapid_jobs)

    def test_simulated_timeline_microseconds(self, product_graph, mg1_style_query):
        records = traced(product_graph, mg1_style_query)
        chrome = to_chrome_trace(records)
        job_spans = [r for r in records if r["type"] == "span" and r["kind"] == "job"]
        job_events = [
            e for e in chrome["traceEvents"] if e["ph"] == "X" and e["cat"] == "job"
        ]
        by_name = {e["name"]: e for e in job_events}
        for span in job_spans:
            event = by_name[span["name"]]
            assert event["ts"] == span["sim_start"] * 1_000_000
            assert event["dur"] == span["sim_dur"] * 1_000_000

    def test_fault_events_become_instants(self, product_graph, mg1_style_query):
        from repro.mapreduce.faults import FaultPlan

        plan = FaultPlan(seed=7, task_failure_rate=0.3)
        with obs.tracing() as recorder:
            run_query(
                mg1_style_query, product_graph, engine="rapid-analytics", faults=plan
            )
        records = trace_records(recorder)
        assert any(
            r["type"] == "event" and r["name"] == "task-retry" for r in records
        ), "fault plan at rate 0.3 should inject at least one retry"
        chrome = to_chrome_trace(records)
        instants = [e for e in chrome["traceEvents"] if e["ph"] == "i"]
        assert any(e["name"] == "task-retry" for e in instants)
        # instants land on the engine's track, not the control track
        engine_tids = {
            e["tid"]
            for e in chrome["traceEvents"]
            if e["ph"] == "M"
            and e["name"] == "thread_name"
            and e["args"]["name"] == "rapid-analytics"
        }
        retry_tids = {e["tid"] for e in instants if e["name"] == "task-retry"}
        assert retry_tids <= engine_tids

    def test_metrics_exported_in_args(self, product_graph, mg1_style_query):
        chrome = to_chrome_trace(traced(product_graph, mg1_style_query))
        pruned = [
            e
            for e in chrome["traceEvents"]
            if e["ph"] == "X"
            and e["args"].get("metrics", {}).get("alpha_combinations_pruned")
        ]
        assert pruned


class TestValidator:
    def test_rejects_malformed(self):
        assert validate_chrome_trace([]) == ["top-level value must be a JSON object"]
        assert validate_chrome_trace({}) == ["'traceEvents' must be an array"]
        assert "'traceEvents' is empty" in validate_chrome_trace({"traceEvents": []})
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "Z", "name": "x", "pid": 1, "tid": 0},
                    {"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": -1, "dur": "no"},
                    {"ph": "i", "name": "", "pid": 1, "tid": 0, "ts": 0},
                ]
            }
        )
        assert any("unknown phase" in p for p in problems)
        assert any("ts must be" in p for p in problems)
        assert any("dur must be" in p for p in problems)
        assert any("missing event name" in p for p in problems)
