"""Trace sink tests: the ``repro-trace/v1`` schema contract, byte
determinism, and the paper's-mechanism acceptance check."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.core.engines import run_all_engines, run_query
from repro.errors import ReproError
from repro.obs.sink import (
    TRACE_SCHEMA,
    WALL_FIELDS,
    read_trace,
    strip_wall_fields,
    stripped_bytes,
    trace_records,
    write_trace,
)
from repro.obs.summary import render_summary, render_tree, summarize

GOLDEN = Path(__file__).resolve().parents[1] / "golden" / "trace_schema_v1.json"


def traced_mg1(product_graph, mg1_style_query, engines=("hive-naive", "rapid-analytics")):
    with obs.tracing() as recorder:
        run_all_engines(mg1_style_query, product_graph, engines=engines)
    return trace_records(recorder)


class TestSchema:
    def test_header_first(self, product_graph, mg1_style_query):
        records = traced_mg1(product_graph, mg1_style_query)
        header = records[0]
        assert header["type"] == "header"
        assert header["schema"] == TRACE_SCHEMA
        assert header["generator"] == "repro.obs"

    def test_golden_schema_contract(self, product_graph, mg1_style_query):
        """Every record carries exactly the keys the committed schema
        description pins — the v1 compatibility contract."""
        golden = json.loads(GOLDEN.read_text())
        assert golden["schema"] == TRACE_SCHEMA
        assert sorted(golden["wall_fields"]) == sorted(WALL_FIELDS)
        records = traced_mg1(product_graph, mg1_style_query)
        seen_types = set()
        for record in records:
            kind = record["type"]
            seen_types.add(kind)
            assert kind in golden["records"], f"unknown record type {kind!r}"
            assert sorted(record) == sorted(golden["records"][kind]["keys"]), (
                f"{kind} record keys drifted from the committed v1 schema"
            )
        assert seen_types == set(golden["records"])

    def test_ids_are_dense_and_ordered(self, product_graph, mg1_style_query):
        records = traced_mg1(product_graph, mg1_style_query)
        ids = [r["id"] for r in records[1:]]
        assert ids == sorted(ids)
        assert ids == list(range(len(ids)))

    def test_roundtrip_and_read_validation(self, tmp_path, product_graph, mg1_style_query):
        with obs.tracing() as recorder:
            run_query(mg1_style_query, product_graph, engine="rapid-analytics")
        path = write_trace(recorder, tmp_path / "trace.jsonl")
        records = read_trace(path)
        assert records == trace_records(recorder)

        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"type": "header", "schema": "other/v9"}\n')
        with pytest.raises(ReproError):
            read_trace(bogus)
        with pytest.raises(ReproError):
            read_trace(tmp_path / "missing.jsonl")

    def test_strip_wall_fields(self, product_graph, mg1_style_query):
        records = traced_mg1(product_graph, mg1_style_query)
        for record in strip_wall_fields(records):
            assert not set(record) & set(WALL_FIELDS)


class TestDeterminism:
    def test_repeat_runs_byte_identical(self, product_graph, mg1_style_query):
        first = traced_mg1(product_graph, mg1_style_query)
        second = traced_mg1(product_graph, mg1_style_query)
        assert stripped_bytes(first) == stripped_bytes(second)

    def test_faulted_run_deterministic(self, product_graph, mg1_style_query):
        from repro.mapreduce.faults import FaultPlan

        plan = FaultPlan(seed=7, task_failure_rate=0.3, straggler_rate=0.3,
                         hdfs_write_failure_rate=0.3)

        def one():
            with obs.tracing() as recorder:
                run_query(
                    mg1_style_query, product_graph,
                    engine="rapid-analytics", faults=plan,
                )
            return trace_records(recorder)

        first, second = one(), one()
        assert stripped_bytes(first) == stripped_bytes(second)
        # and the plan at these rates actually injected something
        assert any(r["type"] == "event" for r in first)


class TestPaperMechanism:
    """ISSUE acceptance: the trace alone shows why rapid-analytics wins."""

    def test_fewer_cycles_and_alpha_pruning(self, product_graph, mg1_style_query):
        records = traced_mg1(product_graph, mg1_style_query)
        by_engine = {s.engine: s for s in summarize(records)}
        hive = by_engine["hive-naive"]
        rapid = by_engine["rapid-analytics"]
        # fewer MR-cycle spans...
        assert rapid.jobs < hive.jobs
        # ...and superfluous α-join combinations pruned (product 3 has no
        # feature, so its detail records satisfy only the roll-up α).
        assert rapid.metrics.get("alpha_combinations_pruned", 0) > 0
        assert rapid.metrics.get("alpha_combinations_materialized", 0) > 0
        assert rapid.metrics.get("agg_join_groups", 0) > 0
        assert rapid.sim_seconds < hive.sim_seconds

    def test_sigma_filter_visible(self, bsbm_small):
        from repro.bench.catalog import get_query

        with obs.tracing() as recorder:
            run_query(get_query("MG1").sparql, bsbm_small, engine="rapid-analytics")
        records = trace_records(recorder)
        summary = summarize(records)[0]
        assert summary.metrics.get("sigma_dropped_triplegroups", 0) > 0


class TestRenderings:
    def test_summary_table(self, product_graph, mg1_style_query):
        records = traced_mg1(product_graph, mg1_style_query)
        text = render_summary(records)
        assert "hive-naive" in text
        assert "rapid-analytics" in text
        assert "alpha_combinations_pruned=" in text

    def test_tree_depth_limit(self, product_graph, mg1_style_query):
        records = traced_mg1(product_graph, mg1_style_query)
        full = render_tree(records)
        shallow = render_tree(records, max_depth=1)
        assert len(shallow.splitlines()) < len(full.splitlines())
        assert "[root]" in shallow
        assert "job:" in full and "job:" not in shallow

    def test_two_clocks_in_tree(self, product_graph, mg1_style_query):
        records = traced_mg1(product_graph, mg1_style_query)
        text = render_tree(records, max_depth=2)
        assert "sim=" in text and "wall=" in text
