"""Calibration monitor: q-error math, report shape, drift verdicts, and
the live hookup to an executed cost-planner run."""

from types import SimpleNamespace

import pytest

from repro.bench.catalog import get_query
from repro.core.engines import make_engine, to_analytical
from repro.core.results import EngineConfig
from repro.obs.calibration import (
    CARDINALITY_DRIFT_THRESHOLD,
    COST_DRIFT_THRESHOLD,
    CalibrationMonitor,
    q_error,
)
from repro.obs.metrics import MetricsRegistry, collecting


def test_q_error_is_symmetric_and_floored():
    assert q_error(10, 10) == 1.0
    assert q_error(20, 10) == 2.0
    assert q_error(10, 20) == 2.0  # under-estimate penalized equally
    assert q_error(0, 0) == 1.0  # floor: exactly-right empty cycles
    assert q_error(5, 0) == 5.0
    assert q_error(0.0005, 0.002, floor=0.001) == 2.0  # cost floor


def _estimate(name, rows, cost):
    return SimpleNamespace(name=name, output_rows=rows, cost=cost)


def _actual(name, records, cost):
    return SimpleNamespace(name=name, output_records=records, cost_seconds=cost)


def test_record_aligns_by_job_name_and_feeds_registry():
    monitor = CalibrationMonitor()
    registry = MetricsRegistry()
    with collecting(registry):
        compared = monitor.record(
            "MG1",
            "rapid-analytics",
            [
                _estimate("job-1", 100, 10.0),
                _estimate("job-2", 50, 5.0),
                _estimate("job-skipped", 1, 1.0),  # no matching actual
            ],
            [_actual("job-1", 100, 10.0), _actual("job-2", 10, 2.5)],
        )
    assert compared == 2
    assert monitor.observations == 2
    histogram = registry.value(
        "planner_cardinality_q_error", query="MG1", engine="rapid-analytics"
    )
    assert histogram.count == 2
    assert registry.value(
        "planner_cost_q_error", query="MG1", engine="rapid-analytics"
    ).count == 2


def test_report_verdicts_against_thresholds():
    monitor = CalibrationMonitor()
    monitor.record(
        "good",
        "rapid-analytics",
        [_estimate("a", 10, 1.0)],
        [_actual("a", 12, 1.1)],
    )
    monitor.record(
        "card-drift",
        "rapid-analytics",
        [_estimate("a", 100, 1.0)],
        [_actual("a", 2, 1.0)],  # 50x cardinality miss
    )
    monitor.record(
        "cost-drift",
        "rapid-analytics",
        [_estimate("a", 10, 30.0)],
        [_actual("a", 10, 10.0)],  # 3x cost miss
    )
    report = monitor.report()
    assert report["thresholds"] == {
        "cardinality_q_error_max": CARDINALITY_DRIFT_THRESHOLD,
        "cost_q_error_max": COST_DRIFT_THRESHOLD,
    }
    verdicts = {entry["query"]: entry["verdict"] for entry in report["queries"]}
    assert verdicts == {
        "good": "ok",
        "card-drift": "drifting",
        "cost-drift": "drifting",
    }
    assert report["drifting"] == 2 and report["verdict"] == "drifting"
    # deterministic ordering: sorted by (query, engine)
    assert [e["query"] for e in report["queries"]] == sorted(verdicts)


def test_record_report_requires_a_plan_choice():
    monitor = CalibrationMonitor()
    bare = SimpleNamespace(plan_choice=None, stats=None, engine="hive-mqo")
    assert monitor.record_report("G8", bare) == 0
    assert monitor.observations == 0


@pytest.mark.parametrize("qid", ["MG1"])
def test_record_report_from_live_cost_run(qid, bsbm_small):
    """An executed cost-planner run yields one comparison per MR cycle."""
    query = get_query(qid)
    report = make_engine("rapid-analytics").execute(
        to_analytical(query.sparql), bsbm_small, EngineConfig(planner="cost")
    )
    monitor = CalibrationMonitor()
    compared = monitor.record_report(qid, report)
    assert compared == report.cycles
    entry = monitor.report()["queries"][0]
    assert entry["query"] == qid and entry["engine"] == "rapid-analytics"
    assert entry["cardinality_q_error"]["count"] == report.cycles
    assert entry["cardinality_q_error"]["max"] >= 1.0
    assert entry["cost_q_error"]["max"] >= 1.0
