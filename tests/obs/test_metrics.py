"""Metrics instruments, registry contract, and both exporters."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    active_registry,
    collecting,
    exponential_buckets,
    render_metrics_summary,
    render_prometheus,
    snapshot_dict,
    validate_prometheus,
)


# -- bucket scheme -------------------------------------------------------------


def test_exponential_buckets_multiplication_chain():
    assert exponential_buckets(0.001, 2.0, 4) == (0.001, 0.002, 0.004, 0.008)
    assert DEFAULT_BUCKETS[0] == 0.001 and len(DEFAULT_BUCKETS) == 27
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


@pytest.mark.parametrize("bad", [(0.0, 2.0, 4), (0.1, 1.0, 4), (0.1, 2.0, 0)])
def test_exponential_buckets_rejects_degenerate_schemes(bad):
    with pytest.raises(MetricsError):
        exponential_buckets(*bad)


# -- instruments ---------------------------------------------------------------


def test_counter_is_integer_only():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    counter.inc(0)
    assert counter.value == 5
    with pytest.raises(MetricsError):
        counter.inc(1.5)
    with pytest.raises(MetricsError):
        counter.inc(-1)
    with pytest.raises(MetricsError):
        counter.inc(True)


def test_gauge_rounds_floats_keeps_ints():
    gauge = Gauge()
    gauge.set(0.1234567891)
    assert gauge.value == 0.123457
    gauge.set(7)
    assert gauge.value == 7
    with pytest.raises(MetricsError):
        gauge.set("fast")


def test_histogram_buckets_and_fixed_point_sum():
    histogram = Histogram((1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 3.0, 100.0):
        histogram.observe(value)
    assert histogram.counts == [1, 1, 1]  # 100.0 only in implicit +Inf
    assert histogram.count == 4
    assert histogram.sum == 105.0
    with pytest.raises(MetricsError):
        Histogram((2.0, 1.0))
    with pytest.raises(MetricsError):
        Histogram(())


def test_histogram_quantiles_are_bucket_bounds():
    histogram = Histogram((1.0, 2.0, 4.0))
    assert histogram.quantile(50) == 0.0  # empty
    for value in (0.5,) * 50 + (1.5,) * 45 + (9.0,) * 5:
        histogram.observe(value)
    assert histogram.quantile(50) == 1.0
    assert histogram.quantile(95) == 2.0
    assert histogram.quantile(99) == float("inf")  # beyond last bound


def test_histogram_merge_requires_same_buckets():
    left, right = Histogram((1.0, 2.0)), Histogram((1.0, 3.0))
    with pytest.raises(MetricsError):
        left.merge(right)


# -- registry ------------------------------------------------------------------


def test_registration_is_get_or_create_and_kind_checked():
    registry = MetricsRegistry()
    first = registry.counter("requests_total", "requests", ("status",))
    second = registry.counter("requests_total", "ignored", ("status",))
    assert first is second
    with pytest.raises(MetricsError):
        registry.gauge("requests_total")
    with pytest.raises(MetricsError):
        registry.counter("requests_total", labels=("engine",))
    with pytest.raises(MetricsError):
        registry.counter("bad name!")


def test_labels_create_series_and_reject_mismatches():
    registry = MetricsRegistry()
    family = registry.counter("hits", labels=("cache",))
    family.labels(cache="plan").inc()
    family.labels(cache="plan").inc()
    family.labels(cache="result").inc()
    assert registry.value("hits", cache="plan").value == 2
    assert registry.value("hits", cache="result").value == 1
    with pytest.raises(MetricsError):
        family.labels(engine="x")
    with pytest.raises(MetricsError):
        registry.value("unknown_metric")


def test_dual_histogram_marks_wall_clock_volatile():
    registry = MetricsRegistry()
    sim, wall = registry.dual_histogram("unit_cost", "unit cost")
    sim.labels().observe(1.0)
    wall.labels().observe(0.123)
    names = [family.name for family in registry.families()]
    assert names == ["unit_cost_sim_seconds"]
    names = [family.name for family in registry.families(include_volatile=True)]
    assert names == ["unit_cost_sim_seconds", "unit_cost_wall_seconds"]


def test_collecting_installs_and_restores():
    assert active_registry() is None
    with collecting() as registry:
        assert active_registry() is registry
        with collecting() as inner:
            assert active_registry() is inner
        assert active_registry() is registry
    assert active_registry() is None


# -- exporters -----------------------------------------------------------------


@pytest.fixture
def populated():
    registry = MetricsRegistry()
    requests = registry.counter("serve_requests_total", "requests", ("status",))
    requests.labels(status="ok").inc(3)
    requests.labels(status="deadline").inc()
    registry.gauge("cache_hit_ratio", "ratio", ("cache",)).labels(cache="plan").set(0.5)
    latency = registry.histogram("latency_seconds", "latency", buckets=(1.0, 2.0))
    for value in (0.5, 1.5, 9.0):
        latency.labels().observe(value)
    return registry


def test_snapshot_is_sorted_and_json_safe(populated):
    snapshot = snapshot_dict(populated)
    assert snapshot["schema"] == METRICS_SCHEMA
    names = [family["name"] for family in snapshot["metrics"]]
    assert names == sorted(names)
    series = snapshot["metrics"][1]["series"][0]  # latency_seconds
    assert series["quantiles"]["p99"] == "inf"  # JSON-safe spelling
    json.dumps(snapshot)  # no raw inf/nan anywhere
    labels = [s["labels"]["status"] for s in snapshot["metrics"][2]["series"]]
    assert labels == ["deadline", "ok"]  # label-sorted, not insertion order


def test_prometheus_exposition_shape(populated):
    text = render_prometheus(snapshot_dict(populated))
    assert validate_prometheus(text) == []
    assert '# TYPE serve_requests_total counter' in text
    assert 'serve_requests_total{status="ok"} 3' in text
    assert 'latency_seconds_bucket{le="1.0"} 1' in text
    assert 'latency_seconds_bucket{le="2.0"} 2' in text
    assert 'latency_seconds_bucket{le="+Inf"} 3' in text
    assert "latency_seconds_sum 11.0" in text
    assert "latency_seconds_count 3" in text


def test_render_prometheus_rejects_wrong_schema():
    with pytest.raises(MetricsError):
        render_prometheus({"schema": "something-else", "metrics": []})


def test_validate_prometheus_flags_breakage(populated):
    text = render_prometheus(snapshot_dict(populated))
    assert any(
        "no # TYPE" in problem
        for problem in validate_prometheus("mystery_metric 1\n")
    )
    broken = text.replace('latency_seconds_bucket{le="2.0"} 2', 'latency_seconds_bucket{le="2.0"} 0')
    assert any("not cumulative" in problem for problem in validate_prometheus(broken))
    missing = "\n".join(
        line for line in text.splitlines() if not line.startswith("latency_seconds_sum")
    )
    assert any("missing" in problem for problem in validate_prometheus(missing))


def test_summary_renders_series_slo_and_calibration(populated):
    slo = {
        "targets": {"p50": 1.0, "p95": None, "p99": 10.0, "budget": 0.05},
        "achieved": {"p50": 1.0, "p95": 2.0, "p99": 2.0},
        "count": 3,
        "violations": 0,
        "budget_burn": 0.0,
        "objectives": [],
        "pass": True,
    }
    calibration = {
        "verdict": "drifting",
        "observations": 4,
        "drifting": 1,
        "queries": [
            {
                "query": "MG8",
                "engine": "rapid-analytics",
                "cardinality_q_error": {"count": 4, "mean": 12.0, "max": 46.0},
                "cost_q_error": {"count": 4, "mean": 1.1, "max": 1.2},
                "verdict": "drifting",
            }
        ],
    }
    summary = render_metrics_summary(
        snapshot_dict(populated, slo=slo, calibration=calibration)
    )
    assert "serve_requests_total{status=ok} = 3" in summary
    assert "slo [p50<=1s, p99<=10s, budget=0.05]: PASS" in summary
    assert "calibration: drifting (4 cycles, 1 drifting)" in summary
    assert "MG8/rapid-analytics: cardinality q-error max 46" in summary
