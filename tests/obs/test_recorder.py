"""Unit tests for the trace recorder, hooks, and Stopwatch."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.obs import Stopwatch, TraceRecorder


class TestTraceRecorder:
    def test_root_span_exists(self):
        recorder = TraceRecorder()
        assert recorder.root.id == 0
        assert recorder.root.kind == "root"
        assert recorder.current() is recorder.root

    def test_span_nesting_and_ids(self):
        recorder = TraceRecorder()
        outer = recorder.begin_span("outer", "query")
        inner = recorder.begin_span("inner", "engine")
        assert inner.parent == outer.id
        assert outer.parent == 0
        assert inner.id == outer.id + 1
        recorder.end_span(inner)
        assert recorder.current() is outer
        recorder.end_span(outer)
        assert recorder.current() is recorder.root

    def test_sim_clock_advances_spans(self):
        recorder = TraceRecorder()
        span = recorder.begin_span("job", "job")
        recorder.advance_sim(3.5)
        recorder.end_span(span)
        assert span.sim_start == 0.0
        assert span.sim_dur == 3.5
        assert recorder.sim_now == 3.5

    def test_closed_span_layout(self):
        recorder = TraceRecorder()
        recorder.advance_sim(2.0)
        phase = recorder.add_closed_span("map", "phase", sim_start=2.0, sim_dur=1.5)
        assert phase.sim_start == 2.0
        assert phase.sim_end == 3.5
        # closed spans never become the current span
        assert recorder.current() is recorder.root

    def test_count_lands_on_innermost_span(self):
        recorder = TraceRecorder()
        span = recorder.begin_span("job", "job")
        recorder.count("alpha_combinations_pruned")
        recorder.count("alpha_combinations_pruned", 2)
        recorder.end_span(span)
        assert span.metrics == {"alpha_combinations_pruned": 3}
        assert recorder.root.metrics == {}

    def test_annotate(self):
        recorder = TraceRecorder()
        span = recorder.begin_span("job", "job")
        recorder.annotate(shuffle_bytes=10)
        assert span.attrs["shuffle_bytes"] == 10

    def test_events_share_id_space(self):
        recorder = TraceRecorder()
        span = recorder.begin_span("job", "job")
        event = recorder.add_event("task-retry", {"index": 1})
        assert event.parent == span.id
        assert event.id == span.id + 1

    def test_close_is_idempotent_and_seals_open_spans(self):
        recorder = TraceRecorder()
        recorder.begin_span("left-open", "engine")
        recorder.advance_sim(1.0)
        recorder.close()
        recorder.close()
        assert recorder.current() is recorder.root
        assert recorder.root.sim_end == 1.0
        assert all(span.sim_end >= span.sim_start for span in recorder.spans)

    def test_end_span_closes_dangling_children(self):
        recorder = TraceRecorder()
        outer = recorder.begin_span("outer", "query")
        recorder.begin_span("dangling", "engine")
        recorder.end_span(outer)  # skips the inner end (exception path)
        assert recorder.current() is recorder.root


class TestHooks:
    def test_disabled_hooks_are_noops(self):
        assert obs.active_tracer() is None
        with obs.span("x", "query") as span:
            assert span is None
        obs.event("nothing")
        obs.count("nothing")
        obs.annotate(nothing=1)

    def test_tracing_installs_and_restores(self):
        with obs.tracing() as recorder:
            assert obs.active_tracer() is recorder
            with obs.span("q", "query", {"qid": "Q1"}) as span:
                assert span is not None
                assert span.attrs == {"qid": "Q1"}
                obs.count("metric", 5)
            assert span.metrics == {"metric": 5}
        assert obs.active_tracer() is None
        assert recorder._closed

    def test_nested_tracing_restores_previous(self):
        with obs.tracing() as outer:
            with obs.tracing() as inner:
                assert obs.active_tracer() is inner
            assert obs.active_tracer() is outer

    def test_span_closed_on_exception(self):
        with obs.tracing() as recorder:
            with pytest.raises(RuntimeError):
                with obs.span("boom", "job"):
                    raise RuntimeError("boom")
            assert recorder.current() is recorder.root


class TestStopwatch:
    def test_start_stop(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        elapsed = watch.stop()
        assert elapsed > 0
        assert watch.seconds == elapsed  # frozen after stop

    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.005)
        assert watch.seconds > 0

    def test_live_reading_while_running(self):
        watch = Stopwatch().start()
        first = watch.seconds
        time.sleep(0.002)
        assert watch.seconds >= first
        watch.stop()
