"""Property tests for the metrics subsystem's determinism contract:
histogram merge is associative and commutative, snapshots are
byte-identical regardless of recording order or ``PYTHONHASHSEED``, and
the Prometheus exposition of a reference registry matches a committed
golden byte-for-byte."""

import json
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    render_prometheus,
    snapshot_dict,
)

GOLDEN = Path(__file__).parent.parent / "golden" / "metrics-prometheus.txt"

_SETTINGS = settings(max_examples=50, deadline=None)

# Observation values spanning below/inside/above the bucket range,
# including negatives and exact boundary hits.
observations = st.lists(
    st.one_of(
        st.floats(
            min_value=-1.0, max_value=100.0, allow_nan=False, allow_infinity=False
        ),
        st.sampled_from([0.0, 1.0, 2.0, 4.0, 8.0, 1e9]),
    ),
    max_size=40,
)

BUCKETS = (1.0, 2.0, 4.0, 8.0)


def _histogram(values) -> Histogram:
    histogram = Histogram(BUCKETS)
    for value in values:
        histogram.observe(value)
    return histogram


def _state(histogram: Histogram):
    return (histogram.count, histogram._sum_micro, tuple(histogram.counts))


@given(left=observations, right=observations)
@_SETTINGS
def test_merge_is_commutative(left, right):
    one = _histogram(left)
    one.merge(_histogram(right))
    other = _histogram(right)
    other.merge(_histogram(left))
    assert _state(one) == _state(other)


@given(a=observations, b=observations, c=observations)
@_SETTINGS
def test_merge_is_associative(a, b, c):
    left = _histogram(a)
    bc = _histogram(b)
    bc.merge(_histogram(c))
    left.merge(bc)

    right = _histogram(a)
    right.merge(_histogram(b))
    right.merge(_histogram(c))
    assert _state(left) == _state(right)


@given(values=observations)
@_SETTINGS
def test_merge_equals_interleaved_observation(values):
    """Splitting a stream across histograms and merging loses nothing."""
    merged = _histogram(values[::2])
    merged.merge(_histogram(values[1::2]))
    assert _state(merged) == _state(_histogram(values))


@given(
    entries=st.lists(
        st.tuples(
            st.sampled_from(["alpha", "beta", "gamma"]),  # metric
            st.sampled_from(["x", "y", "z"]),  # label value
            st.integers(min_value=0, max_value=5),
        ),
        max_size=30,
    ),
    seed=st.randoms(),
)
@_SETTINGS
def test_snapshot_bytes_ignore_recording_order(entries, seed):
    """Same observations, shuffled arrival -> byte-identical snapshot."""
    shuffled = list(entries)
    seed.shuffle(shuffled)

    def build(rows):
        registry = MetricsRegistry()
        for metric, label, amount in rows:
            registry.counter(metric, "test counter", ("tag",)).labels(
                tag=label
            ).inc(amount)
        return json.dumps(snapshot_dict(registry), sort_keys=True)

    assert build(entries) == build(shuffled)


def _reference_exposition_source() -> str:
    """A small fixed registry exercising all three kinds; run under
    different hash seeds to prove export order is hash-independent."""
    return """
import sys
sys.path.insert(0, "src")
from repro.obs.metrics import MetricsRegistry, render_prometheus, snapshot_dict

registry = MetricsRegistry()
requests = registry.counter(
    "serve_requests_total", "requests by terminal status", ("status",)
)
requests.labels(status="ok").inc(7)
requests.labels(status="deadline").inc(1)
requests.labels(status="rejected").inc(2)
registry.gauge("serve_cache_hit_ratio", "cache hit ratio", ("cache",)).labels(
    cache="result"
).set(0.75)
registry.gauge("serve_cache_hit_ratio", labels=("cache",)).labels(cache="plan").set(
    0.5
)
latency = registry.histogram(
    "serve_request_sim_latency_seconds",
    "request latency on the simulated clock",
    ("engine",),
    buckets=(0.5, 1.0, 2.0, 4.0),
)
for value in (0.25, 0.75, 1.5, 3.0, 99.0):
    latency.labels(engine="rapid-analytics").observe(value)
latency.labels(engine="hive-mqo").observe(1.0)
sys.stdout.write(render_prometheus(snapshot_dict(registry)))
"""


def test_prometheus_exposition_matches_committed_golden():
    expected = GOLDEN.read_text()
    for hashseed in ("0", "1", "42"):
        result = subprocess.run(
            [sys.executable, "-c", _reference_exposition_source()],
            capture_output=True,
            text=True,
            check=True,
            cwd=Path(__file__).parent.parent.parent,
            env={"PYTHONHASHSEED": hashseed, "PATH": "/usr/bin:/bin"},
        )
        assert result.stdout == expected, f"drifted under PYTHONHASHSEED={hashseed}"
