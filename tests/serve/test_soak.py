"""Concurrency soak: many clients' worth of queries through one
scheduler, with fault injection and checkpointed recovery underneath.

The determinism contract under test: simulated results (statuses,
sources, latencies, row digests, counters, trace events) are a pure
function of (graph, config, request sequence) — identical across
repeated runs, across pooled vs. serial execution, and across traced
vs. untraced execution.
"""

from dataclasses import replace

import pytest

from repro import obs, perf
from repro.bench.harness import chem_config
from repro.mapreduce.checkpoint import RecoveryPolicy
from repro.mapreduce.faults import FaultPlan
from repro.serve import OK, QueryService, ServiceConfig, WorkloadSpec
from repro.serve.workload import workload_requests

CLIENTS = 4
SPEC = "seeds=1,clients=4,mix=chem-overlap,requests=32,rate=12"


def _soak_config(workers: int) -> ServiceConfig:
    engine_config = replace(
        chem_config(),
        fault_plan=FaultPlan(seed=29, task_failure_rate=0.04, straggler_rate=0.05),
        recovery=RecoveryPolicy(max_resubmissions=24),
    )
    return ServiceConfig(engine_config=engine_config, workers=workers)


def _requests():
    spec = WorkloadSpec.from_spec(SPEC)
    return workload_requests(spec, seed=7)


def _run(graph, workers: int):
    service = QueryService(graph, _soak_config(workers))
    responses = service.serve(_requests())
    return responses, service.counter_snapshot()


def _observable(responses):
    return [
        (
            r.request_id,
            r.label,
            r.status,
            r.source,
            r.started,
            r.completed,
            r.latency,
            r.batch_size,
            round(r.unit_cost, 9),
            perf.rows_digest(r.rows) if r.rows is not None else None,
        )
        for r in responses
    ]


def test_soak_repeat_runs_are_identical(chem_tiny):
    first_responses, first_counters = _run(chem_tiny, CLIENTS)
    second_responses, second_counters = _run(chem_tiny, CLIENTS)
    assert all(r.status == OK for r in first_responses)
    assert _observable(first_responses) == _observable(second_responses)
    assert first_counters == second_counters
    assert first_counters["batch_merges"] > 0  # the soak exercises MQO
    assert first_counters["result_cache_hits"] > 0  # and the cache


def test_pooled_execution_matches_serial(chem_tiny):
    pooled_responses, pooled_counters = _run(chem_tiny, CLIENTS)
    serial_responses, serial_counters = _run(chem_tiny, 1)
    # workers=1 also narrows the simulated executor, so compare the
    # execution results (rows, sources, counters), not the timeline.
    assert [perf.rows_digest(r.rows) for r in pooled_responses] == [
        perf.rows_digest(r.rows) for r in serial_responses
    ]
    assert [r.source for r in pooled_responses] == [r.source for r in serial_responses]
    for key in ("batch_merges", "dedup_requests", "result_cache_hits", "units_batch"):
        assert pooled_counters[key] == serial_counters[key]


def test_traced_run_matches_untraced_and_traces_deterministically(chem_tiny):
    plain_responses, plain_counters = _run(chem_tiny, CLIENTS)

    def traced():
        with obs.tracing() as recorder:
            responses, counters = _run(chem_tiny, CLIENTS)
        events = [(e.name, tuple(sorted(e.attrs.items())), e.sim_time) for e in recorder.events]
        return responses, counters, events

    first_responses, first_counters, first_events = traced()
    second_responses, second_counters, second_events = traced()

    # Tracing forces serial unit execution but must not change anything
    # observable on the simulated clock.
    assert _observable(first_responses) == _observable(plain_responses)
    assert first_counters == plain_counters
    # And the trace itself is deterministic, event for event.
    assert first_events == second_events
    assert _observable(first_responses) == _observable(second_responses)
    names = {name for name, _, _ in first_events}
    assert {"request-admit", "batch-merge", "batch-split", "cache-hit"} <= names
