"""Serve-layer resilience: retry policy, circuit breaker, degradation
tiers, and their wiring through :class:`QueryService` — every decision
on the simulated clock, every schedule a pure function of (policy,
query), and the blast radius of a failed merged batch shrunk to the
poisoned member via solo re-execution."""

from dataclasses import replace

import pytest

from repro import perf
from repro.bench.catalog import get_query
from repro.bench.harness import chem_config
from repro.core.engines import make_engine, to_analytical
from repro.errors import ResilienceError, ServeError
from repro.mapreduce.faults import FaultPlan
from repro.serve import (
    DEADLINE,
    DEGRADED,
    FAILED,
    OK,
    SHED,
    BreakerPolicy,
    CircuitBreaker,
    DegradationPolicy,
    QueryService,
    ResilienceConfig,
    RetryPolicy,
    ServeRequest,
    ServiceConfig,
    StaleResultStore,
    fingerprint_query,
)

CHEM_QIDS = ("MG6", "MG7", "MG8", "G8")


def sparql(qid: str) -> str:
    return get_query(qid).sparql


# -- RetryPolicy ---------------------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(ResilienceError, match="retries must be >= 0"):
        RetryPolicy(retries=-1)
    with pytest.raises(ResilienceError, match="base_backoff must be > 0"):
        RetryPolicy(base_backoff=0.0)
    with pytest.raises(ResilienceError, match="jitter must be in"):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ResilienceError, match="backoff_factor must be >= 1"):
        RetryPolicy(backoff_factor=1.1, jitter=0.25)
    with pytest.raises(ResilienceError, match="retry_index must be >= 1"):
        RetryPolicy().backoff("abc", 0)


def test_backoff_schedule_is_deterministic_and_nondecreasing():
    policy = RetryPolicy(retries=5, base_backoff=0.5, backoff_factor=2.0, jitter=0.25)
    schedule = policy.schedule("deadbeef")
    assert schedule == RetryPolicy(
        retries=5, base_backoff=0.5, backoff_factor=2.0, jitter=0.25
    ).schedule("deadbeef")
    assert len(schedule) == 5
    assert all(b > 0 for b in schedule)
    assert list(schedule) == sorted(schedule)
    # Jitter actually engages: distinct queries draw distinct schedules.
    assert schedule != policy.schedule("cafebabe")


def test_zero_jitter_gives_exact_exponential_steps():
    policy = RetryPolicy(retries=3, base_backoff=0.5, backoff_factor=2.0, jitter=0.0)
    assert policy.schedule("anything") == (0.5, 1.0, 2.0)


def test_fault_seed_is_fresh_per_attempt_and_deterministic():
    policy = RetryPolicy()
    seeds = {policy.fault_seed(11, "deadbeef", attempt) for attempt in (2, 3, 4)}
    assert len(seeds) == 3  # fresh task fates per resubmission
    assert all(s >= 0 for s in seeds)
    assert policy.fault_seed(11, "deadbeef", 2) == policy.fault_seed(11, "deadbeef", 2)
    assert policy.fault_seed(11, "deadbeef", 2) != policy.fault_seed(12, "deadbeef", 2)


# -- CircuitBreaker ------------------------------------------------------------


def test_breaker_policy_validation():
    with pytest.raises(ResilienceError, match="threshold must be >= 0"):
        BreakerPolicy(threshold=-1)
    with pytest.raises(ResilienceError, match="window must be > 0"):
        BreakerPolicy(window=0.0)
    with pytest.raises(ResilienceError, match="cooldown must be > 0"):
        BreakerPolicy(cooldown=-1.0)
    with pytest.raises(ResilienceError, match="probes must be >= 1"):
        BreakerPolicy(probes=0)


def test_breaker_trips_after_threshold_failures_in_window():
    breaker = CircuitBreaker(BreakerPolicy(threshold=3, window=8.0, cooldown=30.0))
    for t in (1.0, 2.0):
        breaker.record_failure(t)
        assert breaker.state(t) == CircuitBreaker.CLOSED
    breaker.record_failure(3.0)
    assert breaker.state(3.0) == CircuitBreaker.OPEN
    assert breaker.trips == 1
    assert not breaker.allow(10.0)  # still cooling down


def test_breaker_window_slides_old_failures_out():
    breaker = CircuitBreaker(BreakerPolicy(threshold=3, window=8.0))
    breaker.record_failure(1.0)
    breaker.record_failure(2.0)
    breaker.record_failure(11.0)  # the first two fell out of the window
    assert breaker.state(11.0) == CircuitBreaker.CLOSED
    assert breaker.trips == 0


def test_breaker_half_open_probe_success_closes():
    breaker = CircuitBreaker(BreakerPolicy(threshold=1, cooldown=30.0, probes=1))
    breaker.record_failure(0.0)
    assert breaker.state(29.9) == CircuitBreaker.OPEN
    assert breaker.state(30.0) == CircuitBreaker.HALF_OPEN
    assert breaker.half_opens == 1
    assert breaker.allow(30.0)  # the probe slot
    assert not breaker.allow(30.1)  # budget of one
    breaker.record_success(31.0)
    assert breaker.state(31.0) == CircuitBreaker.CLOSED
    assert breaker.closes == 1
    assert breaker.allow(31.0)


def test_breaker_half_open_probe_failure_retrips():
    breaker = CircuitBreaker(BreakerPolicy(threshold=1, cooldown=30.0))
    breaker.record_failure(0.0)
    assert breaker.state(30.0) == CircuitBreaker.HALF_OPEN
    breaker.record_failure(31.0)
    assert breaker.state(31.0) == CircuitBreaker.OPEN
    assert breaker.trips == 2
    # the clock is high-water: a stale stamp cannot rewind the trip
    assert breaker.state(0.5) == CircuitBreaker.OPEN


def test_breaker_threshold_zero_disables():
    breaker = CircuitBreaker(BreakerPolicy(threshold=0))
    for t in range(20):
        breaker.record_failure(float(t))
    assert breaker.state(20.0) == CircuitBreaker.CLOSED
    assert breaker.allow(20.0)
    assert breaker.trips == 0


# -- DegradationPolicy / ResilienceConfig --------------------------------------


def test_degradation_policy_validation():
    with pytest.raises(ResilienceError, match="shed_threshold must be >= 1"):
        DegradationPolicy(shed_threshold=0)


def test_resilience_spec_default_and_roundtrip():
    assert ResilienceConfig.from_spec("") == ResilienceConfig()
    assert ResilienceConfig.from_spec("default") == ResilienceConfig()
    config = ResilienceConfig.from_spec(
        "retries=3,backoff=0.1,factor=3,jitter=0.5,seed=7,"
        "threshold=2,window=4,cooldown=10,probes=2,stale=off,bypass=off,shed=5"
    )
    assert config.retry == RetryPolicy(
        retries=3, base_backoff=0.1, backoff_factor=3.0, jitter=0.5, seed=7
    )
    assert config.breaker == BreakerPolicy(
        threshold=2, window=4.0, cooldown=10.0, probes=2
    )
    assert config.degradation == DegradationPolicy(
        stale=False, bypass_batching=False, shed_threshold=5
    )
    assert ResilienceConfig.from_dict(config.as_dict()) == config


@pytest.mark.parametrize(
    "spec, fragment",
    [
        ("retries", "expected key=value"),
        ("banana=1", "unknown key"),
        ("retries=-1", "retries must be >= 0"),
        ("retries=two", "invalid literal"),
        ("stale=maybe", "stale must be on/off"),
        ("jitter=2", "jitter must be in"),
    ],
)
def test_resilience_spec_errors_are_one_line_diagnostics(spec, fragment):
    with pytest.raises(ResilienceError) as excinfo:
        ResilienceConfig.from_spec(spec)
    message = str(excinfo.value)
    assert "invalid resilience spec" in message
    assert fragment in message
    assert "\n" not in message


# -- StaleResultStore ----------------------------------------------------------


def test_stale_store_keeps_last_known_good_per_engine():
    store = StaleResultStore(4)
    store.put("d1", "rapid-analytics", 0, [{"a": 1}])
    store.put("d1", "rapid-analytics", 3, [{"a": 2}])
    assert store.lookup("d1", "rapid-analytics") == (3, [{"a": 2}])
    assert store.lookup("d1", "hive-naive") is None
    assert len(store) == 1
    # defensive copies both ways
    version, rows = store.lookup("d1", "rapid-analytics")
    rows.append({"a": 99})
    assert store.lookup("d1", "rapid-analytics") == (3, [{"a": 2}])


# -- ServeRequest validation (satellite: fail at construction) -----------------


def test_serve_request_rejects_nonpositive_deadline():
    with pytest.raises(ServeError, match="request deadline must be > 0"):
        ServeRequest("SELECT * WHERE { ?s ?p ?o }", deadline=0.0)
    with pytest.raises(ServeError, match="request deadline must be > 0"):
        ServeRequest("SELECT * WHERE { ?s ?p ?o }", deadline=-1.0)


# -- dispatch-time deadline enforcement ----------------------------------------


def test_dispatch_deadline_charges_no_cluster_cost(chem_tiny):
    """A request whose queue wait already exceeds its deadline at the
    window close fails *before* dispatch: no execution, no cost."""
    service = QueryService(chem_tiny, ServiceConfig(engine_config=chem_config()))
    responses = service.serve(
        [ServeRequest(sparql("MG6"), arrival=0.01, deadline=0.1)]
    )
    assert responses[0].status == DEADLINE
    assert "before dispatch" in responses[0].error
    assert responses[0].rows is None
    counters = service.counter_snapshot()
    assert counters["deadline_exceeded"] == 1
    assert counters["deadline_exceeded_at_dispatch"] == 1
    assert service.executed_cost_seconds == 0.0


def test_post_execution_deadline_not_counted_as_dispatch(chem_tiny):
    """A deadline that only expires during execution is charged and
    counted, but not in the at-dispatch bucket — the regression guard
    for the dispatch/post-execution split."""
    service = QueryService(chem_tiny, ServiceConfig(engine_config=chem_config()))
    responses = service.serve(
        [ServeRequest(sparql("MG6"), arrival=0.01, deadline=1.0)]
    )
    assert responses[0].status == DEADLINE
    assert "before dispatch" not in responses[0].error
    counters = service.counter_snapshot()
    assert counters["deadline_exceeded"] == 1
    assert counters["deadline_exceeded_at_dispatch"] == 0
    assert service.executed_cost_seconds > 0.0


# -- load shedding -------------------------------------------------------------


def test_shed_drops_lowest_priority_first(chem_tiny):
    resilience = ResilienceConfig(
        degradation=DegradationPolicy(shed_threshold=1)
    )
    service = QueryService(
        chem_tiny,
        ServiceConfig(engine_config=chem_config(), resilience=resilience),
    )
    responses = service.serve(
        [
            ServeRequest(sparql("MG6"), arrival=0.01, label="low", priority=0),
            ServeRequest(sparql("MG7"), arrival=0.02, label="high", priority=2),
            ServeRequest(sparql("MG8"), arrival=0.03, label="mid", priority=1),
        ]
    )
    by_label = {r.label: r for r in responses}
    assert by_label["high"].status == OK
    assert by_label["low"].status == SHED and by_label["mid"].status == SHED
    assert "load shed" in by_label["low"].error
    assert service.counter_snapshot()["shed_requests"] == 2


def test_shed_breaks_priority_ties_by_arrival(chem_tiny):
    resilience = ResilienceConfig(degradation=DegradationPolicy(shed_threshold=1))
    service = QueryService(
        chem_tiny,
        ServiceConfig(engine_config=chem_config(), resilience=resilience),
    )
    responses = service.serve(
        [
            ServeRequest(sparql("MG6"), arrival=0.01, label="early"),
            ServeRequest(sparql("MG7"), arrival=0.02, label="late"),
        ]
    )
    by_label = {r.label: r for r in responses}
    assert by_label["early"].status == OK  # same priority: earliest survives
    assert by_label["late"].status == SHED


# -- stale-answer degradation tier ---------------------------------------------


def _always_failing_config():
    return replace(
        chem_config(),
        fault_plan=FaultPlan(seed=0, task_failure_rate=0.999, max_attempts=1),
    )


def test_exhausted_retries_serve_stale_answer(chem_tiny):
    resilience = ResilienceConfig(retry=RetryPolicy(retries=0))
    service = QueryService(
        chem_tiny,
        ServiceConfig(engine_config=_always_failing_config(), resilience=resilience),
    )
    rows = [{"marker": "stale"}]
    digest = fingerprint_query(sparql("MG6")).digest
    service.stale_results.put(digest, service.config.engine, 0, rows)
    response = service.query(sparql("MG6"))
    assert response.status == DEGRADED
    assert response.source == "stale-cache"
    assert response.stale_version == 0
    assert response.rows == rows
    counters = service.counter_snapshot()
    assert counters["degraded_stale"] == 1
    assert counters["failed"] == 0


def test_no_stale_answer_means_failure(chem_tiny):
    resilience = ResilienceConfig(retry=RetryPolicy(retries=0))
    service = QueryService(
        chem_tiny,
        ServiceConfig(engine_config=_always_failing_config(), resilience=resilience),
    )
    response = service.query(sparql("MG6"))
    assert response.status == FAILED
    assert service.counter_snapshot()["failed"] == 1


def test_stale_tier_can_be_disabled(chem_tiny):
    resilience = ResilienceConfig(
        retry=RetryPolicy(retries=0),
        degradation=DegradationPolicy(stale=False),
    )
    service = QueryService(
        chem_tiny,
        ServiceConfig(engine_config=_always_failing_config(), resilience=resilience),
    )
    digest = fingerprint_query(sparql("MG6")).digest
    service.stale_results.put(digest, service.config.engine, 0, [{"marker": "stale"}])
    response = service.query(sparql("MG6"))
    assert response.status == FAILED


def test_successful_answers_refresh_the_stale_store(chem_tiny):
    service = QueryService(
        chem_tiny,
        ServiceConfig(engine_config=chem_config(), resilience=ResilienceConfig()),
    )
    response = service.query(sparql("MG7"))
    assert response.status == OK
    digest = fingerprint_query(sparql("MG7")).digest
    stored = service.stale_results.lookup(digest, service.config.engine)
    assert stored is not None
    version, rows = stored
    assert version == chem_tiny.version
    assert perf.rows_digest(rows) == perf.rows_digest(response.rows)


# -- blast-radius isolation ----------------------------------------------------

# Pinned empirically: under FaultPlan(seed=4, rate=0.01, max_attempts=1)
# the merged four-query batch crashes, and each member's solo
# re-execution (fresh derived fault seed) succeeds first try.
_ISOLATION_PLAN = FaultPlan(seed=4, task_failure_rate=0.01, max_attempts=1)


def _chem_requests():
    return [
        ServeRequest(sparql(qid), arrival=0.01 * (i + 1), label=qid)
        for i, qid in enumerate(CHEM_QIDS)
    ]


@pytest.fixture(scope="module")
def solo_digests(chem_tiny):
    config = chem_config()
    engine = make_engine("rapid-analytics")
    return {
        qid: perf.rows_digest(
            engine.execute(to_analytical(sparql(qid)), chem_tiny, config).rows
        )
        for qid in CHEM_QIDS
    }


def test_without_resilience_one_batch_failure_fails_every_member(chem_tiny):
    """Characterization of the pre-resilience blast radius: one crash
    inside the merged unit takes down all four member requests."""
    service = QueryService(
        chem_tiny,
        ServiceConfig(
            engine_config=replace(chem_config(), fault_plan=_ISOLATION_PLAN)
        ),
    )
    responses = service.serve(_chem_requests())
    assert [r.status for r in responses] == [FAILED] * len(CHEM_QIDS)
    assert service.counters["batch_merges"] == 1


def test_isolation_reexecutes_batch_members_solo(chem_tiny, solo_digests):
    """With resilience on, the same failing batch is split: every member
    re-executes solo under the retry budget and answers bit-identical to
    the fault-free baseline."""
    resilience = ResilienceConfig(breaker=BreakerPolicy(threshold=0))
    service = QueryService(
        chem_tiny,
        ServiceConfig(
            engine_config=replace(chem_config(), fault_plan=_ISOLATION_PLAN),
            resilience=resilience,
        ),
    )
    responses = service.serve(_chem_requests())
    assert all(r.status == OK for r in responses)
    for response in responses:
        assert response.attempts == 2
        assert response.retry_backoff > 0.0
        assert perf.rows_digest(response.rows) == solo_digests[response.label]
    counters = service.counter_snapshot()
    assert counters["isolated_groups"] == len(CHEM_QIDS)
    assert counters["retries"] == len(CHEM_QIDS)
    assert counters["retry_successes"] == len(CHEM_QIDS)
    assert counters["retry_cost_seconds"] > 0.0


def test_resilient_serving_is_deterministic(chem_tiny):
    """Same graph, same config, same arrivals: byte-identical outcomes,
    counters, and costs across two independent service instances."""

    def run():
        resilience = ResilienceConfig(breaker=BreakerPolicy(threshold=0))
        service = QueryService(
            chem_tiny,
            ServiceConfig(
                engine_config=replace(chem_config(), fault_plan=_ISOLATION_PLAN),
                resilience=resilience,
            ),
        )
        responses = service.serve(_chem_requests())
        return (
            [(r.status, r.attempts, r.completed, perf.rows_digest(r.rows)) for r in responses],
            service.counter_snapshot(),
            service.executed_cost_seconds,
        )

    assert run() == run()
