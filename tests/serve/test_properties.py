"""Property tests for the sharing layers: whatever the mix, order, and
arrival pattern, every sharing lever (dedup, result cache, MQO batching)
returns rows bit-identical (including order) to a cold solo execution."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import perf
from repro.bench.catalog import get_query
from repro.bench.harness import chem_config
from repro.core.engines import make_engine, to_analytical
from repro.serve import OK, QueryService, ServeRequest, ServiceConfig

QIDS = ("MG6", "MG7", "MG8", "G8")

_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

mixes = st.lists(st.sampled_from(QIDS), min_size=1, max_size=6)
seeds = st.integers(min_value=0, max_value=2**16)


@pytest.fixture(scope="module")
def solo_digests(chem_tiny):
    config = chem_config()
    engine = make_engine("rapid-analytics")
    return {
        qid: perf.rows_digest(
            engine.execute(to_analytical(get_query(qid).sparql), chem_tiny, config).rows
        )
        for qid in QIDS
    }


def _requests(mix, seed):
    import random

    rng = random.Random(seed)
    clock = 0.0
    out = []
    for qid in mix:
        clock += 0.05 + rng.random() * 0.4  # spans several 0.25s windows
        out.append(
            ServeRequest(get_query(qid).sparql, arrival=round(clock, 6), label=qid)
        )
    return out


def _serve(chem_tiny, mix, seed, **overrides):
    config = ServiceConfig(engine_config=chem_config(), **overrides)
    service = QueryService(chem_tiny, config)
    return service.serve(_requests(mix, seed))


@_SETTINGS
@given(mix=mixes, seed=seeds)
def test_batched_rows_equal_unbatched_equal_solo(chem_tiny, solo_digests, mix, seed):
    batched = _serve(chem_tiny, mix, seed, enable_batching=True)
    unbatched = _serve(chem_tiny, mix, seed, enable_batching=False)
    assert [r.status for r in batched] == [OK] * len(mix)
    assert [r.status for r in unbatched] == [OK] * len(mix)
    for got_batched, got_unbatched, qid in zip(batched, unbatched, mix):
        want = solo_digests[qid]
        assert perf.rows_digest(got_batched.rows) == want
        assert perf.rows_digest(got_unbatched.rows) == want


@_SETTINGS
@given(mix=mixes, seed=seeds)
def test_cache_hits_are_bit_identical_to_cold_runs(chem_tiny, mix, seed):
    service = QueryService(chem_tiny, ServiceConfig(engine_config=chem_config()))
    cold = service.serve(_requests(mix, seed))
    # Re-submit the same queries later: every answer must now come from
    # a sharing layer, byte-for-byte what the cold run produced.
    reheat = [
        ServeRequest(r.text, arrival=r.arrival + 10_000.0, label=r.label)
        for r in _requests(mix, seed)
    ]
    warm = service.serve(reheat)
    assert all(r.status == OK for r in cold + warm)
    assert all(r.source in ("result-cache", "dedup") for r in warm)
    for cold_response, warm_response in zip(cold, warm):
        assert perf.rows_digest(warm_response.rows) == perf.rows_digest(
            cold_response.rows
        )
