"""Property tests for the resilience layer.

Two invariants the golden alone cannot pin:

1. Retry schedules are pure functions of (policy, query) and
   non-decreasing in the attempt number — guaranteed structurally by the
   ``backoff_factor >= 1 + jitter`` validation, whatever the jitter
   draws.
2. Availability is monotone non-decreasing in the retry budget at a
   fixed fault seed and rate: adding retries can only convert failures
   into answers, never the reverse.  Requires the breaker disabled
   (``threshold=0``) and no deadlines — both features deliberately trade
   availability for other goods.
"""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.catalog import get_query
from repro.bench.harness import chem_config
from repro.mapreduce.faults import FaultPlan
from repro.serve import (
    DEGRADED,
    OK,
    BreakerPolicy,
    QueryService,
    ResilienceConfig,
    RetryPolicy,
    ServeRequest,
    ServiceConfig,
)

QIDS = ("MG6", "MG7", "MG8", "G8")

digests = st.text(
    alphabet="0123456789abcdef", min_size=4, max_size=32
)
jitters = st.floats(min_value=0.0, max_value=0.9, exclude_max=True)


@st.composite
def retry_policies(draw):
    jitter = draw(jitters)
    return RetryPolicy(
        retries=draw(st.integers(min_value=1, max_value=6)),
        base_backoff=draw(st.floats(min_value=0.01, max_value=5.0)),
        backoff_factor=draw(
            st.floats(min_value=1.0 + jitter, max_value=4.0)
        ),
        jitter=jitter,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )


@settings(max_examples=50, deadline=None)
@given(policy=retry_policies(), digest=digests)
def test_schedule_is_deterministic_and_nondecreasing(policy, digest):
    schedule = policy.schedule(digest)
    # Deterministic: a freshly constructed equal policy reproduces it.
    clone = RetryPolicy(
        retries=policy.retries,
        base_backoff=policy.base_backoff,
        backoff_factor=policy.backoff_factor,
        jitter=policy.jitter,
        seed=policy.seed,
    )
    assert clone.schedule(digest) == schedule
    # Non-decreasing in the attempt number, whatever the jitter draws.
    assert len(schedule) == policy.retries
    assert all(b > 0 for b in schedule)
    assert list(schedule) == sorted(schedule)


_SERVE_SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _availability(graph, fault_plan, retries):
    resilience = ResilienceConfig(
        retry=RetryPolicy(retries=retries),
        breaker=BreakerPolicy(threshold=0),  # monotonicity needs no breaker
    )
    config = ServiceConfig(
        engine_config=replace(chem_config(), fault_plan=fault_plan),
        resilience=resilience,
    )
    service = QueryService(graph, config)
    responses = service.serve(
        [
            ServeRequest(get_query(qid).sparql, arrival=0.01 * (i + 1), label=qid)
            for i, qid in enumerate(QIDS)
        ]
    )
    return sum(1 for r in responses if r.status in (OK, DEGRADED))


@_SERVE_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    rate=st.sampled_from((0.01, 0.02, 0.05)),
)
def test_availability_is_monotone_in_retry_budget(chem_tiny, seed, rate):
    fault_plan = FaultPlan(seed=seed, task_failure_rate=rate, max_attempts=1)
    served = [
        _availability(chem_tiny, fault_plan, retries) for retries in (0, 1, 2)
    ]
    assert served == sorted(served)
