"""QueryService behaviour: caching, dedup, MQO batching, admission,
deadlines, failures, and the full engine matrix — every answer checked
bit-identical (rows *and* order) against a cold solo execution."""

from dataclasses import replace

import pytest

from repro import perf
from repro.bench.catalog import get_query
from repro.bench.harness import bsbm_config, chem_config
from repro.core.engines import PAPER_ENGINES, make_engine, to_analytical
from repro.core.results import EngineConfig
from repro.errors import ServeError
from repro.mapreduce.checkpoint import RecoveryPolicy
from repro.mapreduce.faults import FaultPlan
from repro.serve import (
    DEADLINE,
    FAILED,
    OK,
    REJECTED,
    QueryService,
    ServeRequest,
    ServiceConfig,
)

CHEM_QIDS = ("MG6", "MG7", "MG8", "G8")


def sparql(qid: str) -> str:
    return get_query(qid).sparql


@pytest.fixture(scope="module")
def chem_service_config():
    return ServiceConfig(engine_config=chem_config())


@pytest.fixture(scope="module")
def solo_digests(chem_tiny):
    """Cold solo row digests (order-sensitive) — the bit-identity oracle."""
    config = chem_config()
    engine = make_engine("rapid-analytics")
    return {
        qid: perf.rows_digest(
            engine.execute(to_analytical(sparql(qid)), chem_tiny, config).rows
        )
        for qid in CHEM_QIDS
    }


def test_single_query_runs_solo(chem_tiny, chem_service_config, solo_digests):
    service = QueryService(chem_tiny, chem_service_config)
    response = service.query(sparql("MG6"), label="MG6")
    assert response.status == OK
    assert response.source == "solo"
    assert response.batch_size == 1
    assert response.latency > 0
    assert perf.rows_digest(response.rows) == solo_digests["MG6"]
    counters = service.counter_snapshot()
    assert counters["units_solo"] == 1 and counters["units_batch"] == 0


def test_result_cache_hit_is_bit_identical_and_free(
    chem_tiny, chem_service_config, solo_digests
):
    service = QueryService(chem_tiny, chem_service_config)
    cold = service.query(sparql("MG7"))
    hit = service.query(sparql("MG7"))
    assert hit.status == OK and hit.source == "result-cache"
    assert perf.rows_digest(hit.rows) == perf.rows_digest(cold.rows) == solo_digests["MG7"]
    assert hit.unit_cost == 0.0
    counters = service.counter_snapshot()
    assert counters["result_cache_hits"] == 1
    assert service.executed_cost_seconds == pytest.approx(cold.unit_cost)


def test_plan_cache_shares_spelling_variants(chem_tiny, chem_service_config):
    service = QueryService(chem_tiny, chem_service_config)
    first = service.query(sparql("MG6"))
    variant = "\n".join(line.strip() for line in sparql("MG6").splitlines())
    second = service.query(variant)
    assert second.fingerprint == first.fingerprint
    assert second.source == "result-cache"  # canonical digest keyed the answer
    assert service.plan_cache.hits == 0  # new raw text: a plan miss...
    third = service.query(variant)
    assert service.plan_cache.hits == 1  # ...but the exact text now hits


def test_same_window_duplicates_dedup(chem_tiny, chem_service_config, solo_digests):
    service = QueryService(chem_tiny, chem_service_config)
    responses = service.serve(
        [ServeRequest(sparql("MG8"), arrival=0.01), ServeRequest(sparql("MG8"), arrival=0.02)]
    )
    assert [r.status for r in responses] == [OK, OK]
    assert responses[0].source == "solo" and responses[1].source == "dedup"
    assert service.counters["dedup_requests"] == 1
    assert service.counters["units_solo"] == 1  # executed once
    for response in responses:
        assert perf.rows_digest(response.rows) == solo_digests["MG8"]


def test_overlapping_queries_batch_and_split(chem_tiny, chem_service_config, solo_digests):
    service = QueryService(chem_tiny, chem_service_config)
    responses = service.serve(
        [ServeRequest(sparql(qid), arrival=0.01 * (i + 1), label=qid)
         for i, qid in enumerate(CHEM_QIDS)]
    )
    assert all(r.status == OK for r in responses)
    assert all(r.source == "batch" for r in responses)
    assert all(r.batch_size == len(CHEM_QIDS) for r in responses)
    for response in responses:
        assert perf.rows_digest(response.rows) == solo_digests[response.label]
    counters = service.counter_snapshot()
    assert counters["batch_merges"] == 1
    assert counters["batch_merged_requests"] == len(CHEM_QIDS)
    assert counters["units_batch"] == 1 and counters["units_solo"] == 0
    # Sharing one composite must beat four cold solo runs.
    solo_total = sum(
        make_engine("rapid-analytics")
        .execute(to_analytical(sparql(qid)), chem_tiny, chem_config())
        .cost_seconds
        for qid in CHEM_QIDS
    )
    assert service.executed_cost_seconds < solo_total


def test_non_overlapping_queries_stay_solo(bsbm_small):
    service = QueryService(bsbm_small, ServiceConfig(engine_config=bsbm_config()))
    responses = service.serve(
        [ServeRequest(sparql("G1"), arrival=0.01), ServeRequest(sparql("G2"), arrival=0.02)]
    )
    assert all(r.status == OK and r.source == "solo" for r in responses)
    assert service.counters["batch_merges"] == 0
    assert service.counters["units_solo"] == 2


def test_batching_disabled_runs_everything_solo(chem_tiny):
    service = QueryService(
        chem_tiny, ServiceConfig(engine_config=chem_config(), enable_batching=False)
    )
    responses = service.serve(
        [ServeRequest(sparql("MG6"), arrival=0.01), ServeRequest(sparql("MG7"), arrival=0.02)]
    )
    assert all(r.source == "solo" for r in responses)
    assert service.counters["units_solo"] == 2


def test_admission_control_rejects_over_cap(chem_tiny):
    service = QueryService(
        chem_tiny, ServiceConfig(engine_config=chem_config(), max_pending=1)
    )
    responses = service.serve(
        [ServeRequest(sparql("MG6"), arrival=0.01 * (i + 1)) for i in range(3)]
    )
    assert [r.status for r in responses] == [OK, REJECTED, REJECTED]
    rejected = responses[1]
    assert rejected.rows is None and "admission control" in rejected.error
    assert service.counters["rejected"] == 2
    # Once the first request's work has drained, admission reopens.
    drained = responses[0].completed + 1.0
    late = service.serve([ServeRequest(sparql("MG6"), arrival=drained)])[0]
    assert late.status == OK and late.source == "result-cache"


def test_deadline_exceeded_drops_rows(chem_tiny):
    service = QueryService(
        chem_tiny, ServiceConfig(engine_config=chem_config(), deadline=0.001)
    )
    response = service.query(sparql("MG6"))
    assert response.status == DEADLINE
    assert response.rows is None and "deadline exceeded" in response.error
    assert service.counters["deadline_exceeded"] == 1


def test_per_request_deadline_overrides_config(chem_tiny, chem_service_config):
    service = QueryService(chem_tiny, chem_service_config)
    responses = service.serve(
        [ServeRequest(sparql("MG6"), arrival=0.01, deadline=1e-6)]
    )
    assert responses[0].status == DEADLINE


def test_unparseable_query_fails_that_request_only(chem_tiny, chem_service_config):
    service = QueryService(chem_tiny, chem_service_config)
    responses = service.serve(
        [
            ServeRequest("SELECT WHERE {{{", arrival=0.01),
            ServeRequest(sparql("MG6"), arrival=0.02),
        ]
    )
    assert responses[0].status == FAILED and responses[0].rows is None
    assert responses[1].status == OK
    assert service.counters["failed"] == 1


def test_negative_arrival_rejected(chem_tiny, chem_service_config):
    service = QueryService(chem_tiny, chem_service_config)
    with pytest.raises(ServeError, match="arrival"):
        service.serve([ServeRequest(sparql("MG6"), arrival=-1.0)])


def test_arrivals_cannot_land_in_closed_windows(chem_tiny, chem_service_config):
    service = QueryService(chem_tiny, chem_service_config)
    service.query(sparql("MG6"))
    stale = service.serve([ServeRequest(sparql("MG6"), arrival=0.0)])[0]
    assert stale.arrival >= service.config.batch_window  # clamped forward
    assert stale.status == OK


def test_invalid_config_rejected():
    with pytest.raises(ServeError):
        ServiceConfig(engine="no-such-engine")
    with pytest.raises(ServeError):
        ServiceConfig(workers=0)
    with pytest.raises(ServeError):
        ServiceConfig(batch_window=0.0)
    with pytest.raises(ServeError):
        ServiceConfig(deadline=-1.0)


@pytest.mark.parametrize("engine", PAPER_ENGINES + ("reference",))
def test_every_engine_serves_correct_rows(chem_tiny, engine):
    config = chem_config()
    service = QueryService(
        chem_tiny, ServiceConfig(engine=engine, engine_config=config)
    )
    response = service.query(sparql("MG7"), label="MG7")
    assert response.status == OK
    solo = make_engine(engine).execute(to_analytical(sparql("MG7")), chem_tiny, config)
    assert perf.rows_digest(response.rows) == perf.rows_digest(solo.rows)


def test_faults_and_recovery_compose_with_batching(chem_tiny, solo_digests):
    faulty = replace(
        chem_config(),
        fault_plan=FaultPlan(seed=13, task_failure_rate=0.05),
        recovery=RecoveryPolicy(max_resubmissions=24),
    )
    service = QueryService(chem_tiny, ServiceConfig(engine_config=faulty))
    responses = service.serve(
        [ServeRequest(sparql(qid), arrival=0.01 * (i + 1), label=qid)
         for i, qid in enumerate(CHEM_QIDS)]
    )
    assert all(r.status == OK for r in responses)
    for response in responses:
        assert perf.rows_digest(response.rows) == solo_digests[response.label]
    assert service.counters["batch_merges"] == 1


def test_counter_snapshot_exposes_cache_stats(chem_tiny, chem_service_config):
    service = QueryService(chem_tiny, chem_service_config)
    service.query(sparql("MG6"))
    snapshot = service.counter_snapshot()
    for key in (
        "requests",
        "admitted",
        "plan_cache_hits",
        "plan_cache_misses",
        "result_cache_capacity",
        "result_cache_size",
    ):
        assert key in snapshot
    assert snapshot["requests"] == snapshot["admitted"] == 1
