"""LRU cache semantics: recency order, counters, peek neutrality."""

import pytest

from repro.errors import ServeError
from repro.serve import LRUCache


def test_capacity_must_be_positive():
    with pytest.raises(ServeError):
        LRUCache(0)


def test_put_get_roundtrip():
    cache = LRUCache(4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("b") is None
    assert cache.get("b", "fallback") == "fallback"
    assert "a" in cache and len(cache) == 1


def test_eviction_drops_least_recently_used():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # touch: b is now oldest
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.evictions == 1


def test_reput_refreshes_recency_without_growth():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # overwrite = most recent, no eviction
    assert cache.evictions == 0
    cache.put("c", 3)
    assert "b" not in cache and cache.peek("a") == 10


def test_counters_track_hits_and_misses():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.get("a")
    cache.get("a")
    cache.get("missing")
    assert (cache.hits, cache.misses) == (2, 1)
    assert cache.stats() == {
        "size": 1,
        "capacity": 2,
        "hits": 2,
        "misses": 1,
        "evictions": 0,
        "hit_ratio": 0.666667,
    }


def test_stats_report_evictions_and_hit_ratio():
    cache = LRUCache(1)
    assert cache.hit_ratio == 0.0  # no lookups yet, not a div-by-zero
    cache.put("a", 1)
    cache.put("b", 2)  # evicts "a"
    cache.get("b")
    cache.get("a")
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["hit_ratio"] == 0.5


def test_peek_touches_neither_counters_nor_recency():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.peek("a") == 1
    assert cache.peek("missing") is None
    assert (cache.hits, cache.misses) == (0, 0)
    cache.put("c", 3)  # "a" was peeked, not touched: still oldest
    assert "a" not in cache
