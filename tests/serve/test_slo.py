"""SLO specs: parsing diagnostics, percentile evaluation, error budget."""

import pytest

from repro.errors import ServeError
from repro.serve.slo import DEFAULT_SLOS, SLOSpec, evaluate_slo


def test_from_spec_full_and_partial():
    spec = SLOSpec.from_spec("p50=1,p95=90,p99=120,budget=0.1")
    assert (spec.p50, spec.p95, spec.p99, spec.budget) == (1.0, 90.0, 120.0, 0.1)
    partial = SLOSpec.from_spec("p99=60")
    assert partial.p50 is None and partial.p95 is None
    assert partial.p99 == 60.0 and partial.budget == 0.05  # default


@pytest.mark.parametrize(
    "text",
    [
        "",  # no objectives
        "budget=0.1",  # budget alone is not an objective
        "p50=abc",  # not a number
        "p50=0",  # target must be positive
        "p95=-3",
        "budget=1.5",  # budget must be < 1
        "budget=-0.1",
        "p42=1",  # unknown key
        "p50",  # not key=value
    ],
)
def test_from_spec_rejects_malformed(text):
    with pytest.raises(ServeError, match="invalid slo spec"):
        SLOSpec.from_spec(text)


def test_strictest_bound_prefers_p99():
    assert SLOSpec.from_spec("p50=1,p95=5,p99=9").strictest_bound == 9.0
    assert SLOSpec.from_spec("p50=1,p95=5").strictest_bound == 5.0
    assert SLOSpec.from_spec("p50=1").strictest_bound == 1.0


def test_evaluate_passes_within_targets():
    spec = SLOSpec.from_spec("p50=2,p99=10,budget=0.25")
    result = evaluate_slo(spec, [1.0] * 8 + [5.0, 9.0])
    assert result["pass"] is True
    assert result["count"] == 10
    assert result["achieved"]["p50"] == 1.0
    assert result["violations"] == 0  # nothing above the p99 bound
    assert result["budget_burn"] == 0.0
    assert result["objectives"] == {"budget": True, "p50": True, "p99": True}


def test_evaluate_fails_on_blown_percentile():
    spec = SLOSpec.from_spec("p50=1")
    result = evaluate_slo(spec, [5.0, 5.0, 5.0, 0.5])
    assert result["pass"] is False
    assert result["achieved"]["p50"] == 5.0


def test_error_budget_tolerates_bounded_violations():
    spec = SLOSpec.from_spec("p99=10,budget=0.5")
    # p99 (nearest-rank over 4 samples) blows the target, but half the
    # requests are allowed over the strictest bound: 1/4 <= 0.5 burns
    # within budget; the percentile objective itself still fails.
    latencies = [1.0, 1.0, 1.0, 99.0]
    result = evaluate_slo(spec, latencies)
    assert result["violations"] == 1
    assert result["budget_burn"] == 0.25
    assert result["pass"] is False  # percentile target still governs

    tight = evaluate_slo(SLOSpec.from_spec("p99=100,budget=0.1"), latencies)
    assert tight["violations"] == 0 and tight["pass"] is True


def test_empty_sample_passes_vacuously():
    result = evaluate_slo(SLOSpec.from_spec("p50=1"), [])
    assert result["pass"] is True and result["count"] == 0


def test_default_slos_cover_every_mix():
    assert set(DEFAULT_SLOS) == {"bsbm-star", "chem-overlap", "pubmed-mesh", "default"}
    chem = DEFAULT_SLOS["chem-overlap"]
    assert chem.p50 == 1.0 and chem.p95 == 90.0 and chem.p99 == 120.0
