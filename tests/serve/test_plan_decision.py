"""Serve-layer plan-decision caching (the adaptive planner's memory).

Under a non-rule planner the service stores the chosen candidate name
per (fingerprint, graph version, engine) in the plan cache and replays
it on repeat solo executions via ``EngineConfig.plan_decision``.  Rule
mode — the goldens' world — must never touch those keys.
"""

from dataclasses import replace

import pytest

from repro.bench.catalog import get_query
from repro.bench.harness import chem_config
from repro.core.engines import make_engine, to_analytical
from repro.perf import rows_digest
from repro.serve import OK, QueryService, ServiceConfig
from repro.serve.fingerprint import fingerprint_query


def sparql(qid):
    return get_query(qid).sparql


def service_config(planner):
    return ServiceConfig(engine_config=replace(chem_config(), planner=planner))


def decision_keys(service):
    return [key for key in service.plan_cache if key[0] == "plan-choice"]


@pytest.fixture(scope="module")
def mg6_digest():
    return fingerprint_query(sparql("MG6")).digest


def test_cost_mode_caches_the_choice(chem_tiny, mg6_digest):
    service = QueryService(chem_tiny, service_config("cost"))
    response = service.query(sparql("MG6"), label="MG6")
    assert response.status == OK
    key = ("plan-choice", mg6_digest, chem_tiny.version, "rapid-analytics")
    assert service.plan_cache.peek(key) == "composite"


def test_replay_hits_and_answers_stay_identical(chem_tiny):
    service = QueryService(chem_tiny, service_config("cost"))
    first = service.query(sparql("MG6"), label="cold")
    # Force a re-execution (not a result-cache hit): clear results only.
    service.result_cache.clear()
    second = service.query(sparql("MG6"), label="warm")
    assert second.source == "solo"  # re-executed, not served from cache
    assert rows_digest(second.rows) == rows_digest(first.rows)
    assert len(decision_keys(service)) == 1


def test_spelling_variants_share_the_decision(chem_tiny):
    service = QueryService(chem_tiny, service_config("cost"))
    service.query(sparql("MG6"), label="original")
    service.result_cache.clear()
    respelled = sparql("MG6").replace("\n", " \n")
    assert fingerprint_query(respelled).digest == fingerprint_query(sparql("MG6")).digest
    response = service.query(respelled, label="respelled")
    assert response.status == OK
    assert len(decision_keys(service)) == 1


def test_replayed_decision_matches_solo_cost_run(chem_tiny):
    """A replayed decision compiles the same plan a fresh cost-mode
    pricing would pick: the service answer stays bit-identical to a
    cold solo execution."""
    config = replace(chem_config(), planner="cost")
    solo = make_engine("rapid-analytics").execute(
        to_analytical(sparql("MG6")), chem_tiny, config
    )
    service = QueryService(chem_tiny, service_config("cost"))
    service.query(sparql("MG6"), label="first")
    service.result_cache.clear()
    warm = service.query(sparql("MG6"), label="second")
    assert rows_digest(warm.rows) == rows_digest(solo.rows)


def test_rule_mode_never_touches_decision_keys(chem_tiny):
    service = QueryService(chem_tiny, ServiceConfig(engine_config=chem_config()))
    for label in ("one", "two"):
        assert service.query(sparql("MG6"), label=label).status == OK
        service.result_cache.clear()
    assert decision_keys(service) == []


def test_decisions_are_versioned_by_graph(chem_tiny, mg6_digest):
    """The key carries the graph version: decisions cached against one
    snapshot are not replayed against another."""
    service = QueryService(chem_tiny, service_config("cost"))
    service.query(sparql("MG6"), label="MG6")
    (key,) = decision_keys(service)
    assert key == ("plan-choice", mg6_digest, chem_tiny.version, "rapid-analytics")
