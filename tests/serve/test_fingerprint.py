"""Canonical query fingerprints: spelling variants collapse, different
queries separate, garbage raises."""

import pytest

from repro.bench.catalog import get_query
from repro.errors import SparqlError
from repro.serve import fingerprint_query

MG6 = get_query("MG6").sparql


def test_fingerprint_is_stable():
    assert fingerprint_query(MG6).digest == fingerprint_query(MG6).digest


def test_spelling_variants_share_a_digest():
    reformatted = "\n\n".join(line.strip() for line in MG6.splitlines())
    variant = fingerprint_query(reformatted)
    original = fingerprint_query(MG6)
    assert variant.digest == original.digest
    assert variant.canonical == original.canonical


def test_different_queries_get_different_digests():
    assert fingerprint_query(MG6).digest != fingerprint_query(get_query("MG7").sparql).digest


def test_fingerprint_carries_the_analytical_query():
    fp = fingerprint_query(MG6)
    assert fp.query.subqueries  # decomposed, ready for the planner


def test_garbage_raises_sparql_error():
    with pytest.raises(SparqlError):
        fingerprint_query("SELECT WHERE {{{")
