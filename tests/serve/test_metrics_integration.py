"""Serve-layer metrics wiring: a collecting registry sees the request
stream, the caches, the MapReduce phases, and the planner; snapshots are
byte-deterministic; v2 reports project cleanly back to v1."""

import json
from dataclasses import replace

from repro.bench.catalog import get_query
from repro.bench.harness import chem_config
from repro.obs.calibration import CalibrationMonitor
from repro.obs.metrics import MetricsRegistry, collecting, snapshot_dict
from repro.serve import (
    QueryService,
    SERVE_SCHEMA,
    SERVE_SCHEMA_V1,
    ServeRequest,
    ServiceConfig,
    WorkloadSpec,
    check_serve_golden,
    project_v1,
    serve_workload_report,
    serve_workload_with_metrics,
    write_serve_report,
)

QIDS = ("MG6", "MG7", "MG8", "G8")


def _requests(qids=QIDS, spacing=120.0):
    # Spaced far apart: each request is its own window, so MG6/MG7/MG8
    # repeats hit the result cache rather than the batcher.
    return [
        ServeRequest(get_query(qid).sparql, arrival=index * spacing, label=qid)
        for index, qid in enumerate(qids)
    ]


def _serve_collecting(chem_tiny, qids=QIDS, calibration=None):
    registry = MetricsRegistry()
    # cost planner so solo runs carry a PlanChoice -> planner_choices_total
    config = ServiceConfig(engine_config=replace(chem_config(), planner="cost"))
    service = QueryService(chem_tiny, config, calibration=calibration)
    with collecting(registry):
        responses = service.serve(_requests(qids))
        service.publish_cache_metrics(registry)
    return service, registry, responses


def test_serve_populates_expected_families(chem_tiny):
    service, registry, responses = _serve_collecting(chem_tiny)
    assert len(responses) == len(QIDS)
    names = [family.name for family in registry.families()]
    for expected in (
        "serve_requests_total",
        "serve_answers_total",
        "serve_request_sim_latency_seconds",
        "serve_queue_wait_sim_seconds",
        "serve_window_admitted",
        "serve_unit_queries",
        "serve_unit_cost_sim_seconds",
        "serve_cache_size",
        "serve_cache_hits",
        "serve_cache_hit_ratio",
        "mr_jobs_total",
        "mr_phase_sim_seconds",
        "mr_job_cost_sim_seconds",
        "planner_choices_total",
    ):
        assert expected in names, f"missing {expected}"
    # wall-clock duals exist but are volatile: absent from the default view
    assert "serve_unit_cost_wall_seconds" not in names
    volatile = [f.name for f in registry.families(include_volatile=True)]
    assert "serve_unit_cost_wall_seconds" in volatile
    assert "mr_job_cost_wall_seconds" in volatile

    ok = registry.value("serve_requests_total", status="ok")
    assert ok.value == len(QIDS)
    latency = registry.value(
        "serve_request_sim_latency_seconds", engine="rapid-analytics"
    )
    assert latency.count == len(QIDS)
    # phase decomposition covers the runner's cost model phases
    phases = registry.get("mr_phase_sim_seconds")
    observed_phases = {key[0] for key in phases.series}
    assert {"map", "shuffle", "reduce"} <= observed_phases


def test_cache_gauges_match_cache_stats(chem_tiny):
    service, registry, _ = _serve_collecting(chem_tiny, qids=QIDS + QIDS)
    for cache_name, cache in (
        ("plan", service.plan_cache),
        ("result", service.result_cache),
    ):
        stats = cache.stats()
        for key, value in stats.items():
            gauge = registry.value(f"serve_cache_{key}", cache=cache_name)
            assert gauge.value == value, (cache_name, key)
    # the repeated mix must actually hit the result cache
    assert registry.value("serve_cache_hits", cache="result").value > 0


def test_calibration_monitor_sees_solo_cost_runs(chem_tiny):
    monitor = CalibrationMonitor()
    config = ServiceConfig(engine_config=replace(chem_config(), planner="cost"))
    service = QueryService(chem_tiny, config, calibration=monitor)
    service.serve(_requests(("G8", "MG7")))
    assert monitor.observations > 0
    report = monitor.report()
    queries = {entry["query"] for entry in report["queries"]}
    assert queries == {"G8", "MG7"}


def test_counter_snapshot_is_deterministically_ordered(chem_tiny):
    service, _, _ = _serve_collecting(chem_tiny)
    snapshot = service.counter_snapshot()
    assert list(snapshot) == sorted(snapshot)
    assert "plan_cache_hit_ratio" in snapshot
    assert "result_cache_hit_ratio" in snapshot


def test_workload_snapshot_is_byte_deterministic(chem_tiny):
    spec = WorkloadSpec.from_spec(
        "seeds=1,clients=2,mix=chem-overlap,requests=6,planner=cost"
    )
    first_report, first_snapshot = serve_workload_with_metrics(spec, graph=chem_tiny)
    second_report, second_snapshot = serve_workload_with_metrics(spec, graph=chem_tiny)
    encode = lambda obj: json.dumps(obj, indent=2, sort_keys=True)
    assert encode(first_report) == encode(second_report)
    assert encode(first_snapshot) == encode(second_snapshot)
    assert first_snapshot["slo"]["pass"] is True
    assert first_snapshot["calibration"]["observations"] > 0


def test_project_v1_strips_v2_fields(chem_tiny):
    spec = WorkloadSpec.from_spec("seeds=1,clients=2,mix=chem-overlap,requests=6")
    report = serve_workload_report(spec, graph=chem_tiny)
    assert report["schema"] == SERVE_SCHEMA
    projected = project_v1(report)
    assert projected["schema"] == SERVE_SCHEMA_V1
    assert "slo" not in projected
    assert "slo_pass" not in projected["verdicts"]
    assert "planner" not in projected["workload"]
    for run in projected["runs"]:
        assert "p95" not in run["latency"]
        assert not any(key.endswith("_hit_ratio") for key in run["counters"])
    # projection is a copy: the v2 report is untouched
    assert "slo" in report and "p95" in report["runs"][0]["latency"]


def test_check_serve_golden_accepts_v1_golden(tmp_path, chem_tiny):
    """A committed v1 report stays green: the checker projects the fresh
    v2 run down before diffing."""
    spec = WorkloadSpec.from_spec("seeds=1,clients=2,mix=chem-overlap,requests=6")
    report = serve_workload_report(spec, graph=chem_tiny)
    path = write_serve_report(project_v1(report), tmp_path / "v1-golden.json")
    assert check_serve_golden(path) == []
