"""Workload spec parsing, deterministic arrival generation, and the
``repro-serve-workload/v2`` report (shape, verdicts, golden diffing)."""

import pytest

from repro.errors import ServeError
from repro.serve import (
    SERVE_SCHEMA,
    WORKLOAD_MIXES,
    WorkloadSpec,
    check_serve_golden,
    render_serve_report,
    serve_workload_report,
    write_serve_report,
)
from repro.serve.workload import spec_from_report, workload_requests


def test_from_spec_minimal_defaults():
    spec = WorkloadSpec.from_spec("seeds=2,clients=3,mix=chem-overlap")
    assert (spec.seeds, spec.clients, spec.mix) == (2, 3, "chem-overlap")
    assert spec.requests == 24 and spec.rate == 8.0
    assert spec.batching and spec.caching and spec.deadline is None


def test_from_spec_full():
    spec = WorkloadSpec.from_spec(
        "seeds=1, clients=2, mix=bsbm-star, requests=8, window=0.5, rate=4,"
        " engine=hive-mqo, batch=off, cache=on, deadline=90, max_pending=16"
    )
    assert spec.engine == "hive-mqo"
    assert not spec.batching and spec.caching
    assert spec.deadline == 90.0 and spec.max_pending == 16
    assert spec.window == 0.5 and spec.rate == 4.0


@pytest.mark.parametrize(
    "text",
    [
        "",  # missing everything
        "seeds=1,clients=1",  # missing mix
        "seeds=1,clients=1,mix=chem-overlap,bogus=1",  # unknown key
        "seeds=banana,clients=1,mix=chem-overlap",  # not an int
        "seeds=1,clients=1,mix=no-such-mix",  # unknown mix
        "seeds=0,clients=1,mix=chem-overlap",  # seeds < 1
        "seeds=1,clients=0,mix=chem-overlap",  # clients < 1
        "seeds=1,clients=1,mix=chem-overlap,requests=0",
        "seeds=1,clients=1,mix=chem-overlap,window=0",
        "seeds=1,clients=1,mix=chem-overlap,rate=-1",
        "seeds=1,clients=1,mix=chem-overlap,batch=maybe",  # bad flag
        "seeds 1,clients=1,mix=chem-overlap",  # not key=value
    ],
)
def test_from_spec_rejects_malformed(text):
    with pytest.raises(ServeError, match="invalid workload spec"):
        WorkloadSpec.from_spec(text)


def test_arrivals_are_deterministic_and_monotone():
    spec = WorkloadSpec.from_spec("seeds=1,clients=1,mix=chem-overlap,requests=12")
    first = workload_requests(spec, seed=3)
    second = workload_requests(spec, seed=3)
    assert first == second
    assert [r.arrival for r in first] == sorted(r.arrival for r in first)
    assert all(r.label in WORKLOAD_MIXES["chem-overlap"][2] for r in first)
    assert workload_requests(spec, seed=4) != first


def test_report_shape_and_verdicts(chem_tiny):
    spec = WorkloadSpec.from_spec("seeds=1,clients=2,mix=chem-overlap,requests=6")
    report = serve_workload_report(spec, graph=chem_tiny)
    assert report["schema"] == SERVE_SCHEMA
    assert report["queries"] == list(WORKLOAD_MIXES["chem-overlap"][2])
    assert spec_from_report(report) == spec
    assert len(report["runs"]) == 1
    run = report["runs"][0]
    assert run["requests"] == 6
    assert set(run["latency"]) == {"count", "mean", "p50", "p90", "p95", "p99", "max"}
    assert report["verdicts"]["all_rows_match"] is True
    assert report["verdicts"]["cost_strictly_reduced"] is True
    assert report["verdicts"]["slo_pass"] is True
    assert report["slo"]["overall"]["pass"] is True
    assert len(report["slo"]["per_seed"]) == 1
    assert run["served_cost_seconds"] < run["baseline_cost_seconds"]
    rendered = render_serve_report(report)
    assert "chem-overlap serve workload" in rendered
    assert "cost strictly reduced on every seed: True" in rendered


def test_sharing_disabled_verdict_is_none(chem_tiny):
    spec = WorkloadSpec.from_spec(
        "seeds=1,clients=1,mix=chem-overlap,requests=4,batch=off,cache=off"
    )
    report = serve_workload_report(spec, graph=chem_tiny)
    assert report["verdicts"]["cost_strictly_reduced"] is None
    assert report["verdicts"]["all_rows_match"] is True


def test_golden_roundtrip(tmp_path, chem_tiny):
    spec = WorkloadSpec.from_spec("seeds=1,clients=2,mix=chem-overlap,requests=6")
    report = serve_workload_report(spec, graph=chem_tiny)
    path = write_serve_report(report, tmp_path / "serve.json")
    assert check_serve_golden(path) == []


def test_golden_diff_reports_field(tmp_path, chem_tiny):
    spec = WorkloadSpec.from_spec("seeds=1,clients=2,mix=chem-overlap,requests=6")
    report = serve_workload_report(spec, graph=chem_tiny)
    report["runs"][0]["served_cost_seconds"] += 1.0
    report["summary"]["total_served_cost_seconds"] += 1.0
    path = write_serve_report(report, tmp_path / "tampered.json")
    problems = check_serve_golden(path)
    assert problems and any("served_cost_seconds" in p for p in problems)
