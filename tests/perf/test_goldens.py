"""Golden counter invariants.

The files under ``tests/golden/`` record, for one multi-grouping query
per dataset on every engine, the full invariant slice of the simulator:
workflow counters, per-job byte/record volumes, simulated cost, and an
order-sensitive digest of the result rows.  Re-capturing them with the
current code must be bit-identical — both with the performance caches
on (the default) and in reference mode (caches off) — so the perf fast
paths provably never change a simulated number.
"""

import json
from pathlib import Path

import pytest

from repro.perf import reference_mode
from repro.perf.goldens import GOLDEN_SCHEMA, check_golden_file

GOLDEN_ROOT = Path(__file__).resolve().parents[1] / "golden"
# tests/golden/ also hosts other schema contracts (e.g. repro-trace/v1);
# only counter goldens are recapturable here.
GOLDEN_FILES = sorted(
    path
    for path in GOLDEN_ROOT.glob("*.json")
    if json.loads(path.read_text()).get("schema") == GOLDEN_SCHEMA
)


def test_golden_files_are_committed():
    assert GOLDEN_FILES, f"no golden files under {GOLDEN_ROOT}"


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=lambda p: p.stem)
def test_golden_recapture_is_bit_identical(path):
    assert json.loads(path.read_text())["schema"] == GOLDEN_SCHEMA
    assert check_golden_file(path) == []


def test_reference_mode_recapture_matches_golden():
    """The uncached seed semantics and the cached fast path must agree
    on every golden number, not just on row counts."""
    path = GOLDEN_ROOT / "bsbm-tiny.json"
    with reference_mode():
        assert check_golden_file(path) == []
