"""Property tests for the cached size-estimation fast path.

The contract under test: for every record shape the engines produce,
``estimate_size`` (cached, type-dispatched) returns exactly what the
seed's uncached implementation (``_reference_estimate_size``) returns —
on first call, on repeat calls (cache hits), and across structurally
equal copies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce import cost
from repro.mapreduce.cost import _reference_estimate_size, estimate_size
from repro.ntga.triplegroup import JoinedTripleGroup, TripleGroup
from repro.perf import reference_mode
from repro.rdf.terms import BNode, IRI, Literal, Variable
from repro.rdf.triples import Triple

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_text = st.text(min_size=1, max_size=20)
_iris = st.builds(IRI, _text.map(lambda s: "urn:" + s))
_bnodes = st.builds(BNode, _text)
_variables = st.builds(Variable, st.from_regex(r"[a-z][a-z0-9]{0,8}", fullmatch=True))
_literals = st.one_of(
    st.builds(Literal, _text),
    st.builds(Literal, _text, datatype=_text.map(lambda s: "urn:dt/" + s)),
    st.builds(Literal, _text, language=st.sampled_from(["en", "de", "fr"])),
)
_terms = st.one_of(_iris, _bnodes, _literals)
_subjects = st.one_of(_iris, _bnodes)

_triples = st.builds(Triple, _subjects, _iris, _terms)


@st.composite
def _triplegroups(draw):
    subject = draw(_subjects)
    pairs = draw(st.lists(st.tuples(_iris, _terms), min_size=1, max_size=5))
    return TripleGroup(subject, tuple(Triple(subject, p, o) for p, o in pairs))


@st.composite
def _joined_triplegroups(draw):
    groups = draw(st.lists(_triplegroups(), min_size=1, max_size=3))
    fixed = draw(st.lists(st.tuples(_variables, _terms), max_size=2))
    return JoinedTripleGroup(
        tuple(enumerate(groups)), tuple(dict(fixed).items())
    )


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    _text,
)

_leaves = st.one_of(_scalars, _terms, _variables, _triples)

_records = st.recursive(
    st.one_of(_leaves, _triplegroups(), _joined_triplegroups()),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.one_of(_terms, _variables, _text), children, max_size=4),
        st.frozensets(_leaves, max_size=4),
    ),
    max_leaves=12,
)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@settings(max_examples=200)
@given(_records)
def test_cached_size_equals_reference(record):
    assert estimate_size(record) == _reference_estimate_size(record)
    # Second call exercises the populated caches — must be idempotent.
    assert estimate_size(record) == _reference_estimate_size(record)


@settings(max_examples=100)
@given(_records)
def test_reference_mode_agrees(record):
    cached = estimate_size(record)
    with reference_mode():
        assert estimate_size(record) == cached


@settings(max_examples=100)
@given(_triples)
def test_structurally_equal_triples_report_equal_sizes(triple):
    # A fresh copy has cold caches; a triple that was already sized has
    # warm ones.  Equality of the value objects must imply size equality.
    estimate_size(triple)  # warm the original
    copy = Triple(triple.subject, triple.property, triple.object)
    assert triple == copy
    assert estimate_size(triple) == estimate_size(copy)


@settings(max_examples=100)
@given(_triplegroups())
def test_structurally_equal_triplegroups_report_equal_sizes(group):
    group.estimated_size()  # warm the memo
    copy = TripleGroup(
        group.subject,
        tuple(Triple(t.subject, t.property, t.object) for t in group.triples),
    )
    assert group == copy
    assert copy.estimated_size() == group.estimated_size()
    assert copy.props() == group.props()


def test_mutable_estimated_size_objects_are_never_cached():
    """Records whose estimated_size can change (accumulators) must be
    re-sized on every call — the dispatch table may not pin them."""

    class Growing:
        def __init__(self):
            self.n = 10

        def estimated_size(self):
            return self.n

    record = Growing()
    assert estimate_size(record) == 10
    record.n = 99
    assert estimate_size(record) == 99


def test_arbitrary_object_falls_back_to_repr():
    class Opaque:
        def __repr__(self):
            return "<opaque>"

    assert estimate_size(Opaque()) == _reference_estimate_size(Opaque())
    assert estimate_size(Opaque()) == cost._POINTER + len("<opaque>")


def test_accumulator_tuple_sizes_track_merges():
    """AccumulatorTuple mutates on merge; its shuffle size must follow."""
    from repro.sparql.aggregates import AccumulatorTuple, make_accumulator

    first = AccumulatorTuple(
        [make_accumulator("SUM"), make_accumulator("COUNT", distinct=True)]
    )
    second = AccumulatorTuple(
        [make_accumulator("SUM"), make_accumulator("COUNT", distinct=True)]
    )
    for value in (5, 7):
        first.accumulators[0].update(value)
        first.accumulators[1].update(value)
    second.accumulators[0].update(11)
    second.accumulators[1].update("urn:distinct-key")
    before = estimate_size(first)
    first.merge(second)
    after = estimate_size(first)
    # The cached dispatcher must re-size the mutated tuple, not serve a
    # stale cached value...
    assert after == _reference_estimate_size(first)
    # ...and the merge really did change the size (the distinct set grew).
    assert after > before
