"""The bench --profile harness: v2 schema, the flat A/B pass, and the
BENCH_PR6 golden checker."""

import json
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.perf.profile import (
    PROFILE_SCHEMA,
    check_profile_golden,
    profile_experiments,
    render_report,
    write_report,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_GOLDEN = REPO_ROOT / "benchmarks" / "golden" / "BENCH_PR6.json"


@pytest.fixture(scope="module")
def tiny_report():
    return profile_experiments(["table3-bsbm-tiny"], reference=False)


class TestProfileV2:
    def test_schema_and_flat_verdict(self, tiny_report):
        assert tiny_report["schema"] == "repro-bench-profile/v2"
        assert PROFILE_SCHEMA == "repro-bench-profile/v2"
        assert tiny_report["answers_match_flat"] is True
        # reference pass skipped -> vacuous claim stays None
        assert tiny_report["counters_match_reference"] is None

    def test_runs_carry_flat_counters_and_reduction(self, tiny_report):
        runs = tiny_report["experiments"][0]["runs"]
        assert runs
        for run in runs:
            assert run["shuffle_bytes_flat"] >= run["shuffle_bytes"]
            assert run["materialized_bytes_flat"] >= run["materialized_bytes"]
            assert "rows_digest" in run
            assert "flat_wall_seconds" in run
        ntga = [run for run in runs if run["engine"] == "rapid-analytics"]
        hive = [run for run in runs if run["engine"] == "hive-naive"]
        assert all(run["shuffle_reduction"] > 0 for run in ntga)
        assert all((run["shuffle_reduction"] or 0) == 0 for run in hive)

    def test_flat_baseline_can_be_skipped(self):
        report = profile_experiments(
            ["table3-bsbm-tiny"], reference=False, flat_baseline=False
        )
        assert report["answers_match_flat"] is None
        assert "shuffle_reduction" not in report["experiments"][0]["runs"][0]

    def test_render_shows_reduction_column(self, tiny_report):
        rendered = render_report(tiny_report)
        assert "reduc" in rendered
        assert "answers_match_flat=True" in rendered

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReproError):
            profile_experiments(["nope"], reference=False)


def _synthetic_report(reductions):
    """A minimal v2 report with one MG-class run per given reduction."""
    return {
        "schema": PROFILE_SCHEMA,
        "answers_match_flat": True,
        "experiments": [
            {
                "exp_id": "figure8a",
                "runs": [
                    {
                        "qid": f"MG{i + 1}",
                        "engine": "rapid-analytics",
                        "rows": 10,
                        "rows_digest": f"d{i}",
                        "cycles": 3,
                        "map_only_cycles": 1,
                        "shuffle_bytes": 700,
                        "materialized_bytes": 900,
                        "shuffle_bytes_flat": 1000,
                        "materialized_bytes_flat": 1200,
                        "shuffle_reduction": reduction,
                        "failed": False,
                    }
                    for i, reduction in enumerate(reductions)
                ],
            }
        ],
    }


class TestProfileGoldenChecker:
    def test_accepts_qualifying_golden(self, tmp_path):
        report = _synthetic_report([0.3, 0.4, 0.1])
        path = write_report(report, tmp_path / "golden.json")
        assert check_profile_golden(path) == []

    def test_rejects_insufficient_reduction(self):
        problems = check_profile_golden(_synthetic_report([0.3, 0.1, 0.05]))
        assert any("only 1 MG-class" in p for p in problems)

    def test_rejects_missing_flat_verdict(self):
        report = _synthetic_report([0.3, 0.4])
        report["answers_match_flat"] = None
        problems = check_profile_golden(report)
        assert any("answers_match_flat" in p for p in problems)

    def test_rejects_wrong_schema(self):
        problems = check_profile_golden({"schema": "repro-bench-profile/v1"})
        assert problems and "schema mismatch" in problems[0]

    def test_fresh_within_tolerance_passes(self):
        golden = _synthetic_report([0.3, 0.4])
        fresh = _synthetic_report([0.31, 0.39])
        assert check_profile_golden(golden, fresh) == []

    def test_fresh_drift_detected(self):
        golden = _synthetic_report([0.3, 0.4])
        fresh = _synthetic_report([0.3, 0.5])
        problems = check_profile_golden(golden, fresh)
        assert any("drifted" in p for p in problems)

    def test_fresh_counter_mismatch_detected(self):
        golden = _synthetic_report([0.3, 0.4])
        fresh = _synthetic_report([0.3, 0.4])
        fresh["experiments"][0]["runs"][0]["rows_digest"] = "tampered"
        fresh["experiments"][0]["runs"][1]["shuffle_bytes"] = 1
        problems = check_profile_golden(golden, fresh)
        assert any("rows_digest" in p for p in problems)
        assert any("shuffle_bytes" in p for p in problems)

    def test_missing_run_detected(self):
        golden = _synthetic_report([0.3, 0.4])
        fresh = _synthetic_report([0.3])
        problems = check_profile_golden(golden, fresh)
        assert any("present only in golden" in p for p in problems)


def test_committed_bench_pr6_golden_self_checks():
    """The committed BENCH_PR6.json must keep certifying the tentpole
    claim: >= 25% bytes-shuffled reduction on at least two MG-class
    queries with flat-identical answers."""
    assert BENCH_GOLDEN.exists(), "benchmarks/golden/BENCH_PR6.json missing"
    assert check_profile_golden(BENCH_GOLDEN) == []
    golden = json.loads(BENCH_GOLDEN.read_text())
    assert golden["schema"] == PROFILE_SCHEMA
