"""Determinism tests for the interned shuffle sort keys.

The seed sorted shuffle keys by ``(type name, repr)``.  The cached fast
path must order keys *identically* — including the subtle case of IRIs
containing characters that sort below the repr quote character (``#``
is 0x23, ``'`` is 0x27), which is why the cache interns the exact repr
string per term instead of comparing component tuples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce import runner
from repro.mapreduce.runner import _key_repr, _raw_sort_key, _sort_key
from repro.rdf.terms import BNode, IRI, Literal, Variable

# ---------------------------------------------------------------------------
# Strategies: every key shape the engines emit as a map-output key
# ---------------------------------------------------------------------------

_text = st.text(min_size=0, max_size=20)
_iris = st.builds(
    IRI,
    st.one_of(
        _text.map(lambda s: "urn:" + s),
        # Fragment IRIs exercise the below-quote-character ordering case.
        _text.map(lambda s: "http://example.org/ns#" + s),
    ),
)
_literals = st.one_of(
    st.builds(Literal, _text),
    st.builds(Literal, _text, datatype=_text.map(lambda s: "urn:dt/" + s)),
    st.builds(Literal, _text, language=st.sampled_from(["en", "de"])),
)
_terms = st.one_of(
    _iris,
    st.builds(BNode, st.text(min_size=1, max_size=12)),
    st.builds(Variable, st.from_regex(r"[a-z][a-z0-9]{0,8}", fullmatch=True)),
    _literals,
)

_scalar_keys = st.one_of(st.none(), st.integers(), _text)
_leaf_keys = st.one_of(_terms, _scalar_keys)
# Lists → tuples so empty tuples and 1-tuples (trailing-comma repr) appear.
_tuple_keys = st.lists(_leaf_keys, max_size=4).map(tuple)
_nested_keys = st.tuples(_tuple_keys, _leaf_keys)
_keys = st.one_of(_leaf_keys, _tuple_keys, _nested_keys)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@settings(max_examples=300)
@given(_keys)
def test_key_repr_matches_builtin_repr(key):
    assert _key_repr(key) == repr(key)
    # Second call reads the interned per-term cache — must not drift.
    assert _key_repr(key) == repr(key)


@settings(max_examples=200)
@given(_keys)
def test_cached_sort_key_equals_seed_sort_key(key):
    assert _sort_key(key) == _raw_sort_key(key)


@settings(max_examples=100)
@given(st.lists(_keys, max_size=25))
def test_sorted_order_matches_seed(keys):
    assert sorted(keys, key=_sort_key) == sorted(keys, key=_raw_sort_key)


def test_fragment_iri_orders_like_repr_not_like_components():
    """Regression: '#' (0x23) sorts below the repr quote (0x27), so the
    fragment IRI must sort *before* its prefix IRI — a component-wise
    comparison would order them the other way around."""
    plain = IRI("http://example.org/ns")
    fragment = IRI("http://example.org/ns#type")
    ordered = sorted([plain, fragment], key=_sort_key)
    assert ordered == sorted([plain, fragment], key=_raw_sort_key)
    assert ordered[0] is fragment


def test_disabled_cache_falls_back_to_raw_key():
    key = (IRI("urn:a"), Literal("b"))
    runner.SORT_KEY_CACHE_ENABLED = False
    try:
        assert _sort_key(key) == _raw_sort_key(key)
    finally:
        runner.SORT_KEY_CACHE_ENABLED = True
    assert _sort_key(key) == _raw_sort_key(key)
