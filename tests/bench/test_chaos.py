"""Chaos soak harness: spec parsing, determinism, schema, goldens."""

import json

import pytest

from repro.bench.chaos import (
    CHAOS_SCHEMA,
    ChaosSpec,
    chaos_soak_report,
    check_chaos_golden,
    render_chaos_report,
    spec_from_report,
    write_chaos_report,
)
from repro.datasets import bsbm
from repro.errors import CheckpointError, ReproError


@pytest.fixture(scope="module")
def tiny_graph():
    return bsbm.generate(bsbm.preset("tiny"))


@pytest.fixture(scope="module")
def tiny_report(tiny_graph):
    return chaos_soak_report(
        "table3-bsbm-tiny", ChaosSpec.from_spec("seeds=2,rate=0.1"), graph=tiny_graph
    )


class TestSpecParsing:
    def test_minimal(self):
        spec = ChaosSpec.from_spec("seeds=3,rate=0.05")
        assert spec.seeds == 3
        assert spec.rate == 0.05
        assert spec.attempts == 1
        assert spec.budget == 64

    def test_all_keys(self):
        spec = ChaosSpec.from_spec(
            "seeds=2, rate=0.1, attempts=3, budget=5, straggler=0.2, write=0.01"
        )
        assert spec == ChaosSpec(
            seeds=2, rate=0.1, attempts=3, budget=5,
            straggler_rate=0.2, write_failure_rate=0.01,
        )

    @pytest.mark.parametrize(
        "text",
        [
            "bogus",
            "seeds=3",                # missing rate
            "rate=0.1",               # missing seeds
            "seeds=0,rate=0.1",       # seeds < 1
            "seeds=3,rate=1.5",       # rate out of range
            "seeds=3,rate=0.1,attempts=0",
            "seeds=x,rate=0.1",       # unparseable int
            "seeds=3,rate=0.1,typo=4",
        ],
    )
    def test_malformed_specs_raise_checkpoint_error(self, text):
        with pytest.raises(CheckpointError):
            ChaosSpec.from_spec(text)

    def test_plan_and_policy_derivation(self):
        spec = ChaosSpec.from_spec("seeds=2,rate=0.1,attempts=3,budget=5")
        plan = spec.plan_for_seed(2)
        assert plan.seed == 2
        assert plan.task_failure_rate == 0.1
        assert plan.max_attempts == 3
        assert spec.policy().max_resubmissions == 5

    def test_roundtrips_through_report_dict(self):
        spec = ChaosSpec.from_spec("seeds=2,rate=0.1")
        assert spec_from_report({"chaos": spec.as_dict()}) == spec


class TestReportShape:
    def test_schema_and_dimensions(self, tiny_report):
        assert tiny_report["schema"] == CHAOS_SCHEMA
        assert tiny_report["experiment"] == "table3-bsbm-tiny"
        assert tiny_report["engines"] == ["hive-naive", "rapid-analytics"]
        # 2 seeds x 4 queries x 2 engines
        assert len(tiny_report["runs"]) == 16
        seeds = {run["seed"] for run in tiny_report["runs"]}
        assert seeds == {1, 2}

    def test_every_run_is_bit_identical(self, tiny_report):
        for run in tiny_report["runs"]:
            key = (run["seed"], run["qid"], run["engine"])
            assert run["completed"], key
            assert run["rows_match_baseline"], key
            assert run["base_counters_match_baseline"], key
        assert tiny_report["verdicts"]["all_complete"]
        assert tiny_report["verdicts"]["all_bit_identical"]

    def test_summary_accounting_consistent(self, tiny_report):
        for engine, stats in tiny_report["summary"].items():
            assert stats["runs"] == 8
            assert stats["completed"] == 8
            assert stats["bit_identical"]
            assert stats["lost_seconds"] == pytest.approx(
                stats["wasted_seconds"] + stats["overhead_seconds"], abs=1e-5
            )
            if stats["failures"] == 0:
                assert stats["lost_seconds_per_failure"] is None
            else:
                assert stats["lost_seconds_per_failure"] > 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReproError):
            chaos_soak_report("nope", ChaosSpec.from_spec("seeds=1,rate=0.1"))

    def test_render_mentions_verdicts(self, tiny_report):
        rendered = render_chaos_report(tiny_report)
        assert "chaos soak" in rendered
        assert "bit-identical to fault-free: True" in rendered


class TestDeterminism:
    def test_report_is_bit_identical_across_runs(self, tiny_graph, tiny_report):
        again = chaos_soak_report(
            "table3-bsbm-tiny",
            ChaosSpec.from_spec("seeds=2,rate=0.1"),
            graph=tiny_graph,
        )
        assert again == tiny_report
        assert json.dumps(again, sort_keys=True) == json.dumps(
            tiny_report, sort_keys=True
        )

    def test_golden_roundtrip(self, tiny_report, tmp_path):
        path = write_chaos_report(tiny_report, tmp_path / "chaos.json")
        assert check_chaos_golden(path) == []

    def test_golden_detects_drift(self, tiny_report, tmp_path):
        tampered = json.loads(json.dumps(tiny_report))
        tampered["runs"][0]["chaos_cost_seconds"] = "999.0"
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(tampered))
        problems = check_chaos_golden(path)
        assert problems
        assert any("chaos_cost_seconds" in problem for problem in problems)
