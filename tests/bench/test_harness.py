"""Harness tests on small graphs: measurement plumbing and paper shape."""

import pytest

from repro.bench.catalog import get_query
from repro.bench.harness import (
    ExperimentResult,
    QueryMeasurement,
    bsbm_config,
    run_experiment,
    table3_bsbm,
)
from repro.bench.reporting import render_cost_table, render_gains_table, render_io_table
from repro.core.engines import PAPER_ENGINES
from repro.datasets import bsbm


@pytest.fixture(scope="module")
def small_result(bsbm_small):
    queries = [get_query("MG1"), get_query("MG2")]
    return run_experiment(
        "test-exp",
        "test experiment",
        queries,
        bsbm_small,
        PAPER_ENGINES,
        bsbm_config(),
        verify=True,
    )


class TestRunExperiment:
    def test_measurement_grid_complete(self, small_result):
        assert small_result.query_ids() == ["MG1", "MG2"]
        for qid in ("MG1", "MG2"):
            per_engine = small_result.for_query(qid)
            assert set(per_engine) == set(PAPER_ENGINES)

    def test_verification_passes(self, small_result):
        assert small_result.mismatches == []

    def test_measurements_have_data(self, small_result):
        for measurement in small_result.measurements:
            assert measurement.cycles > 0
            assert measurement.cost_seconds > 0
            assert measurement.rows > 0
            assert measurement.wall_seconds >= 0
            assert not measurement.failed

    def test_speedup_and_gain(self, small_result):
        speedup = small_result.speedup("MG1", "hive-naive")
        assert speedup > 1
        gain = small_result.gain_percent("MG1", "hive-naive")
        assert 0 < gain < 100
        assert gain == pytest.approx((1 - 1 / speedup) * 100)

    def test_paper_performance_ordering(self, small_result):
        """The paper's Figure 8 ordering: RA < RAPID+ < naive Hive, and
        RA < MQO, on simulated cost."""
        for qid in ("MG1", "MG2"):
            per_engine = small_result.for_query(qid)
            ra = per_engine["rapid-analytics"].cost_seconds
            assert ra < per_engine["rapid-plus"].cost_seconds
            assert per_engine["rapid-plus"].cost_seconds < per_engine["hive-naive"].cost_seconds
            assert ra < per_engine["hive-mqo"].cost_seconds


class TestTable3Function:
    def test_table3_on_custom_graph(self):
        graph = bsbm.generate(bsbm.BSBMConfig(products=60, offers_per_product=2))
        result = table3_bsbm("500k", verify=True, graph=graph)
        assert result.query_ids() == ["G1", "G2", "G3", "G4"]
        assert result.mismatches == []
        for qid in result.query_ids():
            per_engine = result.for_query(qid)
            assert per_engine["rapid-analytics"].cycles == 2
            assert per_engine["hive-naive"].cycles == 4


class TestReporting:
    def test_cost_table_renders_all_queries(self, small_result):
        text = render_cost_table(small_result)
        assert "MG1" in text and "MG2" in text
        assert "Hive(Naive)" in text and "R.Analytics" in text

    def test_gains_table(self, small_result):
        text = render_gains_table(small_result)
        assert "speedup" in text and "%" in text

    def test_io_table(self, small_result):
        text = render_io_table(small_result)
        assert "Shuffle B" in text

    def test_failed_measurement_renders(self):
        result = ExperimentResult("x", "t", ("e1",))
        result.measurements.append(
            QueryMeasurement(
                qid="Q", engine="e1", rows=0, cycles=0, map_only_cycles=0,
                cost_seconds=float("inf"), shuffle_bytes=0, materialized_bytes=0,
                wall_seconds=0.0, failed="HDFSOutOfSpaceError",
            )
        )
        assert "FAIL(HDFSOutOfSpaceError)" in render_cost_table(result)
