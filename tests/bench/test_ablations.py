"""Ablation tests: each optimization measurably earns its keep."""

import pytest

from repro.bench.ablations import (
    combiner_ablation,
    ec_pruning_ablation,
    mapjoin_threshold_sweep,
    parallel_aggregation_ablation,
    shared_scan_benefit,
)
from repro.bench.harness import bsbm_config
from tests.conftest import MG1_STYLE_QUERY


def test_combiner_cuts_shuffle_volume(bsbm_small, mg1_style_query):
    from repro.bench.catalog import get_query

    with_combiner, without_combiner = combiner_ablation(
        bsbm_small, get_query("MG1").sparql, bsbm_config()
    )
    assert with_combiner.cycles == without_combiner.cycles
    assert with_combiner.shuffle_bytes < without_combiner.shuffle_bytes
    assert with_combiner.cost_seconds < without_combiner.cost_seconds


def test_combiner_does_not_change_results(product_graph, mg1_style_query):
    # combiner_ablation runs the same plan twice; equality of aggregates is
    # covered by the runner property tests — here we just confirm both
    # variants execute end to end on a non-trivial graph.
    with_combiner, without_combiner = combiner_ablation(product_graph, mg1_style_query)
    assert with_combiner.cycles == without_combiner.cycles == 3


def test_ec_pruning_reduces_input(chem_tiny):
    """G9 touches only the publication/gene classes; pruning must skip
    the chemogenomics files entirely.  (Cost is not asserted: many small
    files also mean more mappers, a real Hadoop-era trade-off the paper
    acknowledges by grouping type triples into fewer files.)"""
    from repro.bench.catalog import get_query

    pruned, unpruned = ec_pruning_ablation(
        chem_tiny, get_query("G9").sparql, bsbm_config()
    )
    assert pruned.input_bytes < unpruned.input_bytes
    assert pruned.shuffle_bytes == unpruned.shuffle_bytes  # same answers flow


def test_mapjoin_sweep_monotone_map_only(chem_tiny):
    from repro.bench.catalog import get_query

    points = mapjoin_threshold_sweep(
        chem_tiny, get_query("G5").sparql, (0, 1024, 10**7)
    )
    assert len(points) == 3
    # All thresholds produce the same total cycle count; larger thresholds
    # turn more of them map-only, which shows up as less shuffle.
    cycles = {point.cycles for _, point in points}
    assert len(cycles) == 1
    assert points[0][1].shuffle_bytes > points[-1][1].shuffle_bytes
    # The grouping cycle still shuffles partial aggregates.
    assert points[-1][1].shuffle_bytes > 0



def test_parallel_aggregation_saves_a_cycle_and_a_scan(bsbm_small):
    """Figure 6(b) vs 6(a): fusing the two Agg-Joins drops one full MR
    cycle and one scan of the composite detail."""
    from repro.bench.catalog import get_query

    parallel, sequential = parallel_aggregation_ablation(
        bsbm_small, get_query("MG1").sparql, bsbm_config()
    )
    assert parallel.cycles == 3
    assert sequential.cycles == 4
    assert parallel.input_bytes < sequential.input_bytes
    assert parallel.cost_seconds < sequential.cost_seconds


def test_shared_scan_beats_sequential(bsbm_small):
    from repro.bench.catalog import get_query

    points = shared_scan_benefit(bsbm_small, get_query("MG1").sparql, bsbm_config())
    analytics, plus = points["rapid-analytics"], points["rapid-plus"]
    assert analytics.cycles < plus.cycles
    assert analytics.input_bytes < plus.input_bytes
    assert analytics.cost_seconds < plus.cost_seconds
