"""Catalog tests: the workload's structure matches Figure 7."""

import pytest

from repro.bench.catalog import (
    CATALOG,
    get_query,
    multi_grouping_queries,
    queries_for_dataset,
    single_grouping_queries,
)
from repro.core.query_model import parse_analytical
from repro.errors import DatasetError


def test_catalog_completeness():
    expected = {f"G{i}" for i in (1, 2, 3, 4, 5, 6, 7, 8, 9)}
    expected |= {f"MG{i}" for i in list(range(1, 5)) + list(range(6, 19))}
    assert set(CATALOG) == expected


def test_every_query_parses_into_declared_structure():
    """The star-size/grouping metadata must match the actual SPARQL."""
    for query in CATALOG.values():
        analytical = parse_analytical(query.sparql)
        assert len(analytical.subqueries) == len(query.structure), query.qid
        for subquery, declared in zip(analytical.subqueries, query.structure):
            actual_sizes = tuple(len(star) for star in subquery.pattern.stars)
            assert actual_sizes == declared.star_sizes, query.qid
            assert len(subquery.group_by) == len(declared.group_by), query.qid


@pytest.mark.parametrize(
    "qid,gp1,gp1_groups,gp2,gp2_groups",
    [
        # Figure 7 rows (star tp counts and grouping keys).
        ("MG1", (3, 2), ("feature",), (2, 2), ()),
        ("MG3", (3, 3, 1), ("feature", "country"), (2, 3, 1), ("country",)),
        ("MG6", (4, 2, 2), ("cid", "gene"), (4, 2, 2), ("cid",)),
        ("MG8", (4, 2, 2), ("cid", "gene"), (4, 2, 2), ()),
        ("MG9", (1, 2), ("gene",), (1, 2), ()),
        ("MG10", (3, 1), ("disease", "gene"), (2, 1), ("gene",)),
        ("MG11", (2, 2), ("country",), (2, 1), ()),
        ("MG12", (2, 2), ("country", "pubType"), (2, 1), ("country",)),
        ("MG13", (3, 1), ("author", "pubType"), (3, 1), ("pubType",)),
        ("MG15", (3, 1), ("authorlastname",), (3, 1), ()),
        ("MG17", (3, 2), ("country",), (3, 1), ()),
        ("MG18", (3, 2), ("author", "country"), (2, 2), ("country",)),
    ],
)
def test_figure7_rows(qid, gp1, gp1_groups, gp2, gp2_groups):
    query = get_query(qid)
    assert query.structure[0].star_sizes == gp1
    assert query.structure[0].group_by == gp1_groups
    assert query.structure[1].star_sizes == gp2
    assert query.structure[1].group_by == gp2_groups


def test_selectivity_variants():
    assert get_query("MG1").selectivity == "lo"
    assert get_query("MG2").selectivity == "hi"
    assert get_query("MG15").selectivity == "lo"
    assert get_query("MG16").selectivity == "hi"


def test_dataset_partition():
    assert {q.qid for q in queries_for_dataset("bsbm")} == {
        "G1", "G2", "G3", "G4", "MG1", "MG2", "MG3", "MG4",
    }
    assert {q.qid for q in queries_for_dataset("chem")} == {
        "G5", "G6", "G7", "G8", "G9", "MG6", "MG7", "MG8", "MG9", "MG10",
    }
    assert {q.qid for q in queries_for_dataset("pubmed")} == {
        f"MG{i}" for i in range(11, 19)
    }


def test_grouping_split():
    assert len(single_grouping_queries()) == 9
    assert len(multi_grouping_queries()) == 17


def test_structure_label():
    assert get_query("MG1").structure[0].label() == "3:2 {feature}"
    assert get_query("MG1").structure[1].label() == "2:2 ALL"


def test_unknown_query_raises():
    with pytest.raises(DatasetError):
        get_query("MG99")
