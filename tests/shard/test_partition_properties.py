"""Property tests for the graph partitioners (hypothesis).

The invariants that make sharded execution sound:

* every strategy is a **total, disjoint** assignment — each subject
  triplegroup lands on exactly one shard, and the per-shard tallies
  add back up to the whole graph;
* partitions are **deterministic**: pure functions of the graph's
  triple order, independent of object identity and of
  ``PYTHONHASHSEED`` (the CI matrix re-runs this file under two seeds
  and compares bytes);
* at ``shards=1`` a real sharded execution moves **zero** bytes across
  partition boundaries;
* on star-heavy clustered graphs — the shape the NTGA operators are
  built for — the greedy min-edge-cut heuristic never cuts more
  subject-to-subject edges than hash partitioning.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import ShardError
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.rdf.triples import Triple
from repro.shard.partition import (
    PARTITIONERS,
    build_partition,
    stable_key_hash,
    validate_partitioner,
)

EX = "http://ex.org/"


def star_heavy_graph(clusters: int, cluster_size: int) -> Graph:
    """A clustered, star-heavy graph: *clusters* groups of
    *cluster_size* subjects each, densely linked inside a cluster (every
    subject points at its cluster siblings) and never across clusters,
    with equal-weight property stars on every subject.  The best
    possible N-way cut of such a graph is 0 whenever whole clusters fit
    on shards — exactly the structure a locality-aware partitioner must
    exploit and hash partitioning provably cannot."""
    triples = []
    for c in range(clusters):
        members = [IRI(f"{EX}c{c:03d}/s{i:03d}") for i in range(cluster_size)]
        for i, subject in enumerate(members):
            triples.append(
                Triple(subject, IRI(EX + "label"), Literal(f"c{c}s{i}"))
            )
            for sibling in members[i + 1 :]:
                triples.append(Triple(subject, IRI(EX + "link"), sibling))
    graph = Graph()
    graph.add_all(triples)
    return graph


@st.composite
def clustered_graphs(draw):
    clusters = draw(st.integers(min_value=8, max_value=14))
    cluster_size = draw(st.integers(min_value=2, max_value=5))
    return star_heavy_graph(clusters, cluster_size)


class TestTotalAndDisjoint:
    @settings(max_examples=25, deadline=None)
    @given(
        graph=clustered_graphs(),
        strategy=st.sampled_from(PARTITIONERS),
        shards=st.integers(min_value=1, max_value=7),
    )
    def test_every_subject_on_exactly_one_shard(self, graph, strategy, shards):
        partition = build_partition(graph, strategy, shards)
        subjects = {triple.subject for triple in graph}
        # Total: the assignment covers every subject (and nothing else).
        assert set(partition.assignment) == subjects
        # Disjoint by construction (a dict maps each key once); the
        # per-shard tallies must re-add to the whole graph.
        assert all(0 <= shard < shards for shard in partition.assignment.values())
        assert sum(partition.group_counts) == len(subjects)
        assert sum(partition.triple_counts) == sum(1 for _ in graph)

    @settings(max_examples=25, deadline=None)
    @given(
        graph=clustered_graphs(),
        strategy=st.sampled_from(PARTITIONERS),
        shards=st.integers(min_value=2, max_value=7),
    )
    def test_cut_edges_match_assignment(self, graph, strategy, shards):
        partition = build_partition(graph, strategy, shards)
        assert 0 <= partition.cut_edges <= partition.total_edges
        assert 0.0 <= partition.cut_fraction <= 1.0


class TestDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        strategy=st.sampled_from(PARTITIONERS),
        shards=st.integers(min_value=2, max_value=5),
    )
    def test_identical_graphs_partition_identically(self, seed, strategy, shards):
        """Two independently built copies of the same graph (distinct
        term objects, distinct ids) must produce the identical
        assignment — the partitioners may depend only on term *values*
        and triple order, never on ``id()`` or the builtin ``hash()``."""
        clusters = 6 + seed % 4
        size = 2 + seed % 3
        first = build_partition(star_heavy_graph(clusters, size), strategy, shards)
        second = build_partition(star_heavy_graph(clusters, size), strategy, shards)
        assert first.assignment == second.assignment
        assert first.cut_edges == second.cut_edges
        assert first.weights == second.weights

    def test_stable_key_hash_is_value_based(self):
        assert stable_key_hash(IRI(EX + "a")) == stable_key_hash(IRI(EX + "a"))
        assert stable_key_hash(IRI(EX + "a")) != stable_key_hash(IRI(EX + "b"))
        # Type participates: a str and an IRI with equal text differ.
        assert stable_key_hash("x") != stable_key_hash(IRI("x"))

    def test_partition_is_memoized_per_graph_version(self):
        graph = star_heavy_graph(4, 3)
        first = build_partition(graph, "hash", 3)
        assert build_partition(graph, "hash", 3) is first
        graph.add(Triple(IRI(EX + "new"), IRI(EX + "label"), Literal("n")))
        rebuilt = build_partition(graph, "hash", 3)
        assert rebuilt is not first
        assert IRI(EX + "new") in rebuilt.assignment


class TestSingleShard:
    @settings(max_examples=10, deadline=None)
    @given(graph=clustered_graphs(), strategy=st.sampled_from(PARTITIONERS))
    def test_one_shard_cuts_nothing(self, graph, strategy):
        partition = build_partition(graph, strategy, 1)
        assert partition.cut_edges == 0
        assert set(partition.assignment.values()) == {0}

    def test_one_shard_execution_exchanges_zero_bytes(self):
        """A real sharded execution at shards=1 runs the full
        partial/exchange/assemble machinery yet moves nothing across a
        partition boundary."""
        from repro.core.engines import make_engine, to_analytical
        from repro.core.results import EngineConfig
        from repro.bench.catalog import get_query
        from repro.datasets import bsbm

        graph = bsbm.generate(bsbm.preset("tiny"))
        query = to_analytical(get_query("MG1").sparql)
        engine = make_engine("rapid-analytics")
        for strategy in PARTITIONERS:
            report = engine.execute(
                query, graph, EngineConfig(shards=1, partitioner=strategy)
            )
            assert report.stats.total_exchange_bytes == 0
            assert "exchange_bytes" not in report.stats.counters.as_dict()


class TestMinEdgeCutQuality:
    @settings(max_examples=25, deadline=None)
    @given(
        graph=clustered_graphs(),
        shards=st.integers(min_value=2, max_value=3),
    )
    def test_greedy_cut_never_worse_than_hash_on_clustered_graphs(
        self, graph, shards
    ):
        """On star-heavy clustered graphs (≥ 4x shards equal-weight
        clusters, so capacity never forces a cluster apart) the greedy
        heuristic's edge cut is monotonically non-increasing relative to
        hash partitioning."""
        greedy = build_partition(graph, "min-edge-cut", shards)
        hashed = build_partition(graph, "hash", shards)
        assert greedy.cut_edges <= hashed.cut_edges

    def test_greedy_keeps_whole_clusters_together(self):
        graph = star_heavy_graph(clusters=12, cluster_size=3)
        partition = build_partition(graph, "min-edge-cut", 3)
        # Intra-cluster edges are the only edges; a cluster-respecting
        # placement cuts none of them.
        assert partition.cut_edges == 0
        assert partition.total_edges > 0


class TestValidation:
    def test_unknown_partitioner(self):
        with pytest.raises(ShardError, match="unknown partitioner"):
            validate_partitioner("metis")

    def test_zero_shards(self):
        with pytest.raises(ShardError, match="shards must be >= 1"):
            build_partition(star_heavy_graph(2, 2), "hash", 0)
