"""Fault/recovery composition: a crash inside one shard's partial
evaluation recovers through the checkpoint ledger without re-running
other shards' committed jobs.

The scenario is fully deterministic: FaultPlan spec ``18,0.08,0,0,1``
(seed 18, 8% crash rate, max_attempts=1 so every injected crash aborts
its job) against MG1 on the tiny BSBM preset at shards=4/min-edge-cut
crashes exactly one per-shard job — the TG_AgJ partial on shard 2
(``ra:agg-join@s2``) — after the α-join's eight per-shard jobs and the
agg-join partials on shards 0 and 1 have committed.  The resubmission
must skip exactly those ten committed jobs and recompute only the
failed shard onward.
"""

import pytest

from repro import obs
from repro.bench.catalog import get_query
from repro.core.engines import make_engine, to_analytical
from repro.core.results import EngineConfig
from repro.datasets import bsbm
from repro.mapreduce.checkpoint import RecoveryPolicy
from repro.mapreduce.faults import FaultPlan

FAULT_SPEC = "18,0.08,0,0,1"
CRASHED_JOB = "ra:agg-join@s2"
#: The jobs durably committed before the crash: every per-shard job of
#: the α-join cycle plus the agg-join partials that ran ahead of the
#: crashed shard.  A resubmission salvages exactly this set.
SALVAGED_JOBS = frozenset(
    [f"ra:alpha-join-0@s{i}" for i in range(4)]
    + [f"ra:alpha-join-0@r{i}" for i in range(4)]
    + ["ra:agg-join@s0", "ra:agg-join@s1"]
)


@pytest.fixture(scope="module")
def graph():
    return bsbm.generate(bsbm.preset("tiny"))


@pytest.fixture(scope="module")
def query():
    return to_analytical(get_query("MG1").sparql)


@pytest.fixture(scope="module")
def fault_free(graph, query):
    return make_engine("rapid-analytics").execute(
        query, graph, EngineConfig(shards=4, partitioner="min-edge-cut")
    )


def test_partial_crash_recovers_without_rerunning_other_shards(
    graph, query, fault_free
):
    engine = make_engine("rapid-analytics")
    with obs.tracing() as recorder:
        report = engine.execute(
            query,
            graph,
            EngineConfig(
                shards=4,
                partitioner="min-edge-cut",
                fault_plan=FaultPlan.from_spec(FAULT_SPEC),
                recovery=RecoveryPolicy(),
            ),
        )

    # The crash happened inside one shard's partial evaluation.
    resumes = [e for e in recorder.events if e.name == "workflow-resume"]
    assert [e.attrs["job"] for e in resumes] == [CRASHED_JOB]

    # The resubmission salvaged exactly the committed per-shard jobs:
    # the whole α-join expansion plus the agg-join partials that ran
    # before the crashed shard — nothing re-executed, nothing missing.
    skips = [e for e in recorder.events if e.name == "checkpoint-skip"]
    assert {e.attrs["job"] for e in skips} == SALVAGED_JOBS
    assert len(skips) == len(SALVAGED_JOBS)

    counters = report.stats.counters.as_dict()
    assert counters["workflow_resubmissions"] == 1
    assert counters["jobs_skipped_by_checkpoint"] == len(SALVAGED_JOBS)
    assert counters["salvaged_bytes"] > 0

    # Recovery is accounting only: the recovered run's answers are
    # bit-identical to the fault-free sharded run (hence to unsharded).
    assert report.rows == fault_free.rows
    assert report.stats.total_exchange_bytes == fault_free.stats.total_exchange_bytes
    # The recovered run costs strictly more (wasted attempt + resubmit
    # overhead), never less.
    assert report.cost_seconds > fault_free.cost_seconds


def test_exchange_files_fingerprint_stably_across_resubmissions(graph, query):
    """Assemble jobs read driver-written exchange files; those files
    must be byte-stable across resubmissions or every assemble job's
    checkpoint would self-invalidate.  The salvaged set in the test
    above includes assemble jobs (``@r``) — this pins the property
    directly by asserting an assemble job skipped on resubmission."""
    engine = make_engine("rapid-analytics")
    with obs.tracing() as recorder:
        engine.execute(
            query,
            graph,
            EngineConfig(
                shards=4,
                partitioner="min-edge-cut",
                fault_plan=FaultPlan.from_spec(FAULT_SPEC),
                recovery=RecoveryPolicy(),
            ),
        )
    skipped = {e.attrs["job"] for e in recorder.events if e.name == "checkpoint-skip"}
    assert any("@r" in name for name in skipped)
