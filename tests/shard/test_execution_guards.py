"""Edge-of-the-shard-subsystem guards: what rejects, what degrades,
and the small pure helpers the driver leans on.

These are the contracts the differential suite does not exercise — the
facade's refusal to hand a sharded config to an engine that would
silently ignore it, the MQO batch guard, the ``--shards`` spec parser,
the per-shard cluster slicing, and the EXPLAIN sharding section.
"""

import pytest
from dataclasses import replace

from repro.bench.catalog import get_query
from repro.core.engines import run_query, to_analytical
from repro.core.explain import explain, explain_report
from repro.core.results import EngineConfig
from repro.errors import ShardError
from repro.mapreduce.cost import ClusterConfig
from repro.shard.ab import parse_shard_spec, rows_digest
from repro.shard.execution import shard_cluster
from repro.shard.partition import PARTITIONERS, build_partition


@pytest.fixture(scope="module")
def mg1(bsbm_small):
    return to_analytical(get_query("MG1").sparql), bsbm_small


class TestFacadeGuards:
    @pytest.mark.parametrize("engine", ["sparql-reference", "hive-baseline"])
    def test_non_ntga_engines_reject_sharded_configs(self, engine, mg1):
        query, graph = mg1
        with pytest.raises(ShardError, match="does not support sharded"):
            run_query(query, graph, engine, EngineConfig(shards=2))

    def test_partitioner_alone_triggers_the_guard(self, mg1):
        query, graph = mg1
        with pytest.raises(ShardError, match="sharding is available on"):
            run_query(
                query, graph, "sparql-reference", EngineConfig(partitioner="hash")
            )

    def test_ntga_engines_accept_sharded_configs(self, mg1):
        query, graph = mg1
        report = run_query(query, graph, "rapid-plus", EngineConfig(shards=2))
        assert report.rows

    def test_batch_execution_rejects_sharded_configs(self, mg1):
        from repro.ntga.engine import execute_batch

        query, graph = mg1
        with pytest.raises(ShardError, match="batch"):
            execute_batch([query, query], graph, EngineConfig(shards=2))


class TestShardSpecParser:
    def test_bare_count_means_all_strategies(self):
        assert parse_shard_spec("4") == (4, PARTITIONERS)

    def test_count_with_strategy(self):
        assert parse_shard_spec("2,min-edge-cut") == (2, ("min-edge-cut",))

    @pytest.mark.parametrize("spec", ["", "four", "4,metis", "0", "-1,hash"])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ShardError):
            parse_shard_spec(spec)


class TestShardCluster:
    def test_divides_nodes_keeping_slots(self):
        cluster = ClusterConfig(nodes=10)
        sliced = shard_cluster(cluster, 4)
        assert sliced.nodes == 2
        assert sliced.map_slots_per_node == cluster.map_slots_per_node
        assert sliced.reduce_slots_per_node == cluster.reduce_slots_per_node

    def test_never_below_one_node(self):
        assert shard_cluster(ClusterConfig(nodes=3), 8).nodes == 1

    def test_single_shard_is_identity(self):
        cluster = ClusterConfig(nodes=10)
        assert shard_cluster(cluster, 1) is cluster


class TestDescribeAndDigest:
    def test_describe_names_strategy_and_cut(self, bsbm_small):
        partition = build_partition(bsbm_small, "min-edge-cut", 3)
        text = partition.describe()
        assert "min-edge-cut over 3 shard(s)" in text
        assert f"edge cut {partition.cut_edges}/{partition.total_edges}" in text

    def test_rows_digest_is_order_insensitive(self, mg1):
        query, graph = mg1
        rows = run_query(query, graph).rows
        assert len(rows) > 1
        assert rows_digest(rows) == rows_digest(list(reversed(rows)))
        assert rows_digest(rows) != rows_digest(rows[1:])


class TestExplainSharding:
    def test_text_section_lists_every_shard(self, mg1):
        query, graph = mg1
        text = explain(
            query, "rapid-analytics", graph, EngineConfig(shards=3, partitioner="hash")
        )
        assert "sharding (hash, 3 shards):" in text
        for shard in range(3):
            assert f"shard {shard}:" in text
        assert "estimated exchange" in text

    def test_report_sharding_matches_partition(self, mg1):
        query, graph = mg1
        config = EngineConfig(shards=4, partitioner="min-edge-cut")
        sharding = explain_report(query, "rapid-analytics", graph, config)["sharding"]
        partition = build_partition(graph, "min-edge-cut", 4)
        assert sharding["strategy"] == "min-edge-cut"
        assert [s["groups"] for s in sharding["per_shard"]] == list(
            partition.group_counts
        )
        assert sharding["cut_edges"] == partition.cut_edges
        assert sharding["estimated_exchange_bytes"] > 0

    def test_unsharded_report_has_no_sharding_key(self, mg1):
        query, graph = mg1
        report = explain_report(query, "rapid-analytics", graph, EngineConfig())
        assert "sharding" not in report
