"""Planner A/B harness: rule vs cost over the MG slice, plus the
committed ``benchmarks/golden/BENCH_PR7.json`` regression.

The harness is the catalog-level acceptance check for the cost planner:
bit-identical answers (as multisets) and an actual run cost that never
exceeds the rule-based plan's, query by query.
"""

import json
from pathlib import Path

import pytest

from repro.plan.ab import (
    AB_SCHEMA,
    DEFAULT_QUERIES,
    check_ab_golden,
    planner_ab_report,
    render_ab_report,
    rows_digest,
    write_ab_report,
)
from repro.rdf.terms import Literal, Variable

BENCH_GOLDEN = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "golden" / "BENCH_PR7.json"
)


@pytest.fixture(scope="module")
def report():
    return planner_ab_report(DEFAULT_QUERIES)


class TestRowsDigest:
    def rows(self):
        return [
            {Variable("a"): Literal.from_python(1), Variable("b"): Literal.from_python(2)},
            {Variable("a"): Literal.from_python(3), Variable("b"): Literal.from_python(4)},
        ]

    def test_order_insensitive(self):
        rows = self.rows()
        assert rows_digest(rows) == rows_digest(list(reversed(rows)))

    def test_value_sensitive(self):
        rows = self.rows()
        changed = rows[:1] + [{Variable("a"): Literal.from_python(99)}]
        assert rows_digest(rows) != rows_digest(changed)

    def test_multiset_not_set(self):
        rows = self.rows()
        assert rows_digest(rows) != rows_digest(rows + rows[:1])


class TestReport:
    def test_schema_and_coverage(self, report):
        assert report["schema"] == AB_SCHEMA
        assert report["queries"] == list(DEFAULT_QUERIES)
        assert [run["qid"] for run in report["runs"]] == list(DEFAULT_QUERIES)

    def test_catalog_verdicts(self, report):
        """The acceptance invariant: the cost planner never picks a plan
        whose actual run cost exceeds the rule-based plan's, and the
        answers are identical."""
        assert report["verdicts"] == {
            "answers_all_match": True,
            "cost_never_worse": True,
            "priced_cost_leq_rule": True,
        }
        for run in report["runs"]:
            assert run["answers_match"], run["qid"]
            assert run["cost_not_worse"], run["qid"]

    def test_composite_wins_everywhere_on_catalog(self, report):
        """On the paper's own workload the rewrite always wins — the
        cost planner's pick is ``composite`` with source ``priced``."""
        for run in report["runs"]:
            assert run["chosen"] == "composite", run["qid"]
            assert run["source"] == "priced", run["qid"]
            assert run["priced_cost"]["cost"] <= run["priced_cost"]["rule"]

    def test_render_is_one_line_per_query(self, report):
        text = render_ab_report(report)
        for qid in DEFAULT_QUERIES:
            assert qid in text
        assert "cost plan never worse: True" in text


class TestBenchCLI:
    def test_single_query_ab_with_output(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "ab.json"
        code = main(["bench", "MG1", "--planner-ab", "--output", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "cost plan never worse: True" in out
        written = json.loads(out_path.read_text())
        assert written["schema"] == AB_SCHEMA
        assert written["queries"] == ["MG1"]

    def test_unknown_query_exits_2(self, capsys):
        from repro.cli import main

        code = main(["bench", "MG99", "--planner-ab"])
        assert code == 2
        assert "unknown" in capsys.readouterr().err

    def test_golden_mismatch_exits_1(self, capsys, tmp_path):
        from repro.cli import main

        drifted_path = tmp_path / "drifted.json"
        code = main(["bench", "MG1", "--planner-ab", "--output", str(drifted_path)])
        assert code == 0
        capsys.readouterr()
        drifted = json.loads(drifted_path.read_text())
        drifted["runs"][0]["chosen"] = "sequential"
        drifted_path.write_text(json.dumps(drifted))
        code = main(["bench", "MG1", "--planner-ab", "--golden", str(drifted_path)])
        err = capsys.readouterr().err
        assert code == 1
        assert "chosen" in err


class TestGolden:
    def test_bench_golden_is_committed_and_current(self, report):
        """``BENCH_PR7.json`` is exactly what the harness produces today
        — any estimator drift must come with a golden refresh."""
        golden = json.loads(BENCH_GOLDEN.read_text())
        assert golden == report

    def test_round_trip(self, report, tmp_path):
        path = write_ab_report(report, tmp_path / "ab.json")
        assert json.loads(path.read_text()) == report

    def test_check_detects_drift(self, report, tmp_path):
        drifted = json.loads(json.dumps(report))
        drifted["runs"][0]["priced_cost"]["cost"] += 1.0
        drifted["runs"][0]["chosen"] = "sequential"
        path = write_ab_report(drifted, tmp_path / "ab.json")
        problems = check_ab_golden(path)
        assert problems
        assert any("MG1" in problem and "chosen" in problem for problem in problems)
