"""Cardinality estimator: exactness guarantees and the class floor.

The estimator's core promise (docs/cost_model.md): on a single-star
pattern with no filters, ``star_subjects`` is *exact* — it counts the
subjects whose equivalence class contains every required property,
straight out of the :class:`~repro.rdf.stats.GraphStats` histogram.
The hypothesis test below checks that promise against brute force over
randomly shaped graphs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engines import make_engine, to_analytical
from repro.core.results import EngineConfig
from repro.mapreduce.hdfs import HDFS
from repro.ntga.physical import load_triplegroups
from repro.plan import CardinalityEstimator
from repro.rdf.graph import Graph
from repro.rdf.stats import profile
from repro.rdf.terms import IRI, Literal
from repro.rdf.triples import RDF_TYPE, Triple

N_PROPS = 4


def build_graph(subject_props):
    """One subject per entry; each holds the listed property indices."""
    graph = Graph()
    for index, props in enumerate(subject_props):
        subject = IRI(f"urn:s{index}")
        for p in sorted(props):
            graph.add(
                Triple(subject, IRI(f"urn:p{p}"), Literal.from_python(index * 10 + p))
            )
    return graph


def single_star_query(required):
    """A one-star grouping query requiring exactly *required* props."""
    ordered = sorted(required)
    pattern = " ; ".join(f"<urn:p{p}> ?v{p}" for p in ordered)
    return (
        f"SELECT ?s (COUNT(?v{ordered[0]}) AS ?c) "
        f"{{ ?s {pattern} . }} GROUP BY ?s"
    )


class TestStarSubjectsExact:
    @settings(max_examples=30, deadline=None)
    @given(
        subject_props=st.lists(
            st.frozensets(st.integers(0, N_PROPS - 1)), min_size=1, max_size=20
        ),
        required=st.frozensets(
            st.integers(0, N_PROPS - 1), min_size=1, max_size=N_PROPS
        ),
    )
    def test_matches_brute_force(self, subject_props, required):
        graph = build_graph(subject_props)
        analytical = to_analytical(single_star_query(required))
        star = analytical.subqueries[0].pattern.stars[0]
        estimator = CardinalityEstimator(
            profile(graph), load_triplegroups(graph, HDFS())
        )
        expected = sum(1 for props in subject_props if required <= props)
        assert estimator.star_subjects(star) == expected

    @settings(max_examples=15, deadline=None)
    @given(
        subject_props=st.lists(
            st.frozensets(st.integers(0, N_PROPS - 1), min_size=1), min_size=1, max_size=12
        ),
        required=st.frozensets(st.integers(0, N_PROPS - 1), min_size=1, max_size=2),
    )
    def test_estimate_matches_engine_row_count(self, subject_props, required):
        """End to end: the per-subject GROUP BY returns one row per
        qualifying subject, which is exactly ``star_subjects``."""
        graph = build_graph(subject_props)
        analytical = to_analytical(single_star_query(required))
        star = analytical.subqueries[0].pattern.stars[0]
        estimator = CardinalityEstimator(
            profile(graph), load_triplegroups(graph, HDFS())
        )
        report = make_engine("rapid-analytics").execute(
            analytical, graph, EngineConfig(planner="cost")
        )
        assert estimator.star_subjects(star) == len(report.rows)


class TestClassSelectivityFloor:
    def typed_graph(self):
        graph = Graph()
        for index in range(6):
            subject = IRI(f"urn:s{index}")
            graph.add(Triple(subject, RDF_TYPE, IRI(f"urn:C{index % 3}")))
            graph.add(Triple(subject, IRI("urn:p0"), Literal.from_python(index)))
        return graph

    def test_unknown_class_has_nonzero_floor(self):
        stats = profile(self.typed_graph())
        unknown = stats.class_selectivity(IRI("urn:C9"))
        assert unknown > 0.0
        # ...but still below every observed class's selectivity.
        assert unknown < stats.class_selectivity(IRI("urn:C0"))

    def test_untyped_graph_keeps_zero(self):
        """No rdf:type triples at all → the floor does not apply: a
        type-constrained star over an untyped graph is provably empty."""
        graph = Graph()
        graph.add(Triple(IRI("urn:s0"), IRI("urn:p0"), Literal.from_python(1)))
        assert profile(graph).class_selectivity(IRI("urn:C0")) == 0.0

    def test_unknown_class_query_prices_and_runs(self):
        """Regression: an absent class used to zero out the estimate
        chain; the floor keeps every candidate priced > 0 and the run
        still returns the true (empty) answer."""
        graph = self.typed_graph()
        query = to_analytical(
            "SELECT ?s (COUNT(?v) AS ?c) "
            "{ ?s a <urn:C9> ; <urn:p0> ?v . } GROUP BY ?s"
        )
        report = make_engine("rapid-analytics").execute(
            query, graph, EngineConfig(planner="cost")
        )
        assert report.rows == []
        choice = report.plan_choice
        assert choice is not None
        for candidate in choice.candidates:
            assert candidate.total_cost > 0.0
