"""The --planner knob: validation, precedence, and CLI rejection."""

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.plan import (
    DEFAULT_PLANNER,
    PLANNERS,
    active_planner,
    resolve_planner,
    validate_planner,
)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestValidation:
    def test_accepts_every_mode(self):
        assert PLANNERS == ("rule", "cost", "auto")
        for mode in PLANNERS:
            assert validate_planner(mode) == mode

    @pytest.mark.parametrize("bogus", ["", "Rule", "cheapest", "cost ", "none"])
    def test_rejects_everything_else(self, bogus):
        with pytest.raises(ReproError, match="invalid planner"):
            validate_planner(bogus)

    def test_error_names_the_valid_modes(self):
        with pytest.raises(ReproError, match="rule/cost/auto"):
            validate_planner("bogus")


class TestPrecedence:
    def test_default_is_rule(self):
        assert DEFAULT_PLANNER == "rule"
        assert resolve_planner() == "rule"
        assert resolve_planner(None) == "rule"

    def test_ambient_beats_default(self):
        with active_planner("cost"):
            assert resolve_planner() == "cost"
        assert resolve_planner() == "rule"

    def test_explicit_beats_ambient(self):
        with active_planner("cost"):
            assert resolve_planner("auto") == "auto"

    def test_ambient_nests_and_restores(self):
        with active_planner("cost"):
            with active_planner("auto"):
                assert resolve_planner() == "auto"
            assert resolve_planner() == "cost"

    def test_ambient_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with active_planner("cost"):
                raise RuntimeError("boom")
        assert resolve_planner() == "rule"

    def test_ambient_rejects_bogus_mode(self):
        with pytest.raises(ReproError, match="invalid planner"):
            with active_planner("cheapest"):
                pass  # pragma: no cover - never entered

    def test_explicit_rejects_bogus_mode(self):
        with pytest.raises(ReproError, match="invalid planner"):
            resolve_planner("cheapest")


class TestCLI:
    def test_run_rejects_bogus_planner(self, capsys):
        code, _, err = run_cli(
            capsys,
            "run",
            "MG1",
            "--dataset",
            "bsbm",
            "--preset",
            "tiny",
            "--planner",
            "bogus",
        )
        assert code == 2
        assert "invalid planner" in err

    def test_explain_rejects_bogus_planner(self, capsys):
        code, _, err = run_cli(capsys, "explain", "MG1", "--planner", "bogus")
        assert code == 2
        assert "invalid planner" in err

    def test_run_cost_reports_choice(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "run",
            "MG1",
            "--dataset",
            "bsbm",
            "--preset",
            "tiny",
            "--planner",
            "cost",
        )
        assert code == 0
        assert "planner=cost chose" in out
        assert "priced" in out

    def test_run_rule_stays_quiet(self, capsys):
        """Rule mode is the pre-planner behavior: no planner chatter."""
        code, out, _ = run_cli(
            capsys, "run", "MG1", "--dataset", "bsbm", "--preset", "tiny"
        )
        assert code == 0
        assert "planner=" not in out
