"""Plan enumerator: candidate pricing, mode choice, and compilation.

The composite-loses decision logic is exercised with synthetic
candidates: on this simulator the fused composite plan prices below
sequential evaluation for every catalog query whose patterns overlap
(it is strictly a subset workload — one scan, one α-join chain, one
fused TG_AgJ), so a real graph cannot make the rewrite lose.  The knob
still must *stop firing the rewrite when it loses*, and `choose` is
where that decision lives.
"""

import pytest

from repro.bench.catalog import get_query
from repro.core.engines import make_engine, to_analytical
from repro.core.results import EngineConfig
from repro.datasets import bsbm
from repro.errors import PlanningError
from repro.mapreduce.hdfs import HDFS
from repro.ntga.physical import load_triplegroups
from repro.plan import (
    AUTO_MARGIN,
    CandidatePlan,
    JobEstimate,
    choose,
    enumerate_candidates,
    plan_adaptive,
)
from repro.plan.enumerator import build_candidate
from repro.rdf.graph import Graph
from repro.rdf.stats import profile
from repro.rdf.terms import IRI, Literal
from repro.rdf.triples import RDF_TYPE, Triple

from tests.conftest import canonical_rows


def candidate(name, cost, executable=True, kind="ntga"):
    job = JobEstimate(
        name=f"{name}:job",
        map_only=False,
        input_bytes=1,
        shuffle_bytes=1,
        output_bytes=1,
        map_tasks=1,
        reduce_tasks=1,
        output_rows=1.0,
        cost=cost,
    )
    return CandidatePlan(
        name=name, kind=kind, description="synthetic", executable=executable, jobs=(job,)
    )


class TestChoose:
    """Synthetic candidates, rule order: composite first."""

    def test_rule_mode_keeps_losing_composite(self):
        # The pre-planner behavior: rule mode fires the rewrite even
        # when it prices 10x worse.
        candidates = [candidate("composite", 100.0), candidate("sequential", 10.0)]
        assert choose(candidates, "rule").name == "composite"

    def test_cost_mode_drops_losing_composite(self):
        candidates = [candidate("composite", 100.0), candidate("sequential", 10.0)]
        assert choose(candidates, "cost").name == "sequential"

    def test_cost_mode_keeps_winning_composite(self):
        candidates = [candidate("composite", 10.0), candidate("sequential", 100.0)]
        assert choose(candidates, "cost").name == "composite"

    def test_cost_tie_goes_to_rule_order(self):
        candidates = [candidate("composite", 10.0), candidate("sequential", 10.0)]
        assert choose(candidates, "cost").name == "composite"

    def test_auto_needs_the_margin(self):
        margin = 1.0 - AUTO_MARGIN
        inside = [candidate("composite", 100.0), candidate("sequential", 100.0 * margin)]
        assert choose(inside, "auto").name == "composite"
        beyond = [
            candidate("composite", 100.0),
            candidate("sequential", 100.0 * margin - 0.001),
        ]
        assert choose(beyond, "auto").name == "sequential"

    def test_informational_candidates_never_win(self):
        candidates = [
            candidate("composite", 100.0),
            candidate("hive-mapjoin", 1.0, executable=False, kind="hive"),
        ]
        assert choose(candidates, "cost").name == "composite"

    def test_no_executable_candidate_raises(self):
        candidates = [candidate("hive-naive", 1.0, executable=False, kind="hive")]
        with pytest.raises(PlanningError, match="no executable candidate"):
            choose(candidates, "cost")


@pytest.fixture(scope="module")
def bsbm_tiny():
    return bsbm.generate(bsbm.preset("tiny"))


@pytest.fixture(scope="module")
def mg1_setup(bsbm_tiny):
    query = to_analytical(get_query("MG1").sparql)
    store = load_triplegroups(bsbm_tiny, HDFS())
    return query, store, profile(bsbm_tiny)


class TestEnumerateMG1:
    def test_candidate_set(self, mg1_setup):
        query, store, stats = mg1_setup
        candidates, star_estimates = enumerate_candidates(
            query, store, stats, EngineConfig()
        )
        names = [c.name for c in candidates]
        # Rule order first: the composite rewrite is what the rule
        # planner builds for MG1.
        assert names[0] == "composite"
        assert "sequential" in names
        assert "sequential:stream=1" in names
        assert {"hive-naive", "hive-mapjoin"} <= set(names)
        assert star_estimates  # one estimate per star of the pattern

    def test_hive_candidates_are_informational(self, mg1_setup):
        query, store, stats = mg1_setup
        candidates, _ = enumerate_candidates(query, store, stats, EngineConfig())
        by_name = {c.name: c for c in candidates}
        for name in ("hive-naive", "hive-mapjoin"):
            assert by_name[name].kind == "hive"
            assert not by_name[name].executable
        for name in ("composite", "sequential"):
            assert by_name[name].kind == "ntga"
            assert by_name[name].executable

    def test_composite_prices_below_sequential(self, mg1_setup):
        """On this simulator the fused plan is a subset workload of the
        sequential one; the estimator must agree."""
        query, store, stats = mg1_setup
        candidates, _ = enumerate_candidates(query, store, stats, EngineConfig())
        by_name = {c.name: c for c in candidates}
        assert by_name["composite"].total_cost < by_name["sequential"].total_cost

    def test_every_candidate_positive_cost(self, mg1_setup):
        query, store, stats = mg1_setup
        candidates, _ = enumerate_candidates(query, store, stats, EngineConfig())
        for c in candidates:
            assert c.total_cost > 0.0
            assert all(job.cost >= 0.0 for job in c.jobs)


class TestBuildCandidate:
    def test_stream_variant_rotates_final_join(self, mg1_setup):
        query, store, _ = mg1_setup
        base = build_candidate(query, store, "sequential")
        rotated = build_candidate(query, store, "sequential:stream=1")
        assert "streams subquery 1" in rotated.description
        assert "streams subquery" not in base.description
        assert len(rotated.jobs) == len(base.jobs)

    def test_unknown_name_raises(self, mg1_setup):
        query, store, _ = mg1_setup
        with pytest.raises(PlanningError, match="unknown candidate plan"):
            build_candidate(query, store, "zigzag")


class TestPlanAdaptive:
    def test_cost_mode_attaches_choice(self, mg1_setup):
        query, store, stats = mg1_setup
        plan = plan_adaptive(query, store, stats, EngineConfig(), "cost")
        assert plan.choice is not None
        assert plan.choice.mode == "cost"
        assert plan.choice.source == "priced"
        assert plan.choice.chosen == "composite"

    def test_cached_decision_short_circuits(self, mg1_setup):
        query, store, stats = mg1_setup
        plan = plan_adaptive(
            query, store, stats, EngineConfig(), "cost", decision="sequential"
        )
        assert plan.choice.chosen == "sequential"
        assert plan.choice.source == "cached"
        # The candidates are still priced for EXPLAIN.
        assert len(plan.choice.candidates) >= 3

    def test_stale_decision_falls_back_to_pricing(self, mg1_setup):
        query, store, stats = mg1_setup
        plan = plan_adaptive(
            query, store, stats, EngineConfig(), "cost", decision="no-such-plan"
        )
        assert plan.choice.source == "priced"
        assert plan.choice.chosen == "composite"

    def test_non_executable_decision_is_ignored(self, mg1_setup):
        query, store, stats = mg1_setup
        plan = plan_adaptive(
            query, store, stats, EngineConfig(), "cost", decision="hive-naive"
        )
        assert plan.choice.source == "priced"
        assert plan.choice.chosen == "composite"


# -- the fallback path: when the rewrite cannot fire at all -------------------

FALLBACK_QUERY = """
SELECT ?x ?sumB ?sumC {
  { SELECT ?x (SUM(?bv) AS ?sumB) {
      ?x a <urn:T> ; <urn:toB> ?b . ?b <urn:bval> ?bv .
    } GROUP BY ?x }
  { SELECT ?x (SUM(?cv) AS ?sumC) {
      ?x a <urn:T> ; <urn:toC> ?c . ?c <urn:cval> ?cv .
    } GROUP BY ?x }
}
"""


def fallback_graph():
    """Two subqueries whose secondary stars are disjoint: the subject
    stars share only the type key, so `stars_overlap` rejects the pair
    and the composite rewrite cannot form."""
    graph = Graph()
    for i in range(40):
        x = IRI(f"urn:x{i}")
        graph.add(Triple(x, RDF_TYPE, IRI("urn:T")))
        for k in range(5):
            b = IRI(f"urn:b{i}_{k}")
            graph.add(Triple(x, IRI("urn:toB"), b))
            graph.add(Triple(b, IRI("urn:bval"), Literal.from_python(i + k)))
            c = IRI(f"urn:c{i}_{k}")
            graph.add(Triple(x, IRI("urn:toC"), c))
            graph.add(Triple(c, IRI("urn:cval"), Literal.from_python(i * k)))
    return graph


class TestOverlapFallback:
    def test_cost_mode_agrees_with_rule_fallback(self):
        """When composite cannot form, the rule plan is already the
        sequential workflow; cost mode must price it the same way and
        agree — no spurious deviation, identical answers."""
        graph = fallback_graph()
        query = to_analytical(FALLBACK_QUERY)
        engine = make_engine("rapid-analytics")
        rule_run = engine.execute(query, graph, EngineConfig(planner="rule"))
        cost_run = engine.execute(query, graph, EngineConfig(planner="cost"))
        assert len(rule_run.rows) == 40
        assert canonical_rows(cost_run.rows) == canonical_rows(rule_run.rows)
        assert cost_run.cost_seconds == pytest.approx(rule_run.cost_seconds)
        choice = cost_run.plan_choice
        assert choice is not None
        assert choice.chosen == "sequential"
        assert choice.candidate("composite") is None
