"""EXPLAIN report: golden snapshots, schema, and side-effect freedom.

The golden files under ``tests/golden/explain/`` pin the full EXPLAIN
text — decomposition, MR plan, and the planner section with every
priced candidate — for MG1–MG4 over the BSBM tiny preset in cost mode.
Re-rendering them must be bit-identical, so any estimator or enumerator
change that moves a priced cost or a plan choice shows up as a diff.
"""

from pathlib import Path

import pytest

from repro import obs, perf
from repro.bench.catalog import get_query
from repro.cli import main
from repro.core.engines import make_engine, to_analytical
from repro.core.explain import EXPLAIN_SCHEMA, explain, explain_report
from repro.core.results import EngineConfig
from repro.datasets import bsbm

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden" / "explain"

GOLDEN_QIDS = ("MG1", "MG2", "MG3", "MG4")


@pytest.fixture(scope="module")
def bsbm_tiny():
    return bsbm.generate(bsbm.preset("tiny"))


def render(qid, graph):
    return explain(
        get_query(qid).sparql,
        engine="rapid-analytics",
        graph=graph,
        config=EngineConfig(planner="cost"),
    )


class TestGoldenSnapshots:
    def test_goldens_are_committed(self):
        present = {path.stem for path in GOLDEN_DIR.glob("*.txt")}
        assert set(GOLDEN_QIDS) <= present

    @pytest.mark.parametrize("qid", GOLDEN_QIDS)
    def test_snapshot_is_bit_identical(self, qid, bsbm_tiny):
        golden = (GOLDEN_DIR / f"{qid}.txt").read_text()
        assert render(qid, bsbm_tiny) == golden

    @pytest.mark.parametrize("qid", GOLDEN_QIDS)
    def test_cost_mode_keeps_composite_on_catalog(self, qid, bsbm_tiny):
        """The paper's heuristic is vindicated on its own workload: the
        cost planner agrees with the rule on every MG query."""
        text = render(qid, bsbm_tiny)
        assert "planner (cost mode): chose 'composite'" in text


class TestExplainText:
    def test_planner_section_needs_a_graph(self):
        text = explain(get_query("MG1").sparql, engine="rapid-analytics")
        assert "rapid-analytics plan" in text
        assert "planner (" not in text

    def test_rule_mode_section_shows_alternatives(self, bsbm_tiny):
        text = explain(
            get_query("MG1").sparql,
            engine="rapid-analytics",
            graph=bsbm_tiny,
            config=EngineConfig(planner="rule"),
        )
        assert "planner (rule mode): chose 'composite'" in text
        assert "sequential" in text
        assert "informational" in text  # the Hive baselines are priced too
        assert "estimated cardinalities:" in text
        assert "evaluation order:" in text


class TestExplainReport:
    def test_schema_and_choice(self, bsbm_tiny):
        report = explain_report(
            get_query("MG1").sparql,
            engine="rapid-analytics",
            graph=bsbm_tiny,
            config=EngineConfig(planner="cost"),
        )
        assert report["schema"] == EXPLAIN_SCHEMA
        assert report["engine"] == "rapid-analytics"
        assert report["decomposition"]["subqueries"]
        choice = report["choice"]
        assert choice["mode"] == "cost"
        assert choice["chosen"] == "composite"
        names = [c["name"] for c in choice["candidates"]]
        assert names[0] == "composite"
        assert report["estimated_vs_actual"] is None  # no run supplied

    def test_estimated_vs_actual_aligns_by_job(self, bsbm_tiny):
        config = EngineConfig(planner="cost")
        query = to_analytical(get_query("MG1").sparql)
        run = make_engine("rapid-analytics").execute(query, bsbm_tiny, config)
        report = explain_report(
            query, engine="rapid-analytics", graph=bsbm_tiny, config=config, run=run
        )
        comparison = report["estimated_vs_actual"]
        assert comparison, "chosen candidate should price every cycle"
        # The adaptive run attached its own PlanChoice; every estimated
        # cycle must find its executed counterpart by job name.
        for entry in comparison:
            assert entry["actual_rows"] is not None
            assert entry["actual_cost"] is not None
            assert entry["estimated_cost"] > 0.0

    def test_cli_run_appends_estimated_vs_actual(self, capsys):
        code = main(
            ["explain", "MG1", "--preset", "tiny", "--planner", "cost", "--run"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "estimated vs actual (per MR cycle):" in out
        assert "ra:agg-join" in out
        assert "executed: " in out

    def test_cli_json_emits_schema(self, capsys):
        code = main(
            [
                "explain",
                "MG1",
                "--preset",
                "tiny",
                "--planner",
                "cost",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f'"schema": "{EXPLAIN_SCHEMA}"' in out
        assert '"chosen": "composite"' in out


# -- side-effect freedom ------------------------------------------------------


def trace_shape(recorder):
    """The deterministic slice of a trace: span tree with simulated
    clocks and metrics, events with simulated times (wall times vary)."""
    spans = [
        (span.name, span.kind, span.sim_start, span.sim_end,
         tuple(sorted(span.metrics.items())))
        for span in recorder.spans
    ]
    events = [(event.name, event.sim_time) for event in recorder.events]
    return spans, events, recorder.sim_now


@pytest.mark.parametrize("engine_name", ["hive-naive", "hive-mqo"])
def test_hive_explain_leaves_no_trace(engine_name, bsbm_tiny):
    """``explain(); run()`` must equal a cold ``run()`` on every counter
    and simulated clock — the probe execution is fully detached."""
    query = to_analytical(get_query("MG1").sparql)
    engine = make_engine(engine_name)

    with obs.tracing() as cold:
        engine.execute(query, bsbm_tiny, EngineConfig())

    with obs.tracing() as warm:
        explain(query, engine=engine_name, graph=bsbm_tiny)
        engine.execute(query, bsbm_tiny, EngineConfig())

    assert trace_shape(warm) == trace_shape(cold)


def test_hive_explain_leaves_no_phase_time(bsbm_tiny):
    query = to_analytical(get_query("MG1").sparql)
    engine = make_engine("hive-naive")

    def phases(do_explain):
        with perf.recording() as recorder:
            if do_explain:
                explain(query, engine="hive-naive", graph=bsbm_tiny)
            engine.execute(query, bsbm_tiny, EngineConfig())
            flushed = recorder.end_run(0.0)
        return sorted(flushed.phases)

    assert phases(do_explain=True) == phases(do_explain=False)


def test_planner_section_leaves_no_trace(bsbm_tiny):
    """The candidate pricing (statistics profile, store load) runs
    detached too: explaining an adaptive plan emits nothing."""
    query = to_analytical(get_query("MG1").sparql)
    with obs.tracing() as recorder:
        explain(
            query,
            engine="rapid-analytics",
            graph=bsbm_tiny,
            config=EngineConfig(planner="cost"),
        )
    assert trace_shape(recorder) == ([("trace", "root", 0.0, 0.0, ())], [], 0.0)
