"""Factorized-vs-flat differential regression.

The factorized representation changes *bytes moved*, never *rows
produced*: every catalog query on both NTGA engines must deliver
byte-identical answers (values and order) with factorization on and
off, the factorized run must never shuffle more, and the serving
layer's sharing machinery (fingerprint cache keys, batching decisions,
solo oracles) must be representation-blind.
"""

from dataclasses import replace

import pytest

from repro import perf
from repro.bench.catalog import CATALOG
from repro.bench.harness import bsbm_config, chem_config, pubmed_config
from repro.core.engines import make_engine, to_analytical
from repro.ntga.factorized import active_representation
from repro.serve.fingerprint import fingerprint_query
from repro.serve.workload import WorkloadSpec, serve_workload_report

_GRAPH_FIXTURE = {"bsbm": "bsbm_small", "chem": "chem_tiny", "pubmed": "pubmed_tiny"}
_CONFIG_FACTORY = {"bsbm": bsbm_config, "chem": chem_config, "pubmed": pubmed_config}

NTGA_ENGINES = ("rapid-plus", "rapid-analytics")


@pytest.fixture(scope="module")
def analytical_cache():
    return {qid: to_analytical(query.sparql) for qid, query in CATALOG.items()}


@pytest.fixture(scope="module")
def bench_configs():
    return {dataset: factory() for dataset, factory in _CONFIG_FACTORY.items()}


def _run(request, engine, qid, analytical_cache, bench_configs, representation):
    query = CATALOG[qid]
    graph = request.getfixturevalue(_GRAPH_FIXTURE[query.dataset])
    config = replace(
        bench_configs[query.dataset], representation=representation
    )
    return make_engine(engine).execute(analytical_cache[qid], graph, config)


@pytest.mark.parametrize("engine", NTGA_ENGINES)
@pytest.mark.parametrize("qid", sorted(CATALOG))
def test_answers_bit_identical_and_shuffle_never_larger(
    request, engine, qid, analytical_cache, bench_configs
):
    factorized = _run(
        request, engine, qid, analytical_cache, bench_configs, "factorized"
    )
    flat = _run(request, engine, qid, analytical_cache, bench_configs, "flat")
    # Order-sensitive equality — the whole point of the fixed
    # enumeration order — plus the digest the goldens pin.
    assert factorized.rows == flat.rows
    assert perf.rows_digest(factorized.rows) == perf.rows_digest(flat.rows)
    assert (
        factorized.stats.total_shuffle_bytes <= flat.stats.total_shuffle_bytes
    ), f"{engine}/{qid}: factorized run shuffled MORE than flat"
    assert factorized.cycles == flat.cycles


def test_multivalued_queries_reduce_shuffle(
    request, analytical_cache, bench_configs
):
    """On the MG-class BSBM stars factorization must actually save bytes,
    not just break even."""
    reduced = []
    for qid in ("MG1", "MG2", "MG3", "MG4"):
        factorized = _run(
            request,
            "rapid-analytics",
            qid,
            analytical_cache,
            bench_configs,
            "factorized",
        )
        flat = _run(
            request, "rapid-analytics", qid, analytical_cache, bench_configs, "flat"
        )
        if factorized.stats.total_shuffle_bytes < flat.stats.total_shuffle_bytes:
            reduced.append(qid)
    assert len(reduced) >= 2, f"shuffle shrank only on {reduced}"


def test_fingerprint_cache_keys_are_representation_blind():
    text = CATALOG["MG6"].sparql
    with active_representation("factorized"):
        factorized_digest = fingerprint_query(text).digest
    with active_representation("flat"):
        flat_digest = fingerprint_query(text).digest
    assert factorized_digest == flat_digest


@pytest.mark.parametrize("mix", ["chem-overlap"])
def test_serve_workload_representation_ab(mix, chem_tiny):
    """The serve regression: same workload with factorization on and off
    — answers stay bit-identical to the solo oracles on both sides, the
    solo oracles agree across representations, and the sharing layers
    (admission, dedup, caches, batching) make identical decisions."""
    reports = {}
    for representation in ("factorized", "flat"):
        spec = WorkloadSpec.from_spec(
            f"seeds=1,clients=2,mix={mix},requests=10,"
            f"representation={representation}"
        )
        reports[representation] = serve_workload_report(spec, graph=chem_tiny)
    factorized, flat = reports["factorized"], reports["flat"]
    assert factorized["verdicts"]["all_rows_match"]
    assert flat["verdicts"]["all_rows_match"]
    for qid, baseline in factorized["baseline"].items():
        assert baseline["digest"] == flat["baseline"][qid]["digest"]
        assert baseline["rows"] == flat["baseline"][qid]["rows"]
    for fact_run, flat_run in zip(factorized["runs"], flat["runs"]):
        assert fact_run["statuses"] == flat_run["statuses"]
        assert fact_run["sources"] == flat_run["sources"]
        assert fact_run["counters"] == flat_run["counters"]
