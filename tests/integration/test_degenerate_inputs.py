"""Robustness sweep: every engine on degenerate inputs.

Empty graphs, graphs missing whole entity classes, and graphs where
every pattern matches exactly once — the places distributed plans
usually break (empty shuffles, missing partitions, default rows)."""

import pytest

from repro.bench.catalog import CATALOG
from repro.core.engines import PAPER_ENGINES, make_engine, to_analytical
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.rdf.triples import RDF_TYPE, Triple
from tests.conftest import canonical_rows

EMPTY = Graph()


@pytest.mark.parametrize("engine", PAPER_ENGINES)
@pytest.mark.parametrize("qid", ["G1", "MG1", "MG6", "MG11", "MG15"])
def test_empty_graph_matches_reference(engine, qid):
    analytical = to_analytical(CATALOG[qid].sparql)
    expected = canonical_rows(make_engine("reference").execute(analytical, EMPTY).rows)
    report = make_engine(engine).execute(analytical, EMPTY)
    assert canonical_rows(report.rows) == expected, (qid, engine)


def test_empty_graph_rollup_yields_default_row():
    """GROUP BY ALL over nothing still produces COUNT=0/SUM=0."""
    analytical = to_analytical(CATALOG["G1"].sparql)
    for engine in ("reference",) + PAPER_ENGINES:
        report = make_engine(engine).execute(analytical, EMPTY)
        assert len(report.rows) == 1, engine
        values = {v.name: t.python_value() for v, t in report.rows[0].items()}
        assert values == {"cnt": 0, "sum": 0}, engine


@pytest.fixture(scope="module")
def single_match_graph():
    """Exactly one product, one feature, one offer."""
    ex = "http://bsbm.example.org/vocabulary/"
    inst = "http://bsbm.example.org/instances/"
    graph = Graph()
    graph.add_all(
        [
            Triple(IRI(inst + "Product0"), RDF_TYPE, IRI(ex + "ProductType1")),
            Triple(IRI(inst + "Product0"), IRI(ex + "label"), Literal("only")),
            Triple(IRI(inst + "Product0"), IRI(ex + "productFeature"), IRI(inst + "F0")),
            Triple(IRI(inst + "Offer0"), IRI(ex + "product"), IRI(inst + "Product0")),
            Triple(IRI(inst + "Offer0"), IRI(ex + "price"), Literal.from_python(42)),
        ]
    )
    return graph


@pytest.mark.parametrize("engine", PAPER_ENGINES)
def test_single_match_graph(engine, single_match_graph):
    analytical = to_analytical(CATALOG["MG1"].sparql)
    expected = canonical_rows(
        make_engine("reference").execute(analytical, single_match_graph).rows
    )
    report = make_engine(engine).execute(analytical, single_match_graph)
    assert canonical_rows(report.rows) == expected
    assert len(report.rows) == 1


@pytest.mark.parametrize("engine", PAPER_ENGINES)
def test_partial_schema_graph(engine):
    """Products exist but no offers at all: grouped subquery is empty,
    the roll-up returns the default row, and the final join of an empty
    side yields no rows — on every engine."""
    ex = "http://bsbm.example.org/vocabulary/"
    inst = "http://bsbm.example.org/instances/"
    graph = Graph(
        [
            Triple(IRI(inst + "Product0"), RDF_TYPE, IRI(ex + "ProductType1")),
            Triple(IRI(inst + "Product0"), IRI(ex + "label"), Literal("x")),
            Triple(IRI(inst + "Product0"), IRI(ex + "productFeature"), IRI(inst + "F0")),
        ]
    )
    analytical = to_analytical(CATALOG["MG1"].sparql)
    expected = canonical_rows(make_engine("reference").execute(analytical, graph).rows)
    report = make_engine(engine).execute(analytical, graph)
    assert canonical_rows(report.rows) == expected
    assert report.rows == []
