"""Integration tests for extended SPARQL features across all engines:
HAVING, DISTINCT aggregates, AVG/MIN/MAX, and outer DISTINCT."""

import pytest

from repro.core.engines import PAPER_ENGINES, make_engine, to_analytical
from repro.core.query_model import parse_analytical
from repro.errors import UnsupportedQueryError
from tests.conftest import canonical_rows


def assert_all_engines_match(query: str, graph) -> list:
    analytical = to_analytical(query)
    reference = make_engine("reference").execute(analytical, graph)
    expected = canonical_rows(reference.rows)
    for engine in PAPER_ENGINES:
        report = make_engine(engine).execute(analytical, graph)
        assert canonical_rows(report.rows) == expected, engine
    return reference.rows


class TestHaving:
    def test_having_single_grouping(self, product_graph):
        query = """
        PREFIX ex: <http://ex.org/>
        SELECT ?f (COUNT(?pr) AS ?c) {
          ?p a ex:PT1 ; ex:label ?l ; ex:feature ?f .
          ?o ex:product ?p ; ex:price ?pr .
        } GROUP BY ?f HAVING (?c > 4)
        """
        rows = assert_all_engines_match(query, product_graph)
        assert rows  # some group survives
        unfiltered = make_engine("reference").execute(
            to_analytical(query.replace("HAVING (?c > 4)", "")), product_graph
        )
        assert len(rows) < len(unfiltered.rows)

    def test_having_inside_multi_grouping(self, product_graph):
        query = """
        PREFIX ex: <http://ex.org/>
        SELECT ?f ?cf ?ct {
          { SELECT ?f (COUNT(?pr2) AS ?cf) {
              ?p2 a ex:PT1 ; ex:label ?l2 ; ex:feature ?f .
              ?o2 ex:product ?p2 ; ex:price ?pr2 .
            } GROUP BY ?f HAVING (?cf > 4)
          }
          { SELECT (COUNT(?pr) AS ?ct) {
              ?p1 a ex:PT1 ; ex:label ?l1 .
              ?o1 ex:product ?p1 ; ex:price ?pr .
            }
          }
        }
        """
        assert_all_engines_match(query, product_graph)

    def test_having_eliminating_rollup_default_row(self, product_graph):
        """HAVING that rejects the empty-group default (COUNT=0 > 0 fails)
        must remove the GROUP-BY-ALL row on every engine."""
        query = """
        PREFIX ex: <http://ex.org/>
        SELECT (COUNT(?pr) AS ?c) {
          ?p a ex:NoSuchType ; ex:label ?l .
          ?o ex:product ?p ; ex:price ?pr .
        } HAVING (?c > 0)
        """
        analytical = to_analytical(query)
        for engine in ("reference",) + PAPER_ENGINES:
            report = make_engine(engine).execute(analytical, product_graph)
            assert report.rows == [], engine

    def test_having_with_unknown_variable_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_analytical(
                "SELECT (COUNT(?x) AS ?c) { ?s <urn:p> ?x } HAVING (?zz > 1)"
            )

    def test_outer_having_rejected(self, mg1_style_query):
        with pytest.raises(UnsupportedQueryError):
            parse_analytical(mg1_style_query + " HAVING (?cntT > 0)")


class TestAggregateFunctions:
    @pytest.mark.parametrize(
        "aggregates",
        [
            "(AVG(?pr) AS ?a)",
            "(MIN(?pr) AS ?lo) (MAX(?pr) AS ?hi)",
            "(COUNT(DISTINCT ?pr) AS ?d)",
            "(SUM(?pr) AS ?s) (AVG(?pr) AS ?a) (MIN(?pr) AS ?lo) (MAX(?pr) AS ?hi) (COUNT(*) AS ?n)",
        ],
    )
    def test_aggregate_matrix_grouped(self, product_graph, aggregates):
        query = f"""
        PREFIX ex: <http://ex.org/>
        SELECT ?f {aggregates} {{
          ?p a ex:PT1 ; ex:label ?l ; ex:feature ?f .
          ?o ex:product ?p ; ex:price ?pr .
        }} GROUP BY ?f
        """
        assert_all_engines_match(query, product_graph)

    def test_distinct_sum_multi_grouping(self, product_graph):
        query = """
        PREFIX ex: <http://ex.org/>
        SELECT ?f ?d ?t {
          { SELECT ?f (SUM(DISTINCT ?pr2) AS ?d) {
              ?p2 a ex:PT1 ; ex:label ?l2 ; ex:feature ?f .
              ?o2 ex:product ?p2 ; ex:price ?pr2 .
            } GROUP BY ?f
          }
          { SELECT (COUNT(DISTINCT ?f1) AS ?t) {
              ?p1 a ex:PT1 ; ex:feature ?f1 .
            }
          }
        }
        """
        assert_all_engines_match(query, product_graph)


class TestOuterDistinct:
    def test_distinct_projection(self, product_graph):
        """DISTINCT over a projection that drops the distinguishing column."""
        query = """
        PREFIX ex: <http://ex.org/>
        SELECT DISTINCT ?ct {
          { SELECT ?f (COUNT(?pr2) AS ?cf) {
              ?p2 a ex:PT1 ; ex:feature ?f .
              ?o2 ex:product ?p2 ; ex:price ?pr2 .
            } GROUP BY ?f
          }
          { SELECT (COUNT(?pr) AS ?ct) {
              ?p1 a ex:PT1 ; ex:label ?l1 .
              ?o1 ex:product ?p1 ; ex:price ?pr .
            }
          }
        }
        """
        analytical = to_analytical(query)
        assert analytical.distinct
        reference = make_engine("reference").execute(analytical, product_graph)
        assert len(reference.rows) == 1
        for engine in PAPER_ENGINES:
            report = make_engine(engine).execute(analytical, product_graph)
            assert canonical_rows(report.rows) == canonical_rows(reference.rows), engine
