"""Outer ORDER BY / LIMIT / OFFSET on analytical queries, all engines."""

import pytest

from repro.core.engines import PAPER_ENGINES, make_engine, to_analytical
from repro.core.query_model import parse_analytical
from repro.errors import UnsupportedQueryError
from repro.rdf.terms import Variable

ORDERED = """
PREFIX ex: <http://ex.org/>
SELECT ?f (SUM(?pr) AS ?s) {
  ?p a ex:PT1 ; ex:label ?l ; ex:feature ?f .
  ?o ex:product ?p ; ex:price ?pr .
} GROUP BY ?f ORDER BY DESC(?s)
"""

LIMITED = ORDERED + " LIMIT 1"

OFFSET_MULTI = """
PREFIX ex: <http://ex.org/>
SELECT ?f ?cf ?ct {
  { SELECT ?f (COUNT(?pr2) AS ?cf) {
      ?p2 a ex:PT1 ; ex:label ?l2 ; ex:feature ?f .
      ?o2 ex:product ?p2 ; ex:price ?pr2 .
    } GROUP BY ?f
  }
  { SELECT (COUNT(?pr) AS ?ct) {
      ?p1 a ex:PT1 ; ex:label ?l1 .
      ?o1 ex:product ?p1 ; ex:price ?pr .
    }
  }
} ORDER BY ?f LIMIT 1 OFFSET 1
"""


def test_model_captures_modifiers():
    analytical = parse_analytical(LIMITED)
    assert analytical.has_modifiers()
    assert analytical.limit == 1
    assert analytical.order_by[0].descending


def test_order_by_unknown_variable_rejected():
    with pytest.raises(UnsupportedQueryError):
        parse_analytical(
            "SELECT (COUNT(?x) AS ?c) { ?s <urn:p> ?x } ORDER BY ?zz"
        )


@pytest.mark.parametrize("query", [ORDERED, LIMITED, OFFSET_MULTI])
def test_engines_agree_on_row_sequence(query, product_graph):
    """With modifiers, the *ordered list* (not just multiset) must agree."""
    analytical = to_analytical(query)
    reference = make_engine("reference").execute(analytical, product_graph)
    expected = [sorted((v.name, str(t)) for v, t in row.items()) for row in reference.rows]
    assert reference.rows, "test query must produce rows"
    for engine in PAPER_ENGINES:
        report = make_engine(engine).execute(analytical, product_graph)
        actual = [sorted((v.name, str(t)) for v, t in row.items()) for row in report.rows]
        assert actual == expected, engine


def test_descending_order_applied(product_graph):
    report = make_engine("rapid-analytics").execute(to_analytical(ORDERED), product_graph)
    sums = [
        next(t.python_value() for v, t in row.items() if v.name == "s")
        for row in report.rows
    ]
    assert sums == sorted(sums, reverse=True)


def test_limit_truncates(product_graph):
    full = make_engine("reference").execute(to_analytical(ORDERED), product_graph)
    limited = make_engine("rapid-analytics").execute(to_analytical(LIMITED), product_graph)
    assert len(limited.rows) == 1
    assert len(full.rows) > 1
