"""Property-based integration: engines agree with the oracle on random data.

Hypothesis generates random product-catalog graphs (including degenerate
shapes: products without features, without offers, multi-valued
features, empty graphs) and checks all four engines against the
reference evaluator on an MG1-shaped query and a G3-shaped query.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engines import PAPER_ENGINES, make_engine, to_analytical
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.rdf.triples import RDF_TYPE, Triple

EX = "http://r.org/"


def iri(name):
    return IRI(EX + name)


@st.composite
def product_graphs(draw):
    graph = Graph()
    product_count = draw(st.integers(0, 6))
    for index in range(product_count):
        product = iri(f"p{index}")
        if draw(st.booleans()):
            graph.add(Triple(product, RDF_TYPE, iri("PT")))
        if draw(st.booleans()):
            graph.add(Triple(product, iri("label"), Literal(f"l{index}")))
        for feature in draw(st.lists(st.integers(0, 3), max_size=3)):
            graph.add(Triple(product, iri("feature"), iri(f"f{feature}")))
        for offer_index in range(draw(st.integers(0, 3))):
            offer = iri(f"o{index}_{offer_index}")
            graph.add(Triple(offer, iri("product"), product))
            if draw(st.booleans()):
                price = draw(st.integers(1, 500))
                graph.add(Triple(offer, iri("price"), Literal.from_python(price)))
    return graph


MG_QUERY = f"""
PREFIX r: <{EX}>
SELECT ?f ?sumF ?cntT {{
  {{ SELECT ?f (SUM(?pr2) AS ?sumF) {{
      ?p2 a r:PT ; r:label ?l2 ; r:feature ?f .
      ?o2 r:product ?p2 ; r:price ?pr2 .
    }} GROUP BY ?f
  }}
  {{ SELECT (COUNT(?pr) AS ?cntT) {{
      ?p1 a r:PT ; r:label ?l1 .
      ?o1 r:product ?p1 ; r:price ?pr .
    }}
  }}
}}
"""

G_QUERY = f"""
PREFIX r: <{EX}>
SELECT ?f (COUNT(?pr) AS ?c) (MIN(?pr) AS ?lo) (MAX(?pr) AS ?hi) {{
  ?p a r:PT ; r:feature ?f .
  ?o r:product ?p ; r:price ?pr .
}} GROUP BY ?f
"""


def canonical(rows):
    return Counter(
        frozenset((variable.name, str(term)) for variable, term in row.items())
        for row in rows
    )


MG_ANALYTICAL = to_analytical(MG_QUERY)
G_ANALYTICAL = to_analytical(G_QUERY)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graph=product_graphs())
def test_multi_grouping_equivalence_on_random_graphs(graph):
    expected = canonical(make_engine("reference").execute(MG_ANALYTICAL, graph).rows)
    for engine in PAPER_ENGINES:
        report = make_engine(engine).execute(MG_ANALYTICAL, graph)
        assert canonical(report.rows) == expected, engine


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graph=product_graphs())
def test_single_grouping_equivalence_on_random_graphs(graph):
    expected = canonical(make_engine("reference").execute(G_ANALYTICAL, graph).rows)
    for engine in PAPER_ENGINES:
        report = make_engine(engine).execute(G_ANALYTICAL, graph)
        assert canonical(report.rows) == expected, engine
