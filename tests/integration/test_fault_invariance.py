"""Engine-level fault invariance over the whole catalog.

The acceptance bar for the fault layer: under a seeded 5% fault plan,
every engine returns exactly the rows of its fault-free run on every
catalog query — faults may only move cost and fault counters.  The
plan's seed is fixed so the injected faults (and hence the exercised
recovery paths) are the same on every run.
"""

import pytest

from repro.bench.catalog import CATALOG
from repro.core.engines import PAPER_ENGINES, run_query
from repro.mapreduce.faults import FAULT_COUNTERS, FaultPlan

_GRAPH_FIXTURE = {"bsbm": "bsbm_small", "chem": "chem_tiny", "pubmed": "pubmed_tiny"}

PLAN = FaultPlan.from_spec("7,0.05")


def _counters(report):
    return report.stats.counters.as_dict() if report.stats is not None else {}


def _split_counters(report):
    counters = _counters(report)
    base = {k: v for k, v in counters.items() if k not in FAULT_COUNTERS}
    faults = {k: v for k, v in counters.items() if k in FAULT_COUNTERS}
    return base, faults


@pytest.mark.parametrize("engine", PAPER_ENGINES)
@pytest.mark.parametrize("qid", sorted(CATALOG))
def test_faulted_run_matches_fault_free(request, qid, engine):
    query = CATALOG[qid]
    graph = request.getfixturevalue(_GRAPH_FIXTURE[query.dataset])
    clean = run_query(query.sparql, graph, engine=engine)
    faulted = run_query(query.sparql, graph, engine=engine, faults=PLAN)
    assert faulted.row_multiset() == clean.row_multiset()
    assert faulted.cycles == clean.cycles
    clean_base, clean_faults = _split_counters(clean)
    faulted_base, faulted_faults = _split_counters(faulted)
    assert not clean_faults  # fault counters never exist without a plan
    assert faulted_base == clean_base
    assert faulted.cost_seconds >= clean.cost_seconds


@pytest.mark.parametrize("engine", PAPER_ENGINES)
def test_plan_actually_injects_faults_somewhere(request, engine):
    """The invariance above is vacuous if the plan never fires: across
    the catalog every engine must hit retries and speculation."""
    retried = speculative = 0
    for qid in sorted(CATALOG):
        query = CATALOG[qid]
        graph = request.getfixturevalue(_GRAPH_FIXTURE[query.dataset])
        report = run_query(query.sparql, graph, engine=engine, faults=PLAN)
        _, faults = _split_counters(report)
        retried += faults.get("retried_tasks", 0)
        speculative += faults.get("speculative_tasks", 0)
    assert retried > 0
    assert speculative > 0
