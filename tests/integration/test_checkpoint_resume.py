"""Engine-level checkpoint/resume invariance over the whole catalog.

The acceptance bar for the recovery layer: under an abort-prone fault
plan (``max_attempts=1`` turns every injected task failure into a job
abort), every engine running with a :class:`RecoveryPolicy` completes
every catalog query and returns exactly the rows — and exactly the base
counters — of its fault-free run.  Recovery may only add the
``RECOVERY_COUNTERS`` and grow cost.

The plan's seed is fixed so the injected aborts (and hence the
exercised resume paths) are the same on every run.
"""

import pytest

from repro.bench.catalog import CATALOG
from repro.core.engines import PAPER_ENGINES, run_query
from repro.mapreduce.checkpoint import RECOVERY_COUNTERS, RecoveryPolicy
from repro.mapreduce.faults import FAULT_COUNTERS, FaultPlan

_GRAPH_FIXTURE = {"bsbm": "bsbm_small", "chem": "chem_tiny", "pubmed": "pubmed_tiny"}

# max_attempts=1: any injected task failure aborts its job, so this plan
# exercises workflow resubmission, not per-task retry absorption.
PLAN = FaultPlan(seed=13, task_failure_rate=0.1, max_attempts=1)
POLICY = RecoveryPolicy(max_resubmissions=32)


def _base_counters(report):
    if report.stats is None:
        return {}
    return {
        name: value
        for name, value in report.stats.counters.as_dict().items()
        if name not in FAULT_COUNTERS and name not in RECOVERY_COUNTERS
    }


@pytest.mark.parametrize("engine", PAPER_ENGINES)
@pytest.mark.parametrize("qid", sorted(CATALOG))
def test_resumed_run_matches_fault_free(request, qid, engine):
    query = CATALOG[qid]
    graph = request.getfixturevalue(_GRAPH_FIXTURE[query.dataset])
    clean = run_query(query.sparql, graph, engine=engine)
    resumed = run_query(
        query.sparql, graph, engine=engine, faults=PLAN, recovery=POLICY
    )
    assert resumed.row_multiset() == clean.row_multiset()
    assert resumed.cycles == clean.cycles
    assert _base_counters(resumed) == _base_counters(clean)
    assert resumed.cost_seconds >= clean.cost_seconds
    recovery = resumed.stats.recovery
    assert recovery is not None
    # Checkpoint replay is accounted, never invented: salvage cannot
    # exceed what failures put at risk, and waste implies a failure.
    assert recovery.extra_seconds >= 0.0
    if recovery.resubmissions == 0:
        assert recovery.wasted_seconds == 0.0
        assert recovery.jobs_skipped == 0


@pytest.mark.parametrize("engine", PAPER_ENGINES)
def test_plan_actually_aborts_and_resumes_somewhere(request, engine):
    """The invariance above is vacuous if no job ever aborts: across the
    catalog every engine must resubmit at least one workflow and skip at
    least one checkpointed job on resume."""
    resubmissions = skipped = 0
    for qid in sorted(CATALOG):
        query = CATALOG[qid]
        graph = request.getfixturevalue(_GRAPH_FIXTURE[query.dataset])
        report = run_query(
            query.sparql, graph, engine=engine, faults=PLAN, recovery=POLICY
        )
        recovery = report.stats.recovery
        resubmissions += recovery.resubmissions
        skipped += recovery.jobs_skipped
    assert resubmissions > 0
    assert skipped > 0
