"""Integration: MR cycle counts match the paper's in-text numbers.

Section 5 states, for the BSBM workload:

* G1-G4: Hive needs 4 MR cycles, RAPIDAnalytics 2;
* MG1-MG2: naive Hive 9, MQO 7, RAPID+ 5, RAPIDAnalytics 3;
* MG3-MG4: naive Hive 11, MQO 8, RAPID+ 7, RAPIDAnalytics 4;
* MG6 (Chem2Bio2RDF): naive Hive 13 cycles (11 map-only with map-joins),
  MQO 8 (6 map-only), RAPID+ 7, RAPIDAnalytics 4.

These counts fall out of plan *structure*, so they are asserted exactly.
"""

import pytest

from repro.bench.catalog import get_query
from repro.bench.harness import bsbm_config, chem_config
from repro.core.engines import make_engine, to_analytical

BSBM_EXPECTED = {
    # qid -> {engine: total cycles}
    "G1": {"hive-naive": 4, "rapid-analytics": 2},
    "G2": {"hive-naive": 4, "rapid-analytics": 2},
    "G3": {"hive-naive": 4, "rapid-analytics": 2},
    "G4": {"hive-naive": 4, "rapid-analytics": 2},
    "MG1": {"hive-naive": 9, "hive-mqo": 7, "rapid-plus": 5, "rapid-analytics": 3},
    "MG2": {"hive-naive": 9, "hive-mqo": 7, "rapid-plus": 5, "rapid-analytics": 3},
    "MG3": {"hive-naive": 11, "hive-mqo": 8, "rapid-plus": 7, "rapid-analytics": 4},
    "MG4": {"hive-naive": 11, "hive-mqo": 8, "rapid-plus": 7, "rapid-analytics": 4},
}


@pytest.mark.parametrize("qid", sorted(BSBM_EXPECTED))
def test_bsbm_cycle_counts(bsbm_small, qid):
    analytical = to_analytical(get_query(qid).sparql)
    for engine, expected in BSBM_EXPECTED[qid].items():
        report = make_engine(engine).execute(analytical, bsbm_small, bsbm_config())
        assert report.cycles == expected, (
            f"{qid} on {engine}: {report.cycles} cycles, paper says {expected}"
        )


def test_mg6_cycle_counts(chem_tiny):
    """MG6 with map-join-friendly VP tables (the paper's chem setup)."""
    analytical = to_analytical(get_query("MG6").sparql)
    config = chem_config()
    naive = make_engine("hive-naive").execute(analytical, chem_tiny, config)
    assert naive.cycles == 13
    assert naive.map_only_cycles == 11  # "13 MR cycles (11 map-only)"
    mqo = make_engine("hive-mqo").execute(analytical, chem_tiny, config)
    assert mqo.cycles == 8
    assert mqo.map_only_cycles == 6  # "8 MR cycles (6 map-only)"
    plus = make_engine("rapid-plus").execute(analytical, chem_tiny, config)
    assert plus.cycles == 7
    analytics = make_engine("rapid-analytics").execute(analytical, chem_tiny, config)
    assert analytics.cycles == 4  # "RAPIDAnalytics requires a total of 4"


def test_rapid_analytics_always_fewest_cycles(bsbm_small, chem_tiny, pubmed_tiny, request):
    """Across the whole workload RAPIDAnalytics never needs more cycles
    than any other engine."""
    from repro.bench.catalog import CATALOG

    graphs = {"bsbm": bsbm_small, "chem": chem_tiny, "pubmed": pubmed_tiny}
    for qid, query in CATALOG.items():
        analytical = to_analytical(query.sparql)
        graph = graphs[query.dataset]
        cycles = {
            engine: make_engine(engine).execute(analytical, graph).cycles
            for engine in ("hive-naive", "hive-mqo", "rapid-plus", "rapid-analytics")
        }
        best = cycles["rapid-analytics"]
        assert best == min(cycles.values()), f"{qid}: {cycles}"
        assert cycles["rapid-plus"] <= cycles["hive-naive"], f"{qid}: {cycles}"
