"""Cross-engine differential suite: every catalog query on every engine
versus the reference oracle, compared in sorted canonical row form.

Complements test_engine_equivalence (Counter multisets under the
default config) along two axes: results are compared as *sorted
canonical rows* — bag-equality with readable diffs, the same oracle
form the scheduler tests reuse (:func:`tests.conftest.canonical_sorted_rows`)
— and every engine runs under the per-dataset bench configs
(map-join thresholds, cluster sizes) that ``repro serve`` workloads
use, so the serving layer's execution environment is itself covered by
the differential oracle.
"""

import pytest

from repro.bench.catalog import CATALOG
from repro.bench.harness import bsbm_config, chem_config, pubmed_config
from repro.core.engines import PAPER_ENGINES, make_engine, to_analytical
from tests.conftest import canonical_sorted_rows

_GRAPH_FIXTURE = {"bsbm": "bsbm_small", "chem": "chem_tiny", "pubmed": "pubmed_tiny"}
_CONFIG_FACTORY = {"bsbm": bsbm_config, "chem": chem_config, "pubmed": pubmed_config}


@pytest.fixture(scope="module")
def analytical_cache():
    return {qid: to_analytical(query.sparql) for qid, query in CATALOG.items()}


@pytest.fixture(scope="module")
def bench_configs():
    return {dataset: factory() for dataset, factory in _CONFIG_FACTORY.items()}


@pytest.fixture(scope="module")
def oracle_rows(request, analytical_cache, bench_configs):
    """Reference-engine answers for every catalog query, in sorted
    canonical form (the config does not affect the reference, but the
    suite runs it the same way for symmetry)."""
    cache = {}
    for qid, query in CATALOG.items():
        graph = request.getfixturevalue(_GRAPH_FIXTURE[query.dataset])
        report = make_engine("reference").execute(
            analytical_cache[qid], graph, bench_configs[query.dataset]
        )
        cache[qid] = canonical_sorted_rows(report.rows)
    return cache


@pytest.mark.parametrize("engine", PAPER_ENGINES)
@pytest.mark.parametrize("qid", sorted(CATALOG))
def test_engine_row_bags_match_reference(
    request, engine, qid, analytical_cache, bench_configs, oracle_rows
):
    query = CATALOG[qid]
    graph = request.getfixturevalue(_GRAPH_FIXTURE[query.dataset])
    report = make_engine(engine).execute(
        analytical_cache[qid], graph, bench_configs[query.dataset]
    )
    assert canonical_sorted_rows(report.rows) == oracle_rows[qid], (
        f"{engine} row bag diverges from the reference on {qid} "
        f"under the {query.dataset} bench config"
    )


@pytest.mark.parametrize("qid", sorted(CATALOG))
def test_oracle_non_vacuous(qid, oracle_rows):
    assert oracle_rows[qid], f"{qid} returned no rows on the test dataset"
