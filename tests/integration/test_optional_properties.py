"""OPTIONAL properties in grouping subqueries, across all engines.

The user-level counterpart of Definition 3.3's P_opt: a star matches
even when an OPTIONAL property is absent, and its variable stays
unbound (grouping on it yields a NULL-keyed group, COUNT skips it).
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engines import PAPER_ENGINES, make_engine, to_analytical
from repro.core.query_model import parse_analytical
from repro.errors import UnsupportedQueryError
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import RDF_TYPE, Triple
from tests.conftest import canonical_rows

EX = "http://opt.org/"


def iri(name):
    return IRI(EX + name)


@pytest.fixture(scope="module")
def discount_graph():
    """p0: one discount; p1: two discounts; p2: none. Two offers each."""
    graph = Graph()
    for index in range(3):
        product = iri(f"p{index}")
        graph.add(Triple(product, RDF_TYPE, iri("PT")))
        graph.add(Triple(product, iri("label"), Literal(f"l{index}")))
        for offer_index in range(2):
            offer = iri(f"o{index}_{offer_index}")
            graph.add(Triple(offer, iri("product"), product))
            graph.add(
                Triple(offer, iri("price"), Literal.from_python(100 * (index + 1) + offer_index))
            )
    graph.add(Triple(iri("p0"), iri("discount"), Literal.from_python(5)))
    graph.add(Triple(iri("p1"), iri("discount"), Literal.from_python(7)))
    graph.add(Triple(iri("p1"), iri("discount"), Literal.from_python(9)))
    return graph


GROUP_ON_OPTIONAL = f"""
PREFIX o: <{EX}>
SELECT ?d (COUNT(?pr) AS ?cnt) {{
  ?p a o:PT ; o:label ?l .
  OPTIONAL {{ ?p o:discount ?d }}
  ?o o:product ?p ; o:price ?pr .
}} GROUP BY ?d
"""

COUNT_OPTIONAL = f"""
PREFIX o: <{EX}>
SELECT (COUNT(?d) AS ?withDiscount) (COUNT(?pr) AS ?offers) {{
  ?p a o:PT ; o:label ?l .
  OPTIONAL {{ ?p o:discount ?d }}
  ?o o:product ?p ; o:price ?pr .
}}
"""

MULTI_GROUPING_OPTIONAL = f"""
PREFIX o: <{EX}>
SELECT ?d ?cnt ?tot {{
  {{ SELECT ?d (COUNT(?pr) AS ?cnt) {{
      ?p a o:PT ; o:label ?l .
      OPTIONAL {{ ?p o:discount ?d }}
      ?o o:product ?p ; o:price ?pr .
    }} GROUP BY ?d
  }}
  {{ SELECT (COUNT(?pr1) AS ?tot) {{
      ?p1 a o:PT ; o:label ?l1 .
      ?o1 o:product ?p1 ; o:price ?pr1 .
    }}
  }}
}}
"""


def assert_engines_match(query, graph):
    analytical = to_analytical(query)
    expected = canonical_rows(make_engine("reference").execute(analytical, graph).rows)
    for engine in PAPER_ENGINES:
        report = make_engine(engine).execute(analytical, graph)
        assert canonical_rows(report.rows) == expected, engine
    return expected


class TestModel:
    def test_optional_recorded_on_star(self):
        analytical = parse_analytical(GROUP_ON_OPTIONAL)
        product_star = analytical.subqueries[0].pattern.stars[0]
        assert len(product_star.optional_props) == 1
        (key,) = product_star.optional_props
        assert key.property == iri("discount")
        assert key not in product_star.required_props()

    def test_optional_variable_reuse_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_analytical(
                f"""
                PREFIX o: <{EX}>
                SELECT (COUNT(?d) AS ?c) {{
                  ?p a o:PT ; o:other ?d .
                  OPTIONAL {{ ?p o:discount ?d }}
                }}
                """
            )

    def test_multi_pattern_optional_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_analytical(
                f"""
                PREFIX o: <{EX}>
                SELECT (COUNT(?d) AS ?c) {{
                  ?p a o:PT .
                  OPTIONAL {{ ?p o:discount ?d . ?p o:until ?u }}
                }}
                """
            )

    def test_detached_optional_subject_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_analytical(
                f"""
                PREFIX o: <{EX}>
                SELECT (COUNT(?d) AS ?c) {{
                  ?p a o:PT .
                  OPTIONAL {{ ?q o:discount ?d }}
                }}
                """
            )

    def test_required_and_optional_same_property_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_analytical(
                f"""
                PREFIX o: <{EX}>
                SELECT (COUNT(?d) AS ?c) {{
                  ?p a o:PT ; o:discount ?x .
                  OPTIONAL {{ ?p o:discount ?d }}
                }}
                """
            )


class TestExecution:
    def test_group_on_optional_includes_null_group(self, discount_graph):
        expected = assert_engines_match(GROUP_ON_OPTIONAL, discount_graph)
        # Groups: d=5, d=7, d=9, and the unbound-discount group for p2.
        assert len(expected) == 4

    def test_count_skips_unbound_optional(self, discount_graph):
        analytical = to_analytical(COUNT_OPTIONAL)
        report = make_engine("reference").execute(analytical, discount_graph)
        values = {v.name: t.python_value() for v, t in report.rows[0].items()}
        # p0 contributes 2 offers x 1 discount, p1 2 x 2; p2's offers have
        # no discount binding.  Offers total: p0 2 + p1 4 (two discounts
        # double its offer rows) + p2 2.
        assert values == {"withDiscount": 6, "offers": 8}
        assert_engines_match(COUNT_OPTIONAL, discount_graph)

    def test_multi_grouping_with_optional_secondary(self, discount_graph):
        assert_engines_match(MULTI_GROUPING_OPTIONAL, discount_graph)

    def test_rapid_analytics_cycle_count_unchanged(self, discount_graph):
        report = make_engine("rapid-analytics").execute(
            to_analytical(MULTI_GROUPING_OPTIONAL), discount_graph
        )
        assert report.cycles == 3  # OPTIONAL costs no extra cycles


@st.composite
def optional_graphs(draw):
    graph = Graph()
    for index in range(draw(st.integers(0, 4))):
        product = iri(f"p{index}")
        graph.add(Triple(product, RDF_TYPE, iri("PT")))
        graph.add(Triple(product, iri("label"), Literal(f"l{index}")))
        for value in draw(st.lists(st.integers(1, 4), max_size=2)):
            graph.add(Triple(product, iri("discount"), Literal.from_python(value)))
        for offer_index in range(draw(st.integers(0, 2))):
            offer = iri(f"o{index}_{offer_index}")
            graph.add(Triple(offer, iri("product"), product))
            graph.add(Triple(offer, iri("price"), Literal.from_python(draw(st.integers(1, 99)))))
    return graph


MULTI_ANALYTICAL = to_analytical(MULTI_GROUPING_OPTIONAL)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(graph=optional_graphs())
def test_optional_property_random_graphs(graph):
    expected = Counter(
        frozenset((v.name, str(t)) for v, t in row.items())
        for row in make_engine("reference").execute(MULTI_ANALYTICAL, graph).rows
    )
    for engine in PAPER_ENGINES:
        report = make_engine(engine).execute(MULTI_ANALYTICAL, graph)
        actual = Counter(
            frozenset((v.name, str(t)) for v, t in row.items()) for row in report.rows
        )
        assert actual == expected, engine
