"""Property-based conformance for the composite rewrite itself.

Hypothesis builds *random pairs of overlapping graph patterns* (random
secondary properties on both stars, random grouping keys, optionally
shared grouping variable names so the outer join is exercised both as a
real join and as a cross product) over random data — then checks every
engine against the oracle.  This hunts for composite-construction bugs
(wrong α conditions, broken canonicalization, expansion multiplicity)
that the fixed workload can't reach.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engines import PAPER_ENGINES, make_engine
from repro.core.query_model import (
    AggregateSpec,
    AnalyticalQuery,
    GraphPattern,
    GroupingSubquery,
    StarPattern,
)
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import RDF_TYPE, Triple, TriplePattern

EX = "http://rc.org/"
TYPE_C = IRI(EX + "C")
LABEL, FEAT, LINK, VAL, TAG = (
    IRI(EX + "label"),
    IRI(EX + "feat"),
    IRI(EX + "link"),
    IRI(EX + "val"),
    IRI(EX + "tag"),
)


def _build_subquery(
    suffix: str,
    with_label: bool,
    with_feat: bool,
    with_tag: bool,
    group_feat: bool,
    group_tag: bool,
    shared_names: bool,
) -> GroupingSubquery:
    def var(name: str, groupable: bool = False) -> Variable:
        if groupable and shared_names:
            return Variable(name)  # same name in both subqueries → outer join key
        return Variable(name + suffix)

    s, o = var("s"), var("o")
    star1 = [TriplePattern(s, RDF_TYPE, TYPE_C)]
    if with_label:
        star1.append(TriplePattern(s, LABEL, var("l")))
    feat_var = var("f", groupable=True)
    if with_feat:
        star1.append(TriplePattern(s, FEAT, feat_var))
    star2 = [TriplePattern(o, LINK, s), TriplePattern(o, VAL, var("v"))]
    tag_var = var("t", groupable=True)
    if with_tag:
        star2.append(TriplePattern(o, TAG, tag_var))
    pattern = GraphPattern(
        (StarPattern(s, tuple(star1)), StarPattern(o, tuple(star2)))
    )
    group_by = []
    if group_feat and with_feat:
        group_by.append(feat_var)
    if group_tag and with_tag:
        group_by.append(tag_var)
    aggregates = (
        AggregateSpec(var("cnt"), "COUNT", var("v")),
        AggregateSpec(var("sum"), "SUM", var("v")),
    )
    return GroupingSubquery(pattern, tuple(group_by), aggregates)


@st.composite
def analytical_queries(draw):
    shared_names = draw(st.booleans())
    subqueries = []
    for suffix in ("1", "2"):
        subqueries.append(
            _build_subquery(
                suffix,
                with_label=draw(st.booleans()),
                with_feat=draw(st.booleans()),
                with_tag=draw(st.booleans()),
                group_feat=draw(st.booleans()),
                group_tag=draw(st.booleans()),
                shared_names=shared_names,
            )
        )
    projection = []
    for subquery in subqueries:
        for variable in subquery.projected_variables():
            if variable not in projection:
                projection.append(variable)
    return AnalyticalQuery(tuple(subqueries), tuple(projection))


@st.composite
def graphs(draw):
    graph = Graph()
    subject_count = draw(st.integers(0, 5))
    for index in range(subject_count):
        subject = IRI(EX + f"s{index}")
        if draw(st.booleans()):
            graph.add(Triple(subject, RDF_TYPE, TYPE_C))
        if draw(st.booleans()):
            graph.add(Triple(subject, LABEL, Literal(f"l{index}")))
        for feature in draw(st.lists(st.integers(0, 2), max_size=2)):
            graph.add(Triple(subject, FEAT, IRI(EX + f"f{feature}")))
        for object_index in range(draw(st.integers(0, 2))):
            obj = IRI(EX + f"o{index}_{object_index}")
            graph.add(Triple(obj, LINK, subject))
            graph.add(Triple(obj, VAL, Literal.from_python(draw(st.integers(1, 50)))))
            for tag in draw(st.lists(st.integers(0, 1), max_size=2)):
                graph.add(Triple(obj, TAG, Literal(f"t{tag}")))
    return graph


def canonical(rows):
    return Counter(
        frozenset((variable.name, str(term)) for variable, term in row.items())
        for row in rows
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(query=analytical_queries(), graph=graphs())
def test_random_composite_queries_match_oracle(query, graph):
    expected = canonical(make_engine("reference").execute(query, graph).rows)
    for engine in PAPER_ENGINES:
        report = make_engine(engine).execute(query, graph)
        assert canonical(report.rows) == expected, engine
