"""Integration: every engine returns the oracle's row multiset on every
catalog query (the library's central correctness claim)."""

import pytest

from repro.bench.catalog import CATALOG
from repro.core.engines import PAPER_ENGINES, make_engine, to_analytical
from tests.conftest import canonical_rows

_GRAPH_FIXTURE = {"bsbm": "bsbm_small", "chem": "chem_tiny", "pubmed": "pubmed_tiny"}


@pytest.fixture(scope="module")
def analytical_cache():
    return {qid: to_analytical(query.sparql) for qid, query in CATALOG.items()}


@pytest.fixture(scope="module")
def reference_cache(request, analytical_cache):
    cache = {}
    for qid, query in CATALOG.items():
        graph = request.getfixturevalue(_GRAPH_FIXTURE[query.dataset])
        report = make_engine("reference").execute(analytical_cache[qid], graph)
        cache[qid] = canonical_rows(report.rows)
    return cache


@pytest.mark.parametrize("engine", PAPER_ENGINES)
@pytest.mark.parametrize("qid", sorted(CATALOG))
def test_engine_matches_reference(
    request, engine, qid, analytical_cache, reference_cache
):
    query = CATALOG[qid]
    graph = request.getfixturevalue(_GRAPH_FIXTURE[query.dataset])
    report = make_engine(engine).execute(analytical_cache[qid], graph)
    assert canonical_rows(report.rows) == reference_cache[qid], (
        f"{engine} diverges from the reference on {qid}"
    )


@pytest.mark.parametrize("qid", sorted(CATALOG))
def test_reference_returns_rows(qid, reference_cache):
    """Sanity: the tiny datasets exercise every query non-vacuously.

    (GROUP BY ALL queries always return at least one row; grouped ones
    must find at least one group on the generated data.)"""
    assert reference_cache[qid], f"{qid} returned no rows on the test dataset"
