"""The runnable examples stay runnable (the fast ones run in CI)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize("name", ["quickstart.py", "custom_data.py"])
def test_fast_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    out = capsys.readouterr().out
    assert "MR cycles" in out


def test_all_examples_exist_and_document_themselves():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3  # the deliverable floor; we ship six
    for script in scripts:
        text = script.read_text()
        assert text.startswith('"""'), script.name
        assert "Run:" in text, f"{script.name} lacks a run instruction"
        assert 'if __name__ == "__main__":' in text, script.name
