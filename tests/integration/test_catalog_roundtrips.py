"""Cross-cutting invariants over the whole catalog.

* serializer round-trip: every catalog query re-parses to the same AST
  and decomposes to the same analytical model;
* explain/execution consistency: the NTGA plans EXPLAIN prints have
  exactly the cycle counts the engines then execute.
"""

import pytest

from repro.bench.catalog import CATALOG
from repro.core.explain import explain
from repro.core.engines import make_engine, to_analytical
from repro.core.query_model import from_select_query
from repro.sparql.parser import parse_query
from repro.sparql.serializer import serialize_query

_GRAPH_FIXTURE = {"bsbm": "bsbm_small", "chem": "chem_tiny", "pubmed": "pubmed_tiny"}


@pytest.mark.parametrize("qid", sorted(CATALOG))
def test_catalog_query_serializer_round_trip(qid):
    original = parse_query(CATALOG[qid].sparql)
    reparsed = parse_query(serialize_query(original))
    assert reparsed == original
    assert from_select_query(reparsed) == from_select_query(original)


@pytest.mark.parametrize("engine", ["rapid-analytics", "rapid-plus"])
@pytest.mark.parametrize("qid", sorted(CATALOG))
def test_explain_cycle_count_matches_execution(request, qid, engine):
    query = CATALOG[qid]
    text = explain(query.sparql, engine=engine)
    # "rapid-analytics plan (3 MR cycles):"
    declared = int(text.split("plan (")[1].split(" MR cycles")[0])
    graph = request.getfixturevalue(_GRAPH_FIXTURE[query.dataset])
    report = make_engine(engine).execute(to_analytical(query.sparql), graph)
    assert declared == report.cycles, text
