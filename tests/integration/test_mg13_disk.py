"""Integration: the paper's MG13 HDFS-exhaustion finding.

Table 4 reports that naive Hive "eventually failed due to insufficient
HDFS disk space" on MG13 — one star-join cycle materializes the
MeSH-heading-expanded join output twice — while the other approaches
finish.  Under a simulated capacity limit the same hierarchy appears:
naive Hive demands the most disk, RAPIDAnalytics (nested triplegroups,
shared execution) the least.
"""

import pytest

from repro.bench.catalog import get_query
from repro.bench.harness import mg13_disk_exhaustion, pubmed_config
from repro.core.engines import make_engine, to_analytical
from repro.datasets import pubmed
from repro.errors import HDFSOutOfSpaceError

CAPACITY = 11_000_000  # bytes; between naive's demand and the others'


@pytest.fixture(scope="module")
def pubmed_paper():
    return pubmed.generate(pubmed.preset("paper"))


@pytest.fixture(scope="module")
def mg13():
    return to_analytical(get_query("MG13").sparql)


def test_disk_demand_hierarchy(pubmed_paper, mg13):
    config = pubmed_config()
    totals = {}
    for engine in ("hive-naive", "hive-mqo", "rapid-plus", "rapid-analytics"):
        report = make_engine(engine).execute(mg13, pubmed_paper, config)
        totals[engine] = report.load_bytes + report.stats.total_materialized_bytes
    assert totals["hive-naive"] > totals["hive-mqo"]
    assert totals["hive-mqo"] > totals["rapid-plus"]
    assert totals["rapid-plus"] > totals["rapid-analytics"]


def test_naive_fails_under_capacity_others_complete(pubmed_paper, mg13):
    for engine, should_complete in (
        ("hive-naive", False),
        ("hive-mqo", True),
        ("rapid-plus", True),
        ("rapid-analytics", True),
    ):
        config = pubmed_config(hdfs_capacity=CAPACITY)
        if should_complete:
            report = make_engine(engine).execute(mg13, pubmed_paper, config)
            assert report.rows
        else:
            with pytest.raises(HDFSOutOfSpaceError):
                make_engine(engine).execute(mg13, pubmed_paper, config)


def test_harness_records_failure_instead_of_raising():
    result = mg13_disk_exhaustion(CAPACITY)
    by_engine = result.for_query("MG13")
    assert by_engine["hive-naive"].failed == "HDFSOutOfSpaceError"
    assert by_engine["rapid-analytics"].failed == ""
    assert by_engine["rapid-analytics"].rows > 0
