"""Partition-invariance differential suite.

Every catalog query, under every partitioning strategy and shard count
in the matrix, must produce answers **bit-identical** to the unsharded
single-cluster run — not just bag-equal: the sharded driver's order
tags promise the exact row list, including row order and duplicate
placement, so the comparison is ``==`` on the raw row lists.

The CI ``shard-smoke`` job re-runs the MG1–MG4 slice of this matrix
under two ``PYTHONHASHSEED`` values and compares the emitted report
bytes, which pins the suite's determinism across hash seeds.
"""

import pytest
from dataclasses import replace

from repro.bench.catalog import CATALOG
from repro.bench.harness import bsbm_config, chem_config, pubmed_config
from repro.core.engines import make_engine, to_analytical
from repro.shard.partition import PARTITIONERS

_GRAPH_FIXTURE = {"bsbm": "bsbm_small", "chem": "chem_tiny", "pubmed": "pubmed_tiny"}
_CONFIG_FACTORY = {"bsbm": bsbm_config, "chem": chem_config, "pubmed": pubmed_config}

SHARD_COUNTS = (1, 2, 4, 7)


@pytest.fixture(scope="module")
def analytical_cache():
    return {qid: to_analytical(query.sparql) for qid, query in CATALOG.items()}


@pytest.fixture(scope="module")
def bench_configs():
    return {dataset: factory() for dataset, factory in _CONFIG_FACTORY.items()}


@pytest.fixture(scope="module")
def engine():
    return make_engine("rapid-analytics")


@pytest.fixture(scope="module")
def unsharded_baseline(request, analytical_cache, bench_configs, engine):
    """The single-cluster answer rows for every catalog query — the
    oracle every sharded combination must reproduce exactly."""
    cache = {}
    for qid, query in CATALOG.items():
        graph = request.getfixturevalue(_GRAPH_FIXTURE[query.dataset])
        report = engine.execute(
            analytical_cache[qid], graph, bench_configs[query.dataset]
        )
        cache[qid] = report.rows
    return cache


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("strategy", PARTITIONERS)
@pytest.mark.parametrize("qid", sorted(CATALOG))
def test_sharded_rows_bit_identical_to_unsharded(
    request,
    qid,
    strategy,
    shards,
    analytical_cache,
    bench_configs,
    engine,
    unsharded_baseline,
):
    query = CATALOG[qid]
    graph = request.getfixturevalue(_GRAPH_FIXTURE[query.dataset])
    config = replace(
        bench_configs[query.dataset], shards=shards, partitioner=strategy
    )
    report = engine.execute(analytical_cache[qid], graph, config)
    assert report.rows == unsharded_baseline[qid], (
        f"{qid} under {strategy}/shards={shards} diverged from the "
        f"unsharded run (sharded {len(report.rows)} rows, unsharded "
        f"{len(unsharded_baseline[qid])})"
    )
    if shards == 1:
        assert report.stats.total_exchange_bytes == 0
    else:
        # N-way execution expands every logical cycle into per-shard
        # jobs; the job list must reflect the expansion.
        assert any("@s" in job.name for job in report.stats.jobs)


@pytest.mark.parametrize("qid", ["MG1", "MG6", "MG11"])
def test_rapid_plus_sharded_matches_unsharded(request, qid, analytical_cache):
    """The non-adaptive NTGA engine shares the sharded driver; one
    query per dataset pins that path too."""
    query = CATALOG[qid]
    graph = request.getfixturevalue(_GRAPH_FIXTURE[query.dataset])
    engine = make_engine("rapid-plus")
    base = engine.execute(analytical_cache[qid], graph)
    from repro.core.results import EngineConfig

    for strategy in PARTITIONERS:
        report = engine.execute(
            analytical_cache[qid],
            graph,
            EngineConfig(shards=4, partitioner=strategy),
        )
        assert report.rows == base.rows
