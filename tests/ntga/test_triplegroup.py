"""Unit tests for the triplegroup data model and binding expansion."""

import pytest

from repro.core.query_model import PropKey, StarPattern
from repro.errors import ReproError
from repro.ntga.triplegroup import (
    JoinedTripleGroup,
    TripleGroup,
    equivalence_class,
    group_by_subject,
    joined_solutions,
    star_solutions,
)
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import RDF_TYPE, Triple, TriplePattern

S1 = IRI("urn:s1")
PF, PC, TY = IRI("urn:pf"), IRI("urn:pc"), RDF_TYPE
PT = IRI("urn:PT1")


def tg(subject, *pairs):
    return TripleGroup(subject, tuple(Triple(subject, p, o) for p, o in pairs))


class TestTripleGroup:
    def test_subject_consistency_enforced(self):
        with pytest.raises(ReproError):
            TripleGroup(S1, (Triple(IRI("urn:other"), PF, Literal("x")),))

    def test_props_with_type_qualification(self):
        group = tg(S1, (TY, PT), (PF, IRI("urn:f1")))
        assert group.props() == frozenset({PropKey(TY, PT), PropKey(PF)})

    def test_objects_for_plain(self):
        group = tg(S1, (PF, IRI("urn:f1")), (PF, IRI("urn:f2")), (PC, Literal("5")))
        assert set(group.objects_for(PropKey(PF))) == {IRI("urn:f1"), IRI("urn:f2")}

    def test_objects_for_typed(self):
        group = tg(S1, (TY, PT), (TY, IRI("urn:PT2")))
        assert group.objects_for(PropKey(TY, PT)) == (PT,)

    def test_project(self):
        group = tg(S1, (TY, PT), (PF, IRI("urn:f1")), (PC, Literal("5")))
        projected = group.project(frozenset({PropKey(PF)}))
        assert projected.props() == frozenset({PropKey(PF)})

    def test_project_typed_key_keeps_only_matching_class(self):
        group = tg(S1, (TY, PT), (TY, IRI("urn:PT2")))
        projected = group.project(frozenset({PropKey(TY, PT)}))
        assert len(projected) == 1

    def test_estimated_size_counts_subject_once(self):
        one = tg(S1, (PF, IRI("urn:f1")))
        two = tg(S1, (PF, IRI("urn:f1")), (PF, IRI("urn:f2")))
        # Adding a triple grows size by less than a full triple (subject shared).
        assert two.estimated_size() - one.estimated_size() < one.estimated_size()


def test_group_by_subject():
    triples = [
        Triple(S1, PF, IRI("urn:f1")),
        Triple(S1, PC, Literal("5")),
        Triple(IRI("urn:s2"), PF, IRI("urn:f2")),
    ]
    groups = {g.subject: g for g in group_by_subject(triples)}
    assert len(groups) == 2
    assert len(groups[S1]) == 2


def test_equivalence_class():
    group = tg(S1, (TY, PT), (PF, IRI("urn:f1")))
    assert equivalence_class(group) == frozenset({TY, PF})


class TestStarSolutions:
    def _star(self):
        return StarPattern(
            Variable("s"),
            (
                TriplePattern(Variable("s"), TY, PT),
                TriplePattern(Variable("s"), PF, Variable("f")),
            ),
        )

    def test_multi_valued_expansion(self):
        group = tg(S1, (TY, PT), (PF, IRI("urn:f1")), (PF, IRI("urn:f2")))
        solutions = star_solutions(self._star(), group)
        features = {s[Variable("f")] for s in solutions}
        assert features == {IRI("urn:f1"), IRI("urn:f2")}
        assert all(s[Variable("s")] == S1 for s in solutions)

    def test_missing_primary_no_solutions(self):
        group = tg(S1, (PF, IRI("urn:f1")))  # no type triple
        assert star_solutions(self._star(), group) == []

    def test_fixed_binding_restricts(self):
        group = tg(S1, (TY, PT), (PF, IRI("urn:f1")), (PF, IRI("urn:f2")))
        solutions = star_solutions(self._star(), group, {Variable("f"): IRI("urn:f2")})
        assert len(solutions) == 1
        assert solutions[0][Variable("f")] == IRI("urn:f2")

    def test_fixed_subject_mismatch(self):
        group = tg(S1, (TY, PT), (PF, IRI("urn:f1")))
        assert star_solutions(self._star(), group, {Variable("s"): IRI("urn:zz")}) == []

    def test_concrete_object_constraint(self):
        star = StarPattern(
            Variable("s"), (TriplePattern(Variable("s"), PF, IRI("urn:f1")),)
        )
        assert star_solutions(star, tg(S1, (PF, IRI("urn:f1")))) != []
        assert star_solutions(star, tg(S1, (PF, IRI("urn:f2")))) == []

    def test_repeated_object_variable_consistent(self):
        star = StarPattern(
            Variable("s"),
            (
                TriplePattern(Variable("s"), PF, Variable("x")),
                TriplePattern(Variable("s"), PC, Variable("x")),
            ),
        )
        shared = IRI("urn:same")
        group = tg(S1, (PF, shared), (PC, shared), (PC, Literal("other")))
        solutions = star_solutions(star, group)
        assert solutions == [{Variable("s"): S1, Variable("x"): shared}]


class TestJoinedTripleGroup:
    def test_component_lookup_and_merge(self):
        left = JoinedTripleGroup.single(0, tg(S1, (PF, IRI("urn:f1"))))
        right = JoinedTripleGroup.single(1, tg(IRI("urn:s2"), (PC, Literal("5"))))
        merged = left.merge(right, ((Variable("v"), S1),))
        assert merged.component(0) is not None
        assert merged.component(1) is not None
        assert merged.component(7) is None
        assert merged.fixed_bindings() == {Variable("v"): S1}

    def test_props_union(self):
        left = JoinedTripleGroup.single(0, tg(S1, (PF, IRI("urn:f1"))))
        right = JoinedTripleGroup.single(1, tg(IRI("urn:s2"), (PC, Literal("5"))))
        assert left.merge(right).props() == frozenset({PropKey(PF), PropKey(PC)})

    def test_joined_solutions_respect_fixed_join_value(self):
        """A multi-valued join property must not re-expand after pairing."""
        pub = tg(S1, (IRI("urn:gene"), IRI("urn:g1")), (IRI("urn:gene"), IRI("urn:g2")))
        gene = tg(IRI("urn:g1"), (IRI("urn:sym"), Literal("GENE1")))
        joined = JoinedTripleGroup(
            ((0, pub), (1, gene)), ((Variable("g"), IRI("urn:g1")),)
        )
        stars = (
            StarPattern(Variable("p"), (TriplePattern(Variable("p"), IRI("urn:gene"), Variable("g")),)),
            StarPattern(Variable("g"), (TriplePattern(Variable("g"), IRI("urn:sym"), Variable("sym")),)),
        )
        solutions = joined_solutions(stars, joined)
        assert len(solutions) == 1
        assert solutions[0][Variable("g")] == IRI("urn:g1")

    def test_joined_solutions_ignore_uncovered_components(self):
        """Expanding an original pattern skips the other pattern's stars."""
        pub = tg(S1, (PF, IRI("urn:f1")), (PF, IRI("urn:f2")))
        other = tg(IRI("urn:s2"), (PC, Literal("5")))
        joined = JoinedTripleGroup(((0, pub), (1, other)))
        stars = (StarPattern(Variable("p"), (TriplePattern(Variable("p"), PC, Variable("c")),)),)
        solutions = joined_solutions(stars, joined, {0: 1})
        assert len(solutions) == 1
        assert solutions[0][Variable("c")] == Literal("5")

    def test_joined_solutions_missing_component(self):
        joined = JoinedTripleGroup.single(0, tg(S1, (PF, IRI("urn:f1"))))
        stars = (StarPattern(Variable("x"), (TriplePattern(Variable("x"), PC, Variable("c")),)),)
        assert joined_solutions(stars, joined, {0: 5}) == []
