"""Engine-level tests for the NTGA engines."""

import pytest

from repro.core.engines import make_engine, to_analytical
from repro.core.results import EngineConfig
from repro.errors import HDFSOutOfSpaceError
from repro.ntga.engine import deduplicate_rows, rapid_analytics_engine, rapid_plus_engine
from repro.rdf.terms import Literal, Variable


def test_engine_names():
    assert rapid_analytics_engine().name == "rapid-analytics"
    assert rapid_plus_engine().name == "rapid-plus"


def test_report_contains_plan_and_description(product_graph, mg1_style_query):
    report = rapid_analytics_engine().execute(
        to_analytical(mg1_style_query), product_graph
    )
    assert len(report.plan) == report.cycles
    assert "Stp'0" in report.plan_description
    assert report.load_bytes > 0


def test_capacity_too_small_for_load_fails_fast(product_graph, mg1_style_query):
    config = EngineConfig(hdfs_capacity=10)
    with pytest.raises(HDFSOutOfSpaceError):
        rapid_analytics_engine().execute(
            to_analytical(mg1_style_query), product_graph, config
        )


def test_deduplicate_rows_preserves_order():
    a = {Variable("x"): Literal("1")}
    b = {Variable("x"): Literal("2")}
    assert deduplicate_rows([a, b, dict(a)]) == [a, b]


def test_source_text_preserved(mg1_style_query):
    analytical = to_analytical(mg1_style_query)
    assert analytical.source_text == mg1_style_query


def test_rapid_plus_report_plan_shape(product_graph, mg1_style_query):
    report = rapid_plus_engine().execute(to_analytical(mg1_style_query), product_graph)
    assert report.cycles == 5
    assert "sequential" in report.plan_description
