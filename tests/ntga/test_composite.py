"""Composite graph pattern construction tests (paper Section 3)."""

import pytest

from repro.core.query_model import PropKey, parse_analytical
from repro.errors import OverlapError
from repro.ntga.composite import (
    build_composite,
    build_composite_n,
    single_pattern_plan,
)
from repro.rdf.terms import IRI, Variable
from repro.rdf.triples import RDF_TYPE


def composite_for(sparql: str):
    query = parse_analytical(sparql)
    return build_composite(query.subqueries[0], query.subqueries[1])


MG1 = """
PREFIX ex: <http://ex.org/>
SELECT ?f ?sumF ?sumT {
  { SELECT ?f (SUM(?pr2) AS ?sumF) {
      ?p2 a ex:PT1 ; ex:label ?l2 ; ex:feature ?f .
      ?o2 ex:product ?p2 ; ex:price ?pr2 .
    } GROUP BY ?f
  }
  { SELECT (SUM(?pr) AS ?sumT) {
      ?p1 a ex:PT1 ; ex:label ?l1 .
      ?o1 ex:product ?p1 ; ex:price ?pr .
    }
  }
}
"""


def prop(name):
    return PropKey(IRI("http://ex.org/" + name))


class TestMG1Composite:
    def test_primary_and_secondary_properties(self):
        plan = composite_for(MG1)
        product_star, offer_star = plan.stars
        assert product_star.p_prim == frozenset(
            {PropKey(RDF_TYPE, IRI("http://ex.org/PT1")), prop("label")}
        )
        assert product_star.p_sec == frozenset({prop("feature")})
        assert offer_star.p_prim == frozenset({prop("product"), prop("price")})
        assert offer_star.p_sec == frozenset()

    def test_alpha_conditions(self):
        plan = composite_for(MG1)
        alpha_feature, alpha_rollup = plan.alphas()
        assert alpha_feature.required == frozenset({prop("feature")})
        assert alpha_rollup.required == frozenset()

    def test_gp2_variables_canonicalized_to_gp1(self):
        plan = composite_for(MG1)
        rollup = plan.subqueries[1]
        variables = set()
        for star in rollup.stars:
            variables |= star.variables()
        # GP2's ?p1/?pr/?l1/?o1 become GP1's ?p2/?pr2/?l2/?o2.
        assert Variable("pr2") in variables
        assert Variable("pr") not in variables

    def test_aggregate_variables_canonicalized(self):
        plan = composite_for(MG1)
        rollup = plan.subqueries[1]
        assert rollup.aggregates[0].variable == Variable("pr2")
        assert rollup.aggregates[0].alias == Variable("sumT")  # alias unchanged

    def test_output_group_by_keeps_original_names(self):
        plan = composite_for(MG1)
        assert plan.subqueries[0].output_group_by == (Variable("f"),)
        assert plan.subqueries[1].output_group_by == ()

    def test_describe_mentions_alphas(self):
        text = composite_for(MG1).describe()
        assert "alpha_0" in text and "prim=" in text


class TestNonOverlap:
    def test_object_object_vs_object_subject_fails(self):
        query = """
        PREFIX ex: <http://ex.org/>
        SELECT ?a ?b {
          { SELECT (COUNT(?x) AS ?a) {
              ?s ex:ve ?v . ?v ex:cn ?x .
            }
          }
          { SELECT (COUNT(?y) AS ?b) {
              ?s2 ex:ve ?w . ?t ex:cn ?w .
            }
          }
        }
        """
        analytical = parse_analytical(query)
        with pytest.raises(OverlapError):
            build_composite(analytical.subqueries[0], analytical.subqueries[1])

    def test_conflicting_constants_fail(self):
        query = """
        PREFIX ex: <http://ex.org/>
        SELECT ?a ?b {
          { SELECT (COUNT(?x) AS ?a) { ?s ex:t "News" ; ex:p ?x . } }
          { SELECT (COUNT(?y) AS ?b) { ?s2 ex:t "Review" ; ex:p ?y . } }
        }
        """
        analytical = parse_analytical(query)
        with pytest.raises(OverlapError):
            build_composite(analytical.subqueries[0], analytical.subqueries[1])

    def test_constant_vs_variable_on_shared_property_fails(self):
        query = """
        PREFIX ex: <http://ex.org/>
        SELECT ?a ?b {
          { SELECT (COUNT(?x) AS ?a) { ?s ex:t "News" ; ex:p ?x . } }
          { SELECT (COUNT(?y) AS ?b) { ?s2 ex:t ?anything ; ex:p ?y . } }
        }
        """
        analytical = parse_analytical(query)
        with pytest.raises(OverlapError):
            build_composite(analytical.subqueries[0], analytical.subqueries[1])


class TestTwoSidedSecondaries:
    def test_mg12_shape(self):
        """Secondary properties can come from BOTH patterns (MG12)."""
        query = """
        PREFIX pm: <http://pm.org/>
        SELECT ?c ?x ?y {
          { SELECT ?c (COUNT(?g) AS ?x) {
              ?pub pm:pub_type ?pty ; pm:grant ?g .
              ?g pm:grant_agency ?ga ; pm:grant_country ?c .
            } GROUP BY ?c
          }
          { SELECT ?c (COUNT(?g1) AS ?y) {
              ?pub1 pm:journal ?j1 ; pm:grant ?g1 .
              ?g1 pm:grant_country ?c .
            } GROUP BY ?c
          }
        }
        """
        analytical = parse_analytical(query)
        plan = build_composite(analytical.subqueries[0], analytical.subqueries[1])
        pub_star = plan.stars[0]
        assert pub_star.p_prim == frozenset({PropKey(IRI("http://pm.org/grant"))})
        assert pub_star.p_sec == frozenset(
            {PropKey(IRI("http://pm.org/pub_type")), PropKey(IRI("http://pm.org/journal"))}
        )
        alpha1, alpha2 = plan.alphas()
        assert PropKey(IRI("http://pm.org/pub_type")) in alpha1.required
        assert PropKey(IRI("http://pm.org/journal")) in alpha2.required


class TestVariableCollisions:
    def test_leftover_gp2_variable_renamed_on_collision(self):
        """A GP2 secondary variable colliding with a GP1 name gets a suffix."""
        query = """
        PREFIX ex: <http://ex.org/>
        SELECT ?q ?r {
          { SELECT (COUNT(?x) AS ?q) { ?s ex:p ?x ; ex:extra1 ?z . } }
          { SELECT (COUNT(?y) AS ?r) { ?s2 ex:p ?y ; ex:extra2 ?z . } }
        }
        """
        analytical = parse_analytical(query)
        plan = build_composite(analytical.subqueries[0], analytical.subqueries[1])
        star = plan.stars[0].pattern
        object_vars = {
            tp.object for tp in star.patterns if isinstance(tp.object, Variable)
        }
        # GP1's ?z (extra1) and GP2's ?z (extra2) must remain distinct.
        assert Variable("z") in object_vars
        assert Variable("z_2") in object_vars


ROLLUP3 = """
PREFIX ex: <http://ex.org/>
SELECT ?f ?c ?a1 ?a2 ?a3 {
  { SELECT ?f ?c (COUNT(?pr1) AS ?a1) {
      ?p1 a ex:PT1 ; ex:feature ?f .
      ?o1 ex:product ?p1 ; ex:price ?pr1 ; ex:vendor ?v1 .
      ?v1 ex:country ?c .
    } GROUP BY ?f ?c
  }
  { SELECT ?c (COUNT(?pr2) AS ?a2) {
      ?p2 a ex:PT1 .
      ?o2 ex:product ?p2 ; ex:price ?pr2 ; ex:vendor ?v2 .
      ?v2 ex:country ?c .
    } GROUP BY ?c
  }
  { SELECT (COUNT(?pr3) AS ?a3) {
      ?p3 a ex:PT1 .
      ?o3 ex:product ?p3 ; ex:price ?pr3 ; ex:vendor ?v3 .
      ?v3 ex:country ?c3 .
    }
  }
}
"""


class TestNWayComposite:
    def test_three_way_rollup_structure(self):
        query = parse_analytical(ROLLUP3)
        plan = build_composite_n(query.subqueries)
        assert len(plan.subqueries) == 3
        # The richest pattern (with ?f) is the base; feature is secondary
        # because the two roll-ups lack it.
        product_star = plan.stars[0]
        assert prop("feature") in product_star.p_sec
        alpha_fine, alpha_country, alpha_all = (sq.alpha for sq in plan.subqueries)
        assert prop("feature") in alpha_fine.required
        assert alpha_country.required == frozenset()
        assert alpha_all.required == frozenset()

    def test_three_way_canonicalizes_group_vars(self):
        query = parse_analytical(ROLLUP3)
        plan = build_composite_n(query.subqueries)
        # All three subqueries group through the same canonical country var.
        fine, country, _all = plan.subqueries
        assert fine.group_by[1] == country.group_by[0]
        assert fine.output_group_by == (Variable("f"), Variable("c"))
        assert country.output_group_by == (Variable("c"),)

    def test_two_way_delegates_to_pairwise(self):
        query = parse_analytical(MG1)
        plan_n = build_composite_n(query.subqueries)
        plan_2 = build_composite(query.subqueries[0], query.subqueries[1])
        assert plan_n.stars == plan_2.stars

    def test_rejects_single_subquery(self):
        query = parse_analytical(MG1)
        with pytest.raises(OverlapError):
            build_composite_n(query.subqueries[:1])

    def test_non_overlapping_third_pattern_rejected(self):
        query = parse_analytical(
            """
            PREFIX ex: <http://ex.org/>
            SELECT ?a ?b ?c {
              { SELECT (COUNT(?x1) AS ?a) { ?s1 ex:p ?x1 . ?x1 ex:q ?y1 . } }
              { SELECT (COUNT(?x2) AS ?b) { ?s2 ex:p ?x2 . ?x2 ex:q ?y2 . } }
              { SELECT (COUNT(?x3) AS ?c) { ?s3 ex:p ?x3 . ?t3 ex:q ?x3 . } }
            }
            """
        )
        with pytest.raises(OverlapError):
            build_composite_n(query.subqueries)

    def test_private_variables_stay_distinct_across_subqueries(self):
        query = parse_analytical(
            """
            PREFIX ex: <http://ex.org/>
            SELECT ?a ?b ?c {
              { SELECT (COUNT(?x1) AS ?a) { ?s1 ex:p ?x1 ; ex:extra1 ?z . } }
              { SELECT (COUNT(?x2) AS ?b) { ?s2 ex:p ?x2 ; ex:extra2 ?z . } }
              { SELECT (COUNT(?x3) AS ?c) { ?s3 ex:p ?x3 ; ex:extra3 ?z . } }
            }
            """
        )
        plan = build_composite_n(query.subqueries)
        star = plan.stars[0].pattern
        object_vars = [
            tp.object for tp in star.patterns if isinstance(tp.object, Variable)
        ]
        assert len(object_vars) == len(set(object_vars))


class TestSinglePatternPlan:
    def test_degenerate_composite(self):
        query = parse_analytical(
            "SELECT (COUNT(?x) AS ?c) { ?s <urn:p> ?x ; <urn:q> ?y . }"
        )
        plan = single_pattern_plan(query.subqueries[0])
        assert len(plan.subqueries) == 1
        assert plan.stars[0].p_sec == frozenset()
        assert plan.subqueries[0].alpha.required == frozenset()
