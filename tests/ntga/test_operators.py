"""Unit tests for the NTGA logical operators against the paper's figures.

The triplegroups here replicate Figure 4 (optional group filter and
n-split over offer triplegroups) and Figure 5 (the Agg-Join RNG
example), so each definition is exercised exactly as published.
"""

import pytest

from repro.core.query_model import AggregateSpec, PropKey, StarPattern
from repro.ntga.operators import (
    AggJoinSpec,
    AlphaCondition,
    JoinSide,
    agg_join,
    alpha_join,
    any_alpha_satisfied,
    create_prop,
    n_split,
    optional_group_filter,
    rng,
)
from repro.ntga.triplegroup import JoinedTripleGroup, TripleGroup
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import Triple, TriplePattern

PRODUCT, PRICE = IRI("urn:product"), IRI("urn:price")
VALID_FROM, VALID_TO = IRI("urn:validFrom"), IRI("urn:validTo")
PF, CN, PC = IRI("urn:pf"), IRI("urn:cn"), IRI("urn:pc")

P_PRIM = frozenset({PropKey(PRODUCT), PropKey(PRICE)})
P_OPT = frozenset({PropKey(VALID_FROM), PropKey(VALID_TO)})


def tg(name, *pairs):
    subject = IRI(f"urn:{name}")
    return TripleGroup(subject, tuple(Triple(subject, p, o) for p, o in pairs))


@pytest.fixture
def figure4_groups():
    """tg1 {product,price,validTo}, tg2 {product,price},
    tg3 {product,validFrom} (no price!), tg4 {all four}."""
    return [
        tg("offer1", (PRODUCT, IRI("urn:p1")), (PRICE, Literal("10")), (VALID_TO, Literal("2024"))),
        tg("offer2", (PRODUCT, IRI("urn:p2")), (PRICE, Literal("20"))),
        tg("offer3", (PRODUCT, IRI("urn:p3")), (VALID_FROM, Literal("2020"))),
        tg(
            "offer4",
            (PRODUCT, IRI("urn:p4")),
            (PRICE, Literal("40")),
            (VALID_FROM, Literal("2021")),
            (VALID_TO, Literal("2025")),
        ),
    ]


class TestOptionalGroupFilter:
    """Definition 3.3 / Figure 4(a)."""

    def test_figure4a(self, figure4_groups):
        kept = optional_group_filter(figure4_groups, P_PRIM, P_OPT)
        names = {g.subject.value for g in kept}
        # tg3 lacks the primary property price and is filtered out.
        assert names == {"urn:offer1", "urn:offer2", "urn:offer4"}

    def test_projects_irrelevant_properties(self):
        group = tg("o", (PRODUCT, IRI("urn:p")), (PRICE, Literal("1")), (CN, Literal("US")))
        (kept,) = optional_group_filter([group], P_PRIM, frozenset())
        assert kept.props() == P_PRIM

    def test_concrete_constraint_drops_nonmatching_triples(self):
        group = tg("o", (PRODUCT, IRI("urn:p")), (PRICE, Literal("1")), (PRICE, Literal("9")))
        (kept,) = optional_group_filter(
            [group], P_PRIM, frozenset(), constraints={PropKey(PRICE): Literal("9")}
        )
        assert kept.objects_for(PropKey(PRICE)) == (Literal("9"),)

    def test_constraint_can_eliminate_group(self):
        group = tg("o", (PRODUCT, IRI("urn:p")), (PRICE, Literal("1")))
        kept = optional_group_filter(
            [group], P_PRIM, frozenset(), constraints={PropKey(PRICE): Literal("9")}
        )
        assert kept == []


class TestNSplit:
    """Definition 3.4 / Figures 4(b) and 4(c)."""

    def test_figure4b(self, figure4_groups):
        valid = optional_group_filter(figure4_groups, P_PRIM, P_OPT)
        first, second = n_split(
            valid, P_PRIM, [frozenset({PropKey(VALID_FROM)}), frozenset({PropKey(VALID_TO)})]
        )
        # First combination {product, price, validFrom}: only tg4 qualifies.
        assert {g.subject.value for g in first} == {"urn:offer4"}
        assert first[0].props() == P_PRIM | {PropKey(VALID_FROM)}
        # Second combination {product, price, validTo}: tg1 and tg4.
        assert {g.subject.value for g in second} == {"urn:offer1", "urn:offer4"}

    def test_figure4c_empty_secondary_takes_all(self, figure4_groups):
        valid = optional_group_filter(figure4_groups, P_PRIM, P_OPT)
        first, second = n_split(
            valid, P_PRIM, [frozenset(), frozenset({PropKey(VALID_TO)})]
        )
        assert len(first) == 3  # primary-only subset extracted from every group
        assert all(g.props() == P_PRIM for g in first)
        assert {g.subject.value for g in second} == {"urn:offer1", "urn:offer4"}

    def test_groups_missing_primaries_skipped(self, figure4_groups):
        outputs = n_split(figure4_groups, P_PRIM, [frozenset()])
        assert {g.subject.value for g in outputs[0]} == {
            "urn:offer1",
            "urn:offer2",
            "urn:offer4",
        }


class TestAlphaCondition:
    def test_required(self):
        condition = AlphaCondition(required=frozenset({PropKey(PF)}))
        assert condition.satisfied_by(frozenset({PropKey(PF), PropKey(PC)}))
        assert not condition.satisfied_by(frozenset({PropKey(PC)}))

    def test_absent(self):
        condition = AlphaCondition(absent=frozenset({PropKey(PF)}))
        assert condition.satisfied_by(frozenset({PropKey(PC)}))
        assert not condition.satisfied_by(frozenset({PropKey(PF)}))

    def test_disjunction(self):
        conditions = [
            AlphaCondition(required=frozenset({PropKey(PF)})),
            AlphaCondition(required=frozenset({PropKey(CN)})),
        ]
        assert any_alpha_satisfied(conditions, frozenset({PropKey(CN)}))
        assert not any_alpha_satisfied(conditions, frozenset({PropKey(PC)}))

    def test_empty_condition_list_is_true(self):
        assert any_alpha_satisfied([], frozenset())

    def test_describe(self):
        condition = AlphaCondition(
            required=frozenset({PropKey(PF)}), absent=frozenset({PropKey(CN)})
        )
        text = condition.describe()
        assert "pf != ∅" in text and "cn = ∅" in text
        assert AlphaCondition().describe() == "true"


class TestAlphaJoin:
    """Definition 3.5."""

    def _sides(self):
        # products keyed by subject; offers keyed by their product object.
        return (
            JoinSide("subject", None, 0),
            JoinSide("object", PropKey(PRODUCT), 1),
        )

    def test_join_pairs_on_key(self):
        products = [JoinedTripleGroup.single(0, tg("p1", (PF, IRI("urn:f1"))))]
        offers = [
            JoinedTripleGroup.single(1, tg("o1", (PRODUCT, IRI("urn:p1")), (PRICE, Literal("5")))),
            JoinedTripleGroup.single(1, tg("o2", (PRODUCT, IRI("urn:zz")), (PRICE, Literal("7")))),
        ]
        left_side, right_side = self._sides()
        joined = alpha_join(products, offers, left_side, right_side, Variable("p"))
        assert len(joined) == 1
        assert joined[0].fixed_bindings()[Variable("p")] == IRI("urn:p1")

    def test_alpha_prunes_unmatched_combinations(self):
        """A combination matching no original pattern is not materialized."""
        products = [JoinedTripleGroup.single(0, tg("p1", (PC, Literal("1"))))]  # no pf
        offers = [JoinedTripleGroup.single(1, tg("o1", (PRODUCT, IRI("urn:p1"))))]
        left_side, right_side = self._sides()
        alphas = [AlphaCondition(required=frozenset({PropKey(PF)}))]
        joined = alpha_join(products, offers, left_side, right_side, Variable("p"), alphas)
        assert joined == []

    def test_multi_valued_object_joins_each_value(self):
        pubs = [
            JoinedTripleGroup.single(
                0, tg("pub", (PRODUCT, IRI("urn:p1")), (PRODUCT, IRI("urn:p2")))
            )
        ]
        products = [
            JoinedTripleGroup.single(1, tg("p1", (PF, IRI("urn:f")))),
            JoinedTripleGroup.single(1, tg("p2", (PF, IRI("urn:g")))),
        ]
        joined = alpha_join(
            pubs,
            products,
            JoinSide("object", PropKey(PRODUCT), 0),
            JoinSide("subject", None, 1),
            Variable("p"),
        )
        assert len(joined) == 2
        values = {j.fixed_bindings()[Variable("p")] for j in joined}
        assert values == {IRI("urn:p1"), IRI("urn:p2")}


class TestAggJoin:
    """Definition 3.6 / Figure 5."""

    def _spec(self):
        star = StarPattern(
            Variable("s"),
            (
                TriplePattern(Variable("s"), PF, Variable("f")),
                TriplePattern(Variable("s"), CN, Variable("c")),
                TriplePattern(Variable("s"), PC, Variable("price")),
            ),
        )
        return AggJoinSpec(
            subquery_id=0,
            stars=(star,),
            star_indices=(0,),
            theta=(Variable("f"), Variable("c")),
            aggregates=(
                AggregateSpec(Variable("sumF"), "SUM", Variable("price")),
                AggregateSpec(Variable("countF"), "COUNT", Variable("price")),
            ),
            alpha=AlphaCondition(required=frozenset({PropKey(PF)})),
            output_group_by=(Variable("f"), Variable("c")),
        )

    def _details(self):
        feat1, feat2, feat4 = IRI("urn:Feat1"), IRI("urn:Feat2"), IRI("urn:Feat4")
        uk, us = Literal("UK"), Literal("US")
        dtg1 = tg("d1", (PF, feat1), (CN, uk), (PC, Literal.from_python(100)))
        dtg2 = tg("d2", (CN, uk), (PC, Literal.from_python(999)))  # no pf: fails α
        dtg3 = tg("d3", (PF, feat2), (PF, feat4), (CN, us), (PC, Literal.from_python(50)))
        dtg4 = tg("d4", (PF, feat1), (CN, uk), (PC, Literal.from_python(200)))
        return [JoinedTripleGroup.single(0, d) for d in (dtg1, dtg2, dtg3, dtg4)]

    def test_rng_like_figure5(self):
        spec, details = self._spec(), self._details()
        feat1_uk = (IRI("urn:Feat1"), Literal("UK"))
        matched = rng(feat1_uk, details, spec)
        assert {j.component(0).subject.value for j in matched} == {"urn:d1", "urn:d4"}
        # dtg2 fails the α condition and belongs to no group.
        assert rng((None, Literal("UK")), details, spec) == []

    def test_aggregation_per_group(self):
        results = {r.key: r.values for r in agg_join(self._details(), self._spec())}
        feat1_uk = (IRI("urn:Feat1"), Literal("UK"))
        assert results[feat1_uk][create_prop("SUM", Variable("price"))] == 300
        assert results[feat1_uk][create_prop("COUNT", Variable("price"))] == 2
        # dtg3's two features produce two groups (multi-valued expansion).
        assert (IRI("urn:Feat2"), Literal("US")) in results
        assert (IRI("urn:Feat4"), Literal("US")) in results
        assert len(results) == 3

    def test_explicit_base_keys_keep_defaults(self):
        """Figure 5: RNG(btg3) = ∅ and agtg3 retains default values."""
        empty_key = (IRI("urn:Feat3"), Literal("DE"))
        results = {
            r.key: r.values
            for r in agg_join(self._details(), self._spec(), base_keys=[empty_key])
        }
        assert results[empty_key][create_prop("SUM", Variable("price"))] == 0
        assert results[empty_key][create_prop("COUNT", Variable("price"))] == 0

    def test_group_by_all_over_empty_detail_yields_default_row(self):
        spec = AggJoinSpec(
            subquery_id=0,
            stars=self._spec().stars,
            star_indices=(0,),
            theta=(),
            aggregates=(AggregateSpec(Variable("n"), "COUNT", Variable("price")),),
        )
        results = agg_join([], spec)
        assert len(results) == 1
        assert results[0].values[create_prop("COUNT", Variable("price"))] == 0

    def test_min_of_empty_left_out_of_values(self):
        spec = AggJoinSpec(
            subquery_id=0,
            stars=self._spec().stars,
            star_indices=(0,),
            theta=(),
            aggregates=(AggregateSpec(Variable("m"), "MIN", Variable("price")),),
        )
        (result,) = agg_join([], spec)
        assert result.values == {}
