"""Table 2 reproduction: α-condition derivation for composite patterns.

The paper's Table 2 lists composite patterns for increasingly divergent
GP1/GP2 pairs.  We verify (i) the derived composite primary/secondary
split, and (ii) that the α-join materializes exactly the combinations
matching at least one original pattern — in particular row 5's example
that a TG with pattern ``abde`` (none of the secondaries) is pruned.

Note on semantics: Table 2 writes *exact-combination* conditions (e.g.
``c≠∅ ∧ f=∅``); this library derives *presence-only* conditions (each
pattern requires its own secondaries) because SPARQL multiset semantics
lets a triplegroup carrying both patterns' secondaries answer both
patterns.  The pruning behaviour — the operator's purpose — agrees with
Table 2 on every combination matching no original pattern.
"""

import pytest

from repro.core.query_model import PropKey, parse_analytical
from repro.ntga.composite import build_composite
from repro.ntga.operators import AlphaCondition, any_alpha_satisfied
from repro.rdf.terms import IRI


def prop(letter: str) -> PropKey:
    return PropKey(IRI(f"http://t2.org/{letter}"))


def make_query(props1: tuple[str, str], props2: tuple[str, str]) -> str:
    """Two subqueries with star structures given as property-letter strings,
    e.g. ('ab', 'de') = star1 {a,b}, star2 {d,e} joined a-star→d-star."""

    def body(props, suffix):
        star1, star2 = props
        lines = [f"?s{suffix} t2:{p} ?{p}{suffix} ." for p in star1]
        lines.append(f"?t{suffix} t2:link ?s{suffix} .")
        lines += [f"?t{suffix} t2:{p} ?{p}{suffix} ." for p in star2]
        return "\n".join(lines)

    return f"""
    PREFIX t2: <http://t2.org/>
    SELECT ?n1 ?n2 {{
      {{ SELECT (COUNT(?s1) AS ?n1) {{ {body(props1, '1')} }} }}
      {{ SELECT (COUNT(?s2) AS ?n2) {{ {body(props2, '2')} }} }}
    }}
    """


def composite_of(props1, props2):
    query = parse_analytical(make_query(props1, props2))
    return build_composite(query.subqueries[0], query.subqueries[1])


class TestTable2Rows:
    def test_row1_identical_patterns(self):
        plan = composite_of(("ab", "de"), ("ab", "de"))
        assert all(cs.p_sec == frozenset() for cs in plan.stars)
        assert all(a.required == frozenset() for a in plan.alphas())

    def test_row2_one_extra_secondary(self):
        plan = composite_of(("ab", "de"), ("ab", "def"))
        assert plan.stars[1].p_sec == frozenset({prop("f")})
        alpha1, alpha2 = plan.alphas()
        assert alpha1.required == frozenset()
        assert alpha2.required == frozenset({prop("f")})

    def test_row4_secondaries_on_both_sides(self):
        plan = composite_of(("abc", "de"), ("ab", "def"))
        assert plan.stars[0].p_sec == frozenset({prop("c")})
        assert plan.stars[1].p_sec == frozenset({prop("f")})
        alpha1, alpha2 = plan.alphas()
        assert alpha1.required == frozenset({prop("c")})
        assert alpha2.required == frozenset({prop("f")})

    def test_row5_three_secondaries(self):
        plan = composite_of(("abc", "de"), ("ab", "defg"))
        alpha1, alpha2 = plan.alphas()
        assert alpha1.required == frozenset({prop("c")})
        assert alpha2.required == frozenset({prop("f"), prop("g")})

    def test_row5_pruning_of_unmatched_combination(self):
        """A TG with only {a,b,d,e} (no c, f, or g) matches neither GP1
        (needs c) nor GP2 (needs f,g): the α-join must prune it."""
        plan = composite_of(("abc", "de"), ("ab", "defg"))
        alphas = plan.alphas()
        bare = frozenset({prop("a"), prop("b"), prop("link"), prop("d"), prop("e")})
        assert not any_alpha_satisfied(alphas, bare)
        assert any_alpha_satisfied(alphas, bare | {prop("c")})  # GP1 match
        assert any_alpha_satisfied(alphas, bare | {prop("f"), prop("g")})  # GP2
        assert not any_alpha_satisfied(alphas, bare | {prop("f")})  # partial GP2

    def test_exact_combination_conditions_expressible(self):
        """The operator also supports Table 2's literal absence form."""
        exact_gp1 = AlphaCondition(
            required=frozenset({prop("c")}), absent=frozenset({prop("f")})
        )
        with_both = frozenset({prop("c"), prop("f")})
        assert not exact_gp1.satisfied_by(with_both)
        assert exact_gp1.satisfied_by(frozenset({prop("c")}))
