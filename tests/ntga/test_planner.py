"""NTGA planner tests: plan shapes and workflow wiring."""

import pytest

from repro.core.query_model import parse_analytical
from repro.mapreduce.hdfs import HDFS
from repro.ntga.physical import load_triplegroups
from repro.ntga.planner import plan_rapid_analytics, plan_rapid_plus


@pytest.fixture
def store(product_graph):
    return load_triplegroups(product_graph, HDFS())


def analytical(mg1_style_query):
    return parse_analytical(mg1_style_query)


class TestRapidAnalyticsPlan:
    def test_mg1_shape(self, store, mg1_style_query):
        plan = plan_rapid_analytics(parse_analytical(mg1_style_query), store)
        # 1 α-join + 1 fused Agg-Join + 1 map-only TG_Join (Figure 6(b)).
        assert len(plan.jobs) == 3
        assert "alpha-join" in plan.jobs[0].name
        assert "agg-join" in plan.jobs[1].name
        assert "final-join" in plan.jobs[2].name
        assert plan.final_join_index == 2
        assert plan.jobs[2].is_map_only

    def test_agg_job_has_combiner(self, store, mg1_style_query):
        plan = plan_rapid_analytics(parse_analytical(mg1_style_query), store)
        agg_job = plan.jobs[1]
        assert agg_job.combiner is not None  # mapper-side hash aggregation

    def test_single_grouping_two_jobs(self, store):
        query = parse_analytical(
            """
            PREFIX ex: <http://ex.org/>
            SELECT ?f (COUNT(?pr) AS ?c) {
              ?p a ex:PT1 ; ex:feature ?f .
              ?o ex:product ?p ; ex:price ?pr .
            } GROUP BY ?f
            """
        )
        plan = plan_rapid_analytics(query, store)
        assert len(plan.jobs) == 2
        assert plan.final_join_index is None

    def test_single_star_single_job(self, store):
        query = parse_analytical(
            """
            PREFIX ex: <http://ex.org/>
            SELECT ?f (COUNT(?f) AS ?c) { ?p a ex:PT1 ; ex:feature ?f . } GROUP BY ?f
            """
        )
        plan = plan_rapid_analytics(query, store)
        assert len(plan.jobs) == 1  # filter fused into the Agg-Join map phase

    def test_non_overlapping_falls_back_to_sequential(self, store):
        query = parse_analytical(
            """
            PREFIX ex: <http://ex.org/>
            SELECT ?a ?b {
              { SELECT (COUNT(?x) AS ?a) { ?s ex:ve ?v . ?v ex:cn ?x . } }
              { SELECT (COUNT(?y) AS ?b) { ?s2 ex:ve ?w . ?t ex:cn ?w . } }
            }
            """
        )
        plan = plan_rapid_analytics(query, store)
        assert "sequential" in plan.description

    def test_three_overlapping_subqueries_use_nway_composite(self, store):
        """The n-way extension: three identical patterns share one plan
        (one fused Agg-Join, one final join — no per-subquery pipelines)."""
        query = parse_analytical(
            """
            PREFIX ex: <http://ex.org/>
            SELECT ?a ?b ?c {
              { SELECT (COUNT(?x) AS ?a) { ?s ex:label ?x . } }
              { SELECT (COUNT(?y) AS ?b) { ?t ex:label ?y . } }
              { SELECT (COUNT(?z) AS ?c) { ?u ex:label ?z . } }
            }
            """
        )
        plan = plan_rapid_analytics(query, store)
        assert "sequential" not in plan.description
        assert len(plan.jobs) == 2  # fused Agg-Join + map-only final join

    def test_three_non_overlapping_subqueries_fall_back(self, store):
        query = parse_analytical(
            """
            PREFIX ex: <http://ex.org/>
            SELECT ?a ?b ?c {
              { SELECT (COUNT(?x) AS ?a) { ?s ex:ve ?v . ?v ex:cn ?x . } }
              { SELECT (COUNT(?y) AS ?b) { ?s2 ex:ve ?w . ?t ex:cn ?w . } }
              { SELECT (COUNT(?z) AS ?c) { ?u ex:label ?z . } }
            }
            """
        )
        plan = plan_rapid_analytics(query, store)
        assert "sequential" in plan.description


class TestRapidPlusPlan:
    def test_mg1_shape(self, store, mg1_style_query):
        plan = plan_rapid_plus(parse_analytical(mg1_style_query), store)
        # Per subquery: 1 join + 1 agg; plus the map-only final join.
        assert len(plan.jobs) == 5
        assert plan.final_join_index == 4
        assert plan.jobs[4].is_map_only

    def test_job_inputs_resolve(self, store, product_graph, mg1_style_query):
        """Every planned input path either exists already (EC files) or is
        produced by an earlier job in the plan."""
        plan = plan_rapid_plus(parse_analytical(mg1_style_query), store)
        hdfs_paths = set()
        for ec_path in store.paths_by_class.values():
            hdfs_paths.add(ec_path)
        hdfs_paths.add(store.empty_path)
        for job in plan.jobs:
            for path in job.inputs + job.side_inputs:
                assert path in hdfs_paths or any(
                    earlier.output == path for earlier in plan.jobs
                ), f"unresolved input {path}"
            hdfs_paths.add(job.output)


class TestStorePaths:
    def test_ec_selection(self, store):
        from repro.core.query_model import PropKey
        from repro.rdf.terms import IRI

        price = frozenset({PropKey(IRI("http://ex.org/price"))})
        paths = store.paths_for(price)
        assert paths and all(path != store.empty_path for path in paths)

    def test_unknown_property_yields_empty_placeholder(self, store):
        from repro.core.query_model import PropKey
        from repro.rdf.terms import IRI

        nothing = frozenset({PropKey(IRI("http://ex.org/zzz"))})
        assert store.paths_for(nothing) == (store.empty_path,)


class TestPlanBatch:
    """Cross-request MQO batching: canonical-fingerprint dedup and
    deterministic compilation."""

    AVG_VARIANT = """
    PREFIX ex: <http://ex.org/>
    SELECT ?f ?avgF ?sumT ?cntT {
      { SELECT ?f (AVG(?pr2) AS ?avgF) {
          ?p2 a ex:PT1 ; ex:label ?l2 ; ex:feature ?f .
          ?o2 ex:product ?p2 ; ex:price ?pr2 .
        } GROUP BY ?f
      }
      { SELECT (SUM(?pr) AS ?sumT) (COUNT(?pr) AS ?cntT) {
          ?p1 a ex:PT1 ; ex:label ?l1 .
          ?o1 ex:product ?p1 ; ex:price ?pr .
        }
      }
    }
    """

    def batch(self, store, texts):
        from repro.ntga.planner import plan_batch

        return plan_batch([parse_analytical(text) for text in texts], store)

    def test_identical_queries_share_every_slot(self, store, mg1_style_query):
        plan = self.batch(store, [mg1_style_query, mg1_style_query])
        # Both queries map onto the same two merged subquery slots.
        assert plan.merged_ids == [(0, 1), (0, 1)]

    def test_shared_subqueries_collapse_across_variants(
        self, store, mg1_style_query
    ):
        plan = self.batch(store, [mg1_style_query, self.AVG_VARIANT])
        first, second = plan.merged_ids
        assert first == (0, 1)
        # The AVG aggregation is new; the total roll-up is shared.
        assert second == (2, 1)

    def test_repeated_subquery_keeps_multiplicity(self, store, mg1_style_query):
        from dataclasses import replace

        query = parse_analytical(mg1_style_query)
        from repro.ntga.planner import plan_batch

        doubled = replace(
            query, subqueries=(query.subqueries[0], query.subqueries[0])
        )
        plan = plan_batch([query, doubled], store)
        # The doubled query claims two *distinct* slots for its repeated
        # subquery — per-query multiplicity survives the dedup.
        assert plan.merged_ids[0] == (0, 1)
        assert plan.merged_ids[1][0] == 0
        assert plan.merged_ids[1][1] not in (0, 1)

    def test_compilation_is_deterministic(self, store, mg1_style_query):
        texts = [mg1_style_query, self.AVG_VARIANT, mg1_style_query]
        one = self.batch(store, texts)
        two = self.batch(store, texts)
        assert [job.name for job in one.jobs] == [job.name for job in two.jobs]
        assert one.merged_ids == two.merged_ids
        assert one.outputs == two.outputs
        assert one.split_index == two.split_index
        assert one.description == two.description
