"""Job-level unit tests for the NTGA physical operators."""

import pytest

from repro.core.query_model import PropKey, parse_analytical
from repro.errors import PlanningError
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.runner import MapReduceRunner
from repro.ntga.composite import build_composite, single_pattern_plan
from repro.ntga.physical import (
    AggRow,
    build_agg_join_job,
    build_alpha_join_job,
    derive_join_steps,
    empty_group_rows,
    load_triplegroups,
    make_star_filter,
    restricted_alphas,
    shared_prefilters,
)
from repro.ntga.triplegroup import JoinedTripleGroup, TripleGroup
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal, Variable
from repro.rdf.triples import RDF_TYPE, Triple

EX = "http://ex.org/"


def iri(name):
    return IRI(EX + name)


def tg(name, *pairs):
    subject = iri(name)
    return TripleGroup(subject, tuple(Triple(subject, p, o) for p, o in pairs))


MG1_QUERY = """
PREFIX ex: <http://ex.org/>
SELECT ?f ?sumF ?cntT {
  { SELECT ?f (SUM(?pr2) AS ?sumF) {
      ?p2 a ex:PT1 ; ex:label ?l2 ; ex:feature ?f .
      ?o2 ex:product ?p2 ; ex:price ?pr2 .
    } GROUP BY ?f
  }
  { SELECT (COUNT(?pr) AS ?cntT) {
      ?p1 a ex:PT1 ; ex:label ?l1 .
      ?o1 ex:product ?p1 ; ex:price ?pr .
    }
  }
}
"""


@pytest.fixture
def composite():
    query = parse_analytical(MG1_QUERY)
    return build_composite(query.subqueries[0], query.subqueries[1])


class TestStarFilter:
    def test_requires_primaries(self, composite):
        product_filter = make_star_filter(composite.stars[0])
        with_label = tg("p1", (RDF_TYPE, iri("PT1")), (iri("label"), Literal("x")))
        without_label = tg("p2", (RDF_TYPE, iri("PT1")))
        assert product_filter(with_label) is not None
        assert product_filter(without_label) is None

    def test_keeps_optional_properties(self, composite):
        product_filter = make_star_filter(composite.stars[0])
        group = tg(
            "p1",
            (RDF_TYPE, iri("PT1")),
            (iri("label"), Literal("x")),
            (iri("feature"), iri("f1")),
        )
        filtered = product_filter(group)
        assert PropKey(iri("feature")) in filtered.props()

    def test_projects_unrelated_properties(self, composite):
        product_filter = make_star_filter(composite.stars[0])
        group = tg(
            "p1",
            (RDF_TYPE, iri("PT1")),
            (iri("label"), Literal("x")),
            (iri("unrelated"), Literal("y")),
        )
        filtered = product_filter(group)
        assert PropKey(iri("unrelated")) not in filtered.props()

    def test_pushed_object_filter_drops_triples(self):
        from repro.sparql.expressions import BinaryExpr, ConstExpr, VarExpr

        query = parse_analytical(
            """
            PREFIX ex: <http://ex.org/>
            SELECT (COUNT(?pr) AS ?c) { ?o ex:product ?p ; ex:price ?pr . FILTER(?pr > 100) }
            """
        )
        plan = single_pattern_plan(query.subqueries[0])
        star_filter = make_star_filter(plan.stars[0], plan.subqueries[0].filters)
        group = tg(
            "o1",
            (iri("product"), iri("p1")),
            (iri("price"), Literal.from_python(50)),
            (iri("price"), Literal.from_python(150)),
        )
        filtered = star_filter(group)
        assert filtered.objects_for(PropKey(iri("price"))) == (
            Literal.from_python(150),
        )

    def test_pushed_filter_can_eliminate_group(self):
        query = parse_analytical(
            """
            PREFIX ex: <http://ex.org/>
            SELECT (COUNT(?pr) AS ?c) { ?o ex:product ?p ; ex:price ?pr . FILTER(?pr > 100) }
            """
        )
        plan = single_pattern_plan(query.subqueries[0])
        star_filter = make_star_filter(plan.stars[0], plan.subqueries[0].filters)
        group = tg("o1", (iri("product"), iri("p1")), (iri("price"), Literal.from_python(50)))
        assert star_filter(group) is None


class TestSharedPrefilters:
    def test_intersection_of_subquery_filters(self):
        query = parse_analytical(
            """
            PREFIX ex: <http://ex.org/>
            SELECT ?a ?b {
              { SELECT (COUNT(?x) AS ?a) { ?s ex:p ?x . FILTER(?x > 5) } }
              { SELECT (COUNT(?y) AS ?b) { ?t ex:p ?y . FILTER(?y > 5) } }
            }
            """
        )
        plan = build_composite(query.subqueries[0], query.subqueries[1])
        shared = shared_prefilters(plan.subqueries)
        assert len(shared) == 1  # canonicalization makes the filters identical

    def test_differing_filters_not_shared(self):
        query = parse_analytical(
            """
            PREFIX ex: <http://ex.org/>
            SELECT ?a ?b {
              { SELECT (COUNT(?x) AS ?a) { ?s ex:p ?x . FILTER(?x > 5) } }
              { SELECT (COUNT(?y) AS ?b) { ?t ex:p ?y . FILTER(?y > 99) } }
            }
            """
        )
        plan = build_composite(query.subqueries[0], query.subqueries[1])
        assert shared_prefilters(plan.subqueries) == ()


class TestJoinSteps:
    def test_mg1_single_step(self, composite):
        steps = derive_join_steps(composite)
        assert len(steps) == 1
        step = steps[0]
        assert step.new_star == 1
        assert step.primary.variable == Variable("p2")
        assert step.primary.left_side.role == "subject"
        assert step.primary.right_side.role == "object"

    def test_three_star_two_steps(self):
        query = parse_analytical(
            """
            PREFIX ex: <http://ex.org/>
            SELECT ?c (COUNT(?pr) AS ?n) {
              ?p a ex:PT1 .
              ?o ex:product ?p ; ex:price ?pr ; ex:vendor ?v .
              ?v ex:country ?c .
            } GROUP BY ?c
            """
        )
        plan = single_pattern_plan(query.subqueries[0])
        steps = derive_join_steps(plan)
        assert [step.new_star for step in steps] == [1, 2]

    def test_disconnected_pattern_rejected(self):
        query = parse_analytical(
            """
            PREFIX ex: <http://ex.org/>
            SELECT (COUNT(?x) AS ?n) { ?s ex:p ?x . ?t ex:q ?y . }
            """
        )
        plan = single_pattern_plan(query.subqueries[0])
        with pytest.raises(PlanningError):
            derive_join_steps(plan)

    def test_object_object_join_sides(self):
        query = parse_analytical(
            """
            PREFIX ex: <http://ex.org/>
            SELECT (COUNT(?gi) AS ?n) {
              ?b ex:CID ?cid ; ex:gi ?gi .
              ?u ex:gi ?gi ; ex:sym ?g .
            }
            """
        )
        plan = single_pattern_plan(query.subqueries[0])
        (step,) = derive_join_steps(plan)
        assert step.primary.left_side.role == "object"
        assert step.primary.right_side.role == "object"


class TestRestrictedAlphas:
    def test_only_joined_stars_contribute(self, composite):
        partial = restricted_alphas(composite, frozenset({1}))
        # The feature secondary lives in star 0; with only star 1 joined
        # neither subquery has restrictions yet.
        assert all(a.required == frozenset() for a in partial)
        full = restricted_alphas(composite, frozenset({0, 1}))
        assert full[0].required == frozenset({PropKey(iri("feature"))})


class TestJobExecution:
    def _store(self, graph):
        hdfs = HDFS()
        return hdfs, load_triplegroups(graph, hdfs)

    def _graph(self):
        graph = Graph()
        graph.add_all(
            [
                Triple(iri("p1"), RDF_TYPE, iri("PT1")),
                Triple(iri("p1"), iri("label"), Literal("one")),
                Triple(iri("p1"), iri("feature"), iri("f1")),
                Triple(iri("o1"), iri("product"), iri("p1")),
                Triple(iri("o1"), iri("price"), Literal.from_python(10)),
                Triple(iri("p2"), RDF_TYPE, iri("PT1")),
                Triple(iri("p2"), iri("label"), Literal("two")),
                Triple(iri("o2"), iri("product"), iri("p2")),
                Triple(iri("o2"), iri("price"), Literal.from_python(20)),
            ]
        )
        return graph

    def test_alpha_join_job_produces_joined_groups(self, composite):
        hdfs, store = self._store(self._graph())
        (step,) = derive_join_steps(composite)
        job = build_alpha_join_job(
            name="t:join",
            step=step,
            plan=composite,
            store=store,
            previous_output=None,
            joined_so_far=frozenset({0}),
            output="t/out",
        )
        MapReduceRunner(hdfs).run_job(job)
        joined = hdfs.read("t/out").records
        assert len(joined) == 2  # one per (product, offer) pair
        assert all(isinstance(record, JoinedTripleGroup) for record in joined)
        assert {record.component(1).subject for record in joined} == {iri("o1"), iri("o2")}

    def test_agg_join_job_rows(self, composite):
        hdfs, store = self._store(self._graph())
        (step,) = derive_join_steps(composite)
        join_job = build_alpha_join_job(
            name="t:join", step=step, plan=composite, store=store,
            previous_output=None, joined_so_far=frozenset({0}), output="t/joined",
        )
        agg_job = build_agg_join_job(
            name="t:agg", plan=composite, detail_input="t/joined", store=store,
            output="t/agg",
        )
        runner = MapReduceRunner(hdfs)
        runner.run_workflow([join_job, agg_job])
        rows = {
            (record.subquery_id, record.as_dict().get(Variable("f")))
            for record in hdfs.read("t/agg").records
        }
        # Subquery 0 groups by feature (only p1 has one); subquery 1 rolls up.
        assert (0, iri("f1")) in rows
        assert (1, None) in rows
        roll_up = next(
            record for record in hdfs.read("t/agg").records if record.subquery_id == 1
        )
        assert roll_up.as_dict()[Variable("cntT")].python_value() == 2

    def test_agg_join_without_detail_needs_matching_files(self, composite):
        hdfs = HDFS()
        store = load_triplegroups(Graph(), hdfs)
        job = build_agg_join_job(
            name="t:agg", plan=single_pattern_plan(
                parse_analytical(
                    "PREFIX ex: <http://ex.org/> "
                    "SELECT (COUNT(?f) AS ?c) { ?p ex:feature ?f }"
                ).subqueries[0]
            ),
            detail_input=None, store=store, output="t/agg",
        )
        MapReduceRunner(hdfs).run_job(job)
        assert hdfs.read("t/agg").records == []  # empty store, no groups


class TestEmptyGroupRows:
    def test_rollup_defaults(self, composite):
        rows = empty_group_rows(composite)
        assert len(rows) == 1  # only the GROUP-BY-ALL subquery
        (default,) = rows
        assert default.subquery_id == 1
        assert default.as_dict()[Variable("cntT")].python_value() == 0

    def test_grouped_subqueries_have_no_defaults(self):
        query = parse_analytical(
            "PREFIX ex: <http://ex.org/> "
            "SELECT ?f (COUNT(?f) AS ?c) { ?p ex:feature ?f } GROUP BY ?f"
        )
        assert empty_group_rows(single_pattern_plan(query.subqueries[0])) == []


class TestAggRow:
    def test_as_dict_and_size(self):
        row = AggRow(0, ((Variable("x"), Literal("v")),))
        assert row.as_dict() == {Variable("x"): Literal("v")}
        assert row.estimated_size() > 0
