"""Factorized answer representation: round-trips, sizing, order, context.

The hypothesis properties here are the PR's core guarantee: for
arbitrary star shapes, factorize -> enumerate reproduces the flat rows
bit-identically (values *and* order), and the factorized encoding is
never larger than the flat one — equal exactly when every column has
fanout <= 1.
"""

from itertools import product
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query_model import PropKey, StarPattern
from repro.errors import ReproError
from repro.mapreduce.cost import CostModel
from repro.ntga.factorized import (
    DEFAULT_REPRESENTATION,
    FACTORIZED_COUNTERS,
    REPRESENTATIONS,
    FactorizedRelation,
    RowFactor,
    _compatible,
    active_representation,
    ambient_representation,
    resolve_representation,
    schema_for,
    validate_representation,
)
from repro.ntga.triplegroup import TripleGroup, star_solutions
from repro.rdf.terms import IRI, Variable
from repro.rdf.triples import RDF_TYPE, Triple, TriplePattern

SUBJECT = IRI("urn:s")


@st.composite
def star_group(draw):
    """An arbitrary star: 1-4 properties, each with fanout 1-3."""
    n_props = draw(st.integers(min_value=1, max_value=4))
    triples = []
    for p in range(n_props):
        prop = IRI(f"urn:p{p}")
        objects = draw(
            st.lists(
                st.integers(min_value=0, max_value=9),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        triples.extend(Triple(SUBJECT, prop, IRI(f"urn:o{o}")) for o in objects)
    return TripleGroup(SUBJECT, tuple(triples))


def factorize(group: TripleGroup) -> FactorizedRelation:
    return FactorizedRelation.from_triplegroup(group, schema_for(group.props()))


class TestRoundTrip:
    @given(star_group())
    @settings(max_examples=200, deadline=None)
    def test_enumeration_is_bit_identical_to_flat_rows(self, group):
        fact = factorize(group)
        schema = fact.schema
        keys = [key for key in schema.keys if group.objects_for(key)]
        expected = [
            tuple(zip(keys, combination))
            for combination in product(*(group.objects_for(k) for k in keys))
        ]
        assert list(fact.enumerate_rows()) == expected

    @given(star_group())
    @settings(max_examples=200, deadline=None)
    def test_star_solutions_identical_through_duck_type(self, group):
        """The real operator path: expansion over the factorized relation
        must produce the same solutions in the same order as over the
        source triplegroup."""
        subject_var = Variable("s")
        star = StarPattern(
            subject_var,
            tuple(
                TriplePattern(subject_var, key.property, Variable(f"v{i}"))
                for i, key in enumerate(
                    sorted(group.props(), key=lambda k: k.property.value)
                )
            ),
        )
        fact = factorize(group)
        assert star_solutions(star, fact) == star_solutions(star, group)

    @given(star_group())
    @settings(max_examples=200, deadline=None)
    def test_surface_matches_triplegroup(self, group):
        fact = factorize(group)
        assert fact.subject == group.subject
        assert fact.props() == group.props()
        for key in group.props():
            assert fact.objects_for(key) == group.objects_for(key)
        assert fact.objects_for(PropKey(IRI("urn:absent"))) == ()


class TestSizing:
    @given(star_group())
    @settings(max_examples=200, deadline=None)
    def test_factorized_never_larger_equal_only_at_unit_fanout(self, group):
        fact = factorize(group)
        factorized = fact.estimated_size()
        flat = fact.flat_size()
        assert factorized <= flat
        max_fanout = max(
            (len(column) for column in fact.columns if column), default=0
        )
        if max_fanout <= 1:
            assert factorized == flat
        else:
            assert factorized < flat

    @given(star_group())
    @settings(max_examples=100, deadline=None)
    def test_triplegroup_factorized_size_matches_relation(self, group):
        """TripleGroup.factorized_size (the store/planner sizing) prices
        the same encoding FactorizedRelation actually ships."""
        assert group.factorized_size() == factorize(group).estimated_size()


class TestRdfType:
    def test_plain_type_column_reports_typed_keys(self):
        group = TripleGroup(
            SUBJECT,
            (
                Triple(SUBJECT, RDF_TYPE, IRI("urn:C1")),
                Triple(SUBJECT, RDF_TYPE, IRI("urn:C2")),
                Triple(SUBJECT, IRI("urn:p"), IRI("urn:o")),
            ),
        )
        schema = schema_for(
            frozenset({PropKey(RDF_TYPE), PropKey(IRI("urn:p"))})
        )
        fact = FactorizedRelation.from_triplegroup(group, schema)
        assert fact.props() == group.props()
        typed = PropKey(RDF_TYPE, IRI("urn:C1"))
        assert fact.objects_for(typed) == group.objects_for(typed)

    def test_projection_matches_triplegroup_projection(self):
        group = TripleGroup(
            SUBJECT,
            (
                Triple(SUBJECT, IRI("urn:p0"), IRI("urn:a")),
                Triple(SUBJECT, IRI("urn:p0"), IRI("urn:b")),
                Triple(SUBJECT, IRI("urn:p1"), IRI("urn:c")),
            ),
        )
        fact = factorize(group)
        keep = frozenset({PropKey(IRI("urn:p0"))})
        projected = fact.project(keep)
        assert projected.objects_for(PropKey(IRI("urn:p0"))) == (
            IRI("urn:a"),
            IRI("urn:b"),
        )
        assert projected.objects_for(PropKey(IRI("urn:p1"))) == ()
        assert len(projected) == 2


def _variables(names):
    return [Variable(name) for name in names]


class TestRowFactor:
    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_rows_match_bruteforce_nested_loop(self, data):
        """Independent oracle: enumerate the full cartesian product and
        filter by incremental compatibility — must equal rows() exactly,
        order included."""
        x, y, z = _variables("xyz")
        terms = [IRI(f"urn:t{i}") for i in range(3)]
        row_strategy = st.lists(
            st.tuples(st.sampled_from([x, y, z]), st.sampled_from(terms)),
            min_size=1,
            max_size=2,
        ).map(lambda items: tuple(dict(items).items()))
        base = data.draw(row_strategy)
        parts = data.draw(
            st.lists(
                st.lists(row_strategy, min_size=0, max_size=3).map(tuple),
                min_size=0,
                max_size=3,
            ).map(tuple)
        )
        factor = RowFactor(base, parts)

        expected = []
        for combination in product(*parts) if parts else [()]:
            row = dict(base)
            compatible = True
            for candidate in combination:
                for variable, term in candidate:
                    if variable in row and row[variable] != term:
                        compatible = False
                        break
                if not compatible:
                    break
                row.update(candidate)
            if compatible:
                expected.append(row)
        # rows() short-circuits when a prefix filters to nothing; the
        # brute force then finds nothing either.
        assert factor.rows() == expected

    def test_empty_part_yields_no_rows(self):
        x = Variable("x")
        factor = RowFactor(((x, IRI("urn:a")),), ((),))
        assert factor.rows() == []

    def test_compatible_is_direction_symmetric(self):
        x = Variable("x")
        left = {x: IRI("urn:a")}
        assert _compatible(left, ((x, IRI("urn:a")),))
        assert not _compatible(left, ((x, IRI("urn:b")),))
        assert _compatible({}, ((x, IRI("urn:b")),))

    def test_estimated_size_counts_all_factors(self):
        x = Variable("x")
        small = RowFactor(((x, IRI("urn:a")),))
        bigger = RowFactor(
            ((x, IRI("urn:a")),), ((((Variable("y"), IRI("urn:b")),),),)
        )
        assert 0 < small.estimated_size() < bigger.estimated_size()


class TestRepresentationContext:
    def test_validate_normalizes(self):
        assert validate_representation(" Flat ") == "flat"
        assert validate_representation("FACTORIZED") == "factorized"
        for mode in REPRESENTATIONS:
            assert validate_representation(mode) == mode

    @pytest.mark.parametrize("bad", ["", "bogus", "column", None, 7])
    def test_validate_rejects_with_one_line_diagnostic(self, bad):
        with pytest.raises(ReproError, match="invalid representation"):
            validate_representation(bad)

    def test_ambient_context_sets_and_restores(self):
        assert ambient_representation() is None
        with active_representation("flat"):
            assert ambient_representation() == "flat"
            with active_representation("auto"):
                assert ambient_representation() == "auto"
            assert ambient_representation() == "flat"
        assert ambient_representation() is None

    def test_resolution_precedence(self):
        assert resolve_representation() == DEFAULT_REPRESENTATION
        with active_representation("flat"):
            assert resolve_representation() == "flat"
            assert resolve_representation("factorized") == "factorized"

    def test_active_representation_rejects_bad_mode(self):
        with pytest.raises(ReproError):
            with active_representation("bogus"):
                pass  # pragma: no cover
        assert ambient_representation() is None


class TestCostModelPricing:
    def test_no_savings_chooses_flat(self):
        model = CostModel()
        assert (
            model.choose_representation(flat_bytes=1000, factorized_bytes=1000)
            == "flat"
        )

    def test_large_savings_choose_factorized(self):
        model = CostModel()
        assert (
            model.choose_representation(
                flat_bytes=1_000_000, factorized_bytes=500_000
            )
            == "factorized"
        )

    def test_advantage_formula(self):
        model = CostModel()
        saved = 120_000
        advantage = model.representation_advantage(
            flat_bytes=200_000, factorized_bytes=80_000, cycles=3
        )
        expected = (
            saved / model.shuffle_rate
            + saved / model.write_rate
            - 3 * model.factorization_overhead
        )
        assert advantage == pytest.approx(expected)


def test_factorized_counters_are_documented():
    """Counter-inventory check: every factorization metric appears in
    the docs/observability.md glossary."""
    docs = (
        Path(__file__).resolve().parents[2] / "docs" / "observability.md"
    ).read_text()
    for name in FACTORIZED_COUNTERS:
        assert name in docs, f"{name} missing from docs/observability.md"
