"""Overlap detection tests replicating Figure 3 (AQ2 overlaps, AQ3 not)."""

import pytest

from repro.core.query_model import GraphPattern, decompose_stars
from repro.ntga.overlap import (
    find_correspondence,
    patterns_overlap,
    role_equivalent,
    stars_overlap,
)
from repro.rdf.terms import IRI, Variable
from repro.rdf.triples import RDF_TYPE, TriplePattern

TY_PT18 = IRI("urn:PT18")
PR, PC, VE, CN, PF = IRI("urn:pr"), IRI("urn:pc"), IRI("urn:ve"), IRI("urn:cn"), IRI("urn:pf")


def var(name):
    return Variable(name)


def gp(*patterns):
    return GraphPattern(decompose_stars(patterns))


def aq2_gp1():
    """?s1 ty PT18 . ?s2 pr ?s1 ; pc ?o1 ; ve ?o2."""
    return gp(
        TriplePattern(var("s1"), RDF_TYPE, TY_PT18),
        TriplePattern(var("s2"), PR, var("s1")),
        TriplePattern(var("s2"), PC, var("o1")),
        TriplePattern(var("s2"), VE, var("o2")),
    )


def aq2_gp2():
    """?s1 ty PT18 ; pf ?o3 . ?s2 pr ?s1 ; pc ?o4."""
    return gp(
        TriplePattern(var("s1"), RDF_TYPE, TY_PT18),
        TriplePattern(var("s1"), PF, var("o3")),
        TriplePattern(var("s2"), PR, var("s1")),
        TriplePattern(var("s2"), PC, var("o4")),
    )


def aq3_gp1():
    """?s3 pr ?s1 ; pc ?o5 ; ve ?s4 . ?s4 cn ?o6  (object-subject join)."""
    return gp(
        TriplePattern(var("s3"), PR, var("s1")),
        TriplePattern(var("s3"), PC, var("o5")),
        TriplePattern(var("s3"), VE, var("s4")),
        TriplePattern(var("s4"), CN, var("o6")),
    )


def aq3_gp2():
    """?s3 pr ?s1 ; pc ?o5 ; ve ?o6 . ?s4 cn ?o6  (object-OBJECT join)."""
    return gp(
        TriplePattern(var("s3"), PR, var("s1")),
        TriplePattern(var("s3"), PC, var("o5")),
        TriplePattern(var("s3"), VE, var("o6")),
        TriplePattern(var("s4"), CN, var("o6")),
    )


class TestStarsOverlap:
    def test_shared_properties_and_types(self):
        gp1, gp2 = aq2_gp1(), aq2_gp2()
        assert stars_overlap(gp1.stars[0], gp2.stars[0])  # both ty PT18
        assert stars_overlap(gp1.stars[1], gp2.stars[1])  # {pr,pc} shared

    def test_no_shared_properties(self):
        gp1, gp2 = aq2_gp1(), aq2_gp2()
        assert not stars_overlap(gp1.stars[0], gp2.stars[1])

    def test_type_mismatch_blocks_overlap(self):
        star1 = gp(
            TriplePattern(var("s"), RDF_TYPE, TY_PT18),
            TriplePattern(var("s"), PF, var("f")),
        ).stars[0]
        star2 = gp(
            TriplePattern(var("t"), RDF_TYPE, IRI("urn:PT9")),
            TriplePattern(var("t"), PF, var("g")),
        ).stars[0]
        assert not stars_overlap(star1, star2)

    def test_type_on_only_one_side_blocks_overlap(self):
        star1 = gp(
            TriplePattern(var("s"), RDF_TYPE, TY_PT18),
            TriplePattern(var("s"), PF, var("f")),
        ).stars[0]
        star2 = gp(TriplePattern(var("t"), PF, var("g")),).stars[0]
        assert not stars_overlap(star1, star2)


class TestRoleEquivalence:
    def test_same_property_same_role(self):
        tp1 = TriplePattern(var("s2"), PR, var("s1"))
        tp2 = TriplePattern(var("t2"), PR, var("t1"))
        assert role_equivalent(var("s1"), tp1, var("t1"), tp2)

    def test_same_property_different_role(self):
        tp1 = TriplePattern(var("s4"), CN, var("o6"))  # subject role
        tp2 = TriplePattern(var("x"), CN, var("o6"))  # object role
        assert not role_equivalent(var("s4"), tp1, var("o6"), tp2)

    def test_different_property(self):
        tp1 = TriplePattern(var("s"), PR, var("x"))
        tp2 = TriplePattern(var("t"), VE, var("x"))
        assert not role_equivalent(var("x"), tp1, var("x"), tp2)


class TestGraphPatternOverlap:
    def test_aq2_overlaps(self):
        correspondence = find_correspondence(aq2_gp1(), aq2_gp2())
        assert correspondence is not None
        assert correspondence.pairs == (0, 1)
        assert patterns_overlap(aq2_gp1(), aq2_gp2())

    def test_aq3_does_not_overlap(self):
        """Figure 3: object-subject vs object-object join structures."""
        assert find_correspondence(aq3_gp1(), aq3_gp2()) is None

    def test_symmetry_of_aq2(self):
        assert patterns_overlap(aq2_gp2(), aq2_gp1())

    def test_identical_patterns_overlap(self):
        assert patterns_overlap(aq2_gp1(), aq2_gp1())

    def test_different_star_counts_do_not_overlap(self):
        single = gp(TriplePattern(var("s"), RDF_TYPE, TY_PT18))
        assert not patterns_overlap(single, aq2_gp1())

    def test_subject_role_join_uses_existential_candidates(self):
        """When the join variable is a star's subject, any property pair
        with matching properties witnesses role-equivalence (MG12 shape:
        the two grant stars share only grant_country, not grant_agency)."""
        agency, country, grant = IRI("urn:ga"), IRI("urn:gc"), IRI("urn:grant")
        gp1 = gp(
            TriplePattern(var("pub"), grant, var("g")),
            TriplePattern(var("g"), agency, var("a")),
            TriplePattern(var("g"), country, var("c")),
        )
        gp2 = gp(
            TriplePattern(var("pub2"), grant, var("g2")),
            TriplePattern(var("g2"), country, var("c2")),
        )
        assert patterns_overlap(gp1, gp2)
