"""Abstract syntax tree for the supported SPARQL subset.

The subset covers everything the paper's query workload (Figure 7 and
the appendix) needs: SELECT with expressions and aliases, nested
subqueries, basic graph patterns with predicate/object lists, FILTER
(including REGEX), OPTIONAL, UNION, GROUP BY, and the five SPARQL 1.1
aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.expressions import Expression

AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class AggregateExpr:
    """An aggregate call such as ``COUNT(DISTINCT ?x)`` or ``COUNT(*)``.

    ``arg`` is None for ``COUNT(*)``.
    """

    func: str
    arg: Expression | None = None
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unknown aggregate function {self.func!r}")
        if self.arg is None and self.func != "COUNT":
            raise ValueError(f"{self.func} requires an argument")

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.func}({inner})"


#: Projection expressions may mix plain expressions and aggregates.
ProjectionExpression = Union[Expression, AggregateExpr]


@dataclass(frozen=True)
class ProjectionItem:
    """One item of a SELECT clause.

    Either a bare variable (``expression`` is a VarExpr and ``alias`` is
    that same variable) or an aliased expression ``(expr AS ?alias)``.
    """

    expression: ProjectionExpression
    alias: Variable


@dataclass(frozen=True)
class TriplesBlock:
    patterns: tuple[TriplePattern, ...]


@dataclass(frozen=True)
class FilterPattern:
    expression: Expression


@dataclass(frozen=True)
class OptionalPattern:
    pattern: "GroupGraphPattern"


@dataclass(frozen=True)
class UnionPattern:
    left: "GroupGraphPattern"
    right: "GroupGraphPattern"


@dataclass(frozen=True)
class SubSelect:
    query: "SelectQuery"


PatternElement = Union[
    TriplesBlock, FilterPattern, OptionalPattern, UnionPattern, SubSelect, "GroupGraphPattern"
]


@dataclass(frozen=True)
class GroupGraphPattern:
    elements: tuple[PatternElement, ...]

    def triple_patterns(self) -> tuple[TriplePattern, ...]:
        """All triple patterns at this level (not descending into subselects)."""
        collected: list[TriplePattern] = []
        for element in self.elements:
            if isinstance(element, TriplesBlock):
                collected.extend(element.patterns)
            elif isinstance(element, GroupGraphPattern):
                collected.extend(element.triple_patterns())
        return tuple(collected)


@dataclass(frozen=True)
class OrderCondition:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectQuery:
    """A parsed SELECT query (top level or subquery)."""

    projection: tuple[ProjectionItem, ...]
    where: GroupGraphPattern
    select_star: bool = False
    distinct: bool = False
    group_by: tuple[Variable, ...] | None = None
    having: Expression | None = None
    order_by: tuple[OrderCondition, ...] = ()
    limit: int | None = None
    offset: int = 0
    prefixes: dict[str, str] = field(default_factory=dict, hash=False, compare=False)

    def has_aggregates(self) -> bool:
        return any(isinstance(item.expression, AggregateExpr) for item in self.projection)

    def is_grouped(self) -> bool:
        """True when this query performs grouping/aggregation."""
        return self.group_by is not None or self.has_aggregates()

    def projected_variables(self) -> tuple[Variable, ...]:
        return tuple(item.alias for item in self.projection)

    def subselects(self) -> tuple["SelectQuery", ...]:
        """Immediate subqueries inside the WHERE clause."""
        return tuple(
            element.query
            for element in self.where.elements
            if isinstance(element, SubSelect)
        )
