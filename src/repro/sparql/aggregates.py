"""Aggregate accumulators shared by every engine.

Each accumulator supports incremental ``update``, associative ``merge``
(the property that makes mapper-side partial aggregation — the paper's
hash-based local combiner — correct), and ``result``.

``AVG`` is *algebraic*: its partial state is (sum, count), so it can be
partially aggregated and merged exactly like the distributive
aggregates.  ``COUNT(DISTINCT ...)`` is holistic; its partial state is
the value set, which is what makes it shuffle-heavy on MapReduce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from repro.errors import SparqlEvaluationError

Number = Union[int, float]

#: Sentinel distinguishing "no result" (e.g. MIN of empty group) from None.
UNBOUND = object()


class Accumulator:
    """Base interface; subclasses hold the running aggregate state."""

    def update(self, value: object) -> None:
        raise NotImplementedError

    def merge(self, other: "Accumulator") -> None:
        raise NotImplementedError

    def result(self) -> object:
        raise NotImplementedError

    def partial(self) -> object:
        """Serializable partial state (for shuffle byte accounting)."""
        raise NotImplementedError


class CountAccumulator(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def update(self, value: object) -> None:
        self.count += 1

    def merge(self, other: Accumulator) -> None:
        if not isinstance(other, CountAccumulator):
            raise SparqlEvaluationError("cannot merge COUNT with other aggregate state")
        self.count += other.count

    def result(self) -> int:
        return self.count

    def partial(self) -> int:
        return self.count


class SumAccumulator(Accumulator):
    def __init__(self) -> None:
        self.total: Number = 0

    def update(self, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SparqlEvaluationError(f"SUM over non-numeric value {value!r}")
        self.total += value

    def merge(self, other: Accumulator) -> None:
        if not isinstance(other, SumAccumulator):
            raise SparqlEvaluationError("cannot merge SUM with other aggregate state")
        self.total += other.total

    def result(self) -> Number:
        return self.total

    def partial(self) -> Number:
        return self.total


class AvgAccumulator(Accumulator):
    def __init__(self) -> None:
        self.total: Number = 0
        self.count = 0

    def update(self, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SparqlEvaluationError(f"AVG over non-numeric value {value!r}")
        self.total += value
        self.count += 1

    def merge(self, other: Accumulator) -> None:
        if not isinstance(other, AvgAccumulator):
            raise SparqlEvaluationError("cannot merge AVG with other aggregate state")
        self.total += other.total
        self.count += other.count

    def result(self) -> Number:
        if self.count == 0:
            return 0
        return self.total / self.count

    def partial(self) -> tuple[Number, int]:
        return (self.total, self.count)


@dataclass
class _Extremum(Accumulator):
    is_min: bool

    def __post_init__(self) -> None:
        self.best: object = UNBOUND

    def update(self, value: object) -> None:
        if self.best is UNBOUND:
            self.best = value
            return
        try:
            smaller = value < self.best  # type: ignore[operator]
        except TypeError as exc:
            raise SparqlEvaluationError(
                f"cannot compare {value!r} with {self.best!r} in MIN/MAX"
            ) from exc
        if smaller == self.is_min:
            self.best = value

    def merge(self, other: Accumulator) -> None:
        if not isinstance(other, _Extremum) or other.is_min != self.is_min:
            raise SparqlEvaluationError("cannot merge MIN/MAX with other aggregate state")
        if other.best is not UNBOUND:
            self.update(other.best)

    def result(self) -> object:
        return self.best

    def partial(self) -> object:
        return self.best


class MinAccumulator(_Extremum):
    def __init__(self) -> None:
        super().__init__(is_min=True)


class MaxAccumulator(_Extremum):
    def __init__(self) -> None:
        super().__init__(is_min=False)


class DistinctAccumulator(Accumulator):
    """Wraps another accumulator, feeding it each distinct value once.

    Holistic: the partial state is the full distinct value set.
    """

    def __init__(self, inner: Accumulator):
        self.inner = inner
        self.seen: set = set()

    def update(self, value: object) -> None:
        if value not in self.seen:
            self.seen.add(value)
            # Defer feeding the inner accumulator until result() so merge
            # never double-counts; the seen-set is the real state.

    def merge(self, other: Accumulator) -> None:
        if not isinstance(other, DistinctAccumulator):
            raise SparqlEvaluationError("cannot merge DISTINCT with plain aggregate state")
        self.seen |= other.seen

    def result(self) -> object:
        for value in self.seen:
            self.inner.update(value)
        try:
            return self.inner.result()
        finally:
            # Rebuild the inner accumulator so result() stays idempotent.
            self.inner = type(self.inner)()

    def partial(self) -> object:
        return frozenset(self.seen)


_FACTORIES = {
    "COUNT": CountAccumulator,
    "SUM": SumAccumulator,
    "AVG": AvgAccumulator,
    "MIN": MinAccumulator,
    "MAX": MaxAccumulator,
}

#: Aggregates whose partial states are mergeable scalars — these benefit
#: from mapper-side partial aggregation (local combining).
ALGEBRAIC_FUNCTIONS = frozenset(("COUNT", "SUM", "AVG", "MIN", "MAX"))


def make_accumulator(func: str, distinct: bool = False) -> Accumulator:
    """Create a fresh accumulator for the named aggregate function."""
    try:
        factory = _FACTORIES[func]
    except KeyError:
        raise SparqlEvaluationError(f"unknown aggregate function {func!r}") from None
    accumulator = factory()
    if distinct:
        return DistinctAccumulator(accumulator)
    return accumulator


def aggregate_values(func: str, values: Iterable[object], distinct: bool = False) -> object:
    """One-shot aggregation of an iterable of already-extracted values."""
    accumulator = make_accumulator(func, distinct)
    for value in values:
        accumulator.update(value)
    return accumulator.result()


class AccumulatorTuple:
    """A shuffle-friendly bundle of accumulators (one per aggregation).

    Used as the map-output value in aggregation MR cycles by every
    engine; the combiner merges tuples within a map task (hash-based
    partial aggregation), the reducer merges across tasks.
    """

    __slots__ = ("accumulators",)

    def __init__(self, accumulators: list[Accumulator]):
        self.accumulators = accumulators

    @classmethod
    def fresh(cls, specs: Iterable[tuple[str, bool]]) -> "AccumulatorTuple":
        return cls([make_accumulator(func, distinct) for func, distinct in specs])

    def merge(self, other: "AccumulatorTuple") -> None:
        for mine, theirs in zip(self.accumulators, other.accumulators):
            mine.merge(theirs)

    def results(self) -> list[object]:
        return [accumulator.result() for accumulator in self.accumulators]

    def estimated_size(self) -> int:
        from repro.mapreduce.cost import estimate_size

        return 4 + sum(estimate_size(a.partial()) for a in self.accumulators)
