"""Serialization of the SPARQL AST back to query text.

``serialize_query(parse_query(text))`` produces a semantically
equivalent query; ``parse_query(serialize_query(ast))`` reproduces the
AST exactly (property-tested).  Useful for logging rewritten queries
and for presenting composite patterns to users.
"""

from __future__ import annotations

from repro.errors import SparqlError
from repro.rdf.terms import IRI, Literal, TermOrVar, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.ast import (
    AggregateExpr,
    FilterPattern,
    GroupGraphPattern,
    OptionalPattern,
    ProjectionExpression,
    SelectQuery,
    SubSelect,
    TriplesBlock,
    UnionPattern,
)
from repro.sparql.expressions import (
    BinaryExpr,
    ConstExpr,
    FunctionExpr,
    UnaryExpr,
    VarExpr,
)

_INDENT = "  "


def term_text(term: TermOrVar) -> str:
    if isinstance(term, (IRI, Variable)):
        return term.n3()
    if isinstance(term, Literal):
        return term.n3()
    return term.n3()  # BNode


def expression_text(expression: ProjectionExpression) -> str:
    if isinstance(expression, VarExpr):
        return expression.variable.n3()
    if isinstance(expression, ConstExpr):
        return term_text(expression.term)
    if isinstance(expression, UnaryExpr):
        return f"{expression.op}({expression_text(expression.operand)})"
    if isinstance(expression, BinaryExpr):
        return (
            f"({expression_text(expression.left)} {expression.op} "
            f"{expression_text(expression.right)})"
        )
    if isinstance(expression, FunctionExpr):
        args = ", ".join(expression_text(argument) for argument in expression.args)
        return f"{expression.name}({args})"
    if isinstance(expression, AggregateExpr):
        inner = "*" if expression.arg is None else expression_text(expression.arg)
        if expression.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expression.func}({inner})"
    raise SparqlError(f"cannot serialize expression {expression!r}")


def _triple_text(pattern: TriplePattern) -> str:
    return (
        f"{term_text(pattern.subject)} {term_text(pattern.property)} "
        f"{term_text(pattern.object)} ."
    )


def _group_text(group: GroupGraphPattern, depth: int) -> str:
    pad = _INDENT * depth
    inner_pad = _INDENT * (depth + 1)
    lines = [pad + "{"]
    for element in group.elements:
        if isinstance(element, TriplesBlock):
            for pattern in element.patterns:
                lines.append(inner_pad + _triple_text(pattern))
        elif isinstance(element, FilterPattern):
            lines.append(inner_pad + f"FILTER ({expression_text(element.expression)})")
        elif isinstance(element, OptionalPattern):
            lines.append(inner_pad + "OPTIONAL")
            lines.append(_group_text(element.pattern, depth + 1))
        elif isinstance(element, UnionPattern):
            lines.append(_group_text(element.left, depth + 1))
            lines.append(inner_pad + "UNION")
            lines.append(_group_text(element.right, depth + 1))
        elif isinstance(element, SubSelect):
            lines.append(inner_pad + "{")
            lines.append(_query_text(element.query, depth + 2))
            lines.append(inner_pad + "}")
        elif isinstance(element, GroupGraphPattern):
            lines.append(_group_text(element, depth + 1))
        else:
            raise SparqlError(f"cannot serialize pattern element {element!r}")
    lines.append(pad + "}")
    return "\n".join(lines)


def _query_text(query: SelectQuery, depth: int) -> str:
    pad = _INDENT * depth
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    if query.select_star:
        parts.append("*")
    else:
        for item in query.projection:
            is_bare = (
                isinstance(item.expression, VarExpr)
                and item.expression.variable == item.alias
            )
            if is_bare:
                parts.append(item.alias.n3())
            else:
                parts.append(f"({expression_text(item.expression)} AS {item.alias.n3()})")
    lines = [pad + " ".join(parts)]
    lines.append(_group_text(query.where, depth))
    if query.group_by:
        lines.append(pad + "GROUP BY " + " ".join(v.n3() for v in query.group_by))
    if query.having is not None:
        lines.append(pad + f"HAVING ({expression_text(query.having)})")
    if query.order_by:
        conditions = []
        for condition in query.order_by:
            keyword = "DESC" if condition.descending else "ASC"
            conditions.append(f"{keyword}({expression_text(condition.expression)})")
        lines.append(pad + "ORDER BY " + " ".join(conditions))
    if query.limit is not None:
        lines.append(pad + f"LIMIT {query.limit}")
    if query.offset:
        lines.append(pad + f"OFFSET {query.offset}")
    return "\n".join(lines)


def serialize_query(query: SelectQuery) -> str:
    """Render a parsed query back to SPARQL text (full IRIs, no prefixes)."""
    return _query_text(query, 0) + "\n"
