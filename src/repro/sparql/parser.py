"""Recursive-descent parser for the supported SPARQL subset.

The grammar is the fragment exercised by the paper's workload:

* ``PREFIX`` declarations
* ``SELECT [DISTINCT] (var | (expr [AS] ?alias))+ | *``
* ``WHERE { ... }`` with triples blocks (``;`` and ``,`` abbreviations,
  ``a`` for ``rdf:type``), ``FILTER`` (comparisons, logicals, ``REGEX``,
  ``BOUND``, ``STR``), ``OPTIONAL``, ``UNION``, nested groups, and
  nested ``SELECT`` subqueries
* ``GROUP BY``, ``HAVING``, ``ORDER BY``, ``LIMIT``, ``OFFSET``
* aggregates ``COUNT/SUM/AVG/MIN/MAX`` with optional ``DISTINCT`` and
  ``COUNT(*)``

The paper's appendix writes projections like ``(COUNT(?pr2) ?cntF)``
without ``AS``; both forms are accepted.
"""

from __future__ import annotations

from repro.errors import SparqlSyntaxError, UnsupportedQueryError
from repro.rdf.terms import IRI, Literal, TermOrVar, Variable, XSD_DOUBLE, XSD_INTEGER
from repro.rdf.triples import RDF_TYPE, TriplePattern
from repro.sparql.ast import (
    AggregateExpr,
    FilterPattern,
    GroupGraphPattern,
    OptionalPattern,
    OrderCondition,
    PatternElement,
    ProjectionExpression,
    ProjectionItem,
    SelectQuery,
    SubSelect,
    TriplesBlock,
    UnionPattern,
)
from repro.sparql.expressions import (
    BinaryExpr,
    ConstExpr,
    Expression,
    FunctionExpr,
    UnaryExpr,
    VarExpr,
)
from repro.sparql.tokenizer import Token, tokenize

_COMPARISON_OPS = ("=", "!=", "<", ">", "<=", ">=")
_BUILTIN_FUNCTIONS = ("REGEX", "BOUND", "STR")
_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


class _Parser:
    def __init__(self, tokens: list[Token], prefixes: dict[str, str] | None = None):
        self._tokens = tokens
        self._index = 0
        self._prefixes: dict[str, str] = dict(prefixes or {})

    # -- token stream helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def _error(self, message: str) -> SparqlSyntaxError:
        token = self._peek()
        return SparqlSyntaxError(f"{message} (found {token})", token.position)

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if token.kind == "PUNCT" and token.text == text:
            return self._advance()
        raise self._error(f"expected {text!r}")

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if token.is_keyword(word):
            return self._advance()
        raise self._error(f"expected keyword {word}")

    def _accept_punct(self, text: str) -> bool:
        if self._peek().kind == "PUNCT" and self._peek().text == text:
            self._advance()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    # -- entry points ----------------------------------------------------------

    def parse_query(self) -> SelectQuery:
        self._parse_prologue()
        query = self._parse_select_query()
        if self._peek().kind != "EOF":
            raise self._error("unexpected trailing input")
        return query

    def _parse_prologue(self) -> None:
        while self._accept_keyword("PREFIX"):
            ns_token = self._peek()
            if ns_token.kind != "PNAME_NS":
                raise self._error("expected a prefix name after PREFIX")
            self._advance()
            iri_token = self._peek()
            if iri_token.kind != "IRIREF":
                raise self._error("expected an IRI after the prefix name")
            self._advance()
            self._prefixes[ns_token.text[:-1]] = iri_token.text[1:-1]

    # -- SELECT ----------------------------------------------------------------

    def _parse_select_query(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        self._accept_keyword("REDUCED")
        select_star = False
        projection: list[ProjectionItem] = []
        if self._accept_punct("*"):
            select_star = True
        else:
            while True:
                item = self._try_parse_projection_item()
                if item is None:
                    break
                projection.append(item)
            if not projection:
                raise self._error("SELECT requires at least one projection item")
        self._accept_keyword("WHERE")
        where = self._parse_group_graph_pattern()
        group_by, having, order_by, limit, offset = self._parse_solution_modifiers()
        return SelectQuery(
            projection=tuple(projection),
            where=where,
            select_star=select_star,
            distinct=distinct,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            prefixes=dict(self._prefixes),
        )

    def _try_parse_projection_item(self) -> ProjectionItem | None:
        token = self._peek()
        if token.kind == "VAR":
            self._advance()
            variable = Variable(token.text[1:])
            return ProjectionItem(VarExpr(variable), variable)
        if token.kind == "PUNCT" and token.text == "(":
            self._advance()
            expression = self._parse_projection_expression()
            self._accept_keyword("AS")
            alias_token = self._peek()
            if alias_token.kind != "VAR":
                raise self._error("expected an alias variable in projection")
            self._advance()
            self._expect_punct(")")
            return ProjectionItem(expression, Variable(alias_token.text[1:]))
        return None

    def _parse_projection_expression(self) -> ProjectionExpression:
        return self._parse_or_expression()

    # -- solution modifiers ------------------------------------------------------

    def _parse_solution_modifiers(self):
        group_by: tuple[Variable, ...] | None = None
        having: Expression | None = None
        order_by: list[OrderCondition] = []
        limit: int | None = None
        offset = 0
        while True:
            if self._accept_keyword("GROUP"):
                self._expect_keyword("BY")
                variables: list[Variable] = []
                while self._peek().kind == "VAR":
                    variables.append(Variable(self._advance().text[1:]))
                if not variables:
                    raise self._error("GROUP BY requires at least one variable")
                group_by = tuple(variables)
            elif self._accept_keyword("HAVING"):
                self._expect_punct("(")
                having = self._parse_or_expression()
                self._expect_punct(")")
            elif self._accept_keyword("ORDER"):
                self._expect_keyword("BY")
                order_by.extend(self._parse_order_conditions())
            elif self._accept_keyword("LIMIT"):
                limit = self._parse_integer()
            elif self._accept_keyword("OFFSET"):
                offset = self._parse_integer()
            else:
                break
        return group_by, having, tuple(order_by), limit, offset

    def _parse_order_conditions(self) -> list[OrderCondition]:
        conditions: list[OrderCondition] = []
        while True:
            if self._accept_keyword("ASC"):
                self._expect_punct("(")
                conditions.append(OrderCondition(self._parse_or_expression(), False))
                self._expect_punct(")")
            elif self._accept_keyword("DESC"):
                self._expect_punct("(")
                conditions.append(OrderCondition(self._parse_or_expression(), True))
                self._expect_punct(")")
            elif self._peek().kind == "VAR":
                variable = Variable(self._advance().text[1:])
                conditions.append(OrderCondition(VarExpr(variable), False))
            else:
                break
        if not conditions:
            raise self._error("ORDER BY requires at least one condition")
        return conditions

    def _parse_integer(self) -> int:
        token = self._peek()
        if token.kind != "NUMBER" or "." in token.text or "e" in token.text.lower():
            raise self._error("expected an integer")
        self._advance()
        return int(token.text)

    # -- group graph patterns ------------------------------------------------------

    def _parse_group_graph_pattern(self) -> GroupGraphPattern:
        self._expect_punct("{")
        elements: list[PatternElement] = []
        while not (self._peek().kind == "PUNCT" and self._peek().text == "}"):
            element = self._parse_pattern_element()
            # A trailing UNION binds the two most recent group patterns.
            if self._accept_keyword("UNION"):
                right = self._parse_group_or_subselect()
                if not isinstance(element, GroupGraphPattern) or not isinstance(
                    right, GroupGraphPattern
                ):
                    raise UnsupportedQueryError("UNION requires plain group patterns")
                element = UnionPattern(element, right)
            elements.append(element)
            self._accept_punct(".")
        self._expect_punct("}")
        return GroupGraphPattern(tuple(elements))

    def _parse_pattern_element(self) -> PatternElement:
        token = self._peek()
        if token.is_keyword("FILTER"):
            self._advance()
            return FilterPattern(self._parse_filter_constraint())
        if token.is_keyword("OPTIONAL"):
            self._advance()
            return OptionalPattern(self._parse_group_graph_pattern())
        if token.kind == "PUNCT" and token.text == "{":
            return self._parse_group_or_subselect()
        return self._parse_triples_block()

    def _parse_group_or_subselect(self) -> PatternElement:
        if self._peek(1).is_keyword("SELECT"):
            self._expect_punct("{")
            subquery = self._parse_select_query()
            self._expect_punct("}")
            return SubSelect(subquery)
        return self._parse_group_graph_pattern()

    def _parse_filter_constraint(self) -> Expression:
        # FILTER(expr) or FILTER regex(...) / FILTER bound(...)
        if self._peek().kind == "KEYWORD" and self._peek().text in _BUILTIN_FUNCTIONS:
            return self._parse_primary_expression()  # function call form
        self._expect_punct("(")
        expression = self._parse_or_expression()
        self._expect_punct(")")
        return expression

    # -- triples ----------------------------------------------------------------

    def _parse_triples_block(self) -> TriplesBlock:
        patterns: list[TriplePattern] = []
        while True:
            subject = self._parse_term(allow_literal=False)
            patterns.extend(self._parse_property_list(subject))
            if not self._accept_punct("."):
                break
            token = self._peek()
            starts_triple = token.kind in ("VAR", "IRIREF", "PNAME") or token.is_keyword("A")
            if not starts_triple:
                break
        return TriplesBlock(tuple(patterns))

    def _parse_property_list(self, subject: TermOrVar) -> list[TriplePattern]:
        patterns: list[TriplePattern] = []
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_term(allow_literal=True)
                patterns.append(TriplePattern(subject, predicate, obj))
                if not self._accept_punct(","):
                    break
            if not self._accept_punct(";"):
                break
            # Allow a dangling ';' before '.' as real SPARQL does.
            token = self._peek()
            if not (
                token.kind in ("VAR", "IRIREF", "PNAME") or token.is_keyword("A")
            ):
                break
        return patterns

    def _parse_verb(self) -> TermOrVar:
        token = self._peek()
        if token.is_keyword("A"):
            self._advance()
            return RDF_TYPE
        return self._parse_term(allow_literal=False)

    def _parse_term(self, allow_literal: bool) -> TermOrVar:
        token = self._peek()
        if token.kind == "VAR":
            self._advance()
            return Variable(token.text[1:])
        if token.kind == "IRIREF":
            self._advance()
            return IRI(token.text[1:-1])
        if token.kind == "PNAME":
            self._advance()
            return self._expand_pname(token)
        if allow_literal:
            literal = self._try_parse_literal()
            if literal is not None:
                return literal
        raise self._error("expected an RDF term")

    def _expand_pname(self, token: Token) -> IRI:
        prefix, local = token.text.split(":", 1)
        base = self._prefixes.get(prefix)
        if base is None:
            raise SparqlSyntaxError(f"undeclared prefix {prefix!r}", token.position)
        return IRI(base + local)

    def _try_parse_literal(self) -> Literal | None:
        token = self._peek()
        if token.kind == "STRING":
            self._advance()
            lexical = _unescape_string(token.text[1:-1])
            next_token = self._peek()
            if next_token.kind == "LANGTAG":
                self._advance()
                return Literal(lexical, language=next_token.text[1:])
            if next_token.kind == "DTYPE":
                self._advance()
                dtype_token = self._peek()
                if dtype_token.kind == "IRIREF":
                    self._advance()
                    return Literal(lexical, datatype=dtype_token.text[1:-1])
                if dtype_token.kind == "PNAME":
                    self._advance()
                    return Literal(lexical, datatype=self._expand_pname(dtype_token).value)
                raise self._error("expected a datatype IRI after '^^'")
            return Literal(lexical)
        if token.kind == "NUMBER":
            self._advance()
            return _number_literal(token.text)
        if token.is_keyword("TRUE") or token.is_keyword("FALSE"):
            self._advance()
            return Literal(token.text.lower(), datatype="http://www.w3.org/2001/XMLSchema#boolean")
        if token.kind == "PUNCT" and token.text == "-" and self._peek(1).kind == "NUMBER":
            self._advance()
            number = self._advance()
            return _number_literal("-" + number.text)
        return None

    # -- expressions ---------------------------------------------------------------

    def _parse_or_expression(self) -> ProjectionExpression:
        left = self._parse_and_expression()
        while self._peek().kind == "OP" and self._peek().text == "||":
            self._advance()
            left = BinaryExpr("||", left, self._parse_and_expression())
        return left

    def _parse_and_expression(self) -> ProjectionExpression:
        left = self._parse_relational_expression()
        while self._peek().kind == "OP" and self._peek().text == "&&":
            self._advance()
            left = BinaryExpr("&&", left, self._parse_relational_expression())
        return left

    def _parse_relational_expression(self) -> ProjectionExpression:
        left = self._parse_additive_expression()
        token = self._peek()
        op = None
        if token.kind == "OP" and token.text in _COMPARISON_OPS:
            op = token.text
        elif token.kind == "PUNCT" and token.text == "=":
            op = "="
        if op is not None:
            self._advance()
            return BinaryExpr(op, left, self._parse_additive_expression())
        return left

    def _parse_additive_expression(self) -> ProjectionExpression:
        left = self._parse_multiplicative_expression()
        while self._peek().kind == "PUNCT" and self._peek().text in ("+", "-"):
            op = self._advance().text
            left = BinaryExpr(op, left, self._parse_multiplicative_expression())
        return left

    def _parse_multiplicative_expression(self) -> ProjectionExpression:
        left = self._parse_unary_expression()
        while self._peek().kind == "PUNCT" and self._peek().text in ("*", "/"):
            op = self._advance().text
            left = BinaryExpr(op, left, self._parse_unary_expression())
        return left

    def _parse_unary_expression(self) -> ProjectionExpression:
        token = self._peek()
        if token.kind == "OP" and token.text == "!":
            self._advance()
            return UnaryExpr("!", self._parse_unary_expression())
        if token.kind == "PUNCT" and token.text in ("+", "-"):
            self._advance()
            return UnaryExpr(token.text, self._parse_unary_expression())
        return self._parse_primary_expression()

    def _parse_primary_expression(self) -> ProjectionExpression:
        token = self._peek()
        if token.kind == "PUNCT" and token.text == "(":
            self._advance()
            expression = self._parse_or_expression()
            self._expect_punct(")")
            return expression
        if token.kind == "VAR":
            self._advance()
            return VarExpr(Variable(token.text[1:]))
        if token.kind == "KEYWORD" and token.text in _AGGREGATES:
            return self._parse_aggregate()
        if token.kind == "KEYWORD" and token.text in _BUILTIN_FUNCTIONS:
            self._advance()
            self._expect_punct("(")
            args: list[Expression] = []
            if not (self._peek().kind == "PUNCT" and self._peek().text == ")"):
                args.append(self._require_plain(self._parse_or_expression()))
                while self._accept_punct(","):
                    args.append(self._require_plain(self._parse_or_expression()))
            self._expect_punct(")")
            return FunctionExpr(token.text, tuple(args))
        literal = self._try_parse_literal()
        if literal is not None:
            return ConstExpr(literal)
        if token.kind == "IRIREF":
            self._advance()
            return ConstExpr(IRI(token.text[1:-1]))
        if token.kind == "PNAME":
            self._advance()
            return ConstExpr(self._expand_pname(token))
        raise self._error("expected an expression")

    def _parse_aggregate(self) -> AggregateExpr:
        func = self._advance().text
        self._expect_punct("(")
        distinct = self._accept_keyword("DISTINCT")
        if self._accept_punct("*"):
            if func != "COUNT":
                raise self._error("only COUNT accepts '*'")
            self._expect_punct(")")
            return AggregateExpr("COUNT", None, distinct)
        argument = self._require_plain(self._parse_or_expression())
        self._expect_punct(")")
        return AggregateExpr(func, argument, distinct)

    @staticmethod
    def _require_plain(expression: ProjectionExpression) -> Expression:
        if isinstance(expression, AggregateExpr):
            raise UnsupportedQueryError("nested aggregates are not supported")
        return expression


_STRING_UNESCAPES = {"\\n": "\n", "\\t": "\t", "\\r": "\r", '\\"': '"', "\\\\": "\\"}


def _unescape_string(text: str) -> str:
    result = text
    for escaped, plain in _STRING_UNESCAPES.items():
        result = result.replace(escaped, plain)
    return result


def _number_literal(text: str) -> Literal:
    if "." in text or "e" in text.lower():
        return Literal(text, datatype=XSD_DOUBLE)
    return Literal(text, datatype=XSD_INTEGER)


def parse_query(text: str, prefixes: dict[str, str] | None = None) -> SelectQuery:
    """Parse SPARQL text into a :class:`SelectQuery` AST.

    *prefixes* pre-seeds the prefix table (the query's own ``PREFIX``
    declarations extend/override it).
    """
    return _Parser(tokenize(text), prefixes).parse_query()
