"""SPARQL expression AST and evaluation.

Implements the expression subset the paper's analytical queries use:
logical ``&&``/``||``/``!``, comparisons, arithmetic, ``REGEX``,
``BOUND``, ``STR``, and effective boolean value semantics.  Expression
errors follow SPARQL semantics: they propagate as
:class:`ExpressionError` and FILTER treats them as false.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from repro.errors import SparqlEvaluationError
from repro.rdf.terms import IRI, Literal, Term, Variable


class ExpressionError(SparqlEvaluationError):
    """A SPARQL expression evaluation error (type error, unbound var...)."""


# ---------------------------------------------------------------------------
# AST nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VarExpr:
    variable: Variable

    def __str__(self) -> str:
        return self.variable.n3()


@dataclass(frozen=True)
class ConstExpr:
    term: Term

    def __str__(self) -> str:
        return self.term.n3()


@dataclass(frozen=True)
class UnaryExpr:
    op: str  # '!' or '-' or '+'
    operand: "Expression"

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class BinaryExpr:
    op: str  # '||' '&&' '=' '!=' '<' '>' '<=' '>=' '+' '-' '*' '/'
    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class FunctionExpr:
    """A builtin call: REGEX, BOUND, STR."""

    name: str  # upper-cased
    args: tuple["Expression", ...]

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.name}({rendered})"


Expression = Union[VarExpr, ConstExpr, UnaryExpr, BinaryExpr, FunctionExpr]

#: A solution mapping: variable -> concrete term.
Bindings = dict[Variable, Term]


def expression_variables(expr: Expression) -> frozenset[Variable]:
    """All variables mentioned anywhere in *expr*."""
    if isinstance(expr, VarExpr):
        return frozenset((expr.variable,))
    if isinstance(expr, ConstExpr):
        return frozenset()
    if isinstance(expr, UnaryExpr):
        return expression_variables(expr.operand)
    if isinstance(expr, BinaryExpr):
        return expression_variables(expr.left) | expression_variables(expr.right)
    if isinstance(expr, FunctionExpr):
        result: frozenset[Variable] = frozenset()
        for arg in expr.args:
            result |= expression_variables(arg)
        return result
    raise ExpressionError(f"unknown expression node: {expr!r}")


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def _numeric(value: object) -> Union[int, float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExpressionError(f"expected a numeric value, got {value!r}")
    return value


def term_value(term: Term) -> object:
    """The comparable/computable value of an RDF term."""
    if isinstance(term, Literal):
        return term.python_value()
    return term


def effective_boolean_value(value: object) -> bool:
    """SPARQL EBV: booleans as-is, numbers vs 0, strings vs ''."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return value != ""
    raise ExpressionError(f"no effective boolean value for {value!r}")


def _compare(op: str, left: object, right: object) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    # Ordering comparisons require mutually comparable operands.
    numeric = isinstance(left, (int, float)) and isinstance(right, (int, float))
    textual = isinstance(left, str) and isinstance(right, str)
    if not (numeric or textual):
        raise ExpressionError(f"cannot order {left!r} and {right!r}")
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    if op == ">=":
        return left >= right
    raise ExpressionError(f"unknown comparison operator {op!r}")


def evaluate(expr: Expression, bindings: Bindings) -> object:
    """Evaluate *expr* under *bindings* to a Python value or RDF term.

    Raises :class:`ExpressionError` on SPARQL expression errors (the
    caller decides whether that means "false" as in FILTER, or an
    unbound result as in projection of a failed BIND).
    """
    if isinstance(expr, ConstExpr):
        return term_value(expr.term)
    if isinstance(expr, VarExpr):
        term = bindings.get(expr.variable)
        if term is None:
            raise ExpressionError(f"unbound variable {expr.variable}")
        return term_value(term)
    if isinstance(expr, UnaryExpr):
        if expr.op == "!":
            return not effective_boolean_value(evaluate(expr.operand, bindings))
        value = _numeric(evaluate(expr.operand, bindings))
        return -value if expr.op == "-" else value
    if isinstance(expr, BinaryExpr):
        return _evaluate_binary(expr, bindings)
    if isinstance(expr, FunctionExpr):
        return _evaluate_function(expr, bindings)
    raise ExpressionError(f"unknown expression node: {expr!r}")


def _evaluate_binary(expr: BinaryExpr, bindings: Bindings) -> object:
    op = expr.op
    if op == "||":
        # SPARQL logical-or: an error on one side is recoverable when the
        # other side is true.
        try:
            if effective_boolean_value(evaluate(expr.left, bindings)):
                return True
            left_error = False
        except ExpressionError:
            left_error = True
        right = effective_boolean_value(evaluate(expr.right, bindings))
        if right:
            return True
        if left_error:
            raise ExpressionError("logical-or: one operand errored, other false")
        return False
    if op == "&&":
        try:
            if not effective_boolean_value(evaluate(expr.left, bindings)):
                return False
            left_error = False
        except ExpressionError:
            left_error = True
        right = effective_boolean_value(evaluate(expr.right, bindings))
        if not right:
            return False
        if left_error:
            raise ExpressionError("logical-and: one operand errored, other true")
        return True

    left = evaluate(expr.left, bindings)
    right = evaluate(expr.right, bindings)
    if op in ("=", "!=", "<", ">", "<=", ">="):
        return _compare(op, left, right)
    left_num, right_num = _numeric(left), _numeric(right)
    if op == "+":
        return left_num + right_num
    if op == "-":
        return left_num - right_num
    if op == "*":
        return left_num * right_num
    if op == "/":
        if right_num == 0:
            raise ExpressionError("division by zero")
        return left_num / right_num
    raise ExpressionError(f"unknown binary operator {op!r}")


def _evaluate_function(expr: FunctionExpr, bindings: Bindings) -> object:
    name = expr.name
    if name == "BOUND":
        if len(expr.args) != 1 or not isinstance(expr.args[0], VarExpr):
            raise ExpressionError("BOUND takes exactly one variable argument")
        return expr.args[0].variable in bindings
    if name == "STR":
        if len(expr.args) != 1:
            raise ExpressionError("STR takes exactly one argument")
        value = evaluate(expr.args[0], bindings)
        if isinstance(value, IRI):
            return value.value
        if isinstance(value, bool):
            return "true" if value else "false"
        return str(value)
    if name == "REGEX":
        if len(expr.args) not in (2, 3):
            raise ExpressionError("REGEX takes two or three arguments")
        text = evaluate(expr.args[0], bindings)
        pattern = evaluate(expr.args[1], bindings)
        if not isinstance(text, str) or not isinstance(pattern, str):
            raise ExpressionError("REGEX operands must be strings")
        flags = 0
        if len(expr.args) == 3:
            flag_text = evaluate(expr.args[2], bindings)
            if not isinstance(flag_text, str):
                raise ExpressionError("REGEX flags must be a string")
            if "i" in flag_text:
                flags |= re.IGNORECASE
        return re.search(pattern, text, flags) is not None
    raise ExpressionError(f"unsupported function {name!r}")


def evaluate_filter(expr: Expression, bindings: Bindings) -> bool:
    """FILTER semantics: expression errors count as false."""
    try:
        return effective_boolean_value(evaluate(expr, bindings))
    except ExpressionError:
        return False
