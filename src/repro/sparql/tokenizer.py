"""Tokenizer for the supported SPARQL subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import SparqlSyntaxError

KEYWORDS = frozenset(
    {
        "PREFIX",
        "BASE",
        "SELECT",
        "DISTINCT",
        "REDUCED",
        "WHERE",
        "FILTER",
        "OPTIONAL",
        "UNION",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "AS",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "REGEX",
        "BOUND",
        "STR",
        "A",
        "TRUE",
        "FALSE",
    }
)

#: Token kinds produced by the tokenizer.
PUNCT = ("{", "}", "(", ")", ".", ";", ",", "*", "/", "+", "-", "=")

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+|\#[^\n]*)
  | (?P<IRIREF><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<VAR>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<NUMBER>[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)
  | (?P<PNAME>[A-Za-z_][A-Za-z0-9_.\-]*:[A-Za-z0-9_][A-Za-z0-9_.\-]*)
  | (?P<PNAME_NS>[A-Za-z_][A-Za-z0-9_.\-]*:)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP><=|>=|!=|\|\||&&|[<>!])
  | (?P<LANGTAG>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<DTYPE>\^\^)
  | (?P<PUNCT>[{}().;,*/+\-=])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    kind: str
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.text == word

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


def tokenize(query: str) -> list[Token]:
    """Tokenize SPARQL text; raises :class:`SparqlSyntaxError` on junk."""
    tokens: list[Token] = []
    position = 0
    length = len(query)
    while position < length:
        match = _TOKEN_RE.match(query, position)
        if match is None:
            raise SparqlSyntaxError(
                f"unexpected character {query[position]!r}", position
            )
        kind = match.lastgroup or ""
        text = match.group(0)
        if kind == "WS":
            position = match.end()
            continue
        if kind == "NAME":
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, position))
            else:
                raise SparqlSyntaxError(f"unexpected bare name {text!r}", position)
        elif kind == "OP":
            tokens.append(Token("OP", text, position))
        elif kind == "PUNCT":
            tokens.append(Token("PUNCT", text, position))
        else:
            tokens.append(Token(kind, text, position))
        position = match.end()
    tokens.append(Token("EOF", "", length))
    return tokens


def iter_significant(tokens: list[Token]) -> Iterator[Token]:
    """All tokens except the trailing EOF (convenience for tests)."""
    for token in tokens:
        if token.kind != "EOF":
            yield token
