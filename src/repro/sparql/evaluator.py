"""Reference in-memory evaluator for the SPARQL algebra.

This evaluator is the correctness oracle: every distributed engine in
the library (Hive naive, Hive MQO, RAPID+, RAPIDAnalytics) must return
the same multiset of solutions as this evaluator on every query.  It
favours clarity over performance; the engines are where the paper's
optimizations live.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.errors import SparqlEvaluationError
from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, IRI, Literal, Term, Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.aggregates import UNBOUND, make_accumulator
from repro.sparql.algebra import (
    Aggregate,
    AlgebraNode,
    AlgebraUnion,
    BGP,
    Distinct,
    Extend,
    Filter,
    Join,
    LeftJoin,
    OrderBy,
    Project,
    Slice,
    translate_query,
)
from repro.sparql.ast import AggregateExpr, OrderCondition, SelectQuery
from repro.sparql.expressions import (
    BinaryExpr,
    Bindings,
    ConstExpr,
    Expression,
    ExpressionError,
    FunctionExpr,
    UnaryExpr,
    evaluate as evaluate_expression,
    evaluate_filter,
)
from repro.sparql.parser import parse_query

Row = Bindings  # Variable -> Term
Rows = list[Row]


def _python_to_term(value: object) -> Term:
    if isinstance(value, (IRI, BNode, Literal)):
        return value
    if isinstance(value, (bool, int, float, str)):
        return Literal.from_python(value)
    raise SparqlEvaluationError(f"cannot convert {value!r} to an RDF term")


# ---------------------------------------------------------------------------
# BGP matching
# ---------------------------------------------------------------------------


def _pattern_selectivity(pattern: TriplePattern, bound: set[Variable]) -> int:
    """Higher is more selective: count of concrete-or-bound components."""
    score = 0
    for component in pattern:
        if not isinstance(component, Variable) or component in bound:
            score += 1
    return score


def _substitute(pattern: TriplePattern, row: Row) -> TriplePattern:
    def resolve(component):
        if isinstance(component, Variable):
            return row.get(component, component)
        return component

    return TriplePattern(resolve(pattern.subject), resolve(pattern.property), resolve(pattern.object))


def evaluate_bgp(patterns: Sequence[TriplePattern], graph: Graph) -> Rows:
    """Match a basic graph pattern, choosing join order greedily by
    the number of bound components."""
    rows: Rows = [{}]
    remaining = list(patterns)
    bound: set[Variable] = set()
    while remaining:
        remaining.sort(key=lambda p: _pattern_selectivity(p, bound), reverse=True)
        pattern = remaining.pop(0)
        next_rows: Rows = []
        for row in rows:
            concrete = _substitute(pattern, row)
            for bindings in graph.match(concrete):
                merged = dict(row)
                merged.update(bindings)
                next_rows.append(merged)
        rows = next_rows
        if not rows:
            return []
        bound |= pattern.variables()
    return rows


# ---------------------------------------------------------------------------
# Solution mapping combinators
# ---------------------------------------------------------------------------


def compatible(left: Row, right: Row) -> bool:
    """SPARQL solution-mapping compatibility."""
    for variable, term in left.items():
        other = right.get(variable)
        if other is not None and other != term:
            return False
    return True


def merge_rows(left: Row, right: Row) -> Row:
    merged = dict(left)
    merged.update(right)
    return merged


def hash_join(left: Rows, right: Rows) -> Rows:
    """Join two solution multisets on their shared variables.

    Uses a hash join on the shared variables when every row binds all of
    them, falling back to a nested-loop compatibility join otherwise
    (needed in the presence of OPTIONAL-produced partial rows).
    """
    if not left or not right:
        return []
    left_vars = set().union(*(row.keys() for row in left))
    right_vars = set().union(*(row.keys() for row in right))
    shared = left_vars & right_vars
    if not shared:
        return [merge_rows(l, r) for l in left for r in right]
    shared_tuple = tuple(sorted(shared, key=lambda v: v.name))
    fully_bound = all(
        all(v in row for v in shared_tuple) for row in left
    ) and all(all(v in row for v in shared_tuple) for row in right)
    if not fully_bound:
        return [merge_rows(l, r) for l in left for r in right if compatible(l, r)]
    index: dict[tuple, Rows] = defaultdict(list)
    for row in right:
        index[tuple(row[v] for v in shared_tuple)].append(row)
    output: Rows = []
    for row in left:
        key = tuple(row[v] for v in shared_tuple)
        for match in index.get(key, ()):
            output.append(merge_rows(row, match))
    return output


def left_join(left: Rows, right: Rows, condition: Expression | None) -> Rows:
    output: Rows = []
    for l in left:
        matched = False
        for r in right:
            if not compatible(l, r):
                continue
            merged = merge_rows(l, r)
            if condition is None or evaluate_filter(condition, merged):
                output.append(merged)
                matched = True
        if not matched:
            output.append(dict(l))
    return output


# ---------------------------------------------------------------------------
# Grouping and aggregation
# ---------------------------------------------------------------------------


def _group_key(row: Row, group_vars: tuple[Variable, ...]) -> tuple:
    return tuple(row.get(variable) for variable in group_vars)


def _compute_aggregate(aggregate: AggregateExpr, rows: Rows) -> object:
    accumulator = make_accumulator(aggregate.func, aggregate.distinct)
    if aggregate.arg is None:  # COUNT(*)
        for _ in rows:
            accumulator.update(None)
        return accumulator.result()
    for row in rows:
        try:
            value = evaluate_expression(aggregate.arg, row)
        except ExpressionError:
            continue  # unbound/erroring rows do not contribute
        if isinstance(value, IRI):
            value = value  # IRIs count for COUNT/MIN/MAX-on-strings? keep term
        accumulator.update(value if not isinstance(value, IRI) else value.value)
    return accumulator.result()


def _resolve_aggregates(expression, group_rows: Rows):
    """Replace AggregateExpr nodes with computed constants."""
    if isinstance(expression, AggregateExpr):
        value = _compute_aggregate(expression, group_rows)
        if value is UNBOUND:
            return None
        return ConstExpr(_python_to_term(value))
    if isinstance(expression, UnaryExpr):
        inner = _resolve_aggregates(expression.operand, group_rows)
        return None if inner is None else UnaryExpr(expression.op, inner)
    if isinstance(expression, BinaryExpr):
        left = _resolve_aggregates(expression.left, group_rows)
        right = _resolve_aggregates(expression.right, group_rows)
        if left is None or right is None:
            return None
        return BinaryExpr(expression.op, left, right)
    if isinstance(expression, FunctionExpr):
        resolved = tuple(_resolve_aggregates(a, group_rows) for a in expression.args)
        if any(r is None for r in resolved):
            return None
        return FunctionExpr(expression.name, resolved)
    return expression


def evaluate_aggregate(node: Aggregate, rows: Rows) -> Rows:
    if node.group_vars is None:
        groups: dict[tuple, Rows] = {(): rows}  # GROUP BY ALL: always one group
        group_vars: tuple[Variable, ...] = ()
    else:
        group_vars = node.group_vars
        groups = defaultdict(list)
        for row in rows:
            groups[_group_key(row, group_vars)].append(row)
        if not rows:
            groups = {}
    output: Rows = []
    for key, group_rows in groups.items():
        representative: Row = {
            variable: term for variable, term in zip(group_vars, key) if term is not None
        }
        result_row: Row = {}
        for alias, expression in node.bindings:
            resolved = _resolve_aggregates(expression, group_rows)
            if resolved is None:
                continue  # aggregate produced no value (e.g. MIN of empty)
            try:
                value = evaluate_expression(resolved, representative)
            except ExpressionError:
                continue  # leave the alias unbound, per SPARQL extend semantics
            result_row[alias] = _python_to_term(value)
        output.append(result_row)
    return output


# ---------------------------------------------------------------------------
# Ordering
# ---------------------------------------------------------------------------


def _order_key(conditions: tuple[OrderCondition, ...]):
    def type_rank(value: object) -> int:
        if isinstance(value, bool):
            return 1
        if isinstance(value, (int, float)):
            return 2
        if isinstance(value, str):
            return 3
        if isinstance(value, IRI):
            return 4
        return 5

    def key(row: Row):
        parts = []
        for condition in conditions:
            try:
                value = evaluate_expression(condition.expression, row)
            except ExpressionError:
                parts.append((0, 0, ""))  # unbound sorts first
                continue
            rank = type_rank(value)
            if isinstance(value, IRI):
                comparable: object = value.value
            elif isinstance(value, bool):
                comparable = int(value)
            else:
                comparable = value
            if condition.descending and isinstance(comparable, (int, float)):
                comparable = -comparable
                parts.append((rank, 0, comparable))
            else:
                parts.append((rank, 0, comparable))
        return tuple(parts)

    return key


def _sort_rows(rows: Rows, conditions: tuple[OrderCondition, ...]) -> Rows:
    # Stable multi-pass sort: apply conditions right-to-left so string
    # descending order also works (Python sort has no per-key reverse).
    ordered = list(rows)
    for condition in reversed(conditions):
        ordered.sort(key=_order_key((OrderCondition(condition.expression, False),)))
        if condition.descending:
            ordered.reverse()
    return ordered


# ---------------------------------------------------------------------------
# Main dispatch
# ---------------------------------------------------------------------------


def evaluate_algebra(node: AlgebraNode, graph: Graph) -> Rows:
    """Evaluate an algebra tree over *graph*, returning solution rows."""
    if isinstance(node, BGP):
        return evaluate_bgp(node.patterns, graph)
    if isinstance(node, Join):
        return hash_join(evaluate_algebra(node.left, graph), evaluate_algebra(node.right, graph))
    if isinstance(node, LeftJoin):
        return left_join(
            evaluate_algebra(node.left, graph),
            evaluate_algebra(node.right, graph),
            node.condition,
        )
    if isinstance(node, AlgebraUnion):
        return evaluate_algebra(node.left, graph) + evaluate_algebra(node.right, graph)
    if isinstance(node, Filter):
        return [
            row
            for row in evaluate_algebra(node.input, graph)
            if evaluate_filter(node.condition, row)
        ]
    if isinstance(node, Aggregate):
        return evaluate_aggregate(node, evaluate_algebra(node.input, graph))
    if isinstance(node, Extend):
        output: Rows = []
        for row in evaluate_algebra(node.input, graph):
            extended = dict(row)
            try:
                extended[node.variable] = _python_to_term(
                    evaluate_expression(node.expression, row)
                )
            except ExpressionError:
                pass  # leave unbound
            output.append(extended)
        return output
    if isinstance(node, Project):
        keep = set(node.variables)
        return [
            {variable: term for variable, term in row.items() if variable in keep}
            for row in evaluate_algebra(node.input, graph)
        ]
    if isinstance(node, Distinct):
        seen: set[frozenset] = set()
        output = []
        for row in evaluate_algebra(node.input, graph):
            key = frozenset(row.items())
            if key not in seen:
                seen.add(key)
                output.append(row)
        return output
    if isinstance(node, OrderBy):
        return _sort_rows(evaluate_algebra(node.input, graph), node.conditions)
    if isinstance(node, Slice):
        rows = evaluate_algebra(node.input, graph)
        end = None if node.limit is None else node.offset + node.limit
        return rows[node.offset : end]
    raise SparqlEvaluationError(f"unknown algebra node {type(node).__name__}")


def evaluate_query(query: SelectQuery | str, graph: Graph) -> Rows:
    """Parse (if needed), translate, and evaluate a query over *graph*."""
    if isinstance(query, str):
        query = parse_query(query)
    return evaluate_algebra(translate_query(query), graph)


def rows_to_multiset(rows: Iterable[Row]) -> dict[frozenset, int]:
    """Canonical multiset form of a solution sequence (for comparisons)."""
    counts: dict[frozenset, int] = defaultdict(int)
    for row in rows:
        counts[frozenset(row.items())] += 1
    return dict(counts)
