"""Translation of the SPARQL AST into an algebra tree.

The algebra follows the SPARQL 1.1 specification's operator vocabulary
(BGP, Join, LeftJoin, Union, Filter, Group/Aggregate, Extend, Project,
Distinct, OrderBy, Slice) restricted to the supported subset.  The
reference evaluator interprets this tree directly; the optimizing
engines instead consume the analytical query model extracted in
:mod:`repro.core.query_model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import UnsupportedQueryError
from repro.rdf.terms import Variable
from repro.rdf.triples import TriplePattern
from repro.sparql.ast import (
    AggregateExpr,
    FilterPattern,
    GroupGraphPattern,
    OptionalPattern,
    OrderCondition,
    ProjectionExpression,
    ProjectionItem,
    SelectQuery,
    SubSelect,
    TriplesBlock,
    UnionPattern,
)
from repro.sparql.expressions import Expression, VarExpr


@dataclass(frozen=True)
class BGP:
    patterns: tuple[TriplePattern, ...]


@dataclass(frozen=True)
class Join:
    left: "AlgebraNode"
    right: "AlgebraNode"


@dataclass(frozen=True)
class LeftJoin:
    left: "AlgebraNode"
    right: "AlgebraNode"
    condition: Expression | None = None


@dataclass(frozen=True)
class AlgebraUnion:
    left: "AlgebraNode"
    right: "AlgebraNode"


@dataclass(frozen=True)
class Filter:
    condition: Expression
    input: "AlgebraNode"


@dataclass(frozen=True)
class Aggregate:
    """Grouping plus aggregate/projection computation.

    ``group_vars`` of None means GROUP BY ALL — one group containing
    every solution (the paper's roll-up subqueries).  Each binding maps
    an output variable to an expression that may contain aggregate
    nodes.
    """

    input: "AlgebraNode"
    group_vars: tuple[Variable, ...] | None
    bindings: tuple[tuple[Variable, ProjectionExpression], ...]


@dataclass(frozen=True)
class Extend:
    input: "AlgebraNode"
    variable: Variable
    expression: Expression


@dataclass(frozen=True)
class Project:
    input: "AlgebraNode"
    variables: tuple[Variable, ...]


@dataclass(frozen=True)
class Distinct:
    input: "AlgebraNode"


@dataclass(frozen=True)
class OrderBy:
    input: "AlgebraNode"
    conditions: tuple[OrderCondition, ...]


@dataclass(frozen=True)
class Slice:
    input: "AlgebraNode"
    offset: int
    limit: int | None


AlgebraNode = Union[
    BGP,
    Join,
    LeftJoin,
    AlgebraUnion,
    Filter,
    Aggregate,
    Extend,
    Project,
    Distinct,
    OrderBy,
    Slice,
]

_EMPTY_BGP = BGP(())


def _is_empty(node: AlgebraNode) -> bool:
    return isinstance(node, BGP) and not node.patterns


def _join(left: AlgebraNode, right: AlgebraNode) -> AlgebraNode:
    if _is_empty(left):
        return right
    if _is_empty(right):
        return left
    # Merge adjacent BGPs so a triples block split across statements
    # still evaluates as one basic graph pattern.
    if isinstance(left, BGP) and isinstance(right, BGP):
        return BGP(left.patterns + right.patterns)
    return Join(left, right)


def translate_group(pattern: GroupGraphPattern) -> AlgebraNode:
    """Translate a group graph pattern, applying its FILTERs last."""
    node: AlgebraNode = _EMPTY_BGP
    filters: list[Expression] = []
    for element in pattern.elements:
        if isinstance(element, TriplesBlock):
            node = _join(node, BGP(element.patterns))
        elif isinstance(element, FilterPattern):
            filters.append(element.expression)
        elif isinstance(element, OptionalPattern):
            node = LeftJoin(node, translate_group(element.pattern))
        elif isinstance(element, UnionPattern):
            union = AlgebraUnion(translate_group(element.left), translate_group(element.right))
            node = _join(node, union)
        elif isinstance(element, SubSelect):
            node = _join(node, translate_query(element.query))
        elif isinstance(element, GroupGraphPattern):
            node = _join(node, translate_group(element))
        else:
            raise UnsupportedQueryError(f"unsupported pattern element {element!r}")
    for condition in filters:
        node = Filter(condition, node)
    return node


def _contains_aggregate(expression: ProjectionExpression) -> bool:
    if isinstance(expression, AggregateExpr):
        return True
    from repro.sparql.expressions import BinaryExpr, FunctionExpr, UnaryExpr

    if isinstance(expression, UnaryExpr):
        return _contains_aggregate(expression.operand)
    if isinstance(expression, BinaryExpr):
        return _contains_aggregate(expression.left) or _contains_aggregate(expression.right)
    if isinstance(expression, FunctionExpr):
        return any(_contains_aggregate(argument) for argument in expression.args)
    return False


def translate_query(query: SelectQuery) -> AlgebraNode:
    """Translate a full SELECT query (or subquery) into algebra."""
    node = translate_group(query.where)
    if query.select_star:
        if query.is_grouped():
            raise UnsupportedQueryError("SELECT * cannot be combined with grouping")
    elif query.is_grouped():
        bindings = tuple((item.alias, item.expression) for item in query.projection)
        _check_grouped_projection(query.projection, query.group_by)
        node = Aggregate(node, query.group_by, bindings)
        node = Project(node, query.projected_variables())
    else:
        for item in query.projection:
            if isinstance(item.expression, AggregateExpr) or _contains_aggregate(item.expression):
                raise UnsupportedQueryError(
                    "aggregates outside a grouped query are not supported"
                )
            is_bare_variable = (
                isinstance(item.expression, VarExpr) and item.expression.variable == item.alias
            )
            if not is_bare_variable:
                node = Extend(node, item.alias, item.expression)
        node = Project(node, query.projected_variables())
    if query.having is not None:
        node = Filter(query.having, node)
    if query.distinct:
        node = Distinct(node)
    if query.order_by:
        node = OrderBy(node, query.order_by)
    if query.limit is not None or query.offset:
        node = Slice(node, query.offset, query.limit)
    return node


def _check_grouped_projection(
    projection: tuple[ProjectionItem, ...], group_vars: tuple[Variable, ...] | None
) -> None:
    """Reject projection of a non-grouped, non-aggregated variable."""
    allowed = set(group_vars or ())
    for item in projection:
        if _contains_aggregate(item.expression):
            continue
        if isinstance(item.expression, VarExpr) and item.expression.variable in allowed:
            continue
        from repro.sparql.expressions import expression_variables

        if isinstance(item.expression, AggregateExpr):
            continue
        free = expression_variables(item.expression) - allowed
        if free:
            raise UnsupportedQueryError(
                f"projection of non-grouped variable(s) {sorted(v.name for v in free)}"
            )
