"""SPARQL front end: tokenizer, parser, algebra, reference evaluator."""

from repro.sparql.aggregates import (
    Accumulator,
    UNBOUND,
    aggregate_values,
    make_accumulator,
)
from repro.sparql.ast import (
    AggregateExpr,
    FilterPattern,
    GroupGraphPattern,
    OptionalPattern,
    ProjectionItem,
    SelectQuery,
    SubSelect,
    TriplesBlock,
    UnionPattern,
)
from repro.sparql.algebra import translate_group, translate_query
from repro.sparql.evaluator import (
    evaluate_algebra,
    evaluate_bgp,
    evaluate_query,
    rows_to_multiset,
)
from repro.sparql.expressions import (
    BinaryExpr,
    Bindings,
    ConstExpr,
    Expression,
    ExpressionError,
    FunctionExpr,
    UnaryExpr,
    VarExpr,
    evaluate_filter,
)
from repro.sparql.parser import parse_query
from repro.sparql.serializer import expression_text, serialize_query
from repro.sparql.tokenizer import Token, tokenize

__all__ = [
    "expression_text",
    "serialize_query",
    "Accumulator",
    "AggregateExpr",
    "BinaryExpr",
    "Bindings",
    "ConstExpr",
    "Expression",
    "ExpressionError",
    "FilterPattern",
    "FunctionExpr",
    "GroupGraphPattern",
    "OptionalPattern",
    "ProjectionItem",
    "SelectQuery",
    "SubSelect",
    "Token",
    "TriplesBlock",
    "UNBOUND",
    "UnaryExpr",
    "UnionPattern",
    "VarExpr",
    "aggregate_values",
    "evaluate_algebra",
    "evaluate_bgp",
    "evaluate_filter",
    "evaluate_query",
    "make_accumulator",
    "parse_query",
    "rows_to_multiset",
    "tokenize",
    "translate_group",
    "translate_query",
]
