"""Chrome trace-event export (Perfetto / ``chrome://tracing``).

``repro trace export --format perfetto`` converts a ``repro-trace/v1``
trace into the JSON-object flavour of the Chrome trace-event format:
complete spans (``ph: "X"``), instant events (``ph: "i"``), and
metadata records (``ph: "M"``) naming the process and one thread
("track") per engine.

The exported timeline is the **simulated clock**: timestamps are the
cost model's seconds scaled to microseconds, so the track layout shows
the paper's numbers (MR-cycle structure, per-phase volume costs), not
the simulator's own wall time.  Timestamps are absolute trace-wide, so
consecutive engine executions appear end to end on their tracks in the
order they ran.
"""

from __future__ import annotations

from typing import Any

_PID = 1
#: Track for spans not enclosed by any engine span (the root, query
#: brackets, harness setup).
_CONTROL_TID = 0

_US = 1_000_000  # simulated seconds → microseconds


def to_chrome_trace(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Render trace records as a Chrome trace-event JSON object."""
    spans = {r["id"]: r for r in records if r.get("type") == "span"}
    header = next((r for r in records if r.get("type") == "header"), {})

    # One track per engine *name*, in first-appearance order, so the two
    # engines of a compare run sit on adjacent rows.
    track_of_engine: dict[str, int] = {}
    engine_span_track: dict[int, int] = {}
    for span in sorted(spans.values(), key=lambda s: s["id"]):
        if span["kind"] != "engine":
            continue
        engine = str(span["attrs"].get("engine", span["name"]))
        if engine not in track_of_engine:
            track_of_engine[engine] = len(track_of_engine) + 1
        engine_span_track[span["id"]] = track_of_engine[engine]

    def track_for(record: dict[str, Any]) -> int:
        seen: set[int] = set()
        current: int | None = record["id"] if record.get("type") == "span" else None
        if current is None or current not in engine_span_track:
            current = record.get("parent")
        while current is not None and current not in seen:
            seen.add(current)
            if current in engine_span_track:
                return engine_span_track[current]
            parent_span = spans.get(current)
            current = parent_span.get("parent") if parent_span else None
        return _CONTROL_TID

    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": _CONTROL_TID,
            "name": "process_name",
            "args": {"name": "repro simulated timeline"},
        },
        {
            "ph": "M",
            "pid": _PID,
            "tid": _CONTROL_TID,
            "name": "thread_name",
            "args": {"name": "control"},
        },
    ]
    for engine, tid in track_of_engine.items():
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": engine},
            }
        )

    for record in records:
        if record.get("type") == "span":
            events.append(
                {
                    "ph": "X",
                    "pid": _PID,
                    "tid": track_for(record),
                    "name": record["name"],
                    "cat": record["kind"],
                    "ts": record["sim_start"] * _US,
                    "dur": record["sim_dur"] * _US,
                    "args": {
                        "attrs": record.get("attrs", {}),
                        "metrics": record.get("metrics", {}),
                    },
                }
            )
        elif record.get("type") == "event":
            events.append(
                {
                    "ph": "i",
                    "pid": _PID,
                    "tid": track_for(record),
                    "name": record["name"],
                    "cat": "event",
                    "ts": record["sim_time"] * _US,
                    "s": "t",  # thread-scoped instant
                    "args": {"attrs": record.get("attrs", {})},
                }
            )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": str(header.get("schema", "")),
            "generator": str(header.get("generator", "")),
            "clock": "simulated",
        },
    }


def validate_chrome_trace(obj: Any) -> list[str]:
    """Shape-check a Chrome trace-event object; returns problems found.

    Checks the constraints Perfetto's JSON importer actually relies on:
    a ``traceEvents`` array whose entries carry a valid ``ph``, the
    fields mandatory for that phase, and numeric non-negative
    timestamps/durations.
    """
    problems: list[str] = []
    if not isinstance(obj, dict):
        return ["top-level value must be a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    if not events:
        problems.append("'traceEvents' is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in {"X", "i", "I", "M", "B", "E", "b", "e", "n", "C"}:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: missing integer tid")
        if ph == "M":
            continue  # metadata carries no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number, got {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: complete event dur must be a non-negative number, got {dur!r}"
                )
    return problems
