"""Span and event model for execution traces.

A trace is a tree of **spans** (timed regions) with point-in-time
**events** attached to them, recorded on two clocks at once:

* the **wall clock** (``time.perf_counter``) — how long the simulator
  itself took, for performance attribution;
* the **simulated clock** — the cost model's seconds, advanced only
  when the MapReduce runner charges a job.  This is the clock the
  paper's numbers live on: span layout on it reproduces Table 3 /
  Figure 8 structure (cycles, per-phase volume costs) exactly.

Wall times are the only nondeterministic fields; everything else
(span ids, names, attributes, metrics, simulated times) is a pure
function of the workload, which is what makes traces byte-comparable
across runs once wall fields are stripped (see :mod:`repro.obs.sink`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any


@dataclass
class Span:
    """One timed region of an execution (query, engine, plan, job, ...)."""

    id: int
    parent: int | None
    name: str
    kind: str
    sim_start: float
    wall_start: float
    sim_end: float = 0.0
    wall_end: float = 0.0
    #: Structured facts known at record time (engine name, byte volumes,
    #: task counts, plan shape).
    attrs: dict[str, Any] = field(default_factory=dict)
    #: Operator metrics accumulated by :meth:`TraceRecorder.count` while
    #: this span was innermost (triplegroups dropped, combos pruned, ...).
    metrics: dict[str, int] = field(default_factory=dict)

    @property
    def sim_dur(self) -> float:
        return self.sim_end - self.sim_start

    @property
    def wall_dur(self) -> float:
        return self.wall_end - self.wall_start


@dataclass
class TraceEvent:
    """A point-in-time occurrence (task retry, straggler, abort, ...)."""

    id: int
    parent: int | None
    name: str
    sim_time: float
    wall_time: float
    attrs: dict[str, Any] = field(default_factory=dict)


class Stopwatch:
    """A tiny wall-clock timer — the one implementation of the
    ``started = perf_counter(); ...; wall = perf_counter() - started``
    pattern that used to be hand-rolled across the bench harness and
    profiler.

    Usable as a context manager or via explicit :meth:`start` /
    :meth:`stop`; :attr:`seconds` reads the elapsed time (live while
    running, frozen after stop).
    """

    __slots__ = ("_started", "_elapsed")

    def __init__(self) -> None:
        self._started: float | None = None
        self._elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._started = perf_counter()
        return self

    def stop(self) -> float:
        if self._started is not None:
            self._elapsed = perf_counter() - self._started
            self._started = None
        return self._elapsed

    @property
    def seconds(self) -> float:
        if self._started is not None:
            return perf_counter() - self._started
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class TraceRecorder:
    """Collects one trace: a span tree plus events, on both clocks.

    The recorder owns an implicit **root span** (id 0) so that every
    span and every :meth:`count` increment always has a parent, even
    outside any explicit bracket.  ``close()`` seals the root; it is
    idempotent and called automatically by :func:`repro.obs.tracing`.
    """

    def __init__(self) -> None:
        self._origin = perf_counter()
        self.sim_now: float = 0.0
        self._next_id = 1
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        root = Span(
            id=0, parent=None, name="trace", kind="root", sim_start=0.0, wall_start=0.0
        )
        self.root = root
        self.spans.append(root)
        self._stack: list[Span] = [root]
        self._closed = False

    # -- clocks -----------------------------------------------------------------

    def _wall(self) -> float:
        return perf_counter() - self._origin

    def advance_sim(self, seconds: float) -> None:
        """Move the simulated clock forward (the runner charging a job)."""
        self.sim_now += seconds

    # -- spans ------------------------------------------------------------------

    def current(self) -> Span:
        return self._stack[-1]

    def begin_span(
        self, name: str, kind: str, attrs: dict[str, Any] | None = None
    ) -> Span:
        span = Span(
            id=self._next_id,
            parent=self._stack[-1].id,
            name=name,
            kind=kind,
            sim_start=self.sim_now,
            wall_start=self._wall(),
            attrs=dict(attrs) if attrs else {},
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        span.sim_end = self.sim_now
        span.wall_end = self._wall()
        # Pop to (and including) the span; defensively closes any child
        # left open by an exception that skipped its end.
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            if dangling is self.root:
                self._stack.append(dangling)
                break
            dangling.sim_end = self.sim_now
            dangling.wall_end = span.wall_end
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def add_closed_span(
        self,
        name: str,
        kind: str,
        *,
        sim_start: float | None = None,
        sim_dur: float = 0.0,
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Record an already-finished span (a simulated phase laid out on
        the cost-model timeline after its volumes are known)."""
        start = self.sim_now if sim_start is None else sim_start
        wall = self._wall()
        span = Span(
            id=self._next_id,
            parent=self._stack[-1].id,
            name=name,
            kind=kind,
            sim_start=start,
            wall_start=wall,
            sim_end=start + sim_dur,
            wall_end=wall,
            attrs=dict(attrs) if attrs else {},
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    # -- events and metrics -----------------------------------------------------

    def add_event(self, name: str, attrs: dict[str, Any] | None = None) -> TraceEvent:
        event = TraceEvent(
            id=self._next_id,
            parent=self._stack[-1].id,
            name=name,
            sim_time=self.sim_now,
            wall_time=self._wall(),
            attrs=dict(attrs) if attrs else {},
        )
        self._next_id += 1
        self.events.append(event)
        return event

    def count(self, name: str, amount: int = 1) -> None:
        """Add *amount* to metric *name* on the innermost open span."""
        metrics = self._stack[-1].metrics
        metrics[name] = metrics.get(name, 0) + amount

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span."""
        self._stack[-1].attrs.update(attrs)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Seal the trace: close every open span, root last (idempotent)."""
        if self._closed:
            return
        while len(self._stack) > 1:
            self.end_span(self._stack[-1])
        self.root.sim_end = self.sim_now
        self.root.wall_end = self._wall()
        self._closed = True
