"""Structured execution tracing for the simulator stack.

Where :mod:`repro.perf` answers "how much wall time went to each
phase?", this package answers "what did the execution *do*": a
hierarchical trace of spans (query → engine → plan → MR job → phase)
and events (task retries, stragglers, aborts) on two clocks — real
wall time and the cost model's simulated seconds — with per-span NTGA
operator metrics (triplegroups dropped by σ^γopt, n-split fan-out,
α-join combinations materialized vs. pruned, Agg-Join group counts,
per-job shuffle/HDFS bytes).

The module-level hooks follow the same contract as :func:`repro.perf.phase`:
when no recorder is installed (``_ACTIVE is None``) every hook is a
no-op beyond a single global read, so untraced runs pay effectively
nothing.  Hot loops (the star filter, the α-join reducer) should guard
their calls with ``if obs._ACTIVE is not None:`` to skip even the call.

Submodules:

* :mod:`repro.obs.model` — :class:`Span` / :class:`TraceEvent` /
  :class:`TraceRecorder` / :class:`Stopwatch`;
* :mod:`repro.obs.sink` — the ``repro-trace/v1`` JSONL reader/writer;
* :mod:`repro.obs.summary` — per-query/per-engine rollups and the
  ``repro trace summary`` / ``tree`` renderings;
* :mod:`repro.obs.perfetto` — Chrome trace-event export for
  Perfetto / ``chrome://tracing``.

See ``docs/observability.md`` for the span model, the two-clock
semantics, and the operator-metric glossary.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.model import Span, Stopwatch, TraceEvent, TraceRecorder

__all__ = [
    "Span",
    "Stopwatch",
    "TraceEvent",
    "TraceRecorder",
    "active_tracer",
    "tracing",
    "detached",
    "span",
    "event",
    "count",
    "annotate",
]

#: The currently-installed recorder (None = tracing disabled).
_ACTIVE: TraceRecorder | None = None


def active_tracer() -> TraceRecorder | None:
    return _ACTIVE


@contextmanager
def tracing(recorder: TraceRecorder | None = None) -> Iterator[TraceRecorder]:
    """Install *recorder* (a fresh one by default) for the duration.

    The recorder is sealed (``close()``) on exit, so the caller can hand
    it straight to :func:`repro.obs.sink.write_trace`.
    """
    global _ACTIVE
    recorder = recorder if recorder is not None else TraceRecorder()
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous
        recorder.close()


@contextmanager
def detached() -> Iterator[None]:
    """Suspend the installed recorder for the duration.

    Work inside the block records nothing — spans, events, and counters
    all see tracing as disabled.  EXPLAIN uses this to compile-and-probe
    a plan without leaking the probe's counters into the caller's trace
    (a side-effect-free EXPLAIN must leave ``explain(); run()`` counters
    equal to a cold ``run()``'s).
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    try:
        yield
    finally:
        _ACTIVE = previous


@contextmanager
def span(
    name: str, kind: str = "span", attrs: dict[str, Any] | None = None
) -> Iterator[Span | None]:
    """Bracket the enclosed work in a trace span.

    Yields the live :class:`Span` (for ``.attrs`` / ``.metrics``
    updates mid-flight) when tracing is on, ``None`` when off.
    """
    recorder = _ACTIVE
    if recorder is None:
        yield None
        return
    opened = recorder.begin_span(name, kind, attrs)
    try:
        yield opened
    finally:
        recorder.end_span(opened)


def event(name: str, attrs: dict[str, Any] | None = None) -> None:
    """Record a point-in-time event under the current span."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.add_event(name, attrs)


def count(name: str, amount: int = 1) -> None:
    """Add *amount* to operator metric *name* on the current span."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.count(name, amount)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the current span."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.annotate(**attrs)
