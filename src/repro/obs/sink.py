"""The ``repro-trace/v1`` JSONL trace format.

One record per line, compact separators, keys sorted.  Record shapes
(every key always present, so consumers need no existence checks):

``header``
    ``{"type": "header", "schema": "repro-trace/v1", "generator": ...,
    "created_at": <wall seconds at close>}``
``span``
    ``{"type": "span", "id", "parent", "name", "kind", "sim_start",
    "sim_dur", "wall_start", "wall_dur", "attrs", "metrics"}``
``event``
    ``{"type": "event", "id", "parent", "name", "sim_time",
    "wall_time", "attrs"}``

Spans and events share one id space and are emitted sorted by id —
i.e. in creation order — after the header.  The **wall fields**
(:data:`WALL_FIELDS`) are the only nondeterministic content: stripping
them (:func:`stripped_bytes`) yields bytes that are identical across
repeat runs of the same seeded workload, which the determinism test
pins and downstream diffing relies on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.obs.model import TraceRecorder

TRACE_SCHEMA = "repro-trace/v1"

#: Keys carrying real wall-clock time — the only nondeterministic
#: fields in a trace record.
WALL_FIELDS = ("wall_start", "wall_dur", "wall_time", "created_at")

_ROUND = 9  # nanosecond resolution; avoids platform float-repr jitter


def _round(value: float) -> float:
    return round(value, _ROUND)


def trace_records(recorder: TraceRecorder) -> list[dict[str, Any]]:
    """Render a (closed) recorder as schema records, header first."""
    recorder.close()
    records: list[dict[str, Any]] = [
        {
            "type": "header",
            "schema": TRACE_SCHEMA,
            "generator": "repro.obs",
            "created_at": _round(recorder.root.wall_end),
        }
    ]
    body: list[tuple[int, dict[str, Any]]] = []
    for span in recorder.spans:
        body.append(
            (
                span.id,
                {
                    "type": "span",
                    "id": span.id,
                    "parent": span.parent,
                    "name": span.name,
                    "kind": span.kind,
                    "sim_start": _round(span.sim_start),
                    "sim_dur": _round(span.sim_dur),
                    "wall_start": _round(span.wall_start),
                    "wall_dur": _round(span.wall_dur),
                    "attrs": span.attrs,
                    "metrics": span.metrics,
                },
            )
        )
    for event in recorder.events:
        body.append(
            (
                event.id,
                {
                    "type": "event",
                    "id": event.id,
                    "parent": event.parent,
                    "name": event.name,
                    "sim_time": _round(event.sim_time),
                    "wall_time": _round(event.wall_time),
                    "attrs": event.attrs,
                },
            )
        )
    body.sort(key=lambda pair: pair[0])
    records.extend(record for _, record in body)
    return records


def write_trace(recorder: TraceRecorder, path: str | Path) -> Path:
    """Write the trace as JSONL; returns the path written."""
    path = Path(path)
    lines = [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in trace_records(recorder)
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load a JSONL trace, validating the header."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot read trace {path}: {exc}") from None
    records: list[dict[str, Any]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path}:{number}: malformed trace line: {exc}") from None
        if not isinstance(record, dict) or "type" not in record:
            raise ReproError(f"{path}:{number}: trace record must be an object with 'type'")
        records.append(record)
    if not records:
        raise ReproError(f"{path}: empty trace")
    header = records[0]
    if header.get("type") != "header" or header.get("schema") != TRACE_SCHEMA:
        raise ReproError(
            f"{path}: not a {TRACE_SCHEMA} trace "
            f"(header: {json.dumps(header, sort_keys=True)[:120]})"
        )
    return records


def strip_wall_fields(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Drop every wall-clock field — what's left is deterministic."""
    return [
        {key: value for key, value in record.items() if key not in WALL_FIELDS}
        for record in records
    ]


def stripped_bytes(records: list[dict[str, Any]]) -> bytes:
    """Canonical bytes of the deterministic content of a trace; equal
    across repeat runs of the same seeded workload."""
    lines = [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in strip_wall_fields(records)
    ]
    return ("\n".join(lines) + "\n").encode("utf-8")
