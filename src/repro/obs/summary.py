"""Rollups and renderings of ``repro-trace/v1`` records.

The summary groups job spans under their enclosing engine span (and
that engine's enclosing query span, when present) and aggregates
exactly the quantities the paper argues with: MR cycles, simulated
seconds, shuffle/HDFS byte volumes, operator metrics (α-join
combinations pruned, triplegroups dropped, ...), and fault events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

#: Job-span attributes summed into the per-engine rollup.
_VOLUME_ATTRS = ("input_bytes", "shuffle_bytes", "output_bytes")

#: Event names emitted by the fault-recovery path in the runner.
FAULT_EVENT_NAMES = frozenset(
    {"task-retry", "straggler", "hdfs-write-retry", "job-abort"}
)


@dataclass
class EngineSummary:
    """Aggregates for one engine span (one engine execution)."""

    query: str
    engine: str
    span_id: int
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0
    jobs: int = 0
    map_only_jobs: int = 0
    volumes: dict[str, int] = field(default_factory=dict)
    metrics: dict[str, int] = field(default_factory=dict)
    fault_events: dict[str, int] = field(default_factory=dict)


def _children_index(records: list[dict[str, Any]]) -> dict[int, list[dict[str, Any]]]:
    children: dict[int, list[dict[str, Any]]] = {}
    for record in records:
        parent = record.get("parent")
        if parent is not None:
            children.setdefault(parent, []).append(record)
    return children


def _descendants(
    root_id: int, children: dict[int, list[dict[str, Any]]]
) -> Iterable[dict[str, Any]]:
    stack = list(children.get(root_id, ()))
    while stack:
        record = stack.pop()
        yield record
        stack.extend(children.get(record["id"], ()))


def summarize(records: list[dict[str, Any]]) -> list[EngineSummary]:
    """One :class:`EngineSummary` per engine span, in trace order."""
    spans = {r["id"]: r for r in records if r.get("type") == "span"}
    children = _children_index(records)

    def enclosing_query(span: dict[str, Any]) -> str:
        parent = span.get("parent")
        while parent is not None:
            candidate = spans.get(parent)
            if candidate is None:
                break
            if candidate["kind"] == "query":
                return str(candidate["attrs"].get("qid", candidate["name"]))
            parent = candidate.get("parent")
        return "-"

    summaries: list[EngineSummary] = []
    for span in sorted(spans.values(), key=lambda s: s["id"]):
        if span["kind"] != "engine":
            continue
        summary = EngineSummary(
            query=enclosing_query(span),
            engine=str(span["attrs"].get("engine", span["name"])),
            span_id=span["id"],
            sim_seconds=span["sim_dur"],
            wall_seconds=span.get("wall_dur", 0.0),
        )
        for record in _descendants(span["id"], children):
            if record.get("type") == "span":
                if record["kind"] == "job":
                    summary.jobs += 1
                    if record["attrs"].get("map_only"):
                        summary.map_only_jobs += 1
                    for attr in _VOLUME_ATTRS:
                        value = record["attrs"].get(attr)
                        if isinstance(value, int):
                            summary.volumes[attr] = summary.volumes.get(attr, 0) + value
                for name, amount in record.get("metrics", {}).items():
                    summary.metrics[name] = summary.metrics.get(name, 0) + amount
            elif record.get("type") == "event":
                if record["name"] in FAULT_EVENT_NAMES:
                    summary.fault_events[record["name"]] = (
                        summary.fault_events.get(record["name"], 0) + 1
                    )
        summaries.append(summary)
    return summaries


def render_summary(records: list[dict[str, Any]]) -> str:
    """The ``repro trace summary`` table."""
    summaries = summarize(records)
    if not summaries:
        return "trace contains no engine spans"
    header = (
        f"{'query':<12} {'engine':<16} {'jobs':>4} {'map-only':>8} "
        f"{'sim(s)':>9} {'shuffle(B)':>11} {'hdfs-out(B)':>11}"
    )
    lines = [header, "-" * len(header)]
    for s in summaries:
        lines.append(
            f"{s.query:<12} {s.engine:<16} {s.jobs:>4} {s.map_only_jobs:>8} "
            f"{s.sim_seconds:>9.2f} {s.volumes.get('shuffle_bytes', 0):>11} "
            f"{s.volumes.get('output_bytes', 0):>11}"
        )
        extras: list[str] = []
        for name in sorted(s.metrics):
            extras.append(f"{name}={s.metrics[name]}")
        for name in sorted(s.fault_events):
            extras.append(f"{name}×{s.fault_events[name]}")
        if extras:
            lines.append(f"{'':<12}   {' '.join(extras)}")
    return "\n".join(lines)


def render_tree(records: list[dict[str, Any]], max_depth: int | None = None) -> str:
    """The ``repro trace tree`` rendering: the span hierarchy with both
    clocks, metrics inline, events as leaf markers."""
    children = _children_index(records)
    lines: list[str] = []

    def walk(record: dict[str, Any], depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        indent = "  " * depth
        if record.get("type") == "span":
            line = (
                f"{indent}{record['name']} [{record['kind']}] "
                f"sim={record['sim_start']:.2f}+{record['sim_dur']:.2f}s "
                f"wall={record.get('wall_dur', 0.0) * 1000:.1f}ms"
            )
            metrics = record.get("metrics", {})
            if metrics:
                line += "  " + " ".join(f"{k}={metrics[k]}" for k in sorted(metrics))
            lines.append(line)
            for child in sorted(children.get(record["id"], ()), key=lambda r: r["id"]):
                walk(child, depth + 1)
        else:
            attrs = record.get("attrs", {})
            detail = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
            lines.append(
                f"{indent}! {record['name']} @sim={record['sim_time']:.2f}s"
                + (f"  {detail}" if detail else "")
            )

    roots = [
        r
        for r in records
        if r.get("type") == "span" and r.get("parent") is None
    ]
    for root in sorted(roots, key=lambda r: r["id"]):
        walk(root, 0)
    return "\n".join(lines) if lines else "trace contains no spans"
