"""Deterministic metrics: Counter/Gauge/Histogram instruments.

Where :mod:`repro.obs.model` records *one execution* as a span tree,
this module aggregates *fleets of executions* — the serve layer's
request stream, every MapReduce job's cost-phase decomposition, the
planner's candidate choices — into a :class:`MetricsRegistry` of named
instruments that can answer "what is p99 simulated latency on this
workload" or "is the cardinality estimator drifting".

Determinism is the design constraint, exactly as for traces and the
serve reports: given fixed seeds, a registry snapshot must be
**byte-identical** across runs, platforms, thread counts, and
``PYTHONHASHSEED`` values.  The rules that guarantee it:

* histogram bucket boundaries are *fixed* per instrument (the default
  scheme is exponential, base 2, pinned at import time), never adapted
  to the data;
* histogram sums accumulate in integer **microseconds-style fixed
  point** (``round(value * 1e6)``), so float addition order cannot
  leak into the total;
* every export sorts metric families by name and series by label
  values — insertion order never shows;
* wall-clock instruments (the secondary clock of the dual-clock pairs,
  mirroring the PR 3 span design) are marked ``volatile`` and excluded
  from the default snapshot; only the simulated clock is exported.

Two exporters ship with the registry: :func:`snapshot_dict` (the
``repro-metrics/v1`` JSON snapshot — what ``repro serve --metrics``
writes and the CI golden pins) and :func:`render_prometheus` (text
exposition for scraping, validated by :func:`validate_prometheus`).

The module-level ambient hooks follow the :mod:`repro.obs` tracer
contract: :func:`collecting` installs a registry, instrumented layers
consult :func:`active_registry` and pay a single global read when
metrics are off.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from typing import Any, Iterable, Iterator

from repro.errors import ReproError

__all__ = [
    "DEFAULT_BUCKETS",
    "QUANTILES",
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "active_registry",
    "collecting",
    "exponential_buckets",
    "render_metrics_summary",
    "render_prometheus",
    "snapshot_dict",
    "validate_prometheus",
]

#: Schema tag of the JSON snapshot (bump on shape changes).
METRICS_SCHEMA = "repro-metrics/v1"

#: The quantiles every histogram reports in snapshots.
QUANTILES = (50, 90, 95, 99)

#: Fixed-point scale for deterministic sum accumulation.
_MICRO = 1_000_000


class MetricsError(ReproError):
    """Invalid instrument registration, labels, or snapshot input."""


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` upper bounds growing geometrically from *start*.

    The boundaries are computed as ``start * factor**i`` (one
    multiplication chain, no transcendental functions), so the tuple is
    bit-identical across platforms and libm versions.
    """
    if start <= 0.0 or factor <= 1.0 or count < 1:
        raise MetricsError(
            f"invalid bucket scheme: start={start!r} factor={factor!r} count={count!r}"
        )
    bounds = []
    upper = start
    for _ in range(count):
        bounds.append(upper)
        upper *= factor
    return tuple(bounds)


#: The default bucket scheme: 1ms to ~18h of simulated seconds, base 2.
#: Fixed at import time so committed snapshots never shift when data
#: changes; q-error histograms reuse it (q-errors are >= 1, landing in
#: the upper half).
DEFAULT_BUCKETS = exponential_buckets(0.001, 2.0, 27)


def _check_name(name: str) -> str:
    if not re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name):
        raise MetricsError(f"invalid metric name {name!r}")
    return name


class _Instrument:
    """Common shape of one labeled series."""

    __slots__ = ()

    def series_dict(self) -> dict[str, Any]:
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing integer.

    Integer-only on purpose: integer addition is associative and
    commutative, so the total is independent of increment order.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if not isinstance(amount, int) or isinstance(amount, bool):
            raise MetricsError(f"counter increments must be int, got {amount!r}")
        if amount < 0:
            raise MetricsError(f"counter increments must be >= 0, got {amount!r}")
        self.value += amount

    def series_dict(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge(_Instrument):
    """A last-write-wins numeric level (cache sizes, hit ratios).

    Deterministic as long as the *set order* is deterministic — which it
    is everywhere the simulator writes gauges (single coordinator
    thread).  Values are rounded to 6 decimals at set time so derived
    ratios export stably.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise MetricsError(f"gauge values must be numeric, got {value!r}")
        self.value = value if isinstance(value, int) else round(value, 6)

    def series_dict(self) -> dict[str, Any]:
        return {"value": self.value}


class Histogram(_Instrument):
    """Cumulative-bucket histogram over fixed boundaries.

    Observations land in the first bucket whose upper bound is >= the
    value; values beyond the last bound count only toward the implicit
    ``+Inf`` bucket (``count``).  The sum accumulates in integer
    fixed-point (:data:`_MICRO`), so merging and multi-source recording
    cannot produce rounding that depends on arrival order.
    """

    __slots__ = ("buckets", "counts", "count", "_sum_micro")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise MetricsError(f"bucket bounds must be strictly increasing: {buckets!r}")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * len(self.buckets)
        self.count = 0
        self._sum_micro = 0

    def observe(self, value: float) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise MetricsError(f"histogram observations must be numeric, got {value!r}")
        self.count += 1
        self._sum_micro += round(value * _MICRO)
        for index, upper in enumerate(self.buckets):
            if value <= upper:
                self.counts[index] += 1
                break

    @property
    def sum(self) -> float:
        return self._sum_micro / _MICRO

    def merge(self, other: "Histogram") -> None:
        """Fold *other* into this histogram (associative, commutative —
        the property tests hold it to that)."""
        if other.buckets != self.buckets:
            raise MetricsError(
                "cannot merge histograms with different bucket boundaries"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self._sum_micro += other._sum_micro

    def quantile(self, percent: float) -> float:
        """Upper bound of the bucket holding the nearest-rank percentile.

        Conservative (a value <= the reported bound), deterministic, and
        0.0 on an empty histogram.  Observations above the last bound
        report ``inf`` — widen the scheme rather than trust that tail.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, -(-self.count * percent // 100))  # ceil
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                return self.buckets[index]
        return float("inf")

    def series_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "counts": list(self.counts),
            "quantiles": {
                f"p{percent}": _json_number(self.quantile(percent))
                for percent in QUANTILES
            },
        }


def _json_number(value: float) -> float | str:
    """JSON has no inf; snapshots spell it ``"inf"``."""
    return "inf" if value == float("inf") else value


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric: a kind, label names, and its labeled series."""

    __slots__ = ("name", "kind", "help", "label_names", "volatile", "buckets", "series")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        volatile: bool,
        buckets: tuple[float, ...],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.volatile = volatile
        self.buckets = buckets
        self.series: dict[tuple[str, ...], _Instrument] = {}

    def labels(self, **labels: str) -> Any:
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise MetricsError(
                f"metric {self.name!r} takes labels {sorted(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        instrument = self.series.get(key)
        if instrument is None:
            if self.kind == "histogram":
                instrument = Histogram(self.buckets)
            else:
                instrument = _KINDS[self.kind]()
            self.series[key] = instrument
        return instrument

    def family_dict(self) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
        }
        if self.kind == "histogram":
            entry["buckets"] = list(self.buckets)
        entry["series"] = [
            {"labels": dict(zip(self.label_names, key)), **instrument.series_dict()}
            for key, instrument in sorted(self.series.items())
        ]
        return entry


class MetricsRegistry:
    """Named instruments with deterministic export.

    Registration is get-or-create and idempotent: a second
    ``counter("x", ...)`` call returns the same family, and a kind or
    label-set mismatch is a :class:`MetricsError` (silent redefinition
    would corrupt goldens).  Not thread-safe by design — the layers that
    record into a registry run serially whenever one is installed, the
    same contract the tracer and perf recorder already impose on the
    serve executor.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # -- registration ----------------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Iterable[str],
        volatile: bool,
        buckets: tuple[float, ...],
    ) -> _Family:
        _check_name(name)
        label_names = tuple(labels)
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != label_names:
                raise MetricsError(
                    f"metric {name!r} already registered as {family.kind} with "
                    f"labels {list(family.label_names)}"
                )
            return family
        family = _Family(name, kind, help_text, label_names, volatile, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> _Family:
        return self._family(name, "counter", help_text, labels, False, ())

    def gauge(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> _Family:
        return self._family(name, "gauge", help_text, labels, False, ())

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        volatile: bool = False,
    ) -> _Family:
        return self._family(name, "histogram", help_text, labels, volatile, buckets)

    def dual_histogram(
        self,
        base: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> tuple[_Family, _Family]:
        """The dual-clock pair: ``<base>_sim_seconds`` (primary,
        deterministic) and ``<base>_wall_seconds`` (secondary, volatile —
        excluded from default snapshots, like wall fields in traces)."""
        sim = self.histogram(
            f"{base}_sim_seconds", f"{help_text} (simulated clock)", labels, buckets
        )
        wall = self.histogram(
            f"{base}_wall_seconds",
            f"{help_text} (wall clock; volatile)",
            labels,
            buckets,
            volatile=True,
        )
        return sim, wall

    # -- convenience accessors --------------------------------------------------

    def get(self, name: str) -> _Family | None:
        return self._families.get(name)

    def value(self, name: str, **labels: str) -> Any:
        """The raw instrument for (name, labels) — test/report helper."""
        family = self._families.get(name)
        if family is None:
            raise MetricsError(f"unknown metric {name!r}")
        return family.labels(**labels)

    def families(self, include_volatile: bool = False) -> list[_Family]:
        return [
            family
            for name, family in sorted(self._families.items())
            if include_volatile or not family.volatile
        ]


#: The currently-installed registry (None = metrics disabled).
_ACTIVE: MetricsRegistry | None = None


def active_registry() -> MetricsRegistry | None:
    return _ACTIVE


@contextmanager
def collecting(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Install *registry* (a fresh one by default) for the duration.

    Instrumented layers (the MapReduce runner, the adaptive planner)
    record into it; uninstrumented runs pay one global read per hook.
    """
    global _ACTIVE
    registry = registry if registry is not None else MetricsRegistry()
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous


# -- exporters ------------------------------------------------------------------


def snapshot_dict(
    registry: MetricsRegistry,
    *,
    include_volatile: bool = False,
    slo: dict[str, Any] | None = None,
    calibration: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The ``repro-metrics/v1`` snapshot.

    Volatile (wall-clock) instruments are excluded unless asked for, so
    the default snapshot is byte-deterministic given fixed seeds.  The
    optional *slo* and *calibration* sections carry the serve layer's
    SLO verdict and the planner drift report alongside the raw
    instruments.
    """
    return {
        "schema": METRICS_SCHEMA,
        "metrics": [
            family.family_dict()
            for family in registry.families(include_volatile=include_volatile)
        ],
        "slo": slo,
        "calibration": calibration,
    }


def _format_number(value: int | float) -> str:
    """Prometheus sample value: ints verbatim, floats via shortest
    round-trip repr (deterministic), inf as ``+Inf``."""
    if isinstance(value, int):
        return str(value)
    if value == float("inf"):
        return "+Inf"
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels: dict[str, str], extra: tuple[str, str] | None = None) -> str:
    pairs = list(labels.items())
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    rendered = ",".join(f'{name}="{_escape_label(str(value))}"' for name, value in pairs)
    return "{" + rendered + "}"


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """Text exposition (version 0.0.4) of a ``repro-metrics/v1`` snapshot.

    Histograms expand to the conventional ``_bucket{le=...}`` /
    ``_sum`` / ``_count`` triplet with cumulative bucket counts.
    """
    if snapshot.get("schema") != METRICS_SCHEMA:
        raise MetricsError(
            f"not a {METRICS_SCHEMA} snapshot: schema={snapshot.get('schema')!r}"
        )
    lines: list[str] = []
    for family in snapshot["metrics"]:
        name, kind = family["name"], family["kind"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family["series"]:
            labels = series["labels"]
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_label_text(labels)} {_format_number(series['value'])}"
                )
                continue
            cumulative = 0
            for upper, count in zip(family["buckets"], series["counts"]):
                cumulative += count
                lines.append(
                    f"{name}_bucket{_label_text(labels, ('le', _format_number(float(upper))))}"
                    f" {cumulative}"
                )
            lines.append(
                f"{name}_bucket{_label_text(labels, ('le', '+Inf'))} {series['count']}"
            )
            lines.append(f"{name}_sum{_label_text(labels)} {_format_number(series['sum'])}")
            lines.append(f"{name}_count{_label_text(labels)} {series['count']}")
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[+-]?(?:Inf|NaN|[0-9.eE+-]+))$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def validate_prometheus(text: str) -> list[str]:
    """Shape-check a text exposition; returns problems (empty = valid).

    Verifies line grammar, that every sample's base name was announced
    by a ``# TYPE`` line, that histogram bucket counts are cumulative
    (non-decreasing in ``le``), and that each histogram series carries
    its ``_sum`` and ``_count``.
    """
    problems: list[str] = []
    typed: dict[str, str] = {}
    bucket_last: dict[str, int] = {}
    seen_suffix: dict[str, set[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                problems.append(f"line {number}: malformed comment {line!r}")
            elif parts[1] == "TYPE":
                if parts[3] not in _KINDS if len(parts) > 3 else True:
                    problems.append(f"line {number}: unknown TYPE in {line!r}")
                else:
                    typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {number}: malformed sample {line!r}")
            continue
        name = match.group("name")
        labels_text = match.group("labels")
        if labels_text:
            for part in labels_text.split(","):
                if not _LABEL_RE.match(part):
                    problems.append(f"line {number}: malformed label {part!r}")
        base = name
        suffix = ""
        for candidate in ("_bucket", "_sum", "_count"):
            if name.endswith(candidate) and name[: -len(candidate)] in typed:
                base, suffix = name[: -len(candidate)], candidate
                break
        if base not in typed:
            problems.append(f"line {number}: sample {name!r} has no # TYPE")
            continue
        if typed[base] == "histogram":
            if not suffix:
                problems.append(
                    f"line {number}: bare sample {name!r} for histogram {base!r}"
                )
                continue
            seen_suffix.setdefault(base, set()).add(suffix)
            if suffix == "_bucket":
                series_key = f"{base}|{_strip_le(labels_text or '')}"
                count = int(float(match.group("value")))
                if count < bucket_last.get(series_key, 0):
                    problems.append(
                        f"line {number}: bucket counts not cumulative for {base!r}"
                    )
                bucket_last[series_key] = count
        elif suffix:
            problems.append(
                f"line {number}: {suffix} sample for non-histogram {base!r}"
            )
    for base, kind in typed.items():
        if kind == "histogram" and base in seen_suffix:
            missing = {"_bucket", "_sum", "_count"} - seen_suffix[base]
            if missing:
                problems.append(
                    f"histogram {base!r} missing {sorted(missing)} samples"
                )
    return problems


def _strip_le(labels_text: str) -> str:
    return ",".join(
        part for part in labels_text.split(",") if not part.startswith("le=")
    )


def _series_label(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels.items()) + "}"


def render_metrics_summary(snapshot: dict[str, Any]) -> str:
    """Terminal view of a ``repro-metrics/v1`` snapshot: every series'
    headline numbers, then the SLO and calibration verdicts."""
    if snapshot.get("schema") != METRICS_SCHEMA:
        raise MetricsError(
            f"not a {METRICS_SCHEMA} snapshot: schema={snapshot.get('schema')!r}"
        )
    lines: list[str] = []
    for family in snapshot["metrics"]:
        name, kind = family["name"], family["kind"]
        for series in family["series"]:
            label = _series_label(series["labels"])
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{label} = {series['value']}")
            else:
                quantiles = series["quantiles"]
                lines.append(
                    f"{name}{label}: count={series['count']} "
                    f"sum={series['sum']:g} p50<={quantiles['p50']} "
                    f"p95<={quantiles['p95']} p99<={quantiles['p99']}"
                )
    slo = snapshot.get("slo")
    if slo is not None:
        targets = slo["targets"]
        rendered = ", ".join(
            f"{key}<={targets[key]:g}s"
            for key in ("p50", "p95", "p99")
            if targets.get(key) is not None
        )
        lines.append(
            f"slo [{rendered}, budget={targets['budget']:g}]: "
            f"{'PASS' if slo['pass'] else 'FAIL'} "
            f"(burn {slo['budget_burn'] * 100:.1f}% of {slo['count']} completed)"
        )
    calibration = snapshot.get("calibration")
    if calibration is not None:
        lines.append(
            f"calibration: {calibration['verdict']} "
            f"({calibration['observations']} cycles, "
            f"{calibration['drifting']} drifting)"
        )
        for entry in calibration["queries"]:
            lines.append(
                f"  {entry['query']}/{entry['engine']}: "
                f"cardinality q-error max {entry['cardinality_q_error']['max']:g}, "
                f"cost q-error max {entry['cost_q_error']['max']:g} "
                f"— {entry['verdict']}"
            )
    return "\n".join(lines)
