"""Planner calibration: q-error telemetry for estimate-vs-actual drift.

The PR 7 cost planner is only trustworthy while its estimates track
reality; ``repro explain --run`` shows one execution's
estimated-vs-actual table, but fleet-level monitoring needs the error
*distribution* across served traffic.  :class:`CalibrationMonitor`
aggregates exactly the comparison :mod:`repro.core.explain` renders —
the chosen candidate's per-cycle :class:`~repro.plan.enumerator.JobEstimate`
against the executed :class:`~repro.mapreduce.runner.JobStats`, aligned
by job name — into per-(query, engine) **q-error** statistics:

    ``q(est, act) = max(est, floor) / max(act, floor)`` or its inverse,
    whichever is >= 1

— the standard symmetric multiplicative error (Moerkotte et al.), with
a floor of 1 row for cardinalities (0-row cycles are exactly right, not
infinitely wrong) and 1ms for costs.  A perfectly calibrated estimator
scores 1.0 on every cycle.

When a :class:`~repro.obs.metrics.MetricsRegistry` is active, every
observation also lands in the ``planner_cardinality_q_error`` /
``planner_cost_q_error`` histograms (labels: query, engine), so the
distribution survives into metrics snapshots.  The monitor's own
:meth:`report` adds what histograms cannot carry: exact per-key
max/mean and a **drift verdict** — ``"ok"`` or ``"drifting"`` per
(query, engine), against configurable q-error thresholds.

Duck-typed on purpose: estimates need ``.name``/``.output_rows``/``.cost``
and actuals ``.name``/``.output_records``/``.cost_seconds``, so this
module imports neither the planner nor the runner.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs import metrics as obs_metrics

__all__ = [
    "CARDINALITY_DRIFT_THRESHOLD",
    "COST_DRIFT_THRESHOLD",
    "CalibrationMonitor",
    "q_error",
]

#: Max cardinality q-error tolerated per (query, engine) before the
#: verdict flips to ``"drifting"``.  4x in either direction is the
#: customary "an estimator this wrong will flip plan choices" line.
CARDINALITY_DRIFT_THRESHOLD = 4.0

#: Max cost q-error tolerated.  Tighter than cardinality: cost feeds
#: straight into plan pricing, and the enumerator mirrors the runner's
#: accounting in shape, so big ratios mean a real model gap.
COST_DRIFT_THRESHOLD = 2.0

_ROW_FLOOR = 1.0
_COST_FLOOR = 0.001  # 1ms simulated


def q_error(estimated: float, actual: float, floor: float = _ROW_FLOOR) -> float:
    """Symmetric multiplicative error, >= 1.0, floored on both sides."""
    est = max(float(estimated), floor)
    act = max(float(actual), floor)
    return est / act if est >= act else act / est


class _Series:
    """Running q-error stats for one (query, engine, dimension)."""

    __slots__ = ("count", "max", "_sum_micro")

    def __init__(self) -> None:
        self.count = 0
        self.max = 1.0
        self._sum_micro = 0  # fixed-point, order-independent sum

    def add(self, value: float) -> None:
        self.count += 1
        self._sum_micro += round(value * 1_000_000)
        if value > self.max:
            self.max = value

    def summary(self) -> dict[str, Any]:
        mean = self._sum_micro / (self.count * 1_000_000) if self.count else 0.0
        return {
            "count": self.count,
            "mean": round(mean, 6),
            "max": round(self.max, 6),
        }


class CalibrationMonitor:
    """Accumulates estimate-vs-actual q-errors and renders drift verdicts."""

    def __init__(
        self,
        cardinality_threshold: float = CARDINALITY_DRIFT_THRESHOLD,
        cost_threshold: float = COST_DRIFT_THRESHOLD,
    ) -> None:
        self.cardinality_threshold = cardinality_threshold
        self.cost_threshold = cost_threshold
        self._cardinality: dict[tuple[str, str], _Series] = {}
        self._cost: dict[tuple[str, str], _Series] = {}

    # -- recording ---------------------------------------------------------------

    def record(
        self,
        query: str,
        engine: str,
        estimates: Iterable[Any],
        actuals: Iterable[Any],
    ) -> int:
        """Fold one execution's per-cycle comparison into the monitor.

        *estimates* are the chosen candidate's priced jobs, *actuals*
        the executed job stats; cycles are aligned by job name (an
        estimate with no matching actual — e.g. a checkpoint-skipped
        job — is ignored).  Returns the number of cycles compared.
        """
        registry = obs_metrics.active_registry()
        actual_by_name = {job.name: job for job in actuals}
        compared = 0
        for estimate in estimates:
            actual = actual_by_name.get(estimate.name)
            if actual is None:
                continue
            compared += 1
            card_q = q_error(estimate.output_rows, actual.output_records, _ROW_FLOOR)
            cost_q = q_error(estimate.cost, actual.cost_seconds, _COST_FLOOR)
            key = (query, engine)
            series = self._cardinality.get(key)
            if series is None:
                series = self._cardinality[key] = _Series()
            series.add(card_q)
            series = self._cost.get(key)
            if series is None:
                series = self._cost[key] = _Series()
            series.add(cost_q)
            if registry is not None:
                labels = {"query": query, "engine": engine}
                registry.histogram(
                    "planner_cardinality_q_error",
                    "q-error of estimated vs actual output rows per MR cycle",
                    ("query", "engine"),
                ).labels(**labels).observe(card_q)
                registry.histogram(
                    "planner_cost_q_error",
                    "q-error of priced vs actual cycle cost",
                    ("query", "engine"),
                ).labels(**labels).observe(cost_q)
        return compared

    def record_report(self, query: str, report: Any) -> int:
        """Convenience: record from an executed
        :class:`~repro.core.results.ExecutionReport` carrying a
        :class:`~repro.plan.enumerator.PlanChoice` (0 cycles when it
        carries none — rule-mode and Hive runs have nothing to compare).
        """
        choice = getattr(report, "plan_choice", None)
        if choice is None or report.stats is None:
            return 0
        chosen = choice.candidate(choice.chosen)
        if chosen is None:
            return 0
        return self.record(query, report.engine, chosen.jobs, report.stats.jobs)

    # -- reporting ---------------------------------------------------------------

    @property
    def observations(self) -> int:
        return sum(series.count for series in self._cardinality.values())

    def report(self) -> dict[str, Any]:
        """Per-(query, engine) q-error summaries with drift verdicts,
        deterministically ordered, plus fleet-level rollups."""
        entries = []
        drifting = 0
        for key in sorted(set(self._cardinality) | set(self._cost)):
            query, engine = key
            cardinality = self._cardinality.get(key, _Series()).summary()
            cost = self._cost.get(key, _Series()).summary()
            drift = (
                cardinality["max"] > self.cardinality_threshold
                or cost["max"] > self.cost_threshold
            )
            drifting += drift
            entries.append(
                {
                    "query": query,
                    "engine": engine,
                    "cardinality_q_error": cardinality,
                    "cost_q_error": cost,
                    "verdict": "drifting" if drift else "ok",
                }
            )
        return {
            "thresholds": {
                "cardinality_q_error_max": self.cardinality_threshold,
                "cost_q_error_max": self.cost_threshold,
            },
            "observations": self.observations,
            "queries": entries,
            "drifting": drifting,
            "verdict": "drifting" if drifting else "ok",
        }
