"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``      — execute a catalog query (or a SPARQL file) on one engine
* ``compare``  — run a query on all four engines and tabulate
* ``explain``  — show the decomposition and MR plan
* ``bench``    — regenerate one of the paper's tables/figures
* ``serve``    — simulate the concurrent query service on a workload
* ``catalog``  — list the workload queries
* ``generate`` — write a synthetic dataset as N-Triples
* ``stats``    — profile a dataset (``--json`` for machine-readable)
* ``trace``    — inspect/export a ``--trace`` JSONL execution trace

``run``, ``compare``, and ``bench`` accept ``--trace PATH`` to record a
structured execution trace (``repro-trace/v1`` JSONL; see
``docs/observability.md``) which ``repro trace summary|tree|export``
then reads.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.bench.catalog import CATALOG, get_query
from repro.bench.harness import ALL_EXPERIMENTS
from repro.bench.reporting import render_cost_table, render_gains_table
from repro.core.engines import (
    ENGINE_FACTORIES,
    PAPER_ENGINES,
    _check_shard_support,
    make_engine,
    to_analytical,
)
from repro.core.explain import explain
from repro.datasets import bsbm, chem2bio2rdf, pubmed
from repro.errors import CheckpointError, ReproError, ServeError, WorkflowAbortedError
from repro.rdf import ntriples
from repro.rdf.graph import Graph

_DATASET_GENERATORS: dict[str, Callable[[str], Graph]] = {
    "bsbm": lambda preset: bsbm.generate(bsbm.preset(preset)),
    "chem": lambda preset: chem2bio2rdf.generate(chem2bio2rdf.preset(preset)),
    "pubmed": lambda preset: pubmed.generate(pubmed.preset(preset)),
}

_DEFAULT_PRESETS = {"bsbm": "500k", "chem": "paper", "pubmed": "paper"}


def _load_graph(args: argparse.Namespace) -> Graph:
    if getattr(args, "data", None):
        with open(args.data, encoding="utf-8") as handle:
            return ntriples.parse_graph(handle)
    dataset = args.dataset
    preset = args.preset or _DEFAULT_PRESETS[dataset]
    return _DATASET_GENERATORS[dataset](preset)


def _resolve_query_text(args: argparse.Namespace) -> tuple[str, str]:
    """Returns (query id or file name, SPARQL text)."""
    if args.query in CATALOG:
        return args.query, get_query(args.query).sparql
    with open(args.query, encoding="utf-8") as handle:
        return args.query, handle.read()


def _infer_dataset(args: argparse.Namespace) -> None:
    if args.dataset is None:
        if args.query in CATALOG:
            args.dataset = get_query(args.query).dataset
        else:
            args.dataset = "bsbm"


def _format_rows(rows, limit: int) -> str:
    lines = []
    for row in sorted(rows, key=str)[:limit]:
        rendered = ", ".join(
            f"{v.name}={t.n3()}" for v, t in sorted(row.items(), key=lambda kv: kv[0].name)
        )
        lines.append("  " + rendered)
    if len(rows) > limit:
        lines.append(f"  ... ({len(rows) - limit} more rows)")
    return "\n".join(lines)


def _rows_to_csv(rows) -> str:
    """Render rows as CSV with a union-of-variables header."""
    import csv
    import io

    names: list[str] = []
    for row in rows:
        for variable in row:
            if variable.name not in names:
                names.append(variable.name)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(names)
    for row in sorted(rows, key=str):
        by_name = {variable.name: term for variable, term in row.items()}
        writer.writerow(
            [by_name[name].n3() if name in by_name else "" for name in names]
        )
    return buffer.getvalue()


@contextmanager
def _tracing_to(path: str | None) -> Iterator[None]:
    """Record a ``repro-trace/v1`` trace of the wrapped work to *path*
    (no-op when *path* is None)."""
    if path is None:
        yield
        return
    from repro import obs
    from repro.obs.sink import write_trace

    with obs.tracing() as recorder:
        yield
    write_trace(recorder, path)
    print(f"wrote trace {path}", file=sys.stderr)


def _validated_representation(args: argparse.Namespace) -> str | None:
    """Validate a ``--representation`` override early, so a malformed
    mode is a usage error (exit 2) before any graph is built.  Raises
    :class:`ReproError` on a bad spelling; returns None when absent."""
    raw = getattr(args, "representation", None)
    if raw is None:
        return None
    from repro.ntga.factorized import validate_representation

    return validate_representation(raw)


def _validated_planner(args: argparse.Namespace) -> str | None:
    """Validate a ``--planner`` override early (same contract as
    :func:`_validated_representation`)."""
    raw = getattr(args, "planner", None)
    if raw is None:
        return None
    from repro.plan import validate_planner

    return validate_planner(raw)


@contextmanager
def _ambient_representation(mode: str | None) -> Iterator[None]:
    """Run the wrapped work under an ambient NTGA representation
    override (no-op when *mode* is None)."""
    if mode is None:
        yield
        return
    from repro.ntga.factorized import active_representation

    with active_representation(mode):
        yield


@contextmanager
def _ambient_planner(mode: str | None) -> Iterator[None]:
    """Run the wrapped work under an ambient planner-mode override
    (no-op when *mode* is None)."""
    if mode is None:
        yield
        return
    from repro.plan import active_planner

    with active_planner(mode):
        yield


def _run_config(args: argparse.Namespace):
    """Build the EngineConfig for ``repro run`` from
    --faults/--recover/--representation/--planner/--shards (None when
    none is given, so the default-config path is untouched)."""
    representation = _validated_representation(args)
    planner = _validated_planner(args)
    shards, partitioner = 1, None
    if getattr(args, "shards", None):
        from repro.shard.ab import parse_shard_spec

        shards, strategies = parse_shard_spec(args.shards)
        partitioner = strategies[0] if len(strategies) == 1 else None
    if (
        not getattr(args, "faults", None)
        and getattr(args, "recover", None) is None
        and representation is None
        and planner is None
        and shards == 1
        and partitioner is None
    ):
        return None
    from repro.core.results import EngineConfig
    from repro.mapreduce.checkpoint import RecoveryPolicy
    from repro.mapreduce.faults import FaultPlan

    return EngineConfig(
        fault_plan=FaultPlan.from_spec(args.faults) if args.faults else None,
        recovery=RecoveryPolicy(max_resubmissions=args.recover)
        if args.recover is not None
        else None,
        representation=representation,
        planner=planner,
        shards=shards,
        partitioner=partitioner,
    )


def cmd_run(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.errors import MapReduceError

    try:
        config = _run_config(args)
        _check_shard_support(args.engine, config)
    except (MapReduceError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _infer_dataset(args)
    qid, sparql = _resolve_query_text(args)
    graph = _load_graph(args)
    with _tracing_to(args.trace):
        with obs.span(qid, "query", {"qid": qid}):
            report = make_engine(args.engine).execute(
                to_analytical(sparql), graph, config
            )
    if args.format == "csv":
        print(_rows_to_csv(report.rows), end="")
        return 0
    print(f"{len(report.rows)} rows")
    print(_format_rows(report.rows, args.limit))
    print(
        f"\nengine={report.engine} cycles={report.cycles} "
        f"(map-only {report.map_only_cycles}) simulated-cost={report.cost_seconds:.1f}s"
    )
    if report.plan_choice is not None:
        choice = report.plan_choice
        print(
            f"planner={choice.mode} chose {choice.chosen!r} "
            f"(priced {choice.chosen_cost:.1f}s, {choice.source})"
        )
    if args.verbose and report.stats is not None:
        print()
        print(report.stats.describe())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro import obs

    try:
        representation = _validated_representation(args)
        planner = _validated_planner(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _infer_dataset(args)
    qid, sparql = _resolve_query_text(args)
    graph = _load_graph(args)
    analytical = to_analytical(sparql)
    print(f"{'engine':18s} {'rows':>6s} {'cycles':>7s} {'map-only':>9s} {'cost':>9s}")
    with _tracing_to(args.trace), _ambient_representation(representation), _ambient_planner(planner):
        with obs.span(qid, "query", {"qid": qid}):
            for engine in PAPER_ENGINES:
                report = make_engine(engine).execute(analytical, graph)
                print(
                    f"{engine:18s} {len(report.rows):6d} {report.cycles:7d} "
                    f"{report.map_only_cycles:9d} {report.cost_seconds:8.1f}s"
                )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    try:
        planner = _validated_planner(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    shards, partitioner = 1, None
    if args.shards:
        from repro.errors import ShardError
        from repro.shard.ab import parse_shard_spec

        try:
            shards, strategies = parse_shard_spec(args.shards)
        except ShardError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        # A bare "N" explains the default (hash) partition; "N,strategy"
        # pins one.
        partitioner = strategies[0] if len(strategies) == 1 else None
    _infer_dataset(args)
    _, sparql = _resolve_query_text(args)
    # Hive plans always need data (runtime map-join decisions); the
    # RAPIDAnalytics planner section needs it too — the candidates are
    # priced against the graph's statistics, and the sharding section
    # against its partition.  --plan-only skips the graph and shows
    # just the structural plan.
    graph = None
    needs_graph = (
        args.run
        or args.engine in ("hive-naive", "hive-mqo")
        or (args.engine == "rapid-analytics" and not args.plan_only)
        or (args.shards and not args.plan_only)
    )
    if needs_graph:
        graph = _load_graph(args)
    config = None
    if planner is not None or args.shards:
        from repro.core.results import EngineConfig

        config = EngineConfig(
            planner=planner or "rule", shards=shards, partitioner=partitioner
        )
    run = None
    if args.run:
        run = make_engine(args.engine).execute(
            to_analytical(sparql), graph, config
        )
    if args.json:
        import json

        from repro.core.explain import explain_report

        report = explain_report(
            sparql, engine=args.engine, graph=graph, config=config, run=run
        )
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(explain(sparql, engine=args.engine, graph=graph, config=config))
    if run is not None:
        from repro.core.explain import explain_report, render_estimated_vs_actual

        report = explain_report(
            sparql, engine=args.engine, graph=graph, config=config, run=run
        )
        comparison = report["estimated_vs_actual"]
        if comparison:
            print()
            print(render_estimated_vs_actual(comparison))
        print(
            f"\nexecuted: {len(run.rows)} rows, {run.cycles} MR cycles, "
            f"simulated cost {run.cost_seconds:.1f}s"
        )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    modes = [
        flag
        for flag in ("faults", "profile", "chaos", "planner_ab", "calibration", "shards")
        if getattr(args, flag)
    ]
    flags = [mode.replace("_", "-") for mode in modes]
    if len(modes) > 1:
        print(
            "--" + " and --".join(flags) + " are mutually exclusive", file=sys.stderr
        )
        return 2
    if getattr(args, "representation", None) is not None and modes:
        # --profile runs its own factorized/flat A/B; --faults/--chaos
        # pin their goldens under the default representation.  An
        # override would silently change what those modes certify.
        print(
            f"--representation cannot be combined with --{flags[0]}",
            file=sys.stderr,
        )
        return 2
    try:
        representation = _validated_representation(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.planner_ab:
        return _bench_planner_ab(args)
    if args.shards:
        return _bench_shards(args)
    if args.calibration:
        return _bench_calibration(args)
    if args.chaos:
        return _bench_chaos(args)
    if args.faults:
        return _bench_faults(args)
    if args.profile:
        return _bench_profile(args)
    if args.experiment == "all":
        print("'all' requires --profile (it is a profiling sweep)", file=sys.stderr)
        return 2
    try:
        runner = ALL_EXPERIMENTS[args.experiment]
    except KeyError:
        known = ", ".join(sorted(ALL_EXPERIMENTS) + ["all (with --profile)"])
        print(f"unknown experiment {args.experiment!r}; known: {known}", file=sys.stderr)
        return 2
    with _tracing_to(args.trace), _ambient_representation(representation):
        result = runner()
    if result.mismatches:
        print(f"WARNING: result mismatches: {result.mismatches}", file=sys.stderr)
    print(render_cost_table(result))
    if len(result.engines) > 1:
        print()
        print(render_gains_table(result, baseline=result.engines[0]))
    return 0


def _bench_faults(args: argparse.Namespace) -> int:
    """``repro bench <experiment> --faults seed,rate``: run the
    experiment fault-free and under the seeded plan, report degradation,
    and optionally write/verify the stable JSON report."""
    from repro.bench.faults import (
        FAULT_EXPERIMENTS,
        check_fault_golden,
        fault_resilience_report,
        render_fault_report,
        write_fault_report,
    )
    from repro.errors import MapReduceError
    from repro.mapreduce.faults import FaultPlan

    if args.experiment not in FAULT_EXPERIMENTS:
        known = ", ".join(sorted(FAULT_EXPERIMENTS))
        print(
            f"unknown fault experiment {args.experiment!r}; known: {known}",
            file=sys.stderr,
        )
        return 2
    try:
        plan = FaultPlan.from_spec(args.faults)
    except MapReduceError as error:
        # A malformed spec is a usage error (exit 2, one line), not a
        # simulator failure.
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = fault_resilience_report(args.experiment, plan)
    print(render_fault_report(report))
    if args.output:
        path = write_fault_report(report, args.output)
        print(f"wrote {path}")
    if args.golden:
        from pathlib import Path

        problems = check_fault_golden(Path(args.golden))
        if problems:
            for problem in problems:
                print(f"fault golden mismatch: {problem}", file=sys.stderr)
            return 1
        print(f"fault golden ok: {args.golden}")
    bad = [
        f"{run['qid']}/{run['engine']}"
        for run in report["runs"]
        if not run["failed"]
        and not (run["rows_match_baseline"] and run["base_counters_match_baseline"])
    ]
    if bad:
        print(f"INVARIANT VIOLATION: results drifted under faults: {bad}", file=sys.stderr)
        return 1
    return 0


def _bench_planner_ab(args: argparse.Namespace) -> int:
    """``repro bench <queries> --planner-ab``: run rule-vs-cost planner
    A/B on rapid-analytics, report priced and actual costs, and verify
    the cost plan never loses with identical answers.  *queries* is a
    comma-separated catalog qid list or ``mg`` for MG1-MG4."""
    from repro.plan.ab import (
        DEFAULT_QUERIES,
        check_ab_golden,
        planner_ab_report,
        render_ab_report,
        write_ab_report,
    )

    if args.experiment in ("mg", "all", "planner-ab"):
        qids = list(DEFAULT_QUERIES)
    else:
        qids = [qid.strip() for qid in args.experiment.split(",") if qid.strip()]
        unknown = [qid for qid in qids if qid not in CATALOG]
        if unknown:
            print(f"unknown catalog queries {unknown}", file=sys.stderr)
            return 2
    with _tracing_to(args.trace):
        report = planner_ab_report(qids)
    print(render_ab_report(report))
    if args.output:
        path = write_ab_report(report, args.output)
        print(f"wrote {path}")
    if args.golden:
        from pathlib import Path

        problems = check_ab_golden(Path(args.golden))
        if problems:
            for problem in problems:
                print(f"planner A/B golden mismatch: {problem}", file=sys.stderr)
            return 1
        print(f"planner A/B golden ok: {args.golden}")
    verdicts = report["verdicts"]
    if not verdicts["answers_all_match"] or not verdicts["cost_never_worse"]:
        bad = [
            run["qid"]
            for run in report["runs"]
            if not run["answers_match"] or not run["cost_not_worse"]
        ]
        print(
            f"INVARIANT VIOLATION: cost planner lost or drifted: {bad}",
            file=sys.stderr,
        )
        return 1
    return 0


def _bench_shards(args: argparse.Namespace) -> int:
    """``repro bench <queries> --shards N[,strategy]``: run the
    partitioner A/B on rapid-analytics — unsharded baseline vs each
    strategy at N shards — reporting cross-shard exchange bytes,
    edge-cut statistics, and costs.  *queries* is a comma-separated
    catalog qid list or ``mg`` for MG1-MG4."""
    from repro.errors import ShardError
    from repro.shard.ab import (
        DEFAULT_QUERIES,
        check_shard_golden,
        parse_shard_spec,
        render_shard_report,
        shard_ab_report,
        write_shard_report,
    )

    try:
        shards, strategies = parse_shard_spec(args.shards)
    except ShardError as error:
        # A malformed spec is a usage error (exit 2, one line), not a
        # simulator failure.
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.experiment in ("mg", "all", "shards"):
        qids = list(DEFAULT_QUERIES)
    else:
        qids = [qid.strip() for qid in args.experiment.split(",") if qid.strip()]
        unknown = [qid for qid in qids if qid not in CATALOG]
        if unknown:
            print(f"unknown catalog queries {unknown}", file=sys.stderr)
            return 2
    with _tracing_to(args.trace):
        report = shard_ab_report(qids, shards, strategies)
    print(render_shard_report(report))
    if args.output:
        path = write_shard_report(report, args.output)
        print(f"wrote {path}")
    if args.golden:
        from pathlib import Path

        problems = check_shard_golden(Path(args.golden))
        if problems:
            for problem in problems:
                print(f"shard A/B golden mismatch: {problem}", file=sys.stderr)
            return 1
        print(f"shard A/B golden ok: {args.golden}")
    if not report["verdicts"]["answers_all_match"]:
        bad = [
            f"{run['qid']}/{strategy}"
            for run in report["runs"]
            for strategy, result in run["strategies"].items()
            if not result["rows_match"]
        ]
        print(
            f"INVARIANT VIOLATION: sharded answers diverged: {bad}",
            file=sys.stderr,
        )
        return 1
    return 0


def _bench_calibration(args: argparse.Namespace) -> int:
    """``repro bench <queries> --calibration``: run the cost planner and
    report per-query estimate-vs-actual q-error stats with drift
    verdicts.  *queries* is a comma-separated catalog qid list or ``mg``
    for MG1-MG4."""
    from repro.bench.calibration import (
        DEFAULT_QUERIES,
        calibration_report,
        check_calibration_golden,
        render_calibration_report,
        write_calibration_report,
    )

    if args.experiment in ("mg", "all", "calibration"):
        qids = list(DEFAULT_QUERIES)
    else:
        qids = [qid.strip() for qid in args.experiment.split(",") if qid.strip()]
        unknown = [qid for qid in qids if qid not in CATALOG]
        if unknown:
            print(f"unknown catalog queries {unknown}", file=sys.stderr)
            return 2
    with _tracing_to(args.trace):
        report = calibration_report(qids)
    print(render_calibration_report(report))
    if args.output:
        path = write_calibration_report(report, args.output)
        print(f"wrote {path}")
    if args.golden:
        from pathlib import Path

        problems = check_calibration_golden(Path(args.golden))
        if problems:
            for problem in problems:
                print(f"calibration golden mismatch: {problem}", file=sys.stderr)
            return 1
        print(f"calibration golden ok: {args.golden}")
    return 0


def _bench_chaos(args: argparse.Namespace) -> int:
    """``repro bench <experiment> --chaos seeds=N,rate=p``: soak the
    experiment across a seed matrix with checkpointed recovery enabled;
    every resumed run must stay bit-identical to the fault-free run."""
    from repro.bench.chaos import (
        ChaosSpec,
        chaos_soak_report,
        check_chaos_golden,
        render_chaos_report,
        write_chaos_report,
    )
    from repro.bench.faults import FAULT_EXPERIMENTS

    if args.experiment not in FAULT_EXPERIMENTS:
        known = ", ".join(sorted(FAULT_EXPERIMENTS))
        print(
            f"unknown chaos experiment {args.experiment!r}; known: {known}",
            file=sys.stderr,
        )
        return 2
    spec = ChaosSpec.from_spec(args.chaos)
    with _tracing_to(args.trace):
        report = chaos_soak_report(args.experiment, spec)
    print(render_chaos_report(report))
    if args.output:
        path = write_chaos_report(report, args.output)
        print(f"wrote {path}")
    if args.golden:
        from pathlib import Path

        problems = check_chaos_golden(Path(args.golden))
        if problems:
            for problem in problems:
                print(f"chaos golden mismatch: {problem}", file=sys.stderr)
            return 1
        print(f"chaos golden ok: {args.golden}")
    verdicts = report["verdicts"]
    if not verdicts["all_complete"] or not verdicts["all_bit_identical"]:
        bad = [
            f"seed{run['seed']}:{run['qid']}/{run['engine']}"
            for run in report["runs"]
            if not run["completed"]
            or not (run["rows_match_baseline"] and run["base_counters_match_baseline"])
        ]
        print(
            f"INVARIANT VIOLATION: chaos runs not bit-identical to fault-free: {bad}",
            file=sys.stderr,
        )
        return 1
    return 0


def _bench_profile(args: argparse.Namespace) -> int:
    """``repro bench --profile``: wall-clock phase breakdown + the
    cached-vs-reference invariant check, optionally against a golden."""
    from repro.perf.profile import (
        PROFILE_EXPERIMENTS,
        PROFILE_SCHEMA,
        ProfileMismatchError,
        check_profile_golden,
        profile_experiments,
        render_report,
        write_report,
    )

    names = (
        list(PROFILE_EXPERIMENTS)
        if args.experiment == "all"
        else [args.experiment]
    )
    unknown = [n for n in names if n not in PROFILE_EXPERIMENTS]
    if unknown:
        known = ", ".join(sorted(PROFILE_EXPERIMENTS) + ["all"])
        print(f"unknown experiment(s) {unknown}; known: {known}", file=sys.stderr)
        return 2
    try:
        report = profile_experiments(names, reference=not args.no_reference)
    except ProfileMismatchError as error:
        if args.output:
            write_report(error.report, args.output)
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(render_report(report))
    if args.output:
        path = write_report(report, args.output)
        print(f"wrote {path}")
    if args.golden:
        import json
        from pathlib import Path

        golden_path = Path(args.golden)
        # Two golden flavors share the flag: a profile report
        # (BENCH_PR6.json, checked against the fresh run we just made)
        # and the per-job counter goldens (repro.perf.goldens).
        # Dispatch on the committed file's schema tag.
        schema = json.loads(golden_path.read_text()).get("schema")
        if schema == PROFILE_SCHEMA:
            problems = check_profile_golden(golden_path, report)
        else:
            from repro.perf.goldens import check_golden_file

            problems = check_golden_file(golden_path)
        if problems:
            for problem in problems:
                print(f"golden mismatch: {problem}", file=sys.stderr)
            return 1
        print(f"golden ok: {args.golden}")
    return 0


def _metrics_out_format(path: str) -> str:
    """Infer the ``--metrics`` output format from the path's extension;
    a one-line :class:`ServeError` (exit 2) on anything else."""
    from pathlib import Path

    suffix = Path(path).suffix.lower()
    if suffix == ".json":
        return "json"
    if suffix in (".prom", ".txt"):
        return "prometheus"
    raise ServeError(
        f"invalid --metrics path {path!r}: expected a .json "
        "(repro-metrics/v1 snapshot), .prom, or .txt (Prometheus "
        "exposition) extension"
    )


def _check_serve_golden_file(path: str) -> int:
    """Re-check a committed serve golden, dispatching on its schema tag
    (serve-workload v1/v2 or serve-resilience v1)."""
    import json as _json
    from pathlib import Path

    from repro.serve import (
        RESILIENCE_SCHEMA,
        check_resilience_golden,
        check_serve_golden,
    )

    schema = _json.loads(Path(path).read_text()).get("schema")
    if schema == RESILIENCE_SCHEMA:
        problems = check_resilience_golden(Path(path))
    else:
        problems = check_serve_golden(Path(path))
    if problems:
        for problem in problems:
            print(f"serve golden mismatch: {problem}", file=sys.stderr)
        return 1
    print(f"serve golden ok: {path}")
    return 0


def _serve_resilience(args: argparse.Namespace, spec, fault_plan, resilience, slo) -> int:
    """``repro serve --workload ... --faults seed,rate [--resilience spec]``:
    the fault-injected availability A/B (repro-serve-resilience/v1)."""
    from repro.serve import (
        render_resilience_report,
        serve_resilience_report,
        write_resilience_report,
    )

    with _tracing_to(args.trace):
        report = serve_resilience_report(spec, fault_plan, resilience, slo=slo)
    print(render_resilience_report(report))
    if args.output:
        path = write_resilience_report(report, args.output)
        print(f"wrote {path}")
    if args.golden:
        status = _check_serve_golden_file(args.golden)
        if status:
            return status
    verdicts = report["verdicts"]
    if not (
        verdicts["ok_rows_match_fault_free"]
        and verdicts["degraded_rows_match_fault_free"]
    ):
        print(
            "INVARIANT VIOLATION: served answers differ from the fault-free "
            f"baseline: ok={report['mismatched_ok_requests']} "
            f"degraded={report['mismatched_degraded_requests']}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve --workload seeds=N,clients=C,mix=...``: drive the
    concurrent query service with a seeded arrival process and report
    latency percentiles, cache hit rates, the SLO verdict, and the
    batched-vs-unbatched cost savings (repro-serve-workload/v2).
    ``--metrics`` additionally collects a repro-metrics/v1 snapshot;
    ``--faults`` switches to the resilience A/B
    (repro-serve-resilience/v1), optionally tuned by ``--resilience``."""
    import json

    from repro.obs.metrics import render_prometheus
    from repro.serve import (
        ResilienceConfig,
        WorkloadSpec,
        render_serve_report,
        serve_workload_report,
        serve_workload_with_metrics,
        write_serve_report,
    )
    from repro.serve.slo import SLOSpec

    spec = WorkloadSpec.from_spec(args.workload)
    slo = SLOSpec.from_spec(args.slo) if args.slo else None

    fault_plan = None
    if args.faults:
        from repro.errors import MapReduceError
        from repro.mapreduce.faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_spec(args.faults)
        except MapReduceError as error:
            # A malformed spec is a usage error (exit 2, one line), not
            # a simulator failure.
            print(f"error: {error}", file=sys.stderr)
            return 2
    resilience = None
    if args.resilience is not None:
        if fault_plan is None:
            print(
                "error: --resilience requires --faults seed,rate "
                "(the availability A/B needs injected failures)",
                file=sys.stderr,
            )
            return 2
        try:
            resilience = ResilienceConfig.from_spec(args.resilience)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if fault_plan is not None:
        if args.metrics:
            print(
                "error: --metrics cannot be combined with --faults "
                "(the A/B runs two services per seed)",
                file=sys.stderr,
            )
            return 2
        return _serve_resilience(
            args, spec, fault_plan, resilience or ResilienceConfig(), slo
        )

    metrics_format = _metrics_out_format(args.metrics) if args.metrics else None
    with _tracing_to(args.trace):
        if args.metrics:
            report, snapshot = serve_workload_with_metrics(spec, slo=slo)
        else:
            report = serve_workload_report(spec, slo=slo)
            snapshot = None
    print(render_serve_report(report))
    if args.output:
        path = write_serve_report(report, args.output)
        print(f"wrote {path}")
    if snapshot is not None:
        if metrics_format == "prometheus":
            rendered = render_prometheus(snapshot)
        else:
            rendered = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.metrics}")
    if args.golden:
        status = _check_serve_golden_file(args.golden)
        if status:
            return status
    if not report["verdicts"]["all_rows_match"]:
        bad = [
            f"seed{run['seed']}:{run['mismatched_requests']}"
            for run in report["runs"]
            if not run["rows_match_solo"]
        ]
        print(
            f"INVARIANT VIOLATION: served answers differ from cold solo runs: {bad}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_catalog(args: argparse.Namespace) -> int:
    for qid, query in CATALOG.items():
        structure = " | ".join(s.label() for s in query.structure)
        marker = f" [{query.selectivity}]" if query.selectivity else ""
        print(f"{qid:5s} {query.dataset:7s} {structure}{marker}")
        if args.verbose:
            print(f"      {query.description}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.rdf.stats import profile

    graph = _load_graph(args)
    stats = profile(graph)
    if args.json:
        print(json.dumps(stats.as_dict(), indent=2, sort_keys=True))
    else:
        print(stats.describe())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.sink import read_trace

    records = read_trace(args.trace_file)
    if args.trace_command == "summary":
        from repro.obs.summary import render_summary

        print(render_summary(records))
        return 0
    if args.trace_command == "tree":
        from repro.obs.summary import render_tree

        print(render_tree(records, max_depth=args.depth))
        return 0
    # export
    import json

    from repro.obs.perfetto import to_chrome_trace, validate_chrome_trace

    chrome = to_chrome_trace(records)
    if args.check:
        problems = validate_chrome_trace(chrome)
        if problems:
            for problem in problems:
                print(f"invalid trace-event output: {problem}", file=sys.stderr)
            return 1
    rendered = json.dumps(chrome, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """``repro metrics summary|export``: inspect or re-export a
    repro-metrics/v1 snapshot written by ``repro serve --metrics``."""
    import json

    from repro.obs.metrics import (
        METRICS_SCHEMA,
        MetricsError,
        render_metrics_summary,
        render_prometheus,
        validate_prometheus,
    )

    snapshot = json.loads(open(args.snapshot, encoding="utf-8").read())
    if snapshot.get("schema") != METRICS_SCHEMA:
        raise MetricsError(
            f"{args.snapshot}: not a {METRICS_SCHEMA} snapshot "
            f"(schema={snapshot.get('schema')!r})"
        )
    if args.metrics_command == "summary":
        print(render_metrics_summary(snapshot))
        return 0
    # export
    if args.format == "prometheus":
        rendered = render_prometheus(snapshot)
        if args.check:
            problems = validate_prometheus(rendered)
            if problems:
                for problem in problems:
                    print(f"invalid exposition: {problem}", file=sys.stderr)
                return 1
    else:
        rendered = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.output}")
    else:
        print(rendered, end="")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    preset = args.preset or _DEFAULT_PRESETS[args.dataset]
    graph = _DATASET_GENERATORS[args.dataset](preset)
    with open(args.output, "w", encoding="utf-8") as handle:
        count = ntriples.write(sorted(graph, key=lambda t: t.n3()), handle)
    print(f"wrote {count} triples to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RAPIDAnalytics reproduction (EDBT 2016) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_query_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("query", help="catalog query id (e.g. MG1) or a SPARQL file")
        p.add_argument("--dataset", choices=sorted(_DATASET_GENERATORS), default=None)
        p.add_argument("--preset", default=None, help="dataset preset name")
        p.add_argument("--data", default=None, help="N-Triples file to query instead")

    def add_trace_option(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="record a repro-trace/v1 JSONL execution trace here "
            "(inspect with 'repro trace')",
        )

    def add_representation_option(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--representation",
            default=None,
            metavar="MODE",
            help="NTGA intermediate representation: factorized (default), "
            "flat, or auto (cost-based choice per plan)",
        )

    def add_planner_option(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--planner",
            default=None,
            metavar="MODE",
            help="plan selection: rule (default; the paper's heuristics), "
            "cost (cheapest priced candidate), or auto (cost only beyond "
            "a margin)",
        )

    run = sub.add_parser("run", help="execute a query on one engine")
    add_query_options(run)
    run.add_argument("--engine", choices=sorted(ENGINE_FACTORIES), default="rapid-analytics")
    run.add_argument("--limit", type=int, default=10, help="rows to print")
    run.add_argument("--format", choices=("text", "csv"), default="text")
    run.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="also print the per-job workflow breakdown and counters",
    )
    run.add_argument(
        "--faults",
        default=None,
        metavar="SEED,RATE",
        help="run under a seeded fault plan "
        "('seed,rate[,straggler_rate[,write_rate[,attempts]]]')",
    )
    run.add_argument(
        "--recover",
        nargs="?",
        type=int,
        const=8,
        default=None,
        metavar="BUDGET",
        help="recover job aborts via checkpointed workflow resubmission "
        "(optional resubmission budget, default 8)",
    )
    run.add_argument(
        "--shards",
        default=None,
        metavar="SPEC",
        help="execute sharded across N workers: N (default hash "
        "partition) or N,strategy (hash, locality, min-edge-cut); "
        "NTGA engines only",
    )
    add_trace_option(run)
    add_representation_option(run)
    add_planner_option(run)
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="run a query on all four engines")
    add_query_options(compare)
    add_trace_option(compare)
    add_representation_option(compare)
    add_planner_option(compare)
    compare.set_defaults(func=cmd_compare)

    explain_cmd = sub.add_parser(
        "explain", help="show decomposition, MR plan, and priced candidates"
    )
    add_query_options(explain_cmd)
    explain_cmd.add_argument(
        "--engine", choices=sorted(ENGINE_FACTORIES), default="rapid-analytics"
    )
    add_planner_option(explain_cmd)
    explain_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the repro-explain/v1 report as JSON",
    )
    explain_cmd.add_argument(
        "--plan-only",
        action="store_true",
        help="skip the graph build and planner pricing; show just the "
        "structural plan",
    )
    explain_cmd.add_argument(
        "--run",
        action="store_true",
        help="also execute the query and append estimated-vs-actual "
        "cardinalities per MR cycle",
    )
    explain_cmd.add_argument(
        "--shards",
        default=None,
        metavar="SPEC",
        help="add the sharded-execution section: N (default hash "
        "partition) or N,strategy; shows per-shard cardinalities, the "
        "edge cut, and estimated exchange bytes",
    )
    explain_cmd.set_defaults(func=cmd_explain)

    bench = sub.add_parser("bench", help="regenerate a paper table/figure")
    bench.add_argument(
        "experiment", help=", ".join(sorted(ALL_EXPERIMENTS) + ["all (with --profile)"])
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="time each engine run (per-phase) and assert simulated counters "
        "match the uncached reference implementation",
    )
    bench.add_argument(
        "--output", default=None, help="write the --profile JSON report here"
    )
    bench.add_argument(
        "--golden",
        default=None,
        help="also re-check a committed golden file (--profile: counters "
        "golden; --faults: resilience-report golden)",
    )
    bench.add_argument(
        "--no-reference",
        action="store_true",
        help="skip the uncached reference pass (--profile only; faster, "
        "no invariant check)",
    )
    bench.add_argument(
        "--faults",
        default=None,
        metavar="SEED,RATE",
        help="run fault-free and under a seeded fault plan "
        "('seed,rate[,straggler_rate[,write_rate[,attempts]]]'), report cost "
        "degradation per engine; --output/--golden write/verify the "
        "stable JSON report",
    )
    bench.add_argument(
        "--planner-ab",
        action="store_true",
        help="rule-vs-cost planner A/B on rapid-analytics (experiment is "
        "'mg' for MG1-MG4 or a comma-separated qid list); --output/"
        "--golden write/verify the repro-planner-ab/v1 report",
    )
    bench.add_argument(
        "--calibration",
        action="store_true",
        help="cost-planner calibration baseline: per-query estimate-vs-"
        "actual q-error stats with drift verdicts (experiment is 'mg' "
        "for MG1-MG4 or a comma-separated qid list); --output/--golden "
        "write/verify the repro-calibration/v1 report",
    )
    bench.add_argument(
        "--shards",
        default=None,
        metavar="SPEC",
        help="partitioner A/B on rapid-analytics: 'N' compares all three "
        "strategies (hash, locality, min-edge-cut) at N shards, "
        "'N,strategy' runs one; every sharded run is checked "
        "bit-identical to the unsharded baseline and cross-shard "
        "exchange bytes are reported per strategy (experiment is 'mg' "
        "for MG1-MG4 or a comma-separated qid list); --output/--golden "
        "write/verify the repro-shard-ab/v1 report",
    )
    bench.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="chaos soak: run the experiment across a seeded fault matrix "
        "with checkpointed recovery ('seeds=N,rate=p[,attempts=a]"
        "[,budget=b]'); resumed runs must be bit-identical to the "
        "fault-free run; --output/--golden write/verify the "
        "repro-chaos-soak/v1 report",
    )
    add_trace_option(bench)
    add_representation_option(bench)
    bench.set_defaults(func=cmd_bench)

    serve = sub.add_parser(
        "serve", help="simulate the concurrent query service on a seeded workload"
    )
    serve.add_argument(
        "--workload",
        required=True,
        metavar="SPEC",
        help="workload matrix: 'seeds=N,clients=C,mix=NAME[,requests=R]"
        "[,window=W][,rate=r][,engine=e][,batch=on|off][,cache=on|off]"
        "[,deadline=d][,max_pending=m][,representation=r][,planner=p]' "
        "(mixes: bsbm-star, chem-overlap, pubmed-mesh)",
    )
    serve.add_argument(
        "--output",
        default=None,
        help="write the report here (repro-serve-workload/v2, or "
        "repro-serve-resilience/v1 under --faults)",
    )
    serve.add_argument(
        "--golden",
        default=None,
        help="also re-check a committed serve golden report "
        "(serve-workload v1/v2 or serve-resilience v1; dispatched on "
        "the file's schema tag)",
    )
    serve.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject seeded faults and run the resilience A/B: "
        "'seed,rate[,straggler_rate[,write_rate[,attempts]]]' "
        "(repro-serve-resilience/v1: identical traffic with resilience "
        "off and on)",
    )
    serve.add_argument(
        "--resilience",
        default=None,
        metavar="SPEC",
        help="retry/breaker/degradation policies for the --faults A/B: "
        "'retries=N,backoff=S,factor=F,jitter=J,seed=K,threshold=T,"
        "window=W,cooldown=C,probes=P,stale=on|off,bypass=on|off,"
        "shed=D' (or 'default'; requires --faults)",
    )
    serve.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="collect a repro-metrics/v1 snapshot over the run and write "
        "it here (.json = snapshot, .prom/.txt = Prometheus exposition)",
    )
    serve.add_argument(
        "--slo",
        default=None,
        metavar="SPEC",
        help="latency objectives on the simulated clock: "
        "'p50=S[,p95=S][,p99=S][,budget=F]' (default: the mix's "
        "built-in targets)",
    )
    add_trace_option(serve)
    serve.set_defaults(func=cmd_serve)

    metrics = sub.add_parser(
        "metrics", help="inspect or re-export a repro-metrics/v1 snapshot"
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)

    metrics_summary = metrics_sub.add_parser(
        "summary", help="per-series headline numbers, SLO and drift verdicts"
    )
    metrics_summary.add_argument("snapshot", help="repro-metrics/v1 JSON file")
    metrics_summary.set_defaults(func=cmd_metrics)

    metrics_export = metrics_sub.add_parser(
        "export", help="render a snapshot in another format"
    )
    metrics_export.add_argument("snapshot", help="repro-metrics/v1 JSON file")
    metrics_export.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="output format (Prometheus text exposition by default)",
    )
    metrics_export.add_argument(
        "--output", "-o", default=None, help="write here instead of stdout"
    )
    metrics_export.add_argument(
        "--check",
        action="store_true",
        help="validate the exposition's grammar and histogram shape first",
    )
    metrics_export.set_defaults(func=cmd_metrics)

    catalog = sub.add_parser("catalog", help="list the workload queries")
    catalog.add_argument("--verbose", "-v", action="store_true")
    catalog.set_defaults(func=cmd_catalog)

    generate = sub.add_parser("generate", help="write a synthetic dataset")
    generate.add_argument("dataset", choices=sorted(_DATASET_GENERATORS))
    generate.add_argument("output", help="output N-Triples path")
    generate.add_argument("--preset", default=None)
    generate.set_defaults(func=cmd_generate)

    stats = sub.add_parser("stats", help="profile a dataset")
    stats.add_argument("--dataset", choices=sorted(_DATASET_GENERATORS), default="bsbm")
    stats.add_argument("--preset", default=None)
    stats.add_argument("--data", default=None, help="N-Triples file to profile instead")
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the statistics as JSON (repro-graph-stats/v1.2)",
    )
    stats.set_defaults(func=cmd_stats)

    trace = sub.add_parser("trace", help="inspect a recorded execution trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_summary = trace_sub.add_parser(
        "summary", help="per-query/per-engine rollup (cycles, bytes, metrics)"
    )
    trace_summary.add_argument("trace_file", help="repro-trace/v1 JSONL file")
    trace_summary.set_defaults(func=cmd_trace)

    trace_tree = trace_sub.add_parser("tree", help="render the span hierarchy")
    trace_tree.add_argument("trace_file", help="repro-trace/v1 JSONL file")
    trace_tree.add_argument(
        "--depth", type=int, default=None, help="limit the rendered depth"
    )
    trace_tree.set_defaults(func=cmd_trace)

    trace_export = trace_sub.add_parser(
        "export", help="convert to another trace format"
    )
    trace_export.add_argument("trace_file", help="repro-trace/v1 JSONL file")
    trace_export.add_argument(
        "--format",
        choices=("perfetto",),
        default="perfetto",
        help="output format (Chrome trace-event JSON for Perfetto)",
    )
    trace_export.add_argument(
        "--output", "-o", default=None, help="write here instead of stdout"
    )
    trace_export.add_argument(
        "--check",
        action="store_true",
        help="validate the export against the trace-event shape first",
    )
    trace_export.set_defaults(func=cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (WorkflowAbortedError, CheckpointError, ServeError) as error:
        # Typed recovery/serving failures get their own exit code so
        # scripts can distinguish "budget exhausted" / "bad ledger,
        # chaos, or workload spec" from ordinary errors; the messages
        # are already self-describing one-liners.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
