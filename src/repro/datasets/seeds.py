"""Shared helpers for seeded synthetic dataset generation."""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

from repro.errors import DatasetError

T = TypeVar("T")


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)


def zipf_weights(n: int, skew: float = 1.0) -> list[float]:
    """Zipf-like weights for skewed categorical choices (rank 1 hottest)."""
    if n <= 0:
        raise DatasetError("need at least one category")
    weights = [1.0 / (rank**skew) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    return rng.choices(items, weights=weights, k=1)[0]


def sample_without_replacement(
    rng: random.Random, items: Sequence[T], count: int
) -> list[T]:
    count = min(count, len(items))
    return rng.sample(list(items), count)
