"""Synthetic PubMed (Bio2RDF release 2) dataset generator.

Models the publication slice queried by MG11-MG18: publications with a
publication type, journal, funding grants (agency + country), authors
(with last names), Medical Subject Headings, and associated chemicals.

Two properties drive the paper's findings and are preserved here:

* ``mesh_heading`` is heavily multi-valued (4-12 headings per record) —
  the join blowup that makes naive Hive materialize a 190GB
  intermediate twice and run out of HDFS space on MG13;
* ``pub_type`` selectivity contrast: most records are "Journal Article"
  (low selectivity, MG15) while few are "News" (high selectivity,
  MG16).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.seeds import make_rng, weighted_choice, zipf_weights
from repro.errors import DatasetError
from repro.rdf.graph import Graph
from repro.rdf.namespaces import PUBMED_INST_NS, PUBMED_NS
from repro.rdf.terms import Literal
from repro.rdf.triples import Triple

PUB_TYPES = ("Journal Article", "Review", "Case Reports", "Letter", "News")
#: Most records are journal articles; "News" is rare (high selectivity).
PUB_TYPE_WEIGHTS = (0.72, 0.12, 0.08, 0.05, 0.03)

COUNTRIES = (
    "United States",
    "United Kingdom",
    "Germany",
    "Japan",
    "France",
    "Canada",
    "China",
    "Australia",
)

LAST_NAMES = (
    "Smith", "Mueller", "Tanaka", "Garcia", "Kim", "Novak", "Okafor",
    "Ivanov", "Rossi", "Dubois", "Chen", "Patel", "Johansson", "Silva",
)


@dataclass(frozen=True)
class PubMedConfig:
    publications: int = 800
    journals: int = 40
    agencies: int = 16
    authors: int = 120
    mesh_pool: int = 80
    chemical_pool: int = 50
    min_mesh: int = 4
    max_mesh: int = 12
    seed: int = 1711  # Bio2RDF release 2 PubMed namespace id

    def __post_init__(self) -> None:
        if self.publications <= 0:
            raise DatasetError("publications must be positive")
        if self.min_mesh > self.max_mesh:
            raise DatasetError("min_mesh must not exceed max_mesh")


def generate(config: PubMedConfig = PubMedConfig()) -> Graph:
    rng = make_rng(config.seed)
    graph = Graph()
    add = graph.add

    journals = [PUBMED_INST_NS.term(f"journal{j}") for j in range(config.journals)]
    authors = [PUBMED_INST_NS.term(f"author{a}") for a in range(config.authors)]
    for index, author in enumerate(authors):
        add(Triple(author, PUBMED_NS.last_name, Literal(LAST_NAMES[index % len(LAST_NAMES)])))

    agencies = [PUBMED_INST_NS.term(f"agency{a}") for a in range(config.agencies)]
    mesh_terms = [Literal(f"MeSH heading {m}") for m in range(config.mesh_pool)]
    chemicals = [Literal(f"chemical {c}") for c in range(config.chemical_pool)]
    mesh_weights = zipf_weights(config.mesh_pool, skew=0.6)
    chem_weights = zipf_weights(config.chemical_pool, skew=0.8)

    grant_counter = 0
    for p in range(config.publications):
        pub = PUBMED_INST_NS.term(f"pmid{p}")
        pub_type = weighted_choice(rng, PUB_TYPES, PUB_TYPE_WEIGHTS)
        add(Triple(pub, PUBMED_NS.pub_type, Literal(pub_type)))
        add(Triple(pub, PUBMED_NS.journal, journals[rng.randrange(config.journals)]))
        for _ in range(rng.randint(0, 2)):
            grant = PUBMED_INST_NS.term(f"grant{grant_counter}")
            grant_counter += 1
            agency_index = rng.randrange(config.agencies)
            add(Triple(pub, PUBMED_NS.grant, grant))
            add(Triple(grant, PUBMED_NS.grant_agency, agencies[agency_index]))
            add(
                Triple(
                    grant,
                    PUBMED_NS.grant_country,
                    Literal(COUNTRIES[agency_index % len(COUNTRIES)]),
                )
            )
        for author in rng.sample(authors, k=min(rng.randint(1, 5), len(authors))):
            add(Triple(pub, PUBMED_NS.author, author))
        mesh_count = rng.randint(config.min_mesh, config.max_mesh)
        # Draw-ordered dict, not a set: iteration order must be a function
        # of the rng stream, never of PYTHONHASHSEED — triple insertion
        # order reaches the engines' physical layouts (see Graph).
        chosen_mesh: dict[Literal, None] = {}
        while len(chosen_mesh) < mesh_count:
            chosen_mesh[weighted_choice(rng, mesh_terms, mesh_weights)] = None
        for term in chosen_mesh:
            add(Triple(pub, PUBMED_NS.mesh_heading, term))
        for _ in range(rng.randint(0, 6)):
            add(Triple(pub, PUBMED_NS.chemical, weighted_choice(rng, chemicals, chem_weights)))
    return graph


_PRESETS = {
    "tiny": PubMedConfig(publications=120, authors=40, max_mesh=6),
    "paper": PubMedConfig(),
    "large": PubMedConfig(publications=3000, authors=300, journals=80),
}


def preset(name: str) -> PubMedConfig:
    try:
        return _PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(_PRESETS))
        raise DatasetError(f"unknown pubmed preset {name!r} (known: {known})") from None
