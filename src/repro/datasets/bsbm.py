"""Synthetic BSBM Business Intelligence dataset generator.

Generates the slice of the Berlin SPARQL Benchmark's e-commerce schema
the BI use case queries touch: typed products with labels and features,
producers, vendors with countries, and offers with prices.  The paper's
selectivity knobs are preserved by construction:

* **ProductType1** is low-selectivity (a large share of products) and
  **ProductType9** is high-selectivity (a small share), matching the
  G1/G3 (lo) vs G2/G4 (hi) contrast;
* products carry 1-4 features from a shared pool (multi-valued);
* every offer links one product and one vendor; vendors have countries.

Scale with ``BSBMConfig.products`` — the paper's BSBM-500K and BSBM-2M
correspond to the ``scale="500k"`` / ``scale="2m"`` presets at
simulation scale (see :func:`preset`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.seeds import make_rng, weighted_choice, zipf_weights
from repro.errors import DatasetError
from repro.rdf.graph import Graph
from repro.rdf.namespaces import BSBM_INST_NS, BSBM_NS
from repro.rdf.terms import IRI, Literal
from repro.rdf.triples import RDF_TYPE, Triple

#: Share of products per type; index 0 is ProductType1 (low selectivity,
#: the bulk of the catalog), the last entry ProductType9 (high
#: selectivity).  Chosen to mirror BSBM's type-hierarchy fanout.
_TYPE_SHARES = (0.40, 0.15, 0.12, 0.10, 0.08, 0.06, 0.05, 0.025, 0.015)

COUNTRIES = ("US", "UK", "DE", "FR", "JP", "CN", "RU", "AT", "ES", "KR")


@dataclass(frozen=True)
class BSBMConfig:
    """Generator knobs (defaults give a laptop-scale dataset)."""

    products: int = 200
    feature_pool: int = 30
    producers: int = 12
    vendors: int = 20
    offers_per_product: int = 4
    min_features: int = 1
    max_features: int = 4
    seed: int = 20160315  # EDBT 2016 opening day

    def __post_init__(self) -> None:
        if self.products <= 0:
            raise DatasetError("products must be positive")
        if self.min_features > self.max_features:
            raise DatasetError("min_features must not exceed max_features")
        if self.vendors <= 0 or self.producers <= 0 or self.feature_pool <= 0:
            raise DatasetError("entity pool sizes must be positive")


def product_type(index: int) -> IRI:
    return BSBM_NS.term(f"ProductType{index}")


def generate(config: BSBMConfig = BSBMConfig()) -> Graph:
    """Generate a BSBM-BI graph."""
    rng = make_rng(config.seed)
    graph = Graph()
    add = graph.add

    vendor_country: dict[IRI, str] = {}
    for v in range(config.vendors):
        vendor = BSBM_INST_NS.term(f"Vendor{v}")
        country = COUNTRIES[v % len(COUNTRIES)]
        vendor_country[vendor] = country
        add(Triple(vendor, BSBM_NS.country, IRI(f"http://downlode.org/rdf/iso-3166/countries#{country}")))
        add(Triple(vendor, BSBM_NS.vendorLabel, Literal(f"vendor {v}")))

    for p in range(config.producers):
        producer = BSBM_INST_NS.term(f"Producer{p}")
        add(Triple(producer, BSBM_NS.producerLabel, Literal(f"producer {p}")))

    type_weights = list(_TYPE_SHARES)
    type_indices = list(range(1, len(_TYPE_SHARES) + 1))
    feature_weights = zipf_weights(config.feature_pool, skew=0.7)
    features = [BSBM_INST_NS.term(f"ProductFeature{f}") for f in range(config.feature_pool)]

    offer_counter = 0
    for p in range(config.products):
        product = BSBM_INST_NS.term(f"Product{p}")
        # The first len(_TYPE_SHARES) products deterministically cover every
        # type so high-selectivity queries (ProductType9) are never empty.
        if p < len(type_indices):
            type_index = type_indices[p]
        else:
            type_index = weighted_choice(rng, type_indices, type_weights)
        add(Triple(product, RDF_TYPE, product_type(type_index)))
        add(Triple(product, BSBM_NS.label, Literal(f"product {p}")))
        add(Triple(product, BSBM_NS.producer, BSBM_INST_NS.term(f"Producer{p % config.producers}")))
        feature_count = rng.randint(config.min_features, config.max_features)
        # Draw-ordered dict, not a set: iteration order must be a function
        # of the rng stream, never of PYTHONHASHSEED — triple insertion
        # order reaches the engines' physical layouts (see Graph).
        chosen: dict[IRI, None] = {}
        while len(chosen) < feature_count:
            chosen[weighted_choice(rng, features, feature_weights)] = None
        for feature in chosen:
            add(Triple(product, BSBM_NS.productFeature, feature))
        for _ in range(config.offers_per_product):
            offer = BSBM_INST_NS.term(f"Offer{offer_counter}")
            offer_counter += 1
            vendor = BSBM_INST_NS.term(f"Vendor{rng.randrange(config.vendors)}")
            price = rng.randint(10, 10000)
            add(Triple(offer, BSBM_NS.product, product))
            add(Triple(offer, BSBM_NS.price, Literal.from_python(price)))
            add(Triple(offer, BSBM_NS.vendor, vendor))
            add(Triple(offer, BSBM_NS.validTo, Literal(f"2016-{1 + rng.randrange(12):02d}-01")))
    return graph


#: Scaled-down presets standing in for the paper's dataset sizes.  The
#: 2M preset is 4x the 500K preset, matching the paper's scale ratio.
_PRESETS = {
    "tiny": BSBMConfig(products=60, vendors=8, offers_per_product=2),
    "500k": BSBMConfig(products=400, vendors=20, offers_per_product=4),
    "2m": BSBMConfig(products=1600, vendors=40, offers_per_product=4),
}


def preset(name: str) -> BSBMConfig:
    try:
        return _PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(_PRESETS))
        raise DatasetError(f"unknown BSBM preset {name!r} (known: {known})") from None
