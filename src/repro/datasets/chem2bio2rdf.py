"""Synthetic Chem2Bio2RDF-style chemogenomics dataset generator.

Models the slice of the Chem2Bio2RDF warehouse the paper's case-study
queries (G5-G9, MG6-MG10) traverse: PubChem bioassays linking compounds
to protein targets (via gi numbers), proteins with gene symbols,
DrugBank drug-gene interactions, KEGG pathways, SIDER side effects, and
Medline-style publications.

The generator preserves the paper's workload-relevant size contrast:
the chemogenomics tables (assays, proteins, interactions, pathways) are
small enough that Hive compiles map-joins for G5-G8, while the
publication tables (``gene`` / ``side_effect`` / ``disease`` on pubs)
are large, forcing full MR cycles on G9/MG9/MG10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.seeds import make_rng, weighted_choice, zipf_weights
from repro.errors import DatasetError
from repro.rdf.graph import Graph
from repro.rdf.namespaces import CHEM_INST_NS, CHEM_NS
from repro.rdf.terms import Literal
from repro.rdf.triples import Triple

SIDE_EFFECTS = (
    "hepatomegaly",
    "nausea",
    "headache",
    "dizziness",
    "rash",
    "fatigue",
    "anemia",
    "insomnia",
)

PATHWAY_NAMES = (
    "MAPK signaling pathway",
    "Apoptosis",
    "Cell cycle",
    "Calcium signaling pathway",
    "Wnt signaling pathway",
    "p53 signaling pathway",
)

DRUG_NAMES = (
    "Dexamethasone",
    "Ibuprofen",
    "Metformin",
    "Warfarin",
    "Atorvastatin",
    "Omeprazole",
    "Lisinopril",
    "Sertraline",
)

DISEASES = (
    "Tuberculosis",
    "HIV",
    "Alzheimer",
    "Diabetes",
    "Hypertension",
    "Asthma",
)


@dataclass(frozen=True)
class ChemConfig:
    """Generator knobs.

    ``publications`` drives the large Medline-style tables; the
    remaining pools stay small (the map-join-friendly VP relations).
    """

    compounds: int = 60
    assays: int = 240
    proteins: int = 40
    genes: int = 30
    drugs: int = 24
    interactions: int = 80
    targets: int = 50
    pathways: int = 12
    siders: int = 90
    publications: int = 1200
    seed: int = 42

    def __post_init__(self) -> None:
        for name in ("compounds", "assays", "proteins", "genes", "drugs"):
            if getattr(self, name) <= 0:
                raise DatasetError(f"{name} must be positive")


def generate(config: ChemConfig = ChemConfig()) -> Graph:
    rng = make_rng(config.seed)
    graph = Graph()
    add = graph.add

    cids = [CHEM_INST_NS.term(f"cid{c}") for c in range(config.compounds)]
    gis = [CHEM_INST_NS.term(f"gi{g}") for g in range(config.proteins)]
    symbols = [Literal(f"GENE{g}") for g in range(config.genes)]
    drugs = [CHEM_INST_NS.term(f"drug{d}") for d in range(config.drugs)]
    proteins = [CHEM_INST_NS.term(f"protein{p}") for p in range(config.proteins)]
    gene_nodes = [CHEM_INST_NS.term(f"gene{g}") for g in range(config.genes)]

    # Gene nodes carry the symbol vocabulary (publication queries join
    # publications to genes through these).
    for node, symbol in zip(gene_nodes, symbols):
        add(Triple(node, CHEM_NS.geneSymbol, symbol))

    # Proteins: gi number + gene symbol (PubChem-to-UniProt bridge).
    for index, protein in enumerate(proteins):
        add(Triple(protein, CHEM_NS.gi, gis[index]))
        add(Triple(protein, CHEM_NS.geneSymbol, symbols[index % config.genes]))

    # Bioassays: compound, outcome, score, target gi.
    cid_weights = zipf_weights(config.compounds, skew=0.8)
    for a in range(config.assays):
        assay = CHEM_INST_NS.term(f"assay{a}")
        add(Triple(assay, CHEM_NS.CID, weighted_choice(rng, cids, cid_weights)))
        add(Triple(assay, CHEM_NS.outcome, Literal("active" if rng.random() < 0.6 else "inactive")))
        add(Triple(assay, CHEM_NS.Score, Literal.from_python(rng.randint(1, 100))))
        add(Triple(assay, CHEM_NS.gi, gis[rng.randrange(config.proteins)]))

    # Drugs: generic name + associated compound.
    for index, drug in enumerate(drugs):
        add(Triple(drug, CHEM_NS.Generic_Name, Literal(DRUG_NAMES[index % len(DRUG_NAMES)])))
        add(Triple(drug, CHEM_NS.CID, cids[rng.randrange(config.compounds)]))

    # DrugBank drug-gene interactions.
    for i in range(config.interactions):
        interaction = CHEM_INST_NS.term(f"dgi{i}")
        add(Triple(interaction, CHEM_NS.gene, symbols[rng.randrange(config.genes)]))
        add(Triple(interaction, CHEM_NS.DBID, drugs[rng.randrange(config.drugs)]))

    # Drug targets (DrugBank → UniProt).
    for t in range(config.targets):
        target = CHEM_INST_NS.term(f"target{t}")
        add(Triple(target, CHEM_NS.DBID, drugs[rng.randrange(config.drugs)]))
        add(Triple(target, CHEM_NS.SwissProt_ID, proteins[rng.randrange(config.proteins)]))

    # KEGG pathways with protein membership (multi-valued).
    for p in range(config.pathways):
        pathway = CHEM_INST_NS.term(f"pathway{p}")
        add(Triple(pathway, CHEM_NS.Pathway_name, Literal(PATHWAY_NAMES[p % len(PATHWAY_NAMES)])))
        add(Triple(pathway, CHEM_NS.pathwayid, CHEM_INST_NS.term(f"pid{p}")))
        for protein in rng.sample(proteins, k=min(rng.randint(3, 8), len(proteins))):
            add(Triple(pathway, CHEM_NS.protein, protein))

    # SIDER side-effect records: effect + compound.
    for s in range(config.siders):
        sider = CHEM_INST_NS.term(f"sider{s}")
        add(Triple(sider, CHEM_NS.side_effect, Literal(SIDE_EFFECTS[rng.randrange(len(SIDE_EFFECTS))])))
        add(Triple(sider, CHEM_NS.cid, cids[rng.randrange(config.compounds)]))

    # Medline-style publications: the LARGE tables (gene, side_effect,
    # disease are multi-valued per record).
    for m in range(config.publications):
        pub = CHEM_INST_NS.term(f"pmid{m}")
        for node in rng.sample(gene_nodes, k=min(rng.randint(1, 3), len(gene_nodes))):
            add(Triple(pub, CHEM_NS.gene, node))
        for _ in range(rng.randint(1, 2)):
            add(Triple(pub, CHEM_NS.side_effect, Literal(SIDE_EFFECTS[rng.randrange(len(SIDE_EFFECTS))])))
        if rng.random() < 0.7:
            add(Triple(pub, CHEM_NS.disease, Literal(DISEASES[rng.randrange(len(DISEASES))])))
    return graph


_PRESETS = {
    "tiny": ChemConfig(compounds=20, assays=60, publications=150),
    "paper": ChemConfig(),
    "large": ChemConfig(
        compounds=120, assays=600, proteins=80, genes=60, interactions=200,
        targets=120, siders=220, publications=4000,
    ),
}


def preset(name: str) -> ChemConfig:
    try:
        return _PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(_PRESETS))
        raise DatasetError(f"unknown chem preset {name!r} (known: {known})") from None
