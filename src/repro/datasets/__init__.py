"""Synthetic benchmark dataset generators (BSBM-BI, Chem2Bio2RDF, PubMed)."""

from repro.datasets import bsbm, chem2bio2rdf, pubmed
from repro.datasets.bsbm import BSBMConfig
from repro.datasets.chem2bio2rdf import ChemConfig
from repro.datasets.pubmed import PubMedConfig

__all__ = [
    "BSBMConfig",
    "ChemConfig",
    "PubMedConfig",
    "bsbm",
    "chem2bio2rdf",
    "pubmed",
]
