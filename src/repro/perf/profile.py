"""The ``repro bench --profile`` harness.

Runs paper experiments several times in one process — once with the
hot-path caches enabled, once with the factorized intermediate
representation forced off (the flat A/B baseline), and once in
:func:`repro.perf.reference_mode` (the seed's uncached implementation)
— then:

* asserts the simulated counters, costs, and result-row digests are
  **bit-identical** between the cached and reference executions (the
  caching invariant);
* asserts every answer is **bit-identical** between the factorized and
  flat executions (the factorization invariant — simulated byte
  counters legitimately differ, that is the point);
* reports the per-run bytes-shuffled reduction factorization bought
  (``shuffle_reduction``) alongside the flat-pass byte counters;
* reports real wall-clock time per engine run, broken into phases
  (``plan``, ``load``, ``jobs``, ``shuffle``, ``materialize``);
* emits a machine-readable JSON report (``BENCH_PR6.json``) in a stable
  schema so the perf trajectory can be tracked across PRs.

The reference pass can be skipped (``reference=False``) when only the
phase breakdown is wanted; the flat A/B pass with ``flat_baseline=False``.
:func:`check_profile_golden` pins the reduction claim in CI: the
committed golden must show >= ``min_reduction`` bytes-shuffled reduction
on at least ``min_queries`` MG-class runs, and a fresh report must agree
with the golden within ``tolerance``.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any, Callable

from repro.bench.harness import (
    ExperimentResult,
    table3_bsbm,
    table3_chem,
    figure8a,
    figure8b,
    figure8c,
    table4_pubmed,
)
from repro.errors import ReproError
from repro.ntga.factorized import active_representation
from repro.obs import Stopwatch
from repro.perf import PerfRecorder, recording, reference_mode

#: Schema tag for the JSON report; bump on shape changes.
PROFILE_SCHEMA = "repro-bench-profile/v2"

#: Experiments the profiler knows how to run.  Each entry maps the
#: experiment id to ``(dataset builder, experiment runner)`` where the
#: runner takes a pre-built graph (so cached and reference passes see
#: the same data) and a verify flag.
Runner = Callable[[Any, bool], ExperimentResult]


def _graph(dataset: str, preset: str):
    from repro.datasets import bsbm, chem2bio2rdf, pubmed

    builders = {
        "bsbm": lambda: bsbm.generate(bsbm.preset(preset)),
        "chem": lambda: chem2bio2rdf.generate(chem2bio2rdf.preset(preset)),
        "pubmed": lambda: pubmed.generate(pubmed.preset(preset)),
    }
    return builders[dataset]()


PROFILE_EXPERIMENTS: dict[str, tuple[str, str, Runner]] = {
    "table3-bsbm-tiny": ("bsbm", "tiny", lambda g, v: table3_bsbm("tiny", v, g)),
    "table3-bsbm-500k": ("bsbm", "500k", lambda g, v: table3_bsbm("500k", v, g)),
    "table3-bsbm-2m": ("bsbm", "2m", lambda g, v: table3_bsbm("2m", v, g)),
    "table3-chem": ("chem", "paper", lambda g, v: table3_chem(v, g)),
    "figure8a": ("bsbm", "500k", lambda g, v: figure8a(v, g)),
    "figure8b": ("bsbm", "2m", lambda g, v: figure8b(v, g)),
    "figure8c": ("chem", "paper", lambda g, v: figure8c(v, g)),
    "table4": ("pubmed", "paper", lambda g, v: table4_pubmed(v, g)),
}


def _measurement_signature(result: ExperimentResult) -> dict[tuple[str, str], dict]:
    """The invariant slice of an experiment's measurements."""
    signature: dict[tuple[str, str], dict] = {}
    for m in result.measurements:
        signature[(m.qid, m.engine)] = {
            "rows": m.rows,
            "rows_digest": m.rows_digest,
            "cycles": m.cycles,
            "map_only_cycles": m.map_only_cycles,
            "cost_seconds": repr(m.cost_seconds),
            "shuffle_bytes": m.shuffle_bytes,
            "materialized_bytes": m.materialized_bytes,
            "counters": m.counters,
            "failed": m.failed,
        }
    return signature


def _runs_payload(
    result: ExperimentResult, flat_result: ExperimentResult | None = None
) -> list[dict[str, Any]]:
    flat_by_key = (
        {(m.qid, m.engine): m for m in flat_result.measurements}
        if flat_result is not None
        else {}
    )
    runs: list[dict[str, Any]] = []
    for m in result.measurements:
        run: dict[str, Any] = {
            "qid": m.qid,
            "engine": m.engine,
            "rows": m.rows,
            "rows_digest": m.rows_digest,
            "cycles": m.cycles,
            "map_only_cycles": m.map_only_cycles,
            "simulated_cost_seconds": m.cost_seconds,
            "shuffle_bytes": m.shuffle_bytes,
            "materialized_bytes": m.materialized_bytes,
            "wall_seconds": round(m.wall_seconds, 6),
            "phases": {k: round(v, 6) for k, v in sorted(m.phases.items())},
            "failed": m.failed,
        }
        flat = flat_by_key.get((m.qid, m.engine))
        if flat is not None:
            run["shuffle_bytes_flat"] = flat.shuffle_bytes
            run["materialized_bytes_flat"] = flat.materialized_bytes
            run["flat_wall_seconds"] = round(flat.wall_seconds, 6)
            run["shuffle_reduction"] = (
                round(1.0 - m.shuffle_bytes / flat.shuffle_bytes, 6)
                if flat.shuffle_bytes
                else None
            )
        runs.append(run)
    return runs


def profile_experiments(
    names: list[str],
    *,
    reference: bool = True,
    flat_baseline: bool = True,
    verify: bool = False,
    pr_tag: str = "PR6",
) -> dict[str, Any]:
    """Profile the named experiments; returns the JSON-ready report.

    Raises :class:`ReproError` when the cached and reference executions
    disagree on any simulated counter, cost, or result digest, or when
    the factorized and flat executions disagree on any answer.
    """
    unknown = [n for n in names if n not in PROFILE_EXPERIMENTS]
    if unknown:
        known = ", ".join(sorted(PROFILE_EXPERIMENTS))
        raise ReproError(f"unknown profile experiment(s) {unknown} (known: {known})")

    experiments: list[dict[str, Any]] = []
    mismatches: list[str] = []
    total_wall = 0.0
    total_reference_wall = 0.0

    for name in names:
        dataset, preset, runner = PROFILE_EXPERIMENTS[name]
        graph = _graph(dataset, preset)

        recorder = PerfRecorder()
        with Stopwatch() as watch:
            with recording(recorder):
                result = runner(graph, verify)
        wall = watch.seconds

        flat_result = None
        flat_wall = None
        if flat_baseline:
            # The A/B pass: same experiment with the factorized
            # representation forced off.  Answers must be bit-identical;
            # the byte counters are *expected* to differ — that delta is
            # the headline shuffle_reduction column.
            with Stopwatch() as flat_watch:
                with active_representation("flat"):
                    flat_result = runner(graph, verify)
            flat_wall = flat_watch.seconds
            cached_by_key = {
                (m.qid, m.engine): m for m in result.measurements
            }
            for m in flat_result.measurements:
                peer = cached_by_key.get((m.qid, m.engine))
                if peer is None or (peer.rows, peer.rows_digest) != (
                    m.rows,
                    m.rows_digest,
                ):
                    mismatches.append(
                        f"representation:{name}:{m.qid}/{m.engine} "
                        f"factorized rows/digest "
                        f"{(peer.rows, peer.rows_digest) if peer else None!r} "
                        f"!= flat {(m.rows, m.rows_digest)!r}"
                    )

        entry: dict[str, Any] = {
            "exp_id": name,
            "dataset": dataset,
            "preset": preset,
            "wall_seconds": round(wall, 6),
            "engine_wall_seconds": round(recorder.total_wall_seconds(), 6),
            "runs": _runs_payload(result, flat_result),
        }
        if flat_wall is not None:
            entry["flat_wall_seconds"] = round(flat_wall, 6)

        if reference:
            with Stopwatch() as ref_watch:
                with reference_mode():
                    ref_result = runner(graph, verify)
            ref_wall = ref_watch.seconds
            entry["reference_wall_seconds"] = round(ref_wall, 6)
            entry["speedup"] = round(ref_wall / wall, 3) if wall else None
            cached_sig = _measurement_signature(result)
            ref_sig = _measurement_signature(ref_result)
            for key in sorted(set(cached_sig) | set(ref_sig)):
                if cached_sig.get(key) != ref_sig.get(key):
                    mismatches.append(
                        f"{name}:{key[0]}/{key[1]} cached={cached_sig.get(key)!r} "
                        f"reference={ref_sig.get(key)!r}"
                    )
            total_reference_wall += ref_wall

        total_wall += wall
        experiments.append(entry)

    report: dict[str, Any] = {
        "schema": PROFILE_SCHEMA,
        "pr": pr_tag,
        "generated_by": "repro bench --profile",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "experiments": experiments,
        "suite": {
            "experiments": names,
            "wall_seconds": round(total_wall, 6),
        },
        # Vacuously claiming a match when the reference pass was skipped
        # would let a --no-reference run masquerade as verified: use None.
        "counters_match_reference": (
            not [m for m in mismatches if not m.startswith("representation:")]
        )
        if reference
        else None,
        "answers_match_flat": (
            not [m for m in mismatches if m.startswith("representation:")]
        )
        if flat_baseline
        else None,
    }
    if reference:
        report["suite"]["reference_wall_seconds"] = round(total_reference_wall, 6)
        report["suite"]["speedup"] = (
            round(total_reference_wall / total_wall, 3) if total_wall else None
        )
    if mismatches:
        report["mismatches"] = mismatches
        raise ProfileMismatchError(report, mismatches)
    return report


class ProfileMismatchError(ReproError):
    """Cached and reference executions produced different simulated numbers."""

    def __init__(self, report: dict[str, Any], mismatches: list[str]):
        self.report = report
        self.mismatches = mismatches
        preview = "; ".join(mismatches[:5])
        super().__init__(
            f"{len(mismatches)} simulated-counter mismatch(es) between cached "
            f"and reference execution: {preview}"
        )


def write_report(report: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def check_profile_golden(
    report_or_path: dict[str, Any] | str | Path,
    fresh: dict[str, Any] | None = None,
    *,
    tolerance: float = 0.02,
    min_reduction: float = 0.25,
    min_queries: int = 2,
) -> list[str]:
    """Pin the factorization claim in a committed ``BENCH_PR6.json``.

    Two layers of checking, both returning human-readable problems
    (empty list = golden holds):

    * the golden itself must carry >= *min_reduction* bytes-shuffled
      reduction on at least *min_queries* MG-class runs, with every
      flat-vs-factorized answer bit-identical (``answers_match_flat``);
    * when *fresh* (a just-produced report) is given, its simulated byte
      counters and row digests must match the golden exactly and each
      ``shuffle_reduction`` must agree within *tolerance* — wall-clock
      fields are machine-dependent and deliberately ignored.
    """
    if isinstance(report_or_path, (str, Path)):
        golden = json.loads(Path(report_or_path).read_text())
    else:
        golden = report_or_path
    problems: list[str] = []

    if golden.get("schema") != PROFILE_SCHEMA:
        problems.append(
            f"schema mismatch: golden={golden.get('schema')!r} "
            f"expected {PROFILE_SCHEMA!r}"
        )
        return problems
    if golden.get("answers_match_flat") is not True:
        problems.append(
            "golden does not certify flat-vs-factorized answer identity "
            f"(answers_match_flat={golden.get('answers_match_flat')!r})"
        )

    def runs_by_key(report: dict[str, Any]) -> dict[tuple, dict[str, Any]]:
        return {
            (experiment["exp_id"], run["qid"], run["engine"]): run
            for experiment in report.get("experiments", [])
            for run in experiment.get("runs", [])
        }

    golden_runs = runs_by_key(golden)
    reduced = sorted(
        {
            key[1]
            for key, run in golden_runs.items()
            if key[1].startswith("MG")
            and (run.get("shuffle_reduction") or 0.0) >= min_reduction
        }
    )
    if len(reduced) < min_queries:
        problems.append(
            f"golden shows >= {min_reduction:.0%} shuffle reduction on only "
            f"{len(reduced)} MG-class quer{'y' if len(reduced) == 1 else 'ies'} "
            f"({', '.join(reduced) or 'none'}); need {min_queries}"
        )

    if fresh is None:
        return problems

    fresh_runs = runs_by_key(fresh)
    for key in sorted(set(golden_runs) | set(fresh_runs)):
        old, new = golden_runs.get(key), fresh_runs.get(key)
        label = f"{key[0]}:{key[1]}/{key[2]}"
        if old is None or new is None:
            problems.append(
                f"{label}: present only in {'fresh' if old is None else 'golden'}"
            )
            continue
        for field in (
            "rows",
            "rows_digest",
            "cycles",
            "map_only_cycles",
            "shuffle_bytes",
            "materialized_bytes",
            "shuffle_bytes_flat",
            "materialized_bytes_flat",
            "failed",
        ):
            if old.get(field) != new.get(field):
                problems.append(
                    f"{label}: {field} differs: golden={old.get(field)!r} "
                    f"fresh={new.get(field)!r}"
                )
        old_reduction = old.get("shuffle_reduction")
        new_reduction = new.get("shuffle_reduction")
        if (old_reduction is None) != (new_reduction is None):
            problems.append(
                f"{label}: shuffle_reduction differs: golden={old_reduction!r} "
                f"fresh={new_reduction!r}"
            )
        elif (
            old_reduction is not None
            and abs(old_reduction - new_reduction) > tolerance
        ):
            problems.append(
                f"{label}: shuffle_reduction drifted beyond {tolerance}: "
                f"golden={old_reduction} fresh={new_reduction}"
            )
    return problems


def render_report(report: dict[str, Any]) -> str:
    """A terminal-friendly per-engine, per-phase timing table."""
    lines: list[str] = []
    for experiment in report["experiments"]:
        header = f"{experiment['exp_id']} ({experiment['dataset']}/{experiment['preset']})"
        timing = f"wall={experiment['wall_seconds']:.2f}s"
        if "reference_wall_seconds" in experiment:
            timing += (
                f" reference={experiment['reference_wall_seconds']:.2f}s"
                f" speedup={experiment['speedup']}x"
            )
        lines.append(f"{header}: {timing}")
        lines.append(
            f"  {'query':6s} {'engine':16s} {'wall':>8s} "
            f"{'plan':>7s} {'load':>7s} {'jobs':>7s} {'shuffle':>8s} {'matrlz':>7s} "
            f"{'reduc':>7s}"
        )
        for run in experiment["runs"]:
            phases = run["phases"]
            reduction = run.get("shuffle_reduction")
            lines.append(
                f"  {run['qid']:6s} {run['engine']:16s} {run['wall_seconds']:7.3f}s "
                f"{phases.get('plan', 0.0):6.3f}s {phases.get('load', 0.0):6.3f}s "
                f"{phases.get('jobs', 0.0):6.3f}s {phases.get('shuffle', 0.0):7.3f}s "
                f"{phases.get('materialize', 0.0):6.3f}s "
                + (f"{reduction * 100:6.1f}%" if reduction is not None else f"{'-':>7s}")
            )
    suite = report["suite"]
    summary = f"SUITE: wall={suite['wall_seconds']:.2f}s"
    if "reference_wall_seconds" in suite:
        summary += (
            f" reference={suite['reference_wall_seconds']:.2f}s"
            f" speedup={suite['speedup']}x"
        )
    if report["counters_match_reference"] is not None:
        summary += f" counters_match_reference={report['counters_match_reference']}"
    if report.get("answers_match_flat") is not None:
        summary += f" answers_match_flat={report['answers_match_flat']}"
    lines.append(summary)
    return "\n".join(lines)
