"""The ``repro bench --profile`` harness.

Runs paper experiments twice in one process — once with the hot-path
caches enabled, once in :func:`repro.perf.reference_mode` (the seed's
uncached implementation) — then:

* asserts the simulated counters, costs, and result-row digests are
  **bit-identical** between the two executions (the caching invariant);
* reports real wall-clock time per engine run, broken into phases
  (``plan``, ``load``, ``jobs``, ``shuffle``, ``materialize``);
* emits a machine-readable JSON report (``BENCH_PR1.json``) in a stable
  schema so the perf trajectory can be tracked across PRs.

The reference pass can be skipped (``reference=False``) when only the
phase breakdown is wanted.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any, Callable

from repro.bench.harness import (
    ExperimentResult,
    table3_bsbm,
    table3_chem,
    figure8a,
    figure8b,
    figure8c,
    table4_pubmed,
)
from repro.errors import ReproError
from repro.obs import Stopwatch
from repro.perf import PerfRecorder, recording, reference_mode

#: Schema tag for the JSON report; bump on shape changes.
PROFILE_SCHEMA = "repro-bench-profile/v1"

#: Experiments the profiler knows how to run.  Each entry maps the
#: experiment id to ``(dataset builder, experiment runner)`` where the
#: runner takes a pre-built graph (so cached and reference passes see
#: the same data) and a verify flag.
Runner = Callable[[Any, bool], ExperimentResult]


def _graph(dataset: str, preset: str):
    from repro.datasets import bsbm, chem2bio2rdf, pubmed

    builders = {
        "bsbm": lambda: bsbm.generate(bsbm.preset(preset)),
        "chem": lambda: chem2bio2rdf.generate(chem2bio2rdf.preset(preset)),
        "pubmed": lambda: pubmed.generate(pubmed.preset(preset)),
    }
    return builders[dataset]()


PROFILE_EXPERIMENTS: dict[str, tuple[str, str, Runner]] = {
    "table3-bsbm-tiny": ("bsbm", "tiny", lambda g, v: table3_bsbm("tiny", v, g)),
    "table3-bsbm-500k": ("bsbm", "500k", lambda g, v: table3_bsbm("500k", v, g)),
    "table3-bsbm-2m": ("bsbm", "2m", lambda g, v: table3_bsbm("2m", v, g)),
    "table3-chem": ("chem", "paper", lambda g, v: table3_chem(v, g)),
    "figure8a": ("bsbm", "500k", lambda g, v: figure8a(v, g)),
    "figure8b": ("bsbm", "2m", lambda g, v: figure8b(v, g)),
    "figure8c": ("chem", "paper", lambda g, v: figure8c(v, g)),
    "table4": ("pubmed", "paper", lambda g, v: table4_pubmed(v, g)),
}


def _measurement_signature(result: ExperimentResult) -> dict[tuple[str, str], dict]:
    """The invariant slice of an experiment's measurements."""
    signature: dict[tuple[str, str], dict] = {}
    for m in result.measurements:
        signature[(m.qid, m.engine)] = {
            "rows": m.rows,
            "rows_digest": m.rows_digest,
            "cycles": m.cycles,
            "map_only_cycles": m.map_only_cycles,
            "cost_seconds": repr(m.cost_seconds),
            "shuffle_bytes": m.shuffle_bytes,
            "materialized_bytes": m.materialized_bytes,
            "counters": m.counters,
            "failed": m.failed,
        }
    return signature


def _runs_payload(result: ExperimentResult) -> list[dict[str, Any]]:
    return [
        {
            "qid": m.qid,
            "engine": m.engine,
            "rows": m.rows,
            "cycles": m.cycles,
            "map_only_cycles": m.map_only_cycles,
            "simulated_cost_seconds": m.cost_seconds,
            "shuffle_bytes": m.shuffle_bytes,
            "materialized_bytes": m.materialized_bytes,
            "wall_seconds": round(m.wall_seconds, 6),
            "phases": {k: round(v, 6) for k, v in sorted(m.phases.items())},
            "failed": m.failed,
        }
        for m in result.measurements
    ]


def profile_experiments(
    names: list[str],
    *,
    reference: bool = True,
    verify: bool = False,
    pr_tag: str = "PR1",
) -> dict[str, Any]:
    """Profile the named experiments; returns the JSON-ready report.

    Raises :class:`ReproError` when the cached and reference executions
    disagree on any simulated counter, cost, or result digest.
    """
    unknown = [n for n in names if n not in PROFILE_EXPERIMENTS]
    if unknown:
        known = ", ".join(sorted(PROFILE_EXPERIMENTS))
        raise ReproError(f"unknown profile experiment(s) {unknown} (known: {known})")

    experiments: list[dict[str, Any]] = []
    mismatches: list[str] = []
    total_wall = 0.0
    total_reference_wall = 0.0

    for name in names:
        dataset, preset, runner = PROFILE_EXPERIMENTS[name]
        graph = _graph(dataset, preset)

        recorder = PerfRecorder()
        with Stopwatch() as watch:
            with recording(recorder):
                result = runner(graph, verify)
        wall = watch.seconds

        entry: dict[str, Any] = {
            "exp_id": name,
            "dataset": dataset,
            "preset": preset,
            "wall_seconds": round(wall, 6),
            "engine_wall_seconds": round(recorder.total_wall_seconds(), 6),
            "runs": _runs_payload(result),
        }

        if reference:
            with Stopwatch() as ref_watch:
                with reference_mode():
                    ref_result = runner(graph, verify)
            ref_wall = ref_watch.seconds
            entry["reference_wall_seconds"] = round(ref_wall, 6)
            entry["speedup"] = round(ref_wall / wall, 3) if wall else None
            cached_sig = _measurement_signature(result)
            ref_sig = _measurement_signature(ref_result)
            for key in sorted(set(cached_sig) | set(ref_sig)):
                if cached_sig.get(key) != ref_sig.get(key):
                    mismatches.append(
                        f"{name}:{key[0]}/{key[1]} cached={cached_sig.get(key)!r} "
                        f"reference={ref_sig.get(key)!r}"
                    )
            total_reference_wall += ref_wall

        total_wall += wall
        experiments.append(entry)

    report: dict[str, Any] = {
        "schema": PROFILE_SCHEMA,
        "pr": pr_tag,
        "generated_by": "repro bench --profile",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "experiments": experiments,
        "suite": {
            "experiments": names,
            "wall_seconds": round(total_wall, 6),
        },
        # Vacuously claiming a match when the reference pass was skipped
        # would let a --no-reference run masquerade as verified: use None.
        "counters_match_reference": (not mismatches) if reference else None,
    }
    if reference:
        report["suite"]["reference_wall_seconds"] = round(total_reference_wall, 6)
        report["suite"]["speedup"] = (
            round(total_reference_wall / total_wall, 3) if total_wall else None
        )
    if mismatches:
        report["mismatches"] = mismatches
        raise ProfileMismatchError(report, mismatches)
    return report


class ProfileMismatchError(ReproError):
    """Cached and reference executions produced different simulated numbers."""

    def __init__(self, report: dict[str, Any], mismatches: list[str]):
        self.report = report
        self.mismatches = mismatches
        preview = "; ".join(mismatches[:5])
        super().__init__(
            f"{len(mismatches)} simulated-counter mismatch(es) between cached "
            f"and reference execution: {preview}"
        )


def write_report(report: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def render_report(report: dict[str, Any]) -> str:
    """A terminal-friendly per-engine, per-phase timing table."""
    lines: list[str] = []
    for experiment in report["experiments"]:
        header = f"{experiment['exp_id']} ({experiment['dataset']}/{experiment['preset']})"
        timing = f"wall={experiment['wall_seconds']:.2f}s"
        if "reference_wall_seconds" in experiment:
            timing += (
                f" reference={experiment['reference_wall_seconds']:.2f}s"
                f" speedup={experiment['speedup']}x"
            )
        lines.append(f"{header}: {timing}")
        lines.append(
            f"  {'query':6s} {'engine':16s} {'wall':>8s} "
            f"{'plan':>7s} {'load':>7s} {'jobs':>7s} {'shuffle':>8s} {'matrlz':>7s}"
        )
        for run in experiment["runs"]:
            phases = run["phases"]
            lines.append(
                f"  {run['qid']:6s} {run['engine']:16s} {run['wall_seconds']:7.3f}s "
                f"{phases.get('plan', 0.0):6.3f}s {phases.get('load', 0.0):6.3f}s "
                f"{phases.get('jobs', 0.0):6.3f}s {phases.get('shuffle', 0.0):7.3f}s "
                f"{phases.get('materialize', 0.0):6.3f}s"
            )
    suite = report["suite"]
    summary = f"SUITE: wall={suite['wall_seconds']:.2f}s"
    if "reference_wall_seconds" in suite:
        summary += (
            f" reference={suite['reference_wall_seconds']:.2f}s"
            f" speedup={suite['speedup']}x"
        )
    if report["counters_match_reference"] is not None:
        summary += f" counters_match_reference={report['counters_match_reference']}"
    lines.append(summary)
    return "\n".join(lines)
