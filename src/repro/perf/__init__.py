"""Performance instrumentation for the simulator substrate.

This package has two faces:

* a **lightweight recorder** (this module) that the MapReduce runner and
  the engines call into to attribute real wall-clock time to phases
  (``plan``, ``load``, ``jobs``, ``shuffle``, ``materialize``).  When no
  recorder is installed the hooks are near-free, so production runs pay
  nothing;
* a **reference mode** switch that disables every size/sort-key cache
  introduced by the hot-path overhaul, restoring the seed's uncached
  structural computations.  Profiling runs the same workload both ways
  and asserts the *simulated* counters are bit-identical — the caching
  invariant this repository's cost model depends on.

Heavier machinery lives in the submodules (imported explicitly so this
module stays cheap for the runner to import):

* :mod:`repro.perf.goldens` — capture/compare golden counters and rows;
* :mod:`repro.perf.profile` — the ``repro bench --profile`` harness that
  emits ``BENCH_PR1.json``.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterator

__all__ = [
    "PerfRecorder",
    "RunTiming",
    "active_recorder",
    "detached",
    "phase",
    "recording",
    "reference_mode",
    "set_caches_enabled",
    "rows_digest",
]


@dataclass
class RunTiming:
    """Wall-clock accounting for one engine execution."""

    labels: dict[str, str]
    phases: dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            **self.labels,
            "wall_seconds": self.wall_seconds,
            "phases": {name: round(seconds, 6) for name, seconds in sorted(self.phases.items())},
        }


class PerfRecorder:
    """Collects per-run phase timings.

    The runner and engines report phase durations via :func:`phase`;
    the bench harness brackets each engine execution with
    :meth:`begin_run` / :meth:`end_run`.  Phase time reported outside a
    run bracket is accumulated under a synthetic ``(unattributed)`` run.
    """

    def __init__(self) -> None:
        self.runs: list[RunTiming] = []
        self._current: RunTiming | None = None

    def begin_run(self, **labels: str) -> None:
        self._current = RunTiming(labels=dict(labels))

    def end_run(self, wall_seconds: float) -> RunTiming:
        run = self._current
        if run is None:
            run = RunTiming(labels={"qid": "(unattributed)", "engine": "?"})
        run.wall_seconds = wall_seconds
        self.runs.append(run)
        self._current = None
        return run

    def add_phase(self, name: str, seconds: float) -> None:
        run = self._current
        if run is None:
            run = RunTiming(labels={"qid": "(unattributed)", "engine": "?"})
            self._current = run
        run.phases[name] = run.phases.get(name, 0.0) + seconds

    def total_wall_seconds(self) -> float:
        return sum(run.wall_seconds for run in self.runs)


#: The currently-installed recorder (None = instrumentation disabled).
_ACTIVE: PerfRecorder | None = None


def active_recorder() -> PerfRecorder | None:
    return _ACTIVE


@contextmanager
def recording(recorder: PerfRecorder | None = None) -> Iterator[PerfRecorder]:
    """Install *recorder* (a fresh one by default) for the duration."""
    global _ACTIVE
    recorder = recorder if recorder is not None else PerfRecorder()
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous


@contextmanager
def detached() -> Iterator[None]:
    """Suspend the installed recorder for the duration.

    Phase time spent inside the block is attributed to nobody — the
    side-effect-free EXPLAIN path runs its probe execution under this so
    the caller's per-run phase accounting stays untouched.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    try:
        yield
    finally:
        _ACTIVE = previous


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Attribute the wrapped wall-clock time to phase *name*.

    A no-op (beyond one global read) when no recorder is installed.
    """
    recorder = _ACTIVE
    if recorder is None:
        yield
        return
    started = perf_counter()
    try:
        yield
    finally:
        recorder.add_phase(name, perf_counter() - started)


# ---------------------------------------------------------------------------
# Reference (uncached) mode
# ---------------------------------------------------------------------------


def set_caches_enabled(enabled: bool) -> None:
    """Toggle every hot-path cache at once.

    Covers the size caches consulted by
    :func:`repro.mapreduce.cost.estimate_size` (term/triple/triplegroup
    memos included) and the interned sort keys in
    :mod:`repro.mapreduce.runner`.
    """
    from repro.mapreduce import cost, runner

    cost.SIZE_CACHE_ENABLED = enabled
    runner.SORT_KEY_CACHE_ENABLED = enabled


@contextmanager
def reference_mode() -> Iterator[None]:
    """Run with every cache disabled — the seed's uncached behavior.

    Used by the profiler to measure the pre-overhaul wall-clock cost and
    to assert that cached and uncached executions produce bit-identical
    simulated counters.
    """
    from repro.mapreduce import cost, runner

    previous = (cost.SIZE_CACHE_ENABLED, runner.SORT_KEY_CACHE_ENABLED)
    set_caches_enabled(False)
    try:
        yield
    finally:
        cost.SIZE_CACHE_ENABLED, runner.SORT_KEY_CACHE_ENABLED = previous


# ---------------------------------------------------------------------------
# Result fingerprinting
# ---------------------------------------------------------------------------


def rows_digest(rows: list[dict]) -> str:
    """A stable fingerprint of an engine's result rows, **in order**.

    Row order is part of the fingerprint on purpose: the sort-key
    overhaul must not reorder combiner/reducer output, and any reorder
    shows up here even when the row multiset is unchanged.
    """
    hasher = hashlib.sha256()
    for row in rows:
        rendered = ";".join(
            f"{variable.n3()}={term.n3()}"
            for variable, term in sorted(row.items(), key=lambda kv: kv[0].name)
        )
        hasher.update(rendered.encode("utf-8"))
        hasher.update(b"\x1e")
    return hasher.hexdigest()
