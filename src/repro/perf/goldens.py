"""Golden simulated-output capture and comparison.

A *golden* records everything the simulator is supposed to hold
invariant under performance work: per-workflow counters, MR cycle
counts, per-job byte/record volumes, simulated cost, and an
order-sensitive digest of the result rows.  The committed golden files
under ``tests/golden/`` were captured from the seed (uncached)
implementation; the golden tests and the CI perf smoke re-capture and
require a bit-identical match.

Regenerate (only when the *simulated* semantics intentionally change)::

    PYTHONPATH=src python -m repro.perf.goldens

"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any

from repro.bench.catalog import get_query
from repro.core.engines import PAPER_ENGINES, make_engine, to_analytical
from repro.core.results import EngineConfig, ExecutionReport
from repro.perf import rows_digest
from repro.rdf.graph import Graph

#: Version tag for the golden schema (bump when the capture shape changes).
GOLDEN_SCHEMA = "repro-golden/v1"

#: The golden workload: one multi-grouping query per dataset (per the
#: paper's three workloads), on the tiny presets so tests stay fast,
#: plus Table 3's single-grouping BSBM slice for the CI perf smoke.
GOLDEN_QUERIES: dict[str, tuple[str, ...]] = {
    "bsbm": ("MG2",),
    "chem": ("MG7",),
    "pubmed": ("MG12",),
}


def _dataset_graph(dataset: str, preset: str) -> Graph:
    from repro.datasets import bsbm, chem2bio2rdf, pubmed

    if dataset == "bsbm":
        return bsbm.generate(bsbm.preset(preset))
    if dataset == "chem":
        return chem2bio2rdf.generate(chem2bio2rdf.preset(preset))
    if dataset == "pubmed":
        return pubmed.generate(pubmed.preset(preset))
    raise ValueError(f"unknown dataset {dataset!r}")


def _dataset_config(dataset: str) -> EngineConfig:
    from repro.bench.harness import bsbm_config, chem_config, pubmed_config

    return {"bsbm": bsbm_config, "chem": chem_config, "pubmed": pubmed_config}[dataset]()


def report_signature(report: ExecutionReport) -> dict[str, Any]:
    """The invariant slice of one engine run, JSON-serializable.

    Floats are stored as ``repr`` strings so the comparison is
    bit-exact rather than subject to JSON round-tripping.
    """
    stats = report.stats
    signature: dict[str, Any] = {
        "rows": len(report.rows),
        "rows_digest": rows_digest(report.rows),
        "cycles": report.cycles,
        "map_only_cycles": report.map_only_cycles,
        "cost_seconds": repr(report.cost_seconds),
        "load_bytes": report.load_bytes,
        "counters": dict(sorted(stats.counters.as_dict().items())) if stats else {},
        "jobs": [],
    }
    if stats is not None:
        for job in stats.jobs:
            signature["jobs"].append(
                {
                    "name": job.name,
                    "map_only": job.map_only,
                    "map_tasks": job.map_tasks,
                    "reduce_tasks": job.reduce_tasks,
                    "input_bytes": job.input_bytes,
                    "side_input_bytes": job.side_input_bytes,
                    "shuffle_bytes": job.shuffle_bytes,
                    "output_bytes": job.output_bytes,
                    "input_records": job.input_records,
                    "output_records": job.output_records,
                    "cost_seconds": repr(job.cost_seconds),
                }
            )
    return signature


def capture_query(
    qid: str, engine: str, graph: Graph, config: EngineConfig
) -> dict[str, Any]:
    analytical = to_analytical(get_query(qid).sparql)
    report = make_engine(engine).execute(analytical, graph, config)
    return {"qid": qid, "engine": engine, **report_signature(report)}


def capture_dataset(
    dataset: str,
    preset: str,
    queries: tuple[str, ...],
    engines: tuple[str, ...] = PAPER_ENGINES,
) -> dict[str, Any]:
    graph = _dataset_graph(dataset, preset)
    config = _dataset_config(dataset)
    return {
        "schema": GOLDEN_SCHEMA,
        "dataset": dataset,
        "preset": preset,
        "queries": list(queries),
        "engines": list(engines),
        "runs": [
            capture_query(qid, engine, graph, config)
            for qid in queries
            for engine in engines
        ],
    }


def check_golden_file(path: Path) -> list[str]:
    """Re-run a committed golden's workload and diff against it.

    The golden file is self-describing (dataset, preset, queries,
    engines), so the check exercises exactly the runs it was captured
    from.  Returns the list of differences (empty = bit-identical).
    """
    golden = json.loads(Path(path).read_text())
    fresh = capture_dataset(
        golden["dataset"],
        golden["preset"],
        tuple(golden["queries"]),
        tuple(golden["engines"]),
    )
    return diff_signatures(golden, fresh)


def diff_signatures(golden: dict[str, Any], fresh: dict[str, Any]) -> list[str]:
    """Human-readable differences between two captures (empty = match)."""
    problems: list[str] = []
    golden_runs = {(r["qid"], r["engine"]): r for r in golden.get("runs", [])}
    fresh_runs = {(r["qid"], r["engine"]): r for r in fresh.get("runs", [])}
    for key in sorted(set(golden_runs) | set(fresh_runs)):
        old, new = golden_runs.get(key), fresh_runs.get(key)
        if old is None or new is None:
            problems.append(f"{key}: present only in {'fresh' if old is None else 'golden'}")
            continue
        for field in sorted((set(old) | set(new)) - {"qid", "engine"}):
            if old.get(field) != new.get(field):
                problems.append(
                    f"{key[0]}/{key[1]}: {field} differs: "
                    f"golden={old.get(field)!r} fresh={new.get(field)!r}"
                )
    return problems


def golden_path(root: Path, dataset: str, preset: str) -> Path:
    return root / f"{dataset}-{preset}.json"


def write_goldens(root: Path, preset: str = "tiny") -> list[Path]:
    root.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for dataset, queries in GOLDEN_QUERIES.items():
        capture = capture_dataset(dataset, preset, queries)
        path = golden_path(root, dataset, preset)
        path.write_text(json.dumps(capture, indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    root = Path(args[0]) if args else Path("tests/golden")
    for path in write_goldens(root):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
