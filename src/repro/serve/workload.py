"""Seeded serving workloads: ``repro serve --workload seeds=N,clients=C,mix=...``.

Drives :class:`~repro.serve.service.QueryService` with a deterministic
arrival process over the bench catalog and emits a
``repro-serve-workload/v2`` report: latency percentiles, cache hit
rates, batch-merge counters, an SLO verdict
(:mod:`repro.serve.slo`), and the headline batched-vs-unbatched
cost comparison — the total simulated cost the service actually spent
versus what serving every completed request cold and solo would have
cost.  Every answer is checked bit-identical (rows *and* order) against
a cold solo execution of the same query, so the report doubles as a
correctness oracle for the sharing layers.
:func:`serve_workload_with_metrics` additionally collects a
``repro-metrics/v1`` snapshot (see :mod:`repro.obs.metrics`) over the
same run.

Interarrival gaps are uniform in ``[0.5, 1.5) / rate`` — drawn from
``random.Random(seed)`` without transcendental functions, so committed
golden reports stay byte-identical across platforms and libm versions.

Mixes are named slices of the catalog:

* ``chem-overlap`` — MG6/MG7/MG8/G8, four chem queries over the same
  assay star (mutually overlapping): exercises MQO merge + n-split;
* ``bsbm-star`` — the BSBM table-3 queries, which do *not* cross-merge:
  exercises dedup and the result cache only;
* ``pubmed-mesh`` — MG11/MG13/MG14 (MG13+MG14 overlap, MG11 solo).
"""

from __future__ import annotations

import json
import random
from contextlib import nullcontext
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable

from repro import perf
from repro.bench.catalog import get_query
from repro.bench.harness import bsbm_config, chem_config, pubmed_config
from repro.core.engines import make_engine, to_analytical
from repro.core.results import EngineConfig
from repro.errors import ReproError, ServeError
from repro.ntga.factorized import validate_representation
from repro.obs import metrics as obs_metrics
from repro.obs.calibration import CalibrationMonitor
from repro.rdf.graph import Graph
from repro.serve.service import (
    DEADLINE,
    OK,
    QueryService,
    ServeRequest,
    ServiceConfig,
)
from repro.serve.slo import DEFAULT_SLOS, SLOSpec, evaluate_slo

#: Schema tag for the serve workload report.  v2 added the SLO section
#: (``slo`` + ``verdicts.slo_pass``), per-seed p95 latencies, cache hit
#: ratios in the counters, and the ``planner`` workload knob; v1
#: goldens stay checkable via :func:`project_v1`.
SERVE_SCHEMA = "repro-serve-workload/v2"

#: The previous schema, still accepted by :func:`check_serve_golden`.
SERVE_SCHEMA_V1 = "repro-serve-workload/v1"

#: mix name -> (dataset, preset, qids, engine-config factory)
WORKLOAD_MIXES: dict[
    str, tuple[str, str, tuple[str, ...], Callable[[], EngineConfig]]
] = {
    "chem-overlap": ("chem", "tiny", ("MG6", "MG7", "MG8", "G8"), chem_config),
    "bsbm-star": (
        "bsbm",
        "tiny",
        ("G1", "G2", "MG1", "MG2", "MG3", "MG4"),
        bsbm_config,
    ),
    "pubmed-mesh": ("pubmed", "tiny", ("MG11", "MG13", "MG14"), pubmed_config),
}

_FLAGS = {"on": True, "off": False, "true": True, "false": False}


@dataclass(frozen=True)
class WorkloadSpec:
    """Parsed ``--workload`` spec.  ``seeds`` runs the same mix through
    1..N independent arrival seeds against fresh services."""

    seeds: int
    clients: int
    mix: str
    requests: int = 24
    window: float = 0.25
    rate: float = 8.0
    engine: str = "rapid-analytics"
    batching: bool = True
    caching: bool = True
    deadline: float | None = None
    max_pending: int = 64
    representation: str | None = None
    #: Planner mode override (rule/cost/auto); None keeps the mix's
    #: engine-config default.
    planner: str | None = None

    @classmethod
    def from_spec(cls, text: str) -> "WorkloadSpec":
        """Parse ``seeds=N,clients=C,mix=name[,requests=R][,window=W]
        [,rate=r][,engine=e][,batch=on|off][,cache=on|off]
        [,deadline=d][,max_pending=m][,representation=r][,planner=p]``."""
        values: dict[str, str] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep:
                raise ServeError(
                    f"invalid workload spec {text!r}: expected key=value, got {part!r}"
                )
            values[key.strip()] = value.strip()
        known = {
            "seeds", "clients", "mix", "requests", "window", "rate",
            "engine", "batch", "cache", "deadline", "max_pending",
            "representation", "planner",
        }
        unknown = set(values) - known
        if unknown:
            raise ServeError(
                f"invalid workload spec {text!r}: unknown key(s) "
                f"{', '.join(sorted(unknown))}"
            )
        missing = [key for key in ("seeds", "clients", "mix") if key not in values]
        if missing:
            raise ServeError(
                f"invalid workload spec {text!r}: {', '.join(missing)} required"
            )

        def flag(key: str, default: bool) -> bool:
            raw = values.get(key)
            if raw is None:
                return default
            if raw.lower() not in _FLAGS:
                raise ServeError(
                    f"invalid workload spec {text!r}: {key} must be on/off, "
                    f"got {raw!r}"
                )
            return _FLAGS[raw.lower()]

        representation = values.get("representation")
        if representation is not None:
            try:
                representation = validate_representation(representation)
            except ReproError as error:
                raise ServeError(
                    f"invalid workload spec {text!r}: {error}"
                ) from None

        planner = values.get("planner")
        if planner is not None:
            from repro.plan import validate_planner

            try:
                planner = validate_planner(planner)
            except ReproError as error:
                raise ServeError(
                    f"invalid workload spec {text!r}: {error}"
                ) from None

        try:
            spec = cls(
                seeds=int(values["seeds"]),
                clients=int(values["clients"]),
                mix=values["mix"],
                requests=int(values.get("requests", 24)),
                window=float(values.get("window", 0.25)),
                rate=float(values.get("rate", 8.0)),
                engine=values.get("engine", "rapid-analytics"),
                batching=flag("batch", True),
                caching=flag("cache", True),
                deadline=float(values["deadline"]) if "deadline" in values else None,
                max_pending=int(values.get("max_pending", 64)),
                representation=representation,
                planner=planner,
            )
        except ValueError as error:
            raise ServeError(f"invalid workload spec {text!r}: {error}") from None
        if spec.seeds < 1:
            raise ServeError(f"invalid workload spec {text!r}: seeds must be >= 1")
        if spec.clients < 1:
            raise ServeError(f"invalid workload spec {text!r}: clients must be >= 1")
        if spec.requests < 1:
            raise ServeError(f"invalid workload spec {text!r}: requests must be >= 1")
        if spec.mix not in WORKLOAD_MIXES:
            known_mixes = ", ".join(sorted(WORKLOAD_MIXES))
            raise ServeError(
                f"invalid workload spec {text!r}: unknown mix {spec.mix!r} "
                f"(known: {known_mixes})"
            )
        if not spec.window > 0.0:
            raise ServeError(f"invalid workload spec {text!r}: window must be > 0")
        if not spec.rate > 0.0:
            raise ServeError(f"invalid workload spec {text!r}: rate must be > 0")
        return spec

    def service_config(self, engine_config: EngineConfig) -> ServiceConfig:
        return ServiceConfig(
            engine=self.engine,
            engine_config=engine_config,
            workers=self.clients,
            max_pending=self.max_pending,
            batch_window=self.window,
            enable_batching=self.batching,
            enable_result_cache=self.caching,
            deadline=self.deadline,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "seeds": self.seeds,
            "clients": self.clients,
            "mix": self.mix,
            "requests": self.requests,
            "window": self.window,
            "rate": self.rate,
            "engine": self.engine,
            "batching": self.batching,
            "caching": self.caching,
            "deadline": self.deadline,
            "max_pending": self.max_pending,
            "representation": self.representation,
            "planner": self.planner,
        }


def workload_requests(spec: WorkloadSpec, seed: int) -> list[ServeRequest]:
    """The deterministic arrival sequence for one seed: uniform query
    choice over the mix, uniform interarrival gaps with mean 1/rate."""
    _, _, qids, _ = WORKLOAD_MIXES[spec.mix]
    rng = random.Random(seed)
    clock = 0.0
    requests: list[ServeRequest] = []
    for _ in range(spec.requests):
        qid = qids[rng.randrange(len(qids))]
        clock += (0.5 + rng.random()) / spec.rate
        requests.append(
            ServeRequest(
                text=get_query(qid).sparql,
                arrival=round(clock, 6),
                label=qid,
            )
        )
    return requests


def _percentile(sorted_values: list[float], percent: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * percent // 100))  # ceil
    return sorted_values[int(rank) - 1]


def _latency_summary(latencies: list[float]) -> dict[str, float]:
    ordered = sorted(latencies)
    total = sum(ordered)
    return {
        "count": len(ordered),
        "mean": round(total / len(ordered), 6) if ordered else 0.0,
        "p50": round(_percentile(ordered, 50), 6),
        "p90": round(_percentile(ordered, 90), 6),
        "p95": round(_percentile(ordered, 95), 6),
        "p99": round(_percentile(ordered, 99), 6),
        "max": round(ordered[-1], 6) if ordered else 0.0,
    }


def default_slo(mix: str) -> SLOSpec:
    """The mix's default latency objectives."""
    return DEFAULT_SLOS.get(mix, DEFAULT_SLOS["default"])


def serve_workload_report(
    spec: WorkloadSpec,
    graph: Graph | None = None,
    slo: SLOSpec | None = None,
    registry: obs_metrics.MetricsRegistry | None = None,
    calibration: CalibrationMonitor | None = None,
) -> dict[str, Any]:
    """Run the workload matrix and assemble the versioned report.

    The baseline against which savings are computed is the no-sharing
    server: every completed request executed cold, solo, on the same
    engine and config.  Those solo runs double as the bit-identity
    oracle — each served answer's row digest (order-sensitive) must
    equal its query's solo digest.

    The SLO verdict (*slo*, defaulting to the mix's
    :data:`~repro.serve.slo.DEFAULT_SLOS` entry) is computed per seed
    and over the pooled latencies; ``verdicts.slo_pass`` reflects the
    pooled verdict.  With a *registry*, the services run under
    :func:`repro.obs.metrics.collecting` so every serve/runner/planner
    instrument accumulates across seeds — the baseline oracle runs stay
    outside it, keeping fleet metrics about served traffic only.  A
    *calibration* monitor is handed to each service to collect
    estimate-vs-actual q-errors (it only observes under a non-rule
    ``planner``).
    """
    dataset, preset, qids, config_factory = WORKLOAD_MIXES[spec.mix]
    if graph is None:
        from repro.bench.faults import _build_graph

        graph = _build_graph(dataset, preset)
    engine_config = config_factory()
    if spec.representation is not None:
        # One override for both sides of the oracle: the solo baselines
        # and the service run under the same intermediate representation,
        # so a mismatch can only come from the sharing layers.
        engine_config = replace(engine_config, representation=spec.representation)
    if spec.planner is not None:
        # Same symmetry for the planner mode: the oracle must prove the
        # *sharing layers* preserve answers, not re-litigate plan choice.
        engine_config = replace(engine_config, planner=spec.planner)
    slo = slo or default_slo(spec.mix)

    baseline: dict[str, dict[str, Any]] = {}
    for qid in qids:
        report = make_engine(spec.engine).execute(
            to_analytical(get_query(qid).sparql), graph, engine_config
        )
        baseline[qid] = {
            "rows": len(report.rows),
            "cost_seconds": round(report.cost_seconds, 6),
            "digest": perf.rows_digest(report.rows),
        }

    runs: list[dict[str, Any]] = []
    total_baseline = total_served = 0.0
    all_rows_match = True
    per_seed_reduced: list[bool] = []
    per_seed_slo: list[dict[str, Any]] = []
    pooled_latencies: list[float] = []
    collecting = (
        obs_metrics.collecting(registry) if registry is not None else nullcontext()
    )
    with collecting:
        for seed in range(1, spec.seeds + 1):
            service = QueryService(
                graph, spec.service_config(engine_config), calibration=calibration
            )
            responses = service.serve(workload_requests(spec, seed))

            statuses: dict[str, int] = {}
            sources: dict[str, int] = {}
            mismatches: list[int] = []
            baseline_cost = 0.0
            latencies: list[float] = []
            for response in responses:
                statuses[response.status] = statuses.get(response.status, 0) + 1
                if response.source is not None:
                    sources[response.source] = sources.get(response.source, 0) + 1
                if response.status in (OK, DEADLINE):
                    baseline_cost += baseline[response.label]["cost_seconds"]
                    latencies.append(response.latency)
                if response.status == OK and (
                    perf.rows_digest(response.rows)
                    != baseline[response.label]["digest"]
                ):
                    mismatches.append(response.request_id)

            served_cost = service.executed_cost_seconds
            counters = service.counter_snapshot()
            rows_match = not mismatches
            all_rows_match = all_rows_match and rows_match
            total_baseline += baseline_cost
            total_served += served_cost
            per_seed_reduced.append(served_cost < baseline_cost)
            pooled_latencies.extend(latencies)
            per_seed_slo.append({"seed": seed, **evaluate_slo(slo, latencies)})
            runs.append(
                {
                    "seed": seed,
                    "requests": len(responses),
                    "statuses": dict(sorted(statuses.items())),
                    "sources": dict(sorted(sources.items())),
                    "latency": _latency_summary(latencies),
                    "baseline_cost_seconds": round(baseline_cost, 6),
                    "served_cost_seconds": round(served_cost, 6),
                    "saved_seconds": round(baseline_cost - served_cost, 6),
                    "saved_ratio": round(1.0 - served_cost / baseline_cost, 6)
                    if baseline_cost
                    else None,
                    "rows_match_solo": rows_match,
                    "mismatched_requests": mismatches,
                    "counters": dict(sorted(counters.items())),
                }
            )

    overall_slo = evaluate_slo(slo, pooled_latencies)
    verdicts = {
        "all_rows_match": all_rows_match,
        # The tentpole claim: sharing strictly reduces total simulated
        # cost on every seed (meaningless with both levers off).
        "cost_strictly_reduced": all(per_seed_reduced)
        if (spec.batching or spec.caching)
        else None,
        "slo_pass": overall_slo["pass"],
    }
    return {
        "schema": SERVE_SCHEMA,
        "mix": spec.mix,
        "dataset": dataset,
        "preset": preset,
        "queries": list(qids),
        "workload": spec.as_dict(),
        "baseline": baseline,
        "runs": runs,
        "slo": {
            "overall": overall_slo,
            "per_seed": per_seed_slo,
        },
        "summary": {
            "total_baseline_cost_seconds": round(total_baseline, 6),
            "total_served_cost_seconds": round(total_served, 6),
            "total_saved_seconds": round(total_baseline - total_served, 6),
            "total_saved_ratio": round(1.0 - total_served / total_baseline, 6)
            if total_baseline
            else None,
        },
        "verdicts": verdicts,
    }


def serve_workload_with_metrics(
    spec: WorkloadSpec,
    graph: Graph | None = None,
    slo: SLOSpec | None = None,
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Run the workload collecting metrics; returns (report, snapshot).

    The snapshot is ``repro-metrics/v1``: every deterministic instrument
    the serve/runner/planner layers recorded, the report's SLO verdict,
    and the calibration monitor's q-error/drift report.  Byte-identical
    across runs for a fixed spec — it is what
    ``repro serve --workload ... --metrics`` writes and what the CI
    golden pins.
    """
    registry = obs_metrics.MetricsRegistry()
    calibration = CalibrationMonitor()
    report = serve_workload_report(
        spec, graph, slo=slo, registry=registry, calibration=calibration
    )
    snapshot = obs_metrics.snapshot_dict(
        registry, slo=report["slo"]["overall"], calibration=calibration.report()
    )
    return report, snapshot


def spec_from_report(report: dict[str, Any]) -> WorkloadSpec:
    return WorkloadSpec(**report["workload"])


def project_v1(report: dict[str, Any]) -> dict[str, Any]:
    """A v2 report reduced to the v1 shape (for diffing v1 goldens):
    drop the SLO section and verdict, the ``planner`` workload knob,
    p95 latencies, and the counters v1 never carried (cache hit ratios,
    the dispatch-time deadline split)."""
    projected = json.loads(json.dumps(report))
    projected["schema"] = SERVE_SCHEMA_V1
    projected.pop("slo", None)
    projected["workload"].pop("planner", None)
    projected["verdicts"].pop("slo_pass", None)
    for run in projected.get("runs", []):
        run["latency"].pop("p95", None)
        run["counters"] = {
            key: value
            for key, value in run["counters"].items()
            if not key.endswith("_hit_ratio")
            and key != "deadline_exceeded_at_dispatch"
        }
    return projected


def check_serve_golden(path: str | Path) -> list[str]:
    """Re-run a committed report's workload and diff against it.

    Returns human-readable differences (empty = bit-identical), so CI
    catches any scheduler, cache, or batching change that moves a
    latency, a counter, or a verdict.  v1 goldens are still accepted:
    the fresh v2 report is projected to the v1 shape before diffing.
    """
    golden = json.loads(Path(path).read_text())
    fresh = serve_workload_report(spec_from_report(golden))
    if golden.get("schema") == SERVE_SCHEMA_V1:
        fresh = project_v1(fresh)
    problems: list[str] = []
    for field in ("schema", "mix", "dataset", "preset", "queries", "workload", "baseline"):
        if golden.get(field) != fresh.get(field):
            problems.append(
                f"{field} differs: golden={golden.get(field)!r} "
                f"fresh={fresh.get(field)!r}"
            )
    golden_runs = {run["seed"]: run for run in golden.get("runs", [])}
    fresh_runs = {run["seed"]: run for run in fresh.get("runs", [])}
    for seed in sorted(set(golden_runs) | set(fresh_runs)):
        old, new = golden_runs.get(seed), fresh_runs.get(seed)
        if old is None or new is None:
            problems.append(
                f"seed {seed}: present only in {'fresh' if old is None else 'golden'}"
            )
            continue
        for field in sorted((set(old) | set(new)) - {"seed"}):
            if old.get(field) != new.get(field):
                problems.append(
                    f"seed {seed}: {field} differs: "
                    f"golden={old.get(field)!r} fresh={new.get(field)!r}"
                )
    for field in ("slo", "summary", "verdicts"):
        if golden.get(field) != fresh.get(field):
            problems.append(
                f"{field} differs: golden={golden.get(field)!r} "
                f"fresh={fresh.get(field)!r}"
            )
    return problems


def write_serve_report(report: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def render_serve_report(report: dict[str, Any]) -> str:
    """Terminal view: per-seed sharing effectiveness."""
    workload = report["workload"]
    lines = [
        f"{report['mix']} serve workload "
        f"(seeds=1..{workload['seeds']}, clients={workload['clients']}, "
        f"requests={workload['requests']}, engine={workload['engine']}, "
        f"batch={'on' if workload['batching'] else 'off'}, "
        f"cache={'on' if workload['caching'] else 'off'})",
        f"{'seed':>4s} {'reqs':>5s} {'ok':>4s} {'hits':>5s} {'merged':>7s} "
        f"{'baseline':>10s} {'served':>9s} {'saved':>8s} {'p50':>8s} {'p99':>8s}",
    ]
    for run in report["runs"]:
        counters = run["counters"]
        lines.append(
            f"{run['seed']:4d} {run['requests']:5d} "
            f"{run['statuses'].get('ok', 0):4d} "
            f"{counters.get('result_cache_hits', 0):5d} "
            f"{counters.get('batch_merged_requests', 0):7d} "
            f"{run['baseline_cost_seconds']:9.1f}s {run['served_cost_seconds']:8.1f}s "
            f"{(run['saved_ratio'] or 0.0) * 100:7.1f}% "
            f"{run['latency']['p50']:8.3f} {run['latency']['p99']:8.3f}"
        )
    summary = report["summary"]
    verdicts = report["verdicts"]
    lines.append(
        f"total: baseline {summary['total_baseline_cost_seconds']:.1f}s, "
        f"served {summary['total_served_cost_seconds']:.1f}s, "
        f"saved {summary['total_saved_seconds']:.1f}s"
    )
    lines.append(
        f"answers bit-identical to cold solo runs: {verdicts['all_rows_match']}; "
        f"cost strictly reduced on every seed: {verdicts['cost_strictly_reduced']}"
    )
    slo = report.get("slo")
    if slo is not None:
        overall = slo["overall"]
        targets = overall["targets"]
        rendered_targets = ", ".join(
            f"{name}<={targets[name]:g}s"
            for name in ("p50", "p95", "p99")
            if targets.get(name) is not None
        )
        lines.append(
            f"SLO [{rendered_targets}, budget={targets['budget']:g}]: "
            f"{'PASS' if overall['pass'] else 'FAIL'} "
            f"(burn {overall['budget_burn'] * 100:.1f}% of "
            f"{overall['count']} completed)"
        )
    return "\n".join(lines)
