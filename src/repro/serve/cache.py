"""A counting LRU cache, shared by the plan and result caches.

Plain ``dict`` insertion order doubles as the recency list (Python
dicts iterate oldest-inserted first; ``get`` re-inserts), so behaviour
is deterministic and independent of ``PYTHONHASHSEED`` — eviction order
is a pure function of the get/put sequence.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator

from repro.errors import ServeError

_MISSING = object()


class LRUCache:
    """Least-recently-used mapping with hit/miss counters."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ServeError(f"cache capacity must be >= 1: {capacity!r}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: dict[Hashable, Any] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def get(self, key: Hashable, default: Any = None) -> Any:
        value = self._entries.pop(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._entries[key] = value  # re-insert = mark most recent
        self.hits += 1
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Read without touching recency or counters."""
        return self._entries.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        self._entries.pop(key, None)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 before any lookup), rounded to 6
        decimals so derived reports and metrics export stably."""
        lookups = self.hits + self.misses
        return round(self.hits / lookups, 6) if lookups else 0.0

    def stats(self) -> dict[str, int | float]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio,
        }


class StaleResultStore:
    """Last-known-good answers for the degraded serving tier.

    Unlike the result cache — which is keyed on the graph *version* so a
    mutation invalidates everything — this store deliberately forgets
    the version on lookup: it keeps the most recent successful rows per
    ``(fingerprint digest, engine)`` along with the version they were
    computed against, so when execution fails and the retry budget is
    exhausted the service can serve a possibly-older answer marked
    ``status="degraded"`` / ``source="stale-cache"`` instead of failing
    outright.  Bounded by the same deterministic :class:`LRUCache`.
    """

    def __init__(self, capacity: int):
        self._cache = LRUCache(capacity)

    def __len__(self) -> int:
        return len(self._cache)

    def put(self, digest: str, engine: str, version: int, rows: list) -> None:
        """Record the latest successful answer for a fingerprint."""
        self._cache.put((digest, engine), (version, list(rows)))

    def lookup(self, digest: str, engine: str) -> tuple[int, list] | None:
        """Return ``(graph_version, rows)`` or None; counts hit/miss."""
        entry = self._cache.get((digest, engine), _MISSING)
        if entry is _MISSING:
            return None
        version, rows = entry
        return version, list(rows)

    def stats(self) -> dict[str, int | float]:
        return self._cache.stats()
