"""SLO tracking for served workloads — on the simulated clock.

An :class:`SLOSpec` names latency targets (p50/p95/p99, simulated
seconds) plus an **error budget**: the fraction of completed requests
allowed to exceed the strictest (p99) target before the SLO as a whole
fails.  :func:`evaluate_slo` turns a latency sample into the verdict
embedded in ``repro-serve-workload/v2`` reports and ``repro-metrics/v1``
snapshots: targets, achieved nearest-rank percentiles, budget burn, and
a per-objective plus overall pass/fail.

Because everything runs on the simulated clock, an SLO verdict is a
pure function of (graph, config, request sequence) — the same workload
either passes or fails on every machine, every run.  That is what makes
pinning ``slo_pass: true`` in a CI golden meaningful.

The ``--slo`` spec grammar mirrors ``--workload``:
``p50=1.0,p95=90,p99=120[,budget=0.05]`` — any subset of the three
percentiles, each a positive simulated-seconds bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ServeError

__all__ = ["DEFAULT_SLOS", "SLOSpec", "evaluate_slo"]


@dataclass(frozen=True)
class SLOSpec:
    """Latency objectives on the simulated clock (None = not tracked)."""

    p50: float | None = None
    p95: float | None = None
    p99: float | None = None
    #: Fraction of completed requests allowed over the p99 target (or
    #: the strictest configured target when p99 is not set).
    budget: float = 0.05

    def __post_init__(self) -> None:
        for name in ("p50", "p95", "p99"):
            value = getattr(self, name)
            if value is not None and not value > 0.0:
                raise ServeError(f"slo {name} target must be > 0: {value!r}")
        if not 0.0 <= self.budget < 1.0:
            raise ServeError(f"slo budget must be in [0, 1): {self.budget!r}")
        if self.p50 is None and self.p95 is None and self.p99 is None:
            raise ServeError("slo spec needs at least one of p50/p95/p99")

    @classmethod
    def from_spec(cls, text: str) -> "SLOSpec":
        """Parse ``p50=S[,p95=S][,p99=S][,budget=F]``."""
        values: dict[str, float] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep:
                raise ServeError(
                    f"invalid slo spec {text!r}: expected key=value, got {part!r}"
                )
            if key not in ("p50", "p95", "p99", "budget"):
                raise ServeError(
                    f"invalid slo spec {text!r}: unknown key {key!r} "
                    "(known: p50, p95, p99, budget)"
                )
            try:
                values[key] = float(value.strip())
            except ValueError:
                raise ServeError(
                    f"invalid slo spec {text!r}: {key} must be a number, "
                    f"got {value.strip()!r}"
                ) from None
        try:
            return cls(
                p50=values.get("p50"),
                p95=values.get("p95"),
                p99=values.get("p99"),
                budget=values.get("budget", 0.05),
            )
        except ServeError as error:
            raise ServeError(f"invalid slo spec {text!r}: {error}") from None

    @property
    def strictest_bound(self) -> float:
        """The tail bound that burns error budget (p99 first)."""
        for value in (self.p99, self.p95, self.p50):
            if value is not None:
                return value
        raise ServeError("slo spec has no targets")  # unreachable

    def as_dict(self) -> dict[str, Any]:
        return {
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "budget": self.budget,
        }


#: Per-mix default objectives, calibrated against the committed serve
#: goldens (tiny presets): cache-hit latencies are sub-second, a cold
#: chem batch tops out under a simulated minute.  ``None`` falls back
#: to ``"default"``.
DEFAULT_SLOS: dict[str, SLOSpec] = {
    "chem-overlap": SLOSpec(p50=1.0, p95=90.0, p99=120.0, budget=0.05),
    "bsbm-star": SLOSpec(p50=5.0, p95=120.0, p99=240.0, budget=0.05),
    "pubmed-mesh": SLOSpec(p50=5.0, p95=120.0, p99=240.0, budget=0.05),
    "default": SLOSpec(p50=5.0, p95=120.0, p99=240.0, budget=0.05),
}


def _percentile(sorted_values: list[float], percent: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * percent // 100))  # ceil
    return sorted_values[int(rank) - 1]


def evaluate_slo(spec: SLOSpec, latencies: list[float]) -> dict[str, Any]:
    """The SLO verdict for one latency sample (simulated seconds).

    Each configured percentile passes when the achieved nearest-rank
    value is <= its target.  Budget burn is the fraction of requests
    over :attr:`SLOSpec.strictest_bound`; the budget objective passes
    while burn <= budget.  ``pass`` requires every objective.  An empty
    sample passes vacuously (nothing completed, nothing violated).
    """
    ordered = sorted(latencies)
    achieved = {
        "p50": round(_percentile(ordered, 50), 6),
        "p95": round(_percentile(ordered, 95), 6),
        "p99": round(_percentile(ordered, 99), 6),
    }
    objectives: dict[str, bool] = {}
    for name in ("p50", "p95", "p99"):
        target = getattr(spec, name)
        if target is not None:
            objectives[name] = not ordered or achieved[name] <= target
    bound = spec.strictest_bound
    over = sum(1 for latency in ordered if latency > bound)
    burn = round(over / len(ordered), 6) if ordered else 0.0
    objectives["budget"] = burn <= spec.budget
    return {
        "targets": spec.as_dict(),
        "achieved": achieved,
        "count": len(ordered),
        "violations": over,
        "budget_burn": burn,
        "objectives": dict(sorted(objectives.items())),
        "pass": all(objectives.values()),
    }
