"""Canonical query fingerprints for the service caches.

Two textually different queries that parse to the same AST — different
prefix names, whitespace, prefixed vs. full IRIs — must share cache
entries, so the fingerprint is computed over the *canonical
serialization* (:func:`repro.sparql.serializer.serialize_query`: full
IRIs, fixed clause order, no prefixes), not the raw text.  The
serializer round-trip property (``parse(serialize(ast)) == ast``,
enforced in tests/sparql) is what makes this a sound cache key.

The plan cache is keyed by digest alone (decomposition is
graph-independent); the result cache folds in the graph version and the
engine (see :mod:`repro.serve.service`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.query_model import AnalyticalQuery, from_select_query
from repro.sparql.parser import parse_query
from repro.sparql.serializer import serialize_query


@dataclass(frozen=True)
class Fingerprint:
    """A canonicalized query: digest + the artifacts computing it made."""

    digest: str
    canonical: str
    query: AnalyticalQuery


def fingerprint_query(text: str) -> Fingerprint:
    """Parse, canonicalize, and digest one SPARQL query.

    Raises :class:`repro.errors.SparqlError` on malformed input — the
    service maps that to a per-request failure, not a crash.
    """
    ast = parse_query(text)
    canonical = serialize_query(ast)
    digest = hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()
    return Fingerprint(
        digest=digest,
        canonical=canonical,
        query=from_select_query(ast, source_text=text),
    )
