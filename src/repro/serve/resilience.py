"""Serve-layer resilience: retries, circuit breaking, degradation.

The MapReduce setting assumes failures are the norm; PR 2/PR 4 made the
*workflow* layer survive them (seeded fault injection, checkpointed
recovery), but until this module the serve layer above it was brittle:
one :class:`~repro.errors.ReproError` inside a merged MQO unit failed
every member request, nothing was retried, and deadlines were enforced
only after execution had been paid for.  This module supplies the
standard resilience trio, all on the simulated clock so every decision
stays a pure function of (graph, config, request sequence):

* :class:`RetryPolicy` — deterministic exponential backoff with seeded
  jitter (keyed BLAKE2 hash mapped to a unit float, the
  :class:`~repro.mapreduce.faults.FaultPlan` recipe), budgeted against
  the request deadline so the service never schedules a retry that
  cannot land in time, and priced per attempt via
  :meth:`~repro.mapreduce.cost.CostModel.resubmit_cost`.  Re-executions
  derive a fresh fault seed per attempt — on a real cluster a
  resubmitted workflow gets fresh task fates, so replaying the
  *identical* injected crash would make retries structurally useless.
* :class:`CircuitBreaker` — a per-engine closed/open/half-open machine
  driven by a sliding failure window on simulated time: trip after
  ``threshold`` failures inside ``window`` seconds, fast-fail (or
  degrade) while open, probe with a bounded budget after ``cooldown``.
* :class:`DegradationPolicy` — explicit tiers of partial service:
  serve *stale* answers from the
  :class:`~repro.serve.cache.StaleResultStore` (possibly an older graph
  version, marked ``status="degraded"`` / ``source="stale-cache"``),
  bypass MQO batching while the breaker is half-open (probe with the
  smallest blast radius available), and deterministically shed the
  lowest-priority arrivals when queue depth crosses a threshold.

The report harness at the bottom runs one workload A/B — identical
fault-injected traffic with resilience off and on — and emits a
``repro-serve-resilience/v1`` report whose committed golden pins the
headline claim: availability strictly improves with resilience enabled,
while every *successful* answer stays bit-identical to the fault-free
baseline (degraded answers are allowed to be stale, never wrong).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro import obs
from repro.errors import ResilienceError
from repro.mapreduce.faults import FaultPlan
from repro.obs import metrics as obs_metrics

#: Schema tag for the resilience A/B report.
RESILIENCE_SCHEMA = "repro-serve-resilience/v1"

_UNIT_DENOMINATOR = float(2**64)

_FLAGS = {"on": True, "off": False, "true": True, "false": False}


def _unit_float(*key: Any) -> float:
    """A deterministic unit float keyed on *key* — the FaultPlan recipe
    (keyed BLAKE2, no global random state, no wall clock)."""
    digest = hashlib.blake2b(
        "\x1f".join(str(part) for part in key).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / _UNIT_DENOMINATOR


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry schedule for failed serve units.

    Retry ``k`` (1-based) of a query waits
    ``base_backoff * backoff_factor**(k-1) * (1 + jitter * u)`` simulated
    seconds after the failure, where ``u`` is a unit float keyed on
    ``(seed, fingerprint digest, k)`` — the schedule is a pure function
    of the policy and the query, identical on every run and every
    ``PYTHONHASHSEED``.  Validation enforces
    ``backoff_factor >= 1 + jitter``, which makes every schedule
    non-decreasing in the attempt number *regardless* of how the jitter
    draws land (the maximum of step ``k`` is the minimum of step
    ``k+1``); the hypothesis property tests pin this.
    """

    #: Re-execution budget per query beyond the first attempt.
    retries: int = 2
    #: First backoff step, simulated seconds.
    base_backoff: float = 0.5
    #: Exponential growth per retry.
    backoff_factor: float = 2.0
    #: Jitter amplitude as a fraction of the step (0 = none).
    jitter: float = 0.25
    #: Seed for the jitter hash (independent of any FaultPlan seed).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ResilienceError(f"retries must be >= 0: {self.retries!r}")
        if not self.base_backoff > 0.0:
            raise ResilienceError(
                f"base_backoff must be > 0: {self.base_backoff!r}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ResilienceError(f"jitter must be in [0, 1): {self.jitter!r}")
        if self.backoff_factor < 1.0 + self.jitter:
            raise ResilienceError(
                f"backoff_factor must be >= 1 + jitter "
                f"({1.0 + self.jitter:g}): {self.backoff_factor!r}"
            )

    def backoff(self, digest: str, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (1-based) of *digest*."""
        if retry_index < 1:
            raise ResilienceError(f"retry_index must be >= 1: {retry_index!r}")
        step = self.base_backoff
        for _ in range(retry_index - 1):
            step *= self.backoff_factor  # repeated multiply: no libm pow
        jitter = self.jitter * _unit_float("retry", self.seed, digest, retry_index)
        return round(step * (1.0 + jitter), 6)

    def schedule(self, digest: str) -> tuple[float, ...]:
        """The full backoff schedule for one query."""
        return tuple(self.backoff(digest, k) for k in range(1, self.retries + 1))

    def fault_seed(self, base_seed: int, digest: str, attempt: int) -> int:
        """A fresh FaultPlan seed for re-execution *attempt* (>= 2).

        Task fates under a FaultPlan are pure functions of (seed, job
        identity, volumes, attempt budget), so re-running the identical
        workflow fails identically; deriving a per-attempt seed models
        the fresh task fates a resubmission gets on a real cluster
        while keeping the whole retry cascade deterministic.
        """
        raw = hashlib.blake2b(
            f"retry-fates\x1f{base_seed}\x1f{digest}\x1f{attempt}".encode("utf-8"),
            digest_size=8,
        ).digest()
        return int.from_bytes(raw, "big") >> 1  # keep it a positive int


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit-breaker knobs (times in simulated seconds).

    ``threshold=0`` disables the breaker entirely (it reports closed
    forever) — used by the monotonicity property tests, where tripping
    would make "more retries" serve *fewer* requests by design.
    """

    #: Failures inside the sliding window that trip the breaker.
    threshold: int = 4
    #: Sliding failure-window length.
    window: float = 8.0
    #: How long the breaker stays open before probing.
    cooldown: float = 30.0
    #: Executions allowed per half-open episode.
    probes: int = 1

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ResilienceError(f"threshold must be >= 0: {self.threshold!r}")
        if not self.window > 0.0:
            raise ResilienceError(f"window must be > 0: {self.window!r}")
        if not self.cooldown > 0.0:
            raise ResilienceError(f"cooldown must be > 0: {self.cooldown!r}")
        if self.probes < 1:
            raise ResilienceError(f"probes must be >= 1: {self.probes!r}")


class CircuitBreaker:
    """Closed/open/half-open state machine on the simulated clock.

    The service feeds it execution outcomes stamped with simulated
    times; ``allow`` gates dispatch.  Failures inside
    :attr:`BreakerPolicy.window` seconds of each other accumulate;
    reaching :attr:`BreakerPolicy.threshold` trips the breaker open.
    After :attr:`BreakerPolicy.cooldown` it goes half-open and admits up
    to :attr:`BreakerPolicy.probes` executions: one success closes it
    (the window is forgiven), one failure re-trips it.  Time only moves
    forward — the machine keeps a high-water clock, so out-of-order
    stamps from one window cannot rewind a transition.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, policy: BreakerPolicy, engine: str = ""):
        self.policy = policy
        self.engine = engine
        self.trips = 0
        self.half_opens = 0
        self.closes = 0
        self._state = self.CLOSED
        self._failures: list[float] = []
        self._opened_at = 0.0
        self._probes_left = 0
        self._now = 0.0

    @property
    def enabled(self) -> bool:
        return self.policy.threshold > 0

    def _event(self, kind: str) -> None:
        obs.event(
            f"breaker-{kind}", {"engine": self.engine, "at": round(self._now, 6)}
        )
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.counter(
                "serve_breaker_events_total",
                "circuit-breaker transitions and fast-fails",
                ("engine", "event"),
            ).labels(engine=self.engine, event=kind).inc()

    def state(self, now: float) -> str:
        """Current state at simulated time *now* (advances cooldown)."""
        if not self.enabled:
            return self.CLOSED
        self._now = max(self._now, now)
        if (
            self._state == self.OPEN
            and self._now >= self._opened_at + self.policy.cooldown
        ):
            self._state = self.HALF_OPEN
            self._probes_left = self.policy.probes
            self.half_opens += 1
            self._event("half-open")
        return self._state

    def allow(self, now: float) -> bool:
        """May an execution start at *now*?  Consumes a probe slot when
        half-open."""
        state = self.state(now)
        if state == self.CLOSED:
            return True
        if state == self.OPEN:
            return False
        if self._probes_left > 0:
            self._probes_left -= 1
            return True
        return False

    def record_success(self, now: float) -> None:
        if not self.enabled:
            return
        self._now = max(self._now, now)
        if self._state == self.HALF_OPEN:
            self._state = self.CLOSED
            self._failures.clear()
            self.closes += 1
            self._event("close")

    def record_failure(self, now: float) -> None:
        if not self.enabled:
            return
        self._now = max(self._now, now)
        if self._state == self.HALF_OPEN:
            self._trip()
            return
        if self._state == self.OPEN:
            return
        horizon = self._now - self.policy.window
        self._failures = [t for t in self._failures if t > horizon]
        self._failures.append(self._now)
        if len(self._failures) >= self.policy.threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._now
        self._failures.clear()
        self.trips += 1
        self._event("trip")


@dataclass(frozen=True)
class DegradationPolicy:
    """What partial service is acceptable when full service is not.

    Tiers, in the order the service applies them:

    1. **stale** — a query that exhausted its retry budget (or hit an
       open breaker) is answered from the last-known-good store,
       marked ``status="degraded"`` / ``source="stale-cache"`` with the
       graph version it was computed against, instead of failing.
    2. **bypass_batching** — while the breaker is half-open, MQO
       merging is suspended so each probe risks one query, not a whole
       composite's worth of members.
    3. **shed_threshold** — when admitted-plus-in-flight depth at a
       window close crosses this bound, the lowest-priority arrivals
       are shed deterministically (``status="shed"``) before any
       planning or cluster cost is spent on them.  ``None`` disables.
    """

    stale: bool = True
    bypass_batching: bool = True
    shed_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.shed_threshold is not None and self.shed_threshold < 1:
            raise ResilienceError(
                f"shed_threshold must be >= 1: {self.shed_threshold!r}"
            )


@dataclass(frozen=True)
class ResilienceConfig:
    """The three policies wired into a :class:`QueryService`."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    degradation: DegradationPolicy = field(default_factory=DegradationPolicy)

    @classmethod
    def from_spec(cls, text: str) -> "ResilienceConfig":
        """Parse a ``--resilience`` spec: comma-separated ``key=value``
        with keys ``retries``, ``backoff``, ``factor``, ``jitter``,
        ``seed``, ``threshold``, ``window``, ``cooldown``, ``probes``,
        ``stale`` (on/off), ``bypass`` (on/off), ``shed`` (0 = off).
        The empty spec (or ``default``) keeps every default.
        """
        cleaned = text.strip()
        if cleaned.lower() in ("", "default"):
            return cls()
        values: dict[str, str] = {}
        for part in cleaned.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep:
                raise ResilienceError(
                    f"invalid resilience spec {text!r}: expected key=value, "
                    f"got {part!r}"
                )
            values[key.strip()] = value.strip()
        known = {
            "retries", "backoff", "factor", "jitter", "seed",
            "threshold", "window", "cooldown", "probes",
            "stale", "bypass", "shed",
        }
        unknown = set(values) - known
        if unknown:
            raise ResilienceError(
                f"invalid resilience spec {text!r}: unknown key(s) "
                f"{', '.join(sorted(unknown))} (known: {', '.join(sorted(known))})"
            )

        def flag(key: str, default: bool) -> bool:
            raw = values.get(key)
            if raw is None:
                return default
            if raw.lower() not in _FLAGS:
                raise ResilienceError(
                    f"invalid resilience spec {text!r}: {key} must be on/off, "
                    f"got {raw!r}"
                )
            return _FLAGS[raw.lower()]

        try:
            shed = int(values["shed"]) if "shed" in values else 0
            retry = RetryPolicy(
                retries=int(values.get("retries", RetryPolicy.retries)),
                base_backoff=float(values.get("backoff", RetryPolicy.base_backoff)),
                backoff_factor=float(values.get("factor", RetryPolicy.backoff_factor)),
                jitter=float(values.get("jitter", RetryPolicy.jitter)),
                seed=int(values.get("seed", RetryPolicy.seed)),
            )
            breaker = BreakerPolicy(
                threshold=int(values.get("threshold", BreakerPolicy.threshold)),
                window=float(values.get("window", BreakerPolicy.window)),
                cooldown=float(values.get("cooldown", BreakerPolicy.cooldown)),
                probes=int(values.get("probes", BreakerPolicy.probes)),
            )
            degradation = DegradationPolicy(
                stale=flag("stale", True),
                bypass_batching=flag("bypass", True),
                shed_threshold=shed if shed > 0 else None,
            )
        except ValueError as error:
            raise ResilienceError(
                f"invalid resilience spec {text!r}: {error}"
            ) from None
        except ResilienceError as error:
            raise ResilienceError(
                f"invalid resilience spec {text!r}: {error}"
            ) from None
        return cls(retry=retry, breaker=breaker, degradation=degradation)

    def as_dict(self) -> dict[str, Any]:
        return {
            "retries": self.retry.retries,
            "base_backoff": self.retry.base_backoff,
            "backoff_factor": self.retry.backoff_factor,
            "jitter": self.retry.jitter,
            "seed": self.retry.seed,
            "threshold": self.breaker.threshold,
            "window": self.breaker.window,
            "cooldown": self.breaker.cooldown,
            "probes": self.breaker.probes,
            "stale": self.degradation.stale,
            "bypass_batching": self.degradation.bypass_batching,
            "shed_threshold": self.degradation.shed_threshold,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ResilienceConfig":
        shed = data.get("shed_threshold")
        return cls(
            retry=RetryPolicy(
                retries=data["retries"],
                base_backoff=data["base_backoff"],
                backoff_factor=data["backoff_factor"],
                jitter=data["jitter"],
                seed=data["seed"],
            ),
            breaker=BreakerPolicy(
                threshold=data["threshold"],
                window=data["window"],
                cooldown=data["cooldown"],
                probes=data["probes"],
            ),
            degradation=DegradationPolicy(
                stale=data["stale"],
                bypass_batching=data["bypass_batching"],
                shed_threshold=shed,
            ),
        )


# -- the fault-injected A/B report --------------------------------------------


def _fault_plan_dict(plan: FaultPlan) -> dict[str, Any]:
    return {
        "seed": plan.seed,
        "task_failure_rate": plan.task_failure_rate,
        "straggler_rate": plan.straggler_rate,
        "straggler_slowdown": plan.straggler_slowdown,
        "hdfs_write_failure_rate": plan.hdfs_write_failure_rate,
        "max_attempts": plan.max_attempts,
        "speculation": plan.speculation,
    }


def prioritized_requests(spec: Any, seed: int) -> list:
    """The workload's arrival sequence with deterministic priorities.

    Priorities come from a *separate* ``random.Random`` stream keyed on
    the seed, applied after the arrival sequence is drawn — the
    workload's own rng stream (and therefore every committed serve
    golden) is untouched.
    """
    from repro.serve.workload import workload_requests

    requests = workload_requests(spec, seed)
    rng = random.Random(700_001 + seed)
    return [replace(request, priority=rng.randrange(3)) for request in requests]


def serve_resilience_report(
    spec: Any,
    fault_plan: FaultPlan,
    resilience: ResilienceConfig | None = None,
    slo: Any = None,
    graph: Any = None,
) -> dict[str, Any]:
    """Run identical fault-injected traffic with resilience off and on.

    Both arms serve the same prioritized arrival sequences against the
    same fault-injected engine config; the *only* difference is
    ``ServiceConfig.resilience``.  The fault-free solo baseline supplies
    the correctness oracle: every ``ok`` answer (either arm) and every
    ``degraded`` answer must be bit-identical to it — resilience is
    allowed to convert failures into answers, never to change answers.
    Availability is ``(ok + degraded) / requests``; the headline verdict
    requires the pooled availability with resilience on to be *strictly*
    above off.  The SLO verdict (error-budget burn included) is computed
    over the resilient arm's answered latencies.
    """
    from repro import perf
    from repro.bench.catalog import get_query
    from repro.core.engines import make_engine, to_analytical
    from repro.serve.service import DEGRADED, OK, QueryService
    from repro.serve.slo import SLOSpec, evaluate_slo
    from repro.serve.workload import WORKLOAD_MIXES, _latency_summary, default_slo

    resilience = resilience or ResilienceConfig()
    dataset, preset, qids, config_factory = WORKLOAD_MIXES[spec.mix]
    if graph is None:
        from repro.bench.faults import _build_graph

        graph = _build_graph(dataset, preset)
    engine_config = config_factory()
    if spec.representation is not None:
        engine_config = replace(engine_config, representation=spec.representation)
    if spec.planner is not None:
        engine_config = replace(engine_config, planner=spec.planner)
    slo = slo or default_slo(spec.mix)
    if isinstance(slo, dict):
        slo = SLOSpec(**slo)

    baseline: dict[str, dict[str, Any]] = {}
    for qid in qids:
        report = make_engine(spec.engine).execute(
            to_analytical(get_query(qid).sparql), graph, engine_config
        )
        baseline[qid] = {
            "rows": len(report.rows),
            "cost_seconds": round(report.cost_seconds, 6),
            "digest": perf.rows_digest(report.rows),
        }

    faulty_config = replace(engine_config, fault_plan=fault_plan)
    arms: tuple[tuple[str, ResilienceConfig | None], ...] = (
        ("off", None),
        ("on", resilience),
    )
    runs: list[dict[str, Any]] = []
    available = {"off": 0, "on": 0}
    total = {"off": 0, "on": 0}
    ok_mismatches: list[int] = []
    degraded_mismatches: list[int] = []
    pooled_on_latencies: list[float] = []
    totals_on = {
        "retries": 0,
        "retry_successes": 0,
        "breaker_trips": 0,
        "breaker_fast_fails": 0,
        "degraded_stale": 0,
        "shed_requests": 0,
        "isolated_groups": 0,
    }
    for seed in range(1, spec.seeds + 1):
        requests = prioritized_requests(spec, seed)
        entry: dict[str, Any] = {"seed": seed}
        for arm, arm_resilience in arms:
            service = QueryService(
                graph,
                replace(spec.service_config(faulty_config), resilience=arm_resilience),
            )
            responses = service.serve(requests)
            statuses: dict[str, int] = {}
            sources: dict[str, int] = {}
            latencies: list[float] = []
            for response in responses:
                statuses[response.status] = statuses.get(response.status, 0) + 1
                if response.source is not None:
                    sources[response.source] = sources.get(response.source, 0) + 1
                if response.status in (OK, DEGRADED):
                    available[arm] += 1
                    latencies.append(response.latency)
                    digest = perf.rows_digest(response.rows)
                    if digest != baseline[response.label]["digest"]:
                        if response.status == OK:
                            ok_mismatches.append(response.request_id)
                        else:
                            degraded_mismatches.append(response.request_id)
            total[arm] += len(responses)
            counters = service.counter_snapshot()
            if arm == "on":
                pooled_on_latencies.extend(latencies)
                for key in totals_on:
                    totals_on[key] += int(counters.get(key, 0))
            answered = statuses.get(OK, 0) + statuses.get(DEGRADED, 0)
            entry[arm] = {
                "requests": len(responses),
                "statuses": dict(sorted(statuses.items())),
                "sources": dict(sorted(sources.items())),
                "availability": round(answered / len(responses), 6)
                if responses
                else None,
                "latency": _latency_summary(latencies),
                "served_cost_seconds": round(service.executed_cost_seconds, 6),
                "counters": dict(sorted(counters.items())),
            }
        runs.append(entry)

    availability = {
        arm: round(available[arm] / total[arm], 6) if total[arm] else None
        for arm in ("off", "on")
    }
    slo_on = evaluate_slo(slo, pooled_on_latencies)
    verdicts = {
        # The headline: resilience strictly buys availability under the
        # pinned fault plan.
        "availability_strictly_improved": (
            availability["on"] is not None
            and availability["off"] is not None
            and availability["on"] > availability["off"]
        ),
        # The guard rail: it never buys it by changing answers.
        "ok_rows_match_fault_free": not ok_mismatches,
        "degraded_rows_match_fault_free": not degraded_mismatches,
        "slo_error_budget_pass": slo_on["objectives"]["budget"],
        "slo_pass": slo_on["pass"],
    }
    return {
        "schema": RESILIENCE_SCHEMA,
        "mix": spec.mix,
        "dataset": dataset,
        "preset": preset,
        "queries": list(qids),
        "workload": spec.as_dict(),
        "faults": _fault_plan_dict(fault_plan),
        "resilience": resilience.as_dict(),
        "baseline": baseline,
        "runs": runs,
        "slo": slo_on,
        "summary": {
            "requests_per_arm": total["on"],
            "availability_off": availability["off"],
            "availability_on": availability["on"],
            "availability_gain": round(availability["on"] - availability["off"], 6)
            if availability["on"] is not None and availability["off"] is not None
            else None,
            **{key: value for key, value in sorted(totals_on.items())},
        },
        "verdicts": verdicts,
        "mismatched_ok_requests": ok_mismatches,
        "mismatched_degraded_requests": degraded_mismatches,
    }


def spec_from_resilience_report(report: dict[str, Any]):
    from repro.serve.workload import WorkloadSpec

    return WorkloadSpec(**report["workload"])


def check_resilience_golden(path: str | Path) -> list[str]:
    """Re-run a committed resilience report and diff against it.

    Reconstructs the workload, fault plan, resilience config, and SLO
    from the golden itself, re-runs both arms, and returns
    human-readable differences (empty = bit-identical) — so CI catches
    any retry/breaker/degradation change that moves an availability
    figure, a counter, or a verdict.
    """
    from repro.serve.slo import SLOSpec

    golden = json.loads(Path(path).read_text())
    fresh = serve_resilience_report(
        spec_from_resilience_report(golden),
        FaultPlan(**golden["faults"]),
        ResilienceConfig.from_dict(golden["resilience"]),
        slo=SLOSpec(**golden["slo"]["targets"]),
    )
    problems: list[str] = []
    for key in (
        "schema", "mix", "dataset", "preset", "queries", "workload",
        "faults", "resilience", "baseline",
    ):
        if golden.get(key) != fresh.get(key):
            problems.append(
                f"{key} differs: golden={golden.get(key)!r} fresh={fresh.get(key)!r}"
            )
    golden_runs = {run["seed"]: run for run in golden.get("runs", [])}
    fresh_runs = {run["seed"]: run for run in fresh.get("runs", [])}
    for seed in sorted(set(golden_runs) | set(fresh_runs)):
        old, new = golden_runs.get(seed), fresh_runs.get(seed)
        if old is None or new is None:
            problems.append(
                f"seed {seed}: present only in {'fresh' if old is None else 'golden'}"
            )
            continue
        for arm in ("off", "on"):
            for key in sorted(set(old.get(arm, {})) | set(new.get(arm, {}))):
                if old[arm].get(key) != new[arm].get(key):
                    problems.append(
                        f"seed {seed} arm {arm}: {key} differs: "
                        f"golden={old[arm].get(key)!r} fresh={new[arm].get(key)!r}"
                    )
    for key in ("slo", "summary", "verdicts"):
        if golden.get(key) != fresh.get(key):
            problems.append(
                f"{key} differs: golden={golden.get(key)!r} fresh={fresh.get(key)!r}"
            )
    return problems


def write_resilience_report(report: dict[str, Any], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def render_resilience_report(report: dict[str, Any]) -> str:
    """Terminal view: per-seed availability A/B plus the verdict lines."""
    workload = report["workload"]
    faults = report["faults"]
    lines = [
        f"{report['mix']} resilience A/B "
        f"(seeds=1..{workload['seeds']}, requests={workload['requests']}, "
        f"engine={workload['engine']}, faults seed={faults['seed']} "
        f"rate={faults['task_failure_rate']:g} "
        f"attempts={faults['max_attempts']})",
        f"{'seed':>4s} {'avail off':>9s} {'avail on':>9s} {'retries':>8s} "
        f"{'degraded':>9s} {'shed':>5s} {'trips':>6s} {'fastfail':>9s}",
    ]
    for run in report["runs"]:
        on = run["on"]
        counters = on["counters"]
        lines.append(
            f"{run['seed']:4d} "
            f"{run['off']['availability'] * 100:8.1f}% "
            f"{on['availability'] * 100:8.1f}% "
            f"{counters.get('retries', 0):8d} "
            f"{counters.get('degraded_stale', 0):9d} "
            f"{counters.get('shed_requests', 0):5d} "
            f"{counters.get('breaker_trips', 0):6d} "
            f"{counters.get('breaker_fast_fails', 0):9d}"
        )
    summary = report["summary"]
    verdicts = report["verdicts"]
    lines.append(
        f"pooled availability: {summary['availability_off'] * 100:.1f}% off -> "
        f"{summary['availability_on'] * 100:.1f}% on "
        f"(gain {summary['availability_gain'] * 100:+.1f}pp); "
        f"retries {summary['retries']} "
        f"({summary['retry_successes']} recovered), "
        f"breaker trips {summary['breaker_trips']}, "
        f"stale serves {summary['degraded_stale']}, "
        f"shed {summary['shed_requests']}"
    )
    lines.append(
        "availability strictly improved: "
        f"{verdicts['availability_strictly_improved']}; "
        f"ok answers match fault-free: {verdicts['ok_rows_match_fault_free']}; "
        f"degraded answers match fault-free: "
        f"{verdicts['degraded_rows_match_fault_free']}"
    )
    slo = report["slo"]
    lines.append(
        f"SLO on resilient arm: {'PASS' if slo['pass'] else 'FAIL'} "
        f"(error-budget burn {slo['budget_burn'] * 100:.1f}% over "
        f"{slo['count']} answered, budget "
        f"{slo['targets']['budget'] * 100:g}%)"
    )
    return "\n".join(lines)
