"""Concurrent analytical-query serving (``repro serve``).

Lifts the paper's overlap-driven sharing from intra-query to
cross-request: a :class:`~repro.serve.service.QueryService` schedules
many queries against one shared graph with admission control, plan and
result caches keyed by canonical query fingerprints, and an MQO batcher
that merges overlapping requests into one composite workflow and
n-splits the answers back.  See ``docs/serving.md``.
"""

from repro.serve.cache import LRUCache
from repro.serve.fingerprint import Fingerprint, fingerprint_query
from repro.serve.service import (
    DEADLINE,
    FAILED,
    OK,
    REJECTED,
    QueryService,
    ServeRequest,
    ServeResponse,
    ServiceConfig,
)
from repro.serve.workload import (
    SERVE_SCHEMA,
    WORKLOAD_MIXES,
    WorkloadSpec,
    check_serve_golden,
    render_serve_report,
    serve_workload_report,
    write_serve_report,
)

__all__ = [
    "DEADLINE",
    "FAILED",
    "Fingerprint",
    "LRUCache",
    "OK",
    "QueryService",
    "REJECTED",
    "SERVE_SCHEMA",
    "ServeRequest",
    "ServeResponse",
    "ServiceConfig",
    "WORKLOAD_MIXES",
    "WorkloadSpec",
    "check_serve_golden",
    "fingerprint_query",
    "render_serve_report",
    "serve_workload_report",
    "write_serve_report",
]
