"""Concurrent analytical-query serving (``repro serve``).

Lifts the paper's overlap-driven sharing from intra-query to
cross-request: a :class:`~repro.serve.service.QueryService` schedules
many queries against one shared graph with admission control, plan and
result caches keyed by canonical query fingerprints, and an MQO batcher
that merges overlapping requests into one composite workflow and
n-splits the answers back.  :mod:`repro.serve.resilience` adds the
fault-facing layer: deterministic retries, a per-engine circuit
breaker, and graceful degradation tiers.  See ``docs/serving.md``.
"""

from repro.serve.cache import LRUCache, StaleResultStore
from repro.serve.fingerprint import Fingerprint, fingerprint_query
from repro.serve.resilience import (
    RESILIENCE_SCHEMA,
    BreakerPolicy,
    CircuitBreaker,
    DegradationPolicy,
    ResilienceConfig,
    RetryPolicy,
    check_resilience_golden,
    render_resilience_report,
    serve_resilience_report,
    write_resilience_report,
)
from repro.serve.service import (
    DEADLINE,
    DEGRADED,
    FAILED,
    OK,
    REJECTED,
    SHED,
    QueryService,
    ServeRequest,
    ServeResponse,
    ServiceConfig,
)
from repro.serve.slo import DEFAULT_SLOS, SLOSpec, evaluate_slo
from repro.serve.workload import (
    SERVE_SCHEMA,
    SERVE_SCHEMA_V1,
    WORKLOAD_MIXES,
    WorkloadSpec,
    check_serve_golden,
    default_slo,
    project_v1,
    render_serve_report,
    serve_workload_report,
    serve_workload_with_metrics,
    write_serve_report,
)

__all__ = [
    "DEADLINE",
    "DEFAULT_SLOS",
    "DEGRADED",
    "FAILED",
    "Fingerprint",
    "LRUCache",
    "OK",
    "QueryService",
    "REJECTED",
    "RESILIENCE_SCHEMA",
    "SERVE_SCHEMA",
    "SERVE_SCHEMA_V1",
    "SHED",
    "SLOSpec",
    "BreakerPolicy",
    "CircuitBreaker",
    "DegradationPolicy",
    "ResilienceConfig",
    "RetryPolicy",
    "ServeRequest",
    "ServeResponse",
    "ServiceConfig",
    "StaleResultStore",
    "WORKLOAD_MIXES",
    "WorkloadSpec",
    "check_resilience_golden",
    "check_serve_golden",
    "default_slo",
    "evaluate_slo",
    "fingerprint_query",
    "project_v1",
    "render_resilience_report",
    "render_serve_report",
    "serve_resilience_report",
    "serve_workload_report",
    "serve_workload_with_metrics",
    "write_resilience_report",
    "write_serve_report",
]
