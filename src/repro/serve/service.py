"""The concurrent analytical-query service.

:class:`QueryService` accepts many SPARQL queries against one shared
graph and exploits cross-request sharing three ways, in order:

1. **result cache** — answers keyed by (canonical fingerprint, graph
   version, engine) are returned without touching the cluster;
2. **request dedup** — identical queries arriving in the same batching
   window execute once and fan the answer out;
3. **MQO batching** — *different* queries whose graph patterns overlap
   (paper Defs 3.1/3.2) are merged into one composite workflow
   (:func:`repro.ntga.planner.plan_batch`), executed once, and n-split
   (χ) back to each requester.

Under a non-rule planner mode (``EngineConfig.planner`` of ``"cost"``
or ``"auto"``) the fingerprint-keyed plan cache also remembers the
cost-based planner's chosen candidate per (fingerprint, graph version,
engine), and solo re-executions replay it via
``EngineConfig.plan_decision`` instead of re-selecting.  Rule mode
never touches that cache, so the default goldens' counters are
unchanged.

Two clocks, one contract.  Requests carry *simulated* arrival times;
admission, batching windows, worker queueing, latencies, and deadlines
all live on the simulated clock, so every response field is a pure
function of (graph, config, request sequence) — byte-reproducible
across runs, thread counts, and ``PYTHONHASHSEED``.  Real wall-clock
parallelism is an orthogonal execution detail: executable units are
dispatched to a thread pool purely to overlap Python work, and the pool
never influences simulated results.  When a :mod:`repro.obs` tracer,
:mod:`repro.perf` recorder, :mod:`repro.obs.metrics` registry, or
calibration monitor is active, units run serially on the coordinator
thread instead (all keep single unsynchronized accumulators), which
changes nothing observable but the wall time.

The service works with every engine (``EngineConfig`` fault plans and
checkpointed recovery compose — a batch resubmits exactly like a solo
workflow); pattern-merge batching itself engages on the
``rapid-analytics`` engine, the only planner with a composite operator.

With a :class:`~repro.serve.resilience.ResilienceConfig` wired into
:attr:`ServiceConfig.resilience`, execution additionally gains
deterministic retries, a per-engine circuit breaker, and graceful
degradation (stale answers, batching bypass, load shedding) — see the
"resilient execution" section below.  Resilient units always run
serially on the coordinator thread: the breaker's sliding window and
the retry queue are sequential state machines on simulated time, and
wall-clock overlap must never influence them.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from repro import obs, perf
from repro.core.engines import make_engine
from repro.core.results import EngineConfig, Row
from repro.errors import OverlapError, ReproError, ServeError, SparqlError
from repro.ntga.engine import execute_batch
from repro.obs import metrics as obs_metrics
from repro.obs.calibration import CalibrationMonitor
from repro.rdf.graph import Graph
from repro.serve.cache import LRUCache, StaleResultStore
from repro.serve.fingerprint import Fingerprint, fingerprint_query
from repro.serve.resilience import CircuitBreaker, ResilienceConfig

#: Response status values.
OK = "ok"
REJECTED = "rejected"
FAILED = "failed"
DEADLINE = "deadline-exceeded"
#: Answered from the stale store after execution could not be (fully)
#: retried — rows may reflect an older graph version.
DEGRADED = "degraded"
#: Dropped by the load-shedding degradation tier before any planning
#: or cluster cost was spent.
SHED = "shed"


@dataclass(frozen=True)
class ServiceConfig:
    """Scheduler knobs (all times in simulated seconds)."""

    engine: str = "rapid-analytics"
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    #: Simulated executor slots *and* real thread-pool width.
    workers: int = 4
    #: Admission cap: queued + in-flight requests at arrival time.
    max_pending: int = 64
    #: Batching window length; arrivals inside one window are scheduled
    #: together at its close.
    batch_window: float = 0.25
    plan_cache_size: int = 128
    result_cache_size: int = 256
    enable_result_cache: bool = True
    enable_batching: bool = True
    #: Default per-request deadline (None = no deadline).
    deadline: float | None = None
    #: Retry/breaker/degradation policies (None = the pre-resilience
    #: fail-fast behaviour; committed serve goldens run with None).
    resilience: ResilienceConfig | None = None

    def __post_init__(self) -> None:
        from repro.core.engines import ENGINE_FACTORIES

        if self.engine not in ENGINE_FACTORIES:
            known = ", ".join(sorted(ENGINE_FACTORIES))
            raise ServeError(f"unknown engine {self.engine!r} (known: {known})")
        if self.workers < 1:
            raise ServeError(f"workers must be >= 1: {self.workers!r}")
        if self.max_pending < 1:
            raise ServeError(f"max_pending must be >= 1: {self.max_pending!r}")
        if not self.batch_window > 0.0:
            raise ServeError(f"batch_window must be > 0: {self.batch_window!r}")
        if self.deadline is not None and not self.deadline > 0.0:
            raise ServeError(f"deadline must be > 0: {self.deadline!r}")


@dataclass(frozen=True)
class ServeRequest:
    """One query submission.  ``arrival`` is on the simulated clock;
    arrivals earlier than windows the service already closed are clamped
    forward (you cannot submit into the past)."""

    text: str
    arrival: float = 0.0
    label: str = ""
    deadline: float | None = None
    #: Scheduling priority for the load-shedding tier: higher survives
    #: longer when the service sheds (ties break by arrival, then id).
    priority: int = 0

    def __post_init__(self) -> None:
        if self.deadline is not None and not self.deadline > 0.0:
            raise ServeError(
                f"request deadline must be > 0: {self.deadline!r}"
            )


@dataclass
class ServeResponse:
    """The service's answer to one request."""

    request_id: int
    label: str
    status: str
    arrival: float
    fingerprint: str | None = None
    rows: list[Row] | None = None
    error: str | None = None
    started: float | None = None
    completed: float | None = None
    latency: float | None = None
    #: Where the answer came from: ``result-cache`` / ``dedup`` /
    #: ``batch`` / ``solo`` (None for rejected or failed requests).
    source: str | None = None
    plan_cached: bool = False
    #: Distinct queries merged into the unit that produced this answer.
    batch_size: int = 0
    #: Simulated cost of that unit (shared across its members).
    unit_cost: float = 0.0
    #: Executions this answer consumed (1 = no retries).
    attempts: int = 1
    #: Total simulated backoff the retry schedule inserted before the
    #: attempt that produced this answer.
    retry_backoff: float = 0.0
    #: Graph version a ``degraded`` answer was computed against (None
    #: for non-degraded responses).
    stale_version: int | None = None


class _Group:
    """All same-window requests for one distinct fingerprint."""

    __slots__ = ("fp", "requests")

    def __init__(self, fp: Fingerprint):
        self.fp = fp
        self.requests: list[tuple[int, ServeRequest]] = []


class _Unit:
    """One executable workflow: a solo query or a merged batch."""

    __slots__ = ("groups", "rows_by_group", "cost", "wall", "error", "failed_cost")

    def __init__(self, groups: list[_Group]):
        self.groups = groups
        self.rows_by_group: list[list[Row]] | None = None
        self.cost = 0.0
        self.wall = 0.0  # real seconds spent executing (diagnostic only)
        self.error: str | None = None
        #: Simulated seconds the cluster burned before a failed attempt
        #: aborted (committed prefix + wasted work); 0.0 on success.
        self.failed_cost = 0.0


class _Attempt:
    """One scheduled execution of a unit's groups in the resilient
    work queue.  ``attempt`` is 1-based; ``not_before`` is the earliest
    simulated start (window close, or failure time + backoff)."""

    __slots__ = ("groups", "attempt", "not_before", "backoff_total")

    def __init__(
        self,
        groups: list[_Group],
        attempt: int,
        not_before: float,
        backoff_total: float,
    ):
        self.groups = groups
        self.attempt = attempt
        self.not_before = not_before
        self.backoff_total = backoff_total


_COUNTER_KEYS = (
    "requests",
    "admitted",
    "rejected",
    "failed",
    "deadline_exceeded",
    "deadline_exceeded_at_dispatch",
    "dedup_requests",
    "batch_windows",
    "batch_merges",
    "batch_merged_requests",
    "units_solo",
    "units_batch",
)

#: Counters kept only when a :class:`ResilienceConfig` is wired in;
#: merged into :meth:`QueryService.counter_snapshot` so committed
#: non-resilient goldens keep their key set.
_RESILIENCE_COUNTER_KEYS = (
    "retries",
    "retry_successes",
    "retries_abandoned_deadline",
    "isolated_groups",
    "breaker_fast_fails",
    "batching_bypassed_windows",
    "shed_requests",
    "degraded_stale",
)


class QueryService:
    """Deterministic concurrent scheduler over one shared graph."""

    def __init__(
        self,
        graph: Graph,
        config: ServiceConfig | None = None,
        calibration: CalibrationMonitor | None = None,
    ):
        self.graph = graph
        self.config = config or ServiceConfig()
        #: Optional planner-calibration sink: solo adaptive executions
        #: feed their estimate-vs-actual comparison into it.
        self.calibration = calibration
        self.plan_cache = LRUCache(self.config.plan_cache_size)
        self.result_cache = LRUCache(self.config.result_cache_size)
        #: Last-known-good answers for the degraded tier (fed only when
        #: resilience is configured with the stale tier on).
        self.stale_results = StaleResultStore(self.config.result_cache_size)
        self.counters: dict[str, int] = {key: 0 for key in _COUNTER_KEYS}
        self.resilience_counters: dict[str, int] = {
            key: 0 for key in _RESILIENCE_COUNTER_KEYS
        }
        self.executed_cost_seconds = 0.0
        #: Simulated seconds charged to retries via resubmit_cost.
        self.retry_cost_seconds = 0.0
        self._breaker = (
            CircuitBreaker(self.config.resilience.breaker, engine=self.config.engine)
            if self.config.resilience is not None
            else None
        )
        self._next_id = 0
        self._floor = 0.0  # close time of the last processed window
        self._worker_free = [0.0] * self.config.workers
        self._open: list[float] = []  # completion times of admitted work

    # -- public API --------------------------------------------------------------

    def serve(self, requests: list[ServeRequest]) -> list[ServeResponse]:
        """Process a batch of submissions; responses in request order."""
        window = self.config.batch_window
        numbered: list[tuple[int, ServeRequest]] = []
        for request in requests:
            if request.arrival < 0.0:
                raise ServeError(f"arrival must be >= 0: {request.arrival!r}")
            if request.arrival < self._floor:
                request = replace(request, arrival=self._floor)
            numbered.append((self._next_id, request))
            self._next_id += 1

        by_window: dict[int, list[tuple[int, ServeRequest]]] = {}
        for rid, request in sorted(numbered, key=lambda r: (r[1].arrival, r[0])):
            by_window.setdefault(int(request.arrival // window), []).append(
                (rid, request)
            )

        responses: dict[int, ServeResponse] = {}
        for index in sorted(by_window):
            close = (index + 1) * window
            for response in self._run_window(by_window[index], close):
                responses[response.request_id] = response
            self._floor = max(self._floor, close)
        ordered = [responses[rid] for rid, _ in numbered]
        registry = obs_metrics.active_registry()
        if registry is not None:
            self._publish_metrics(registry, ordered)
        return ordered

    def query(self, text: str, label: str = "") -> ServeResponse:
        """Serve a single query arriving now (at the service's clock)."""
        return self.serve([ServeRequest(text=text, arrival=self._floor, label=label)])[0]

    def counter_snapshot(self) -> dict[str, int | float]:
        """Scheduler + cache counters, deterministically key-ordered
        (sorted, not insertion order — consumers may diff snapshots).
        Resilience counters (retries, breaker, shed, degraded, stale
        store) appear only when a :class:`ResilienceConfig` is wired
        in, so non-resilient goldens keep their key set."""
        snapshot: dict[str, int | float] = dict(self.counters)
        for name, cache in (("plan_cache", self.plan_cache), ("result_cache", self.result_cache)):
            for key, value in cache.stats().items():
                snapshot[f"{name}_{key}"] = value
        if self.config.resilience is not None:
            snapshot.update(self.resilience_counters)
            snapshot["breaker_trips"] = self._breaker.trips
            snapshot["breaker_half_opens"] = self._breaker.half_opens
            snapshot["breaker_closes"] = self._breaker.closes
            snapshot["retry_cost_seconds"] = round(self.retry_cost_seconds, 6)
            for key, value in self.stale_results.stats().items():
                snapshot[f"stale_store_{key}"] = value
        return dict(sorted(snapshot.items()))

    # -- metrics -----------------------------------------------------------------

    def _publish_metrics(
        self, registry: obs_metrics.MetricsRegistry, responses: list[ServeResponse]
    ) -> None:
        """Fold one ``serve()`` call's outcomes into the active registry."""
        statuses = registry.counter(
            "serve_requests_total", "requests by final status", ("status",)
        )
        answers = registry.counter(
            "serve_answers_total", "answers by sharing source", ("source",)
        )
        latency = registry.histogram(
            "serve_request_sim_latency_seconds",
            "request latency on the simulated clock",
            ("engine",),
        )
        wait = registry.histogram(
            "serve_queue_wait_sim_seconds",
            "arrival-to-start wait on the simulated clock",
        )
        for response in responses:
            statuses.labels(status=response.status).inc()
            if response.source is not None:
                answers.labels(source=response.source).inc()
            if response.latency is not None and response.status in (
                OK,
                DEADLINE,
                DEGRADED,
            ):
                latency.labels(engine=self.config.engine).observe(response.latency)
            if response.started is not None:
                wait.labels().observe(max(0.0, response.started - response.arrival))
        self.publish_cache_metrics(registry)

    def publish_cache_metrics(self, registry: obs_metrics.MetricsRegistry) -> None:
        """Sync the LRU caches' counters into per-cache gauges."""
        for name, cache in (("plan", self.plan_cache), ("result", self.result_cache)):
            for key, value in cache.stats().items():
                registry.gauge(
                    f"serve_cache_{key}", f"LRU cache {key}", ("cache",)
                ).labels(cache=name).set(value)

    # -- one batching window -----------------------------------------------------

    def _run_window(
        self, arrivals: list[tuple[int, ServeRequest]], close: float
    ) -> list[ServeResponse]:
        config = self.config
        responses: list[ServeResponse] = []
        admitted: list[tuple[int, ServeRequest]] = []

        for rid, request in arrivals:
            self.counters["requests"] += 1
            self._open = [t for t in self._open if t > request.arrival]
            pending = len(self._open) + len(admitted)
            if pending >= config.max_pending:
                self.counters["rejected"] += 1
                obs.event(
                    "request-reject",
                    {"request": rid, "arrival": request.arrival, "pending": pending},
                )
                responses.append(
                    ServeResponse(
                        request_id=rid,
                        label=request.label,
                        status=REJECTED,
                        arrival=request.arrival,
                        error=f"admission control: {pending} requests pending",
                    )
                )
                continue
            self.counters["admitted"] += 1
            obs.event(
                "request-admit",
                {"request": rid, "arrival": request.arrival, "close": close},
            )
            admitted.append((rid, request))

        if admitted:
            self.counters["batch_windows"] += 1
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.histogram(
                "serve_window_admitted", "requests admitted per batching window"
            ).labels().observe(len(admitted))
        if config.resilience is not None:
            admitted, shed = self._shed_lowest_priority(admitted, close)
            responses.extend(shed)
        groups, failed = self._resolve_plans(admitted, close)
        responses.extend(failed)
        groups, cached = self._consult_result_cache(groups, close)
        responses.extend(cached)
        groups, expired = self._enforce_dispatch_deadlines(groups, close)
        responses.extend(expired)
        if config.resilience is None:
            units = self._form_units(groups, close)
            self._execute_units(units)
            responses.extend(self._settle_units(units, close))
        else:
            responses.extend(self._run_resilient(groups, close))
        return responses

    def _shed_lowest_priority(
        self, admitted: list[tuple[int, ServeRequest]], close: float
    ) -> tuple[list[tuple[int, ServeRequest]], list[ServeResponse]]:
        """The load-shedding degradation tier: when admitted plus
        still-running work at the window close crosses the threshold,
        drop the overflow — lowest priority first, latest arrival first
        within a priority — before any planning or cluster cost is
        spent.  Pure function of the window's contents, so shedding is
        as deterministic as everything else."""
        threshold = self.config.resilience.degradation.shed_threshold
        if threshold is None or not admitted:
            return admitted, []
        in_flight = sum(1 for t in self._open if t > close)
        overflow = in_flight + len(admitted) - threshold
        if overflow <= 0:
            return admitted, []
        ranked = sorted(
            admitted, key=lambda item: (-item[1].priority, item[1].arrival, item[0])
        )
        keep_ids = {rid for rid, _ in ranked[: len(admitted) - overflow]}
        kept: list[tuple[int, ServeRequest]] = []
        responses: list[ServeResponse] = []
        for rid, request in admitted:
            if rid in keep_ids:
                kept.append((rid, request))
                continue
            self.resilience_counters["shed_requests"] += 1
            self._resilience_metric("serve_shed_total", "requests shed under load")
            obs.event(
                "request-shed",
                {
                    "request": rid,
                    "priority": request.priority,
                    "depth": in_flight + len(admitted),
                    "threshold": threshold,
                },
            )
            responses.append(
                ServeResponse(
                    request_id=rid,
                    label=request.label,
                    status=SHED,
                    arrival=request.arrival,
                    error=(
                        f"load shed: queue depth {in_flight + len(admitted)} > "
                        f"{threshold} (priority {request.priority})"
                    ),
                    completed=close,
                    latency=close - request.arrival,
                )
            )
        return kept, responses

    def _enforce_dispatch_deadlines(
        self, groups: list[_Group], close: float
    ) -> tuple[list[_Group], list[ServeResponse]]:
        """Fail requests whose queue wait already exceeds their deadline
        *before* any cluster cost is charged.  The check uses the window
        close (the earliest possible start), so it is conservative:
        requests that only blow their deadline while queued behind
        earlier units are still caught post-execution by ``_finish``."""
        kept: list[_Group] = []
        responses: list[ServeResponse] = []
        for group in groups:
            survivors: list[tuple[int, ServeRequest]] = []
            for rid, request in group.requests:
                deadline = (
                    request.deadline
                    if request.deadline is not None
                    else self.config.deadline
                )
                wait = close - request.arrival
                if deadline is None or wait <= deadline:
                    survivors.append((rid, request))
                    continue
                self.counters["deadline_exceeded"] += 1
                self.counters["deadline_exceeded_at_dispatch"] += 1
                self._open.append(close)
                obs.event(
                    "request-deadline",
                    {
                        "request": rid,
                        "latency": wait,
                        "deadline": deadline,
                        "stage": "dispatch",
                    },
                )
                responses.append(
                    ServeResponse(
                        request_id=rid,
                        label=request.label,
                        status=DEADLINE,
                        arrival=request.arrival,
                        fingerprint=group.fp.digest,
                        error=(
                            f"deadline exceeded before dispatch: "
                            f"{wait:.6f}s queued > {deadline:.6f}s"
                        ),
                        started=close,
                        completed=close,
                        latency=wait,
                    )
                )
            if survivors:
                group.requests = survivors
                kept.append(group)
        return kept, responses

    def _resilience_metric(self, name: str, help_text: str, **labels: str) -> None:
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.counter(name, help_text, tuple(sorted(labels))).labels(
                **labels
            ).inc()

    def _resolve_plans(
        self, admitted: list[tuple[int, ServeRequest]], close: float
    ) -> tuple[list[_Group], list[ServeResponse]]:
        """Fingerprint + decompose each admitted request (plan cache),
        collapsing same-fingerprint requests into one group."""
        groups: dict[str, _Group] = {}
        failures: list[ServeResponse] = []
        for rid, request in admitted:
            try:
                fp = self._fingerprint(request.text)
            except SparqlError as error:
                self.counters["failed"] += 1
                self._open.append(close)
                obs.event("request-failed", {"request": rid, "error": str(error)})
                failures.append(
                    ServeResponse(
                        request_id=rid,
                        label=request.label,
                        status=FAILED,
                        arrival=request.arrival,
                        error=str(error),
                        completed=close,
                        latency=close - request.arrival,
                    )
                )
                continue
            group = groups.get(fp.digest)
            if group is None:
                group = groups[fp.digest] = _Group(fp)
            else:
                self.counters["dedup_requests"] += 1
            group.requests.append((rid, request))
        return list(groups.values()), failures

    def _fingerprint(self, text: str) -> Fingerprint:
        hit = self.plan_cache.peek(text)
        if hit is not None:
            self.plan_cache.get(text)  # touch recency + hit counter
            obs.event("cache-hit", {"cache": "plan", "digest": hit.digest})
            return hit
        fp = fingerprint_query(text)
        self.plan_cache.misses += 1
        # Key by raw text (a plan-cache hit must skip the parse), but
        # share one entry between spelling variants of the same query.
        canonical_hit = self.plan_cache.peek(fp.canonical)
        if canonical_hit is not None:
            fp = canonical_hit
        else:
            self.plan_cache.put(fp.canonical, fp)
        self.plan_cache.put(text, fp)
        return fp

    def _result_key(self, digest: str) -> tuple[str, int, str]:
        return (digest, self.graph.version, self.config.engine)

    def _consult_result_cache(
        self, groups: list[_Group], close: float
    ) -> tuple[list[_Group], list[ServeResponse]]:
        if not self.config.enable_result_cache:
            return groups, []
        misses: list[_Group] = []
        responses: list[ServeResponse] = []
        for group in groups:
            rows = self.result_cache.get(self._result_key(group.fp.digest))
            if rows is None:
                misses.append(group)
                continue
            obs.event(
                "cache-hit",
                {
                    "cache": "result",
                    "digest": group.fp.digest,
                    "requests": len(group.requests),
                },
            )
            for rid, request in group.requests:
                self._open.append(close)
                responses.append(
                    self._finish(
                        rid,
                        request,
                        group,
                        rows,
                        started=close,
                        completed=close,
                        source="result-cache",
                        batch_size=0,
                        unit_cost=0.0,
                    )
                )
        return misses, responses

    # -- unit formation and execution --------------------------------------------

    def _form_units(
        self, groups: list[_Group], close: float, force_solo: bool = False
    ) -> list[_Unit]:
        """Partition the window's distinct queries into executable units,
        greedily merging overlapping patterns when batching is enabled.
        ``force_solo`` suspends merging for one window (the half-open
        breaker's minimal-blast-radius probes)."""
        if (
            force_solo
            or not self.config.enable_batching
            or self.config.engine != "rapid-analytics"
            or len(groups) < 2
        ):
            return [_Unit([group]) for group in groups]

        from repro.ntga.composite import build_composite_n

        batches: list[list[_Group]] = []
        for group in groups:
            placed = False
            for batch in batches:
                subqueries = [
                    sq for member in batch for sq in member.fp.query.subqueries
                ]
                subqueries.extend(group.fp.query.subqueries)
                try:
                    if len(subqueries) > 1:
                        build_composite_n(subqueries)
                    placed = True
                except OverlapError:
                    continue
                batch.append(group)
                break
            if not placed:
                batches.append([group])

        units = []
        for batch in batches:
            units.append(_Unit(batch))
            if len(batch) > 1:
                self.counters["batch_merges"] += 1
                self.counters["batch_merged_requests"] += sum(
                    len(member.requests) for member in batch
                )
                obs.event(
                    "batch-merge",
                    {
                        "close": close,
                        "queries": [member.fp.digest for member in batch],
                        "requests": sum(len(m.requests) for m in batch),
                    },
                )
        return units

    def _plan_decision_key(self, digest: str) -> tuple[str, str, int, str]:
        return ("plan-choice", digest, self.graph.version, self.config.engine)

    def _cached_plan_decision(self, digest: str) -> tuple[bool, str | None]:
        """Whether the adaptive planner applies to solo runs here, and
        the fingerprint's cached candidate name if one is stored.

        Rule mode never touches the plan cache — its counters are pinned
        by the serve-workload goldens."""
        if self.config.engine != "rapid-analytics":
            return False, None
        from repro.plan import resolve_planner

        if resolve_planner(self.config.engine_config.planner) == "rule":
            return False, None
        decision = self.plan_cache.get(self._plan_decision_key(digest))
        if decision is not None:
            obs.event(
                "cache-hit", {"cache": "plan-choice", "digest": digest}
            )
        return True, decision

    def _run_unit(self, unit: _Unit, engine_config: EngineConfig | None = None) -> None:
        config = self.config
        base_config = engine_config if engine_config is not None else config.engine_config
        wall_start = time.perf_counter()
        try:
            if len(unit.groups) == 1:
                digest = unit.groups[0].fp.digest
                solo_config = base_config
                adaptive, decision = self._cached_plan_decision(digest)
                if decision is not None:
                    solo_config = replace(solo_config, plan_decision=decision)
                report = make_engine(config.engine).execute(
                    unit.groups[0].fp.query, self.graph, solo_config
                )
                if (
                    adaptive
                    and report.plan_choice is not None
                    and report.plan_choice.source == "priced"
                ):
                    self.plan_cache.put(
                        self._plan_decision_key(digest), report.plan_choice.chosen
                    )
                if self.calibration is not None and report.plan_choice is not None:
                    label = unit.groups[0].requests[0][1].label or digest[:12]
                    self.calibration.record_report(label, report)
                unit.rows_by_group = [report.rows]
                unit.cost = report.cost_seconds
            else:
                batch = execute_batch(
                    [group.fp.query for group in unit.groups],
                    self.graph,
                    base_config,
                )
                unit.rows_by_group = batch.rows_by_query
                unit.cost = batch.cost_seconds
        except ReproError as error:
            unit.error = f"{type(error).__name__}: {error}"
            # The cluster still burned real simulated time before the
            # abort: the committed prefix's cost plus the aborted
            # attempt's wasted seconds (attached by the runner).
            partial = getattr(error, "partial_stats", None)
            unit.failed_cost = getattr(error, "wasted_seconds", 0.0) + (
                partial.total_cost if partial is not None else 0.0
            )
        finally:
            unit.wall = time.perf_counter() - wall_start

    def _execute_units(self, units: list[_Unit]) -> None:
        """Run every unit, really.  Serial whenever a tracer, perf
        recorder, metrics registry, or calibration monitor is active
        (all keep single unsynchronized accumulators); otherwise
        the first unit runs inline to warm the graph's derived-layout
        caches, the rest overlap on the pool.  Results are identical
        either way — units only share read-only state."""
        serial = (
            obs.active_tracer() is not None
            or perf.active_recorder() is not None
            or obs_metrics.active_registry() is not None
            or self.calibration is not None
            or self.config.workers == 1
            or len(units) <= 1
        )
        if serial:
            for unit in units:
                self._run_unit(unit)
            return
        self._run_unit(units[0])
        with ThreadPoolExecutor(
            max_workers=min(self.config.workers, len(units) - 1)
        ) as pool:
            futures = [pool.submit(self._run_unit, unit) for unit in units[1:]]
            for future in futures:
                future.result()

    def _settle_units(self, units: list[_Unit], close: float) -> list[ServeResponse]:
        """Assign simulated workers to units in deterministic order and
        turn execution results into responses."""
        responses: list[ServeResponse] = []
        registry = obs_metrics.active_registry()
        if registry is not None and units:
            unit_queries = registry.histogram(
                "serve_unit_queries", "distinct queries per executed unit"
            )
            unit_sim, unit_wall = registry.dual_histogram(
                "serve_unit_cost", "executed unit cost"
            )
            for unit in units:
                unit_queries.labels().observe(len(unit.groups))
                unit_sim.labels().observe(unit.cost)
                unit_wall.labels().observe(unit.wall)
        for unit in units:
            worker = min(range(len(self._worker_free)), key=self._worker_free.__getitem__)
            started = max(close, self._worker_free[worker])
            completed = started + unit.cost
            self._worker_free[worker] = completed
            self.executed_cost_seconds += unit.cost
            if len(unit.groups) > 1:
                self.counters["units_batch"] += 1
            else:
                self.counters["units_solo"] += 1

            for group, rows in zip(
                unit.groups,
                unit.rows_by_group or [None] * len(unit.groups),
            ):
                if unit.error is None and len(unit.groups) > 1:
                    obs.event(
                        "batch-split",
                        {
                            "digest": group.fp.digest,
                            "rows": len(rows),
                            "requests": len(group.requests),
                        },
                    )
                if unit.error is None and self.config.enable_result_cache:
                    self.result_cache.put(self._result_key(group.fp.digest), rows)
                source = "batch" if len(unit.groups) > 1 else "solo"
                for position, (rid, request) in enumerate(group.requests):
                    self._open.append(completed)
                    if unit.error is not None:
                        self.counters["failed"] += 1
                        obs.event(
                            "request-failed", {"request": rid, "error": unit.error}
                        )
                        responses.append(
                            ServeResponse(
                                request_id=rid,
                                label=request.label,
                                status=FAILED,
                                arrival=request.arrival,
                                fingerprint=group.fp.digest,
                                error=unit.error,
                                started=started,
                                completed=completed,
                                latency=completed - request.arrival,
                            )
                        )
                        continue
                    responses.append(
                        self._finish(
                            rid,
                            request,
                            group,
                            rows,
                            started=started,
                            completed=completed,
                            source=source if position == 0 else "dedup",
                            batch_size=len(unit.groups),
                            unit_cost=unit.cost,
                        )
                    )
        return responses

    # -- resilient execution -------------------------------------------------------
    #
    # With a ResilienceConfig wired in, the window's units run through a
    # deterministic work queue on the coordinator thread instead of the
    # thread pool: attempts are sequenced, each gated by the circuit
    # breaker at its simulated start time, failures feed the breaker's
    # sliding window, and failed units re-enter the queue per the retry
    # schedule.  A failed *batch* is split into solo re-executions
    # (blast-radius isolation) so one poisoned query cannot take down
    # its whole window.  Everything stays a pure function of (graph,
    # config, request sequence) — the queue order, worker assignment,
    # and breaker transitions are all driven by simulated times.

    def _run_resilient(self, groups: list[_Group], close: float) -> list[ServeResponse]:
        res = self.config.resilience
        responses: list[ServeResponse] = []
        if not groups:
            return responses
        state = self._breaker.state(close)
        if state == CircuitBreaker.OPEN:
            for group in groups:
                responses.extend(
                    self._degrade_group(
                        group,
                        close,
                        reason=(
                            f"circuit breaker open for engine "
                            f"{self.config.engine!r}"
                        ),
                        fast_fail=True,
                        attempts=0,
                        backoff_total=0.0,
                    )
                )
            return responses
        force_solo = (
            state == CircuitBreaker.HALF_OPEN and res.degradation.bypass_batching
        )
        if force_solo and len(groups) > 1:
            self.resilience_counters["batching_bypassed_windows"] += 1
            obs.event(
                "batching-bypass",
                {"close": close, "queries": [g.fp.digest for g in groups]},
            )
        units = self._form_units(groups, close, force_solo=force_solo)
        registry = obs_metrics.active_registry()
        queue: deque[_Attempt] = deque(
            _Attempt(unit.groups, 1, close, 0.0) for unit in units
        )
        while queue:
            item = queue.popleft()
            worker = min(
                range(len(self._worker_free)), key=self._worker_free.__getitem__
            )
            started = max(item.not_before, self._worker_free[worker])
            if not self._breaker.allow(started):
                for group in item.groups:
                    responses.extend(
                        self._degrade_group(
                            group,
                            started,
                            reason=(
                                f"circuit breaker open for engine "
                                f"{self.config.engine!r}"
                            ),
                            fast_fail=True,
                            attempts=item.attempt - 1,
                            backoff_total=item.backoff_total,
                        )
                    )
                continue
            unit = _Unit(list(item.groups))
            self._run_unit(unit, self._attempt_engine_config(item))
            resubmit = 0.0
            if item.attempt > 1:
                # Each re-execution is a fresh workflow submission; the
                # driver overhead is priced exactly like a checkpointed
                # resubmission with nothing salvageable.
                resubmit = self.config.engine_config.cost_model.resubmit_cost(
                    committed_jobs=0, committed_bytes=0
                )
                self.retry_cost_seconds += resubmit
            if len(unit.groups) > 1:
                self.counters["units_batch"] += 1
            else:
                self.counters["units_solo"] += 1
            if registry is not None:
                registry.histogram(
                    "serve_unit_queries", "distinct queries per executed unit"
                ).labels().observe(len(unit.groups))
                unit_sim, unit_wall = registry.dual_histogram(
                    "serve_unit_cost", "executed unit cost"
                )
                unit_sim.labels().observe(unit.cost)
                unit_wall.labels().observe(unit.wall)
            if unit.error is None:
                cost = unit.cost + resubmit
                completed = started + cost
                self._worker_free[worker] = completed
                self.executed_cost_seconds += cost
                self._breaker.record_success(completed)
                if item.attempt > 1:
                    self.resilience_counters["retry_successes"] += 1
                    self._resilience_metric(
                        "serve_retries_total",
                        "serve-layer retries by outcome",
                        outcome="success",
                    )
                responses.extend(self._settle_success(unit, item, started, completed))
                continue
            failed_cost = unit.failed_cost + resubmit
            failed_at = started + failed_cost
            self._worker_free[worker] = failed_at
            self.executed_cost_seconds += failed_cost
            self._breaker.record_failure(failed_at)
            if item.attempt > 1:
                self._resilience_metric(
                    "serve_retries_total",
                    "serve-layer retries by outcome",
                    outcome="failed",
                )
            obs.event(
                "unit-failed",
                {
                    "queries": [group.fp.digest for group in item.groups],
                    "attempt": item.attempt,
                    "error": unit.error,
                },
            )
            if len(item.groups) > 1:
                # Blast-radius isolation: the members survive the batch.
                obs.event(
                    "batch-isolation",
                    {
                        "queries": [group.fp.digest for group in item.groups],
                        "error": unit.error,
                    },
                )
                for group in item.groups:
                    self.resilience_counters["isolated_groups"] += 1
                    self._schedule_retry(
                        group, item, failed_at, unit.error, queue, responses
                    )
            else:
                self._schedule_retry(
                    item.groups[0], item, failed_at, unit.error, queue, responses
                )
        return responses

    def _attempt_engine_config(self, item: _Attempt) -> EngineConfig | None:
        """The engine config for one attempt: the base config, except
        that re-executions under a fault plan derive a fresh seed — a
        resubmitted workflow gets fresh task fates, not a replay of the
        exact crash that killed it (see RetryPolicy.fault_seed)."""
        if item.attempt == 1:
            return None
        plan = self.config.engine_config.fault_plan
        if plan is None:
            return None
        seed = self.config.resilience.retry.fault_seed(
            plan.seed, item.groups[0].fp.digest, item.attempt
        )
        return replace(
            self.config.engine_config, fault_plan=replace(plan, seed=seed)
        )

    def _deadline_limit(self, group: _Group) -> float | None:
        """Latest simulated time any member can still be answered in
        time (min over members of arrival + deadline); None when no
        member has a deadline."""
        limits = []
        for _, request in group.requests:
            deadline = (
                request.deadline if request.deadline is not None else self.config.deadline
            )
            if deadline is not None:
                limits.append(request.arrival + deadline)
        return min(limits) if limits else None

    def _schedule_retry(
        self,
        group: _Group,
        item: _Attempt,
        failed_at: float,
        error: str,
        queue: deque,
        responses: list[ServeResponse],
    ) -> None:
        """Re-enqueue a failed group per the retry schedule, or hand it
        to the degradation tiers when the budget (or the deadline) is
        spent.  A retry whose backoff lands past every member's deadline
        is never scheduled — the deadline budget bounds the schedule."""
        res = self.config.resilience
        retry_index = item.attempt  # retry k follows attempt k
        if retry_index <= res.retry.retries:
            backoff = res.retry.backoff(group.fp.digest, retry_index)
            not_before = failed_at + backoff
            limit = self._deadline_limit(group)
            if limit is None or not_before <= limit:
                self.resilience_counters["retries"] += 1
                registry = obs_metrics.active_registry()
                if registry is not None:
                    registry.histogram(
                        "serve_retry_backoff_sim_seconds",
                        "backoff inserted before serve-layer retries",
                    ).labels().observe(backoff)
                obs.event(
                    "request-retry",
                    {
                        "digest": group.fp.digest,
                        "attempt": item.attempt + 1,
                        "backoff": round(backoff, 6),
                        "not_before": round(not_before, 6),
                    },
                )
                queue.append(
                    _Attempt(
                        [group],
                        item.attempt + 1,
                        not_before,
                        item.backoff_total + backoff,
                    )
                )
                return
            self.resilience_counters["retries_abandoned_deadline"] += 1
            self._resilience_metric(
                "serve_retries_total",
                "serve-layer retries by outcome",
                outcome="abandoned-deadline",
            )
            error = f"{error} (retry abandoned: backoff lands past deadline)"
        responses.extend(
            self._degrade_group(
                group,
                failed_at,
                reason=error,
                fast_fail=False,
                attempts=item.attempt,
                backoff_total=item.backoff_total,
            )
        )

    def _degrade_group(
        self,
        group: _Group,
        now: float,
        *,
        reason: str,
        fast_fail: bool,
        attempts: int,
        backoff_total: float,
    ) -> list[ServeResponse]:
        """The end of the line for a group that cannot be executed: the
        stale tier answers from the last-known-good store (marked
        ``degraded``, charged ``stale_serve_overhead``); without a
        stored answer the members fail.  ``fast_fail`` marks breaker
        turn-aways (counted per member either way)."""
        res = self.config.resilience
        responses: list[ServeResponse] = []
        if fast_fail:
            for _ in group.requests:
                self.resilience_counters["breaker_fast_fails"] += 1
                self._resilience_metric(
                    "serve_breaker_events_total",
                    "circuit-breaker transitions and fast-fails",
                    engine=self.config.engine,
                    event="fast-fail",
                )
        stale = (
            self.stale_results.lookup(group.fp.digest, self.config.engine)
            if res.degradation.stale
            else None
        )
        if stale is not None:
            version, rows = stale
            overhead = self.config.engine_config.cost_model.stale_serve_overhead
            completed = now + overhead
            self.executed_cost_seconds += overhead
            obs.event(
                "request-degraded",
                {
                    "digest": group.fp.digest,
                    "stale_version": version,
                    "requests": len(group.requests),
                    "reason": reason,
                },
            )
            for rid, request in group.requests:
                self._open.append(completed)
                self.resilience_counters["degraded_stale"] += 1
                self._resilience_metric(
                    "serve_degraded_total",
                    "degraded answers by tier",
                    tier="stale-cache",
                )
                latency = completed - request.arrival
                deadline = (
                    request.deadline
                    if request.deadline is not None
                    else self.config.deadline
                )
                response = ServeResponse(
                    request_id=rid,
                    label=request.label,
                    status=DEGRADED,
                    arrival=request.arrival,
                    fingerprint=group.fp.digest,
                    rows=list(rows),
                    started=now,
                    completed=completed,
                    latency=latency,
                    source="stale-cache",
                    attempts=attempts,
                    retry_backoff=backoff_total,
                    stale_version=version,
                )
                if deadline is not None and latency > deadline:
                    self.counters["deadline_exceeded"] += 1
                    obs.event(
                        "request-deadline",
                        {"request": rid, "latency": latency, "deadline": deadline},
                    )
                    response.status = DEADLINE
                    response.rows = None
                    response.source = None
                    response.stale_version = None
                    response.error = (
                        f"deadline exceeded: {latency:.6f}s > {deadline:.6f}s"
                    )
                responses.append(response)
            return responses
        for rid, request in group.requests:
            self._open.append(now)
            self.counters["failed"] += 1
            obs.event("request-failed", {"request": rid, "error": reason})
            responses.append(
                ServeResponse(
                    request_id=rid,
                    label=request.label,
                    status=FAILED,
                    arrival=request.arrival,
                    fingerprint=group.fp.digest,
                    error=reason,
                    started=now,
                    completed=now,
                    latency=now - request.arrival,
                    attempts=attempts,
                    retry_backoff=backoff_total,
                )
            )
        return responses

    def _settle_success(
        self, unit: _Unit, item: _Attempt, started: float, completed: float
    ) -> list[ServeResponse]:
        """Fan one successful (possibly retried) unit out to its
        members; successful rows also refresh the stale store so the
        degraded tier always holds the last-known-good answer."""
        res = self.config.resilience
        responses: list[ServeResponse] = []
        for group, rows in zip(unit.groups, unit.rows_by_group):
            if len(unit.groups) > 1:
                obs.event(
                    "batch-split",
                    {
                        "digest": group.fp.digest,
                        "rows": len(rows),
                        "requests": len(group.requests),
                    },
                )
            if self.config.enable_result_cache:
                self.result_cache.put(self._result_key(group.fp.digest), rows)
            if res.degradation.stale:
                self.stale_results.put(
                    group.fp.digest, self.config.engine, self.graph.version, rows
                )
            source = "batch" if len(unit.groups) > 1 else "solo"
            for position, (rid, request) in enumerate(group.requests):
                self._open.append(completed)
                responses.append(
                    self._finish(
                        rid,
                        request,
                        group,
                        rows,
                        started=started,
                        completed=completed,
                        source=source if position == 0 else "dedup",
                        batch_size=len(unit.groups),
                        unit_cost=unit.cost,
                        attempts=item.attempt,
                        retry_backoff=item.backoff_total,
                    )
                )
        return responses

    def _finish(
        self,
        rid: int,
        request: ServeRequest,
        group: _Group,
        rows: list[Row],
        *,
        started: float,
        completed: float,
        source: str,
        batch_size: int,
        unit_cost: float,
        attempts: int = 1,
        retry_backoff: float = 0.0,
    ) -> ServeResponse:
        latency = completed - request.arrival
        deadline = request.deadline if request.deadline is not None else self.config.deadline
        response = ServeResponse(
            request_id=rid,
            label=request.label,
            status=OK,
            arrival=request.arrival,
            fingerprint=group.fp.digest,
            rows=list(rows),
            started=started,
            completed=completed,
            latency=latency,
            source=source,
            batch_size=batch_size,
            unit_cost=unit_cost,
            attempts=attempts,
            retry_backoff=retry_backoff,
        )
        if deadline is not None and latency > deadline:
            self.counters["deadline_exceeded"] += 1
            obs.event(
                "request-deadline",
                {"request": rid, "latency": latency, "deadline": deadline},
            )
            response.status = DEADLINE
            response.rows = None
            response.error = f"deadline exceeded: {latency:.6f}s > {deadline:.6f}s"
        return response
