"""Named counters, in the spirit of Hadoop job counters."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Counters:
    """A bag of named integer counters.

    The full counter-name inventory (runner counters, fault-recovery
    counters, and the trace-level operator metrics) lives in
    ``docs/observability.md`` — the single source of truth.
    """

    _values: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def increment(self, name: str, amount: int = 1) -> None:
        self._values[name] += amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def merge(self, other: "Counters") -> None:
        for name, value in other._values.items():
            self._values[name] += value

    def as_dict(self) -> dict[str, int]:
        return dict(self._values)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._values.items()))

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"Counters({inner})"
