"""Named counters, in the spirit of Hadoop job counters."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Counters:
    """A bag of named integer counters.

    Counter names used by the runner:

    * ``map_input_records`` / ``map_output_records``
    * ``combine_input_records`` / ``combine_output_records``
    * ``reduce_input_records`` / ``reduce_output_records``
    * ``hdfs_bytes_read`` / ``hdfs_bytes_written`` / ``shuffle_bytes``
    * ``map_tasks`` / ``reduce_tasks`` / ``mr_cycles`` / ``map_only_cycles``

    Fault-recovery counters (present only when a
    :class:`repro.mapreduce.faults.FaultPlan` injected the matching
    fault; see :data:`repro.mapreduce.faults.FAULT_COUNTERS`):

    * ``failed_map_tasks`` / ``failed_reduce_tasks`` — crashed attempts
    * ``retried_tasks`` — re-attempts launched after crashes
    * ``speculative_tasks`` — straggler duplicates launched
    * ``straggler_tasks`` — tasks flagged slow by the plan
    * ``wasted_bytes`` — bytes of discarded (re-driven) work
    * ``hdfs_write_retries`` — transient output-write re-drives
    """

    _values: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def increment(self, name: str, amount: int = 1) -> None:
        self._values[name] += amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def merge(self, other: "Counters") -> None:
        for name, value in other._values.items():
            self._values[name] += value

    def as_dict(self) -> dict[str, int]:
        return dict(self._values)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._values.items()))

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"Counters({inner})"
