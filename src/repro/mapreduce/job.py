"""MapReduce job descriptions.

A job names its HDFS inputs and output and supplies the map / combine /
reduce functions.  Map-only jobs (``reducer is None``) emit output
records directly from the mapper; full jobs emit ``(key, value)`` pairs
that are shuffled, grouped, and reduced.

``side_inputs`` model Hive's map-join: the named files are loaded into
every mapper (broadcast), so the job can join without a shuffle.  Jobs
that need side data provide ``mapper_factory`` instead of ``mapper``;
the runner calls it with ``{path: records}`` once the side files are
read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import MapReduceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cost imports rdf)
    from repro.mapreduce.cost import ClusterConfig

Mapper = Callable[[Any], Iterable[Any]]
Reducer = Callable[[Any, list[Any]], Iterable[Any]]
Combiner = Callable[[Any, list[Any]], Iterable[tuple[Any, Any]]]
MapperFactory = Callable[[dict[str, list[Any]]], Mapper]


@dataclass
class MapReduceJob:
    """One simulated MapReduce cycle."""

    name: str
    inputs: tuple[str, ...]
    output: str
    mapper: Mapper | None = None
    mapper_factory: MapperFactory | None = None
    reducer: Reducer | None = None
    combiner: Combiner | None = None
    side_inputs: tuple[str, ...] = ()
    output_compressed: bool = False
    #: When True the mapper receives ``(input_path, record)`` pairs so it
    #: can dispatch on which table a record came from (Hive-style
    #: multi-table jobs need provenance; NTGA jobs dispatch on type).
    tag_inputs: bool = False
    #: A map-only mapper whose output is exclusively 2-tuples almost
    #: always means a shuffle mapper miswired into a map-only job (the
    #: reducer was forgotten), so the runner rejects it at the producing
    #: job rather than letting a downstream full job fail confusingly.
    #: Set True for the rare map-only job whose *records* really are
    #: 2-tuples.
    emits_pairs: bool = False
    #: Free-form planner annotations (operator names, phase labels).
    labels: tuple[str, ...] = field(default_factory=tuple)
    #: Which intermediate-record representation the planner chose for
    #: this cycle ("flat" or "factorized") — an annotation for traces
    #: and explain output; the mapper/reducer closures already embody it.
    representation: str = "flat"
    #: Bytes this job receives across a shard boundary (set by the
    #: sharded assembly driver on per-owner reduce jobs); priced through
    #: the CostModel's ``exchange_rate`` and surfaced as its own phase
    #: in the cost decomposition.  Zero on unsharded runs.
    exchange_bytes: int = 0
    #: Per-job cluster override: sharded execution runs each shard's
    #: jobs on a slice of the global cluster (``nodes // shards``), so
    #: per-shard parallelism — and therefore cost — reflects the
    #: resources one worker actually owns.  ``None`` uses the runner's
    #: cluster.
    cluster: "ClusterConfig | None" = None

    def __post_init__(self) -> None:
        if (self.mapper is None) == (self.mapper_factory is None):
            raise MapReduceError(
                f"job {self.name!r} must define exactly one of mapper/mapper_factory"
            )
        if self.side_inputs and self.mapper_factory is None:
            raise MapReduceError(
                f"job {self.name!r} declares side inputs but no mapper_factory"
            )
        if self.combiner is not None and self.reducer is None:
            raise MapReduceError(f"map-only job {self.name!r} cannot have a combiner")
        if not self.inputs:
            raise MapReduceError(f"job {self.name!r} needs at least one input")

    @property
    def is_map_only(self) -> bool:
        return self.reducer is None

    def resolve_mapper(self, side_data: dict[str, list[Any]]) -> Mapper:
        if self.mapper is not None:
            return self.mapper
        assert self.mapper_factory is not None
        return self.mapper_factory(side_data)


@dataclass
class JobStats:
    """Measured outcome of one simulated job."""

    name: str
    map_only: bool
    map_tasks: int
    reduce_tasks: int
    input_bytes: int
    side_input_bytes: int
    shuffle_bytes: int
    output_bytes: int
    input_records: int
    output_records: int
    cost_seconds: float
    labels: tuple[str, ...] = ()
    #: Fault-recovery outcome (all zero without a FaultPlan): task
    #: re-attempts, speculative duplicates launched, and bytes of
    #: discarded work (re-scanned input, re-fetched shuffle output,
    #: re-written output).
    retried_tasks: int = 0
    speculative_tasks: int = 0
    wasted_bytes: int = 0
    #: Bytes received across a shard boundary (zero off the sharded path).
    exchange_bytes: int = 0

    def describe(self) -> str:
        kind = "map-only" if self.map_only else "map-reduce"
        line = (
            f"{self.name} [{kind}] in={self.input_bytes}B shuffle={self.shuffle_bytes}B "
            f"out={self.output_bytes}B cost={self.cost_seconds:.2f}s"
        )
        if self.exchange_bytes:
            line += f" exchange={self.exchange_bytes}B"
        if self.retried_tasks or self.speculative_tasks:
            line += (
                f" retries={self.retried_tasks} speculative={self.speculative_tasks} "
                f"wasted={self.wasted_bytes}B"
            )
        return line
