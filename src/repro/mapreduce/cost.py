"""Cluster configuration, record-size estimation, and the cost model.

The simulator charges each MR job a fixed startup cost plus data-volume
terms (scan, shuffle, write) divided across the cluster's task slots.
The constants are calibration knobs, not measurements; what matters for
reproducing the paper is that *every engine is charged by the same
model*, so relative orderings and ratios reflect plan structure
(cycle counts, materialized bytes) exactly as the paper argues.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.rdf.terms import BNode, IRI, Literal, Variable
from repro.rdf.triples import Triple

_POINTER = 8

#: Master switch for the size caches (term/triple ``_size`` slots, the
#: per-class dispatch table below, and the triplegroup memos that
#: consult this flag).  :func:`repro.perf.reference_mode` flips it off
#: to restore the seed's uncached recomputation for A/B profiling.
SIZE_CACHE_ENABLED = True


def _reference_estimate_size(record: Any) -> int:
    """The seed implementation, verbatim: a chain of isinstance checks
    recomputing every size from scratch.  Kept callable so profiling and
    the property tests can compare the cached path against it."""
    if record is None:
        return 1
    if isinstance(record, bool):
        return 1
    if isinstance(record, int):
        return 8
    if isinstance(record, float):
        return 8
    if isinstance(record, str):
        return len(record) + 1
    if isinstance(record, IRI):
        return len(record.value) + 2
    if isinstance(record, BNode):
        return len(record.label) + 2
    if isinstance(record, Literal):
        size = len(record.lexical) + 2
        if record.datatype:
            size += len(record.datatype) + 2
        if record.language:
            size += len(record.language) + 1
        return size
    if isinstance(record, Triple):
        return (
            _reference_estimate_size(record.subject)
            + _reference_estimate_size(record.property)
            + _reference_estimate_size(record.object)
            + 2
        )
    estimator = getattr(record, "estimated_size", None)
    if callable(estimator):
        return estimator()
    if isinstance(record, (tuple, list, set, frozenset)):
        return _POINTER + sum(_reference_estimate_size(item) for item in record)
    if isinstance(record, dict):
        return _POINTER + sum(
            _reference_estimate_size(key) + _reference_estimate_size(value)
            for key, value in record.items()
        )
    return _POINTER + len(repr(record))


# -- cached fast path ----------------------------------------------------------
#
# estimate_size dominates the simulator's real wall-clock (HDFS writes,
# shuffle accounting, and triplegroup sizing all funnel through it), so
# the hot path dispatches on type(record) through a table instead of
# re-walking the isinstance chain, and pins the result on immutable
# value objects (terms and triples carry a hidden ``_size`` slot).
# Handlers reproduce the reference semantics exactly — the golden tests
# and tests/perf/test_size_cache.py hold the two paths bit-identical.


def _literal_size(record: Literal) -> int:
    size = record._size
    if size is None:
        size = len(record.lexical) + 2
        if record.datatype:
            size += len(record.datatype) + 2
        if record.language:
            size += len(record.language) + 1
        object.__setattr__(record, "_size", size)
    return size


def _triple_size(record: Triple) -> int:
    size = record._size
    if size is None:
        size = (
            estimate_size(record.subject)
            + estimate_size(record.property)
            + estimate_size(record.object)
            + 2
        )
        object.__setattr__(record, "_size", size)
    return size


def _variable_size(record: Variable) -> int:
    # The reference path sizes variables (solution-dict keys) through the
    # generic repr fallback; the dataclass repr is slow, so cache it.
    size = record._size
    if size is None:
        size = _POINTER + len(repr(record))
        object.__setattr__(record, "_size", size)
    return size


def _item_size(item: Any) -> int:
    """Per-element fast path shared by the container handlers.

    Warm immutable value objects (terms, triples, memoized triplegroups
    and agg rows) are recognized by their integer ``_size`` cache in a
    single C-level ``getattr`` — the ``type(...) is int`` guard rejects
    unset slots (``None``) and unrelated ``_size`` attributes (e.g.
    bound methods) so anything else takes the normal dispatch."""
    size = getattr(item, "_size", None)
    if type(size) is int:
        return size
    cls = item.__class__
    handler = _HANDLERS.get(cls)
    if handler is None:
        handler = _learn_handler(cls)
    return handler(item)


def _sequence_size(record: Any) -> int:
    total = _POINTER
    handlers = _HANDLERS
    for item in record:
        size = getattr(item, "_size", None)
        if type(size) is int:
            total += size
            continue
        cls = item.__class__
        handler = handlers.get(cls)
        if handler is None:
            handler = _learn_handler(cls)
        total += handler(item)
    return total


def _dict_size(record: dict) -> int:
    total = _POINTER
    for key, value in record.items():
        size = getattr(key, "_size", None)
        total += size if type(size) is int else _item_size(key)
        size = getattr(value, "_size", None)
        total += size if type(size) is int else _item_size(value)
    return total


def _generic_size(record: Any) -> int:
    """Reference tail for classes the dispatch table cannot pre-judge:
    instance-level ``estimated_size``, container subclasses, then repr."""
    estimator = getattr(record, "estimated_size", None)
    if callable(estimator):
        return estimator()
    if isinstance(record, (tuple, list, set, frozenset)):
        return _sequence_size(record)
    if isinstance(record, dict):
        return _dict_size(record)
    return _POINTER + len(repr(record))


def _estimator_size(record: Any) -> int:
    return record.estimated_size()


_HANDLERS: dict[type, Any] = {
    type(None): lambda record: 1,
    bool: lambda record: 1,
    int: lambda record: 8,
    float: lambda record: 8,
    str: lambda record: len(record) + 1,
    IRI: lambda record: len(record.value) + 2,
    BNode: lambda record: len(record.label) + 2,
    Literal: _literal_size,
    Triple: _triple_size,
    Variable: _variable_size,
    tuple: _sequence_size,
    list: _sequence_size,
    set: _sequence_size,
    frozenset: _sequence_size,
    dict: _dict_size,
}


def _sized_dict_size(record: Any) -> int:
    size = _dict_size(record)
    record._size = size
    return size


def register_sized_dict(cls: type) -> type:
    """Route a write-once dict subclass carrying a ``_size`` slot to a
    memoizing handler: the size pins on first estimate, like the term
    caches.  Only for classes whose instances are never mutated after
    they first reach the estimator (e.g. solution rows, which flow
    through shuffle accounting and materialization repeatedly).
    """
    _HANDLERS[cls] = _sized_dict_size
    return cls


def register_estimated_size(cls: type) -> type:
    """Route *cls* straight to its ``estimated_size`` method.

    Purely an optimization hook (skips one ``getattr`` per record): any
    class with a callable ``estimated_size`` is picked up automatically
    on first sight.  Usable as a decorator.
    """
    _HANDLERS[cls] = _estimator_size
    return cls


def _learn_handler(cls: type) -> Any:
    """Choose and memoize a handler for a class the table has not seen,
    following the reference path's check order."""
    if callable(getattr(cls, "estimated_size", None)):
        handler = _estimator_size
    else:
        # Container subclasses and arbitrary objects keep the per-record
        # reference tail: an instance may define estimated_size itself.
        handler = _generic_size
    _HANDLERS[cls] = handler
    return handler


def estimate_size(record: Any) -> int:
    """Approximate on-disk serialized size of a record, in bytes.

    Deterministic and cheap; used for HDFS accounting and shuffle
    volumes.  Handles the record shapes that flow through the engines:
    terms, triples, triplegroups (via their ``estimated_size``), tuples,
    dicts, and scalars.  Dispatches on exact type with per-instance
    caches on immutable records; bit-identical to
    :func:`_reference_estimate_size` by construction (and by test).
    """
    if not SIZE_CACHE_ENABLED:
        return _reference_estimate_size(record)
    size = getattr(record, "_size", None)
    if type(size) is int:
        return size
    cls = record.__class__
    handler = _HANDLERS.get(cls)
    if handler is None:
        handler = _learn_handler(cls)
    return handler(record)


def estimate_total_size(records: Any) -> int:
    """``sum(estimate_size(r) for r in records)`` with the dispatch
    inlined — the bulk entry point for HDFS writes and shuffle
    accounting, where the per-call overhead of millions of
    :func:`estimate_size` invocations is itself the bottleneck."""
    if not SIZE_CACHE_ENABLED:
        return sum(_reference_estimate_size(record) for record in records)
    total = 0
    handlers = _HANDLERS
    for record in records:
        size = getattr(record, "_size", None)
        if type(size) is int:
            total += size
            continue
        cls = record.__class__
        handler = handlers.get(cls)
        if handler is None:
            handler = _learn_handler(cls)
        total += handler(record)
    return total


@dataclass(frozen=True)
class ClusterConfig:
    """Simulated cluster shape (defaults mirror the paper's 10-node VCL
    setup scaled to simulation units)."""

    nodes: int = 10
    map_slots_per_node: int = 2
    reduce_slots_per_node: int = 1
    block_size: int = 256 * 1024  # small blocks so laptop-scale data still splits
    hdfs_capacity: int | None = None  # None = unlimited

    @property
    def map_slots(self) -> int:
        return self.nodes * self.map_slots_per_node

    @property
    def reduce_slots(self) -> int:
        return self.nodes * self.reduce_slots_per_node

    def splits_for(self, total_bytes: int) -> int:
        """Input splits (map tasks) for one stored file.

        Zero-byte files occupy no blocks and get no mapper: a job
        reading several empty intermediate files must not charge one
        whole map task per file (the runner floors the job's *total*
        at one task, since an executing job always runs at least one
        mapper).
        """
        if total_bytes <= 0:
            return 0
        return max(1, math.ceil(total_bytes / self.block_size))


@dataclass(frozen=True)
class CostModel:
    """Charge rates for the simulated execution time.

    The rates are *simulation units*, calibrated so that at the
    repository's laptop-scale datasets the data-volume terms carry the
    same relative weight they had at the paper's cluster scale (where a
    single MR cycle over GB-sized tables takes minutes).  Only relative
    comparisons under one CostModel are meaningful.

    Two structural discounts matter to plan choice:

    * **map-only shuffle-skip** — :meth:`job_cost` charges shuffle
      transfer and reduce-wave overhead only when ``reduce_tasks > 0``;
      a map-only job pays the cheaper ``map_only_startup`` and writes
      output at map parallelism, skipping the shuffle term entirely;
    * **factorized byte terms** — :meth:`representation_advantage`
      prices the factorized answer representation by the shuffle and
      HDFS-write seconds its byte reduction saves, less a per-cycle
      ``factorization_overhead`` charge, and
      :meth:`choose_representation` turns that into the planner's
      ``"auto"`` decision.
    """

    job_startup: float = 8.0
    #: Map-only jobs skip reducer spin-up and shuffle setup entirely, so
    #: their fixed charge is lower — this is what makes Hive's map-join
    #: plans competitive on the paper's small-VP-table queries (G5-G8).
    map_only_startup: float = 4.5
    map_task_overhead: float = 0.4
    reduce_task_overhead: float = 0.6
    scan_rate: float = 16.0 * 1024  # bytes/sec per map slot (simulation units)
    shuffle_rate: float = 8.0 * 1024  # bytes/sec per reduce slot
    write_rate: float = 12.0 * 1024  # bytes/sec per writing slot
    #: Recovery terms (charged only under a FaultPlan).  A failed
    #: attempt waits ``retry_backoff * 2**(attempt-1)`` seconds before
    #: its re-launch (Hadoop's exponential retry delay); a speculative
    #: duplicate pays one extra task launch.
    retry_backoff: float = 2.0
    speculation_overhead: float = 0.4
    #: Workflow-resubmission terms (charged only under a RecoveryPolicy,
    #: and only when a failure actually forces a re-submission).  The
    #: driver pays a fixed re-launch charge, then validates each
    #: commit-ledger entry (a _SUCCESS-marker/fingerprint check) and
    #: re-reads the committed bytes' metadata at a fast sequential rate
    #: — cheap relative to recomputing, which is the whole point of
    #: checkpointing, but proportional to how much a long workflow has
    #: materialized (naive Hive pays more here than RAPIDAnalytics).
    resubmit_overhead: float = 6.0
    checkpoint_validate_overhead: float = 0.25
    checkpoint_read_rate: float = 64.0 * 1024  # bytes/sec, sequential revalidation
    #: Per-MR-cycle charge for producing/consuming factorized records
    #: (column assembly in σ^γopt, key reattachment in the reducer) —
    #: small, but keeps ``"auto"`` honest when a graph has no fanout to
    #: exploit and the byte savings round to nothing.
    factorization_overhead: float = 0.5
    #: Simulated seconds to assemble a *degraded* answer from the serve
    #: layer's stale result store (cache read + response assembly; no
    #: cluster work).  Tiny by design — degraded serves exist because
    #: they are cheap — but nonzero so availability bought via staleness
    #: still shows up in the cost accounting instead of looking free.
    stale_serve_overhead: float = 0.05
    #: Cross-shard exchange transfer rate (bytes/sec per receiving
    #: slot).  Charged only on sharded runs, for bytes that cross a
    #: partition boundary during the assembly exchange — deliberately
    #: slower than the intra-cluster shuffle_rate, since exchange
    #: traffic rides the inter-worker network, which is what makes
    #: min-edge-cut partitioning pay off in priced cost and not just in
    #: the byte counters.
    exchange_rate: float = 6.0 * 1024

    def representation_advantage(
        self, *, flat_bytes: int, factorized_bytes: int, cycles: int = 1
    ) -> float:
        """Simulated seconds saved by shipping factorized records.

        The byte reduction is charged once against the shuffle transfer
        rate and once against the HDFS materialization rate (both are
        on every full cycle's critical path), less the per-cycle
        :attr:`factorization_overhead`.  Negative when factorization
        cannot pay for itself (fanout ≤ 1 graphs).
        """
        saved = flat_bytes - factorized_bytes
        return (
            saved / self.shuffle_rate
            + saved / self.write_rate
            - cycles * self.factorization_overhead
        )

    def choose_representation(
        self, *, flat_bytes: int, factorized_bytes: int, cycles: int = 1
    ) -> str:
        """The planner's ``"auto"`` decision: factorize when the priced
        advantage is positive, otherwise keep flat records."""
        advantage = self.representation_advantage(
            flat_bytes=flat_bytes, factorized_bytes=factorized_bytes, cycles=cycles
        )
        return "factorized" if advantage > 0 else "flat"

    def prefer_map_join(
        self,
        cluster: ClusterConfig,
        *,
        streamed_bytes: int,
        side_bytes: int,
    ) -> bool:
        """Price broadcast (map-join) vs. shuffled (reduce-join) for one
        binary join and return True when the broadcast wins.

        The broadcast ships the side table to every map task (the
        replication that makes oversized map-joins lose); the shuffled
        alternative pays the full-job startup plus moving both inputs
        through the shuffle.  Used by the Hive executor under the
        cost-based planner instead of the fixed ``mapjoin_threshold``.
        """
        map_tasks = max(1, cluster.splits_for(streamed_bytes))
        broadcast = self.job_cost(
            cluster,
            input_bytes=streamed_bytes + side_bytes * map_tasks,
            shuffle_bytes=0,
            output_bytes=0,
            map_tasks=map_tasks,
            reduce_tasks=0,
        )
        shuffled = self.job_cost(
            cluster,
            input_bytes=streamed_bytes + side_bytes,
            shuffle_bytes=streamed_bytes + side_bytes,
            output_bytes=0,
            map_tasks=max(
                1,
                cluster.splits_for(streamed_bytes) + cluster.splits_for(side_bytes),
            ),
            reduce_tasks=cluster.reduce_slots,
        )
        return broadcast <= shuffled

    def job_cost(
        self,
        cluster: ClusterConfig,
        *,
        input_bytes: int,
        shuffle_bytes: int,
        output_bytes: int,
        map_tasks: int,
        reduce_tasks: int,
        exchange_bytes: int = 0,
    ) -> float:
        """Simulated wall-clock seconds for one MR job.

        ``exchange_bytes`` are bytes this job received across a shard
        boundary (zero on unsharded runs); they ride the slower
        inter-worker :attr:`exchange_rate` rather than being lumped
        into the shuffle term.
        """
        # An executing job always runs at least one map wave, even when
        # its inputs occupy zero splits (empty intermediate files).
        map_waves = max(1, math.ceil(map_tasks / cluster.map_slots))
        map_parallelism = max(1, min(map_tasks, cluster.map_slots))
        cost = self.job_startup if reduce_tasks > 0 else self.map_only_startup
        cost += map_waves * self.map_task_overhead
        cost += input_bytes / (self.scan_rate * map_parallelism)
        if exchange_bytes > 0:
            receive_parallelism = max(
                1, min(reduce_tasks or map_tasks, cluster.reduce_slots)
            )
            cost += exchange_bytes / (self.exchange_rate * receive_parallelism)
        if reduce_tasks > 0:
            reduce_waves = math.ceil(reduce_tasks / cluster.reduce_slots)
            reduce_parallelism = max(1, min(reduce_tasks, cluster.reduce_slots))
            cost += reduce_waves * self.reduce_task_overhead
            cost += shuffle_bytes / (self.shuffle_rate * reduce_parallelism)
            cost += output_bytes / (self.write_rate * reduce_parallelism)
        else:
            cost += output_bytes / (self.write_rate * map_parallelism)
        return cost

    def job_cost_phases(
        self,
        cluster: ClusterConfig,
        *,
        input_bytes: int,
        shuffle_bytes: int,
        output_bytes: int,
        map_tasks: int,
        reduce_tasks: int,
        exchange_bytes: int = 0,
    ) -> list[tuple[str, float]]:
        """The :meth:`job_cost` terms, decomposed into dataflow phases.

        Returns ``(phase_name, seconds)`` pairs in timeline order —
        ``map`` (startup + map waves + scan), then ``exchange``
        (cross-shard transfer, present only when ``exchange_bytes > 0``
        so unsharded decompositions keep their historical shape), then
        for full jobs ``shuffle`` (transfer) and ``reduce`` (reduce
        waves), then ``materialize`` (output write).  The phase seconds
        sum to :meth:`job_cost` (up to float addition order); the trace
        recorder lays them out back to back on the simulated timeline.
        """
        map_waves = max(1, math.ceil(map_tasks / cluster.map_slots))
        map_parallelism = max(1, min(map_tasks, cluster.map_slots))
        startup = self.job_startup if reduce_tasks > 0 else self.map_only_startup
        map_seconds = (
            startup
            + map_waves * self.map_task_overhead
            + input_bytes / (self.scan_rate * map_parallelism)
        )
        phases = [("map", map_seconds)]
        if exchange_bytes > 0:
            receive_parallelism = max(
                1, min(reduce_tasks or map_tasks, cluster.reduce_slots)
            )
            phases.append(
                (
                    "exchange",
                    exchange_bytes / (self.exchange_rate * receive_parallelism),
                )
            )
        if reduce_tasks > 0:
            reduce_waves = math.ceil(reduce_tasks / cluster.reduce_slots)
            reduce_parallelism = max(1, min(reduce_tasks, cluster.reduce_slots))
            phases.append(
                ("shuffle", shuffle_bytes / (self.shuffle_rate * reduce_parallelism))
            )
            phases.append(("reduce", reduce_waves * self.reduce_task_overhead))
            phases.append(
                ("materialize", output_bytes / (self.write_rate * reduce_parallelism))
            )
        else:
            phases.append(
                ("materialize", output_bytes / (self.write_rate * map_parallelism))
            )
        return phases

    def recovery_cost(
        self,
        *,
        rescanned_bytes: float = 0.0,
        reshuffled_bytes: float = 0.0,
        rewritten_bytes: float = 0.0,
        backoff_units: float = 0.0,
        speculative_tasks: int = 0,
    ) -> float:
        """Extra simulated seconds spent recovering from injected faults.

        Re-executed work runs on a single slot — a retry is one task's
        re-attempt, not a cluster-wide wave — so re-driven bytes are
        charged at the raw per-slot rates.  ``backoff_units`` is the sum
        of exponential-backoff multipliers (``2**(attempt-1)`` per failed
        attempt) accumulated by the runner.  Every term is non-negative
        and non-decreasing in its input, which is what makes total cost
        monotone in the fault rates.
        """
        cost = backoff_units * self.retry_backoff
        cost += speculative_tasks * self.speculation_overhead
        cost += rescanned_bytes / self.scan_rate
        cost += reshuffled_bytes / self.shuffle_rate
        cost += rewritten_bytes / self.write_rate
        return cost

    def resubmit_cost(self, *, committed_jobs: int, committed_bytes: int) -> float:
        """Simulated seconds to re-submit a failed workflow.

        Charged once per workflow re-submission by the checkpoint/resume
        layer: a fixed driver re-launch charge, plus per-committed-job
        checkpoint validation, plus a sequential re-read of the
        committed bytes at :attr:`checkpoint_read_rate`.  Non-negative
        and non-decreasing in both arguments, so total recovery overhead
        is monotone in the number of failures (given a fixed ledger).
        """
        return (
            self.resubmit_overhead
            + committed_jobs * self.checkpoint_validate_overhead
            + committed_bytes / self.checkpoint_read_rate
        )
