"""Cluster configuration, record-size estimation, and the cost model.

The simulator charges each MR job a fixed startup cost plus data-volume
terms (scan, shuffle, write) divided across the cluster's task slots.
The constants are calibration knobs, not measurements; what matters for
reproducing the paper is that *every engine is charged by the same
model*, so relative orderings and ratios reflect plan structure
(cycle counts, materialized bytes) exactly as the paper argues.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.rdf.terms import BNode, IRI, Literal
from repro.rdf.triples import Triple

_POINTER = 8


def estimate_size(record: Any) -> int:
    """Approximate on-disk serialized size of a record, in bytes.

    Deterministic and cheap; used for HDFS accounting and shuffle
    volumes.  Handles the record shapes that flow through the engines:
    terms, triples, triplegroups (via their ``estimated_size``), tuples,
    dicts, and scalars.
    """
    if record is None:
        return 1
    if isinstance(record, bool):
        return 1
    if isinstance(record, int):
        return 8
    if isinstance(record, float):
        return 8
    if isinstance(record, str):
        return len(record) + 1
    if isinstance(record, IRI):
        return len(record.value) + 2
    if isinstance(record, BNode):
        return len(record.label) + 2
    if isinstance(record, Literal):
        size = len(record.lexical) + 2
        if record.datatype:
            size += len(record.datatype) + 2
        if record.language:
            size += len(record.language) + 1
        return size
    if isinstance(record, Triple):
        return (
            estimate_size(record.subject)
            + estimate_size(record.property)
            + estimate_size(record.object)
            + 2
        )
    estimator = getattr(record, "estimated_size", None)
    if callable(estimator):
        return estimator()
    if isinstance(record, (tuple, list, set, frozenset)):
        return _POINTER + sum(estimate_size(item) for item in record)
    if isinstance(record, dict):
        return _POINTER + sum(
            estimate_size(key) + estimate_size(value) for key, value in record.items()
        )
    return _POINTER + len(repr(record))


@dataclass(frozen=True)
class ClusterConfig:
    """Simulated cluster shape (defaults mirror the paper's 10-node VCL
    setup scaled to simulation units)."""

    nodes: int = 10
    map_slots_per_node: int = 2
    reduce_slots_per_node: int = 1
    block_size: int = 256 * 1024  # small blocks so laptop-scale data still splits
    hdfs_capacity: int | None = None  # None = unlimited

    @property
    def map_slots(self) -> int:
        return self.nodes * self.map_slots_per_node

    @property
    def reduce_slots(self) -> int:
        return self.nodes * self.reduce_slots_per_node

    def splits_for(self, total_bytes: int) -> int:
        if total_bytes <= 0:
            return 1
        return max(1, math.ceil(total_bytes / self.block_size))


@dataclass(frozen=True)
class CostModel:
    """Charge rates for the simulated execution time.

    The rates are *simulation units*, calibrated so that at the
    repository's laptop-scale datasets the data-volume terms carry the
    same relative weight they had at the paper's cluster scale (where a
    single MR cycle over GB-sized tables takes minutes).  Only relative
    comparisons under one CostModel are meaningful.
    """

    job_startup: float = 8.0
    #: Map-only jobs skip reducer spin-up and shuffle setup entirely, so
    #: their fixed charge is lower — this is what makes Hive's map-join
    #: plans competitive on the paper's small-VP-table queries (G5-G8).
    map_only_startup: float = 4.5
    map_task_overhead: float = 0.4
    reduce_task_overhead: float = 0.6
    scan_rate: float = 16.0 * 1024  # bytes/sec per map slot (simulation units)
    shuffle_rate: float = 8.0 * 1024  # bytes/sec per reduce slot
    write_rate: float = 12.0 * 1024  # bytes/sec per writing slot

    def job_cost(
        self,
        cluster: ClusterConfig,
        *,
        input_bytes: int,
        shuffle_bytes: int,
        output_bytes: int,
        map_tasks: int,
        reduce_tasks: int,
    ) -> float:
        """Simulated wall-clock seconds for one MR job."""
        map_waves = math.ceil(map_tasks / cluster.map_slots) if map_tasks else 0
        map_parallelism = max(1, min(map_tasks, cluster.map_slots))
        cost = self.job_startup if reduce_tasks > 0 else self.map_only_startup
        cost += map_waves * self.map_task_overhead
        cost += input_bytes / (self.scan_rate * map_parallelism)
        if reduce_tasks > 0:
            reduce_waves = math.ceil(reduce_tasks / cluster.reduce_slots)
            reduce_parallelism = max(1, min(reduce_tasks, cluster.reduce_slots))
            cost += reduce_waves * self.reduce_task_overhead
            cost += shuffle_bytes / (self.shuffle_rate * reduce_parallelism)
            cost += output_bytes / (self.write_rate * reduce_parallelism)
        else:
            cost += output_bytes / (self.write_rate * map_parallelism)
        return cost
