"""A simulated HDFS: named files of records with byte accounting.

Files hold Python records in memory; their "size" is the summed
:func:`repro.mapreduce.cost.estimate_size` of the records.  A capacity
limit can be set to reproduce the paper's MG13 observation, where naive
Hive's doubly-materialized 190GB star-join output exhausted disk space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import HDFSError, HDFSOutOfSpaceError
from repro.mapreduce.checkpoint import CommitLedger
from repro.mapreduce.cost import estimate_total_size


@dataclass
class HDFSFile:
    """A stored file.

    ``size_bytes`` is the on-disk (possibly compressed) size — it drives
    disk usage and the number of input splits.  ``raw_bytes`` is the
    uncompressed data volume — it drives scan/decompression work.  The
    gap between them models the paper's ORC observation: compressed
    tables occupy few splits (few mappers, poor cluster utilization)
    while still costing full decompression work.
    """

    path: str
    records: list[Any]
    size_bytes: int
    raw_bytes: int
    compressed: bool = False

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class HDFS:
    """In-memory distributed filesystem simulation."""

    capacity: int | None = None
    #: Size multiplier applied to files written with ``compressed=True``
    #: (ORC-style aggressive compression; the paper reports 80-96%
    #: reduction, we use a representative 10x factor).
    compression_ratio: float = 0.1
    _files: dict[str, HDFSFile] = field(default_factory=dict)
    #: The workflow commit ledger (checkpoint metadata).  It lives on the
    #: filesystem object because that is its durability unit — like the
    #: ``_SUCCESS`` markers real Hadoop keeps beside committed outputs —
    #: so a re-submitted workflow against the *same* HDFS sees the same
    #: committed state.  Entries are metadata only: they never count
    #: toward ``used_bytes`` or the capacity limit.
    ledger: CommitLedger = field(default_factory=CommitLedger, repr=False)
    #: Running total of stored bytes, maintained by write/delete so that
    #: the per-write capacity check stays O(1) instead of re-summing
    #: every file (quadratic over a workflow's materializations).
    _used_bytes: int = field(default=0, init=False, repr=False)

    def exists(self, path: str) -> bool:
        return path in self._files

    def used_bytes(self) -> int:
        return self._used_bytes

    def available_bytes(self) -> int | None:
        if self.capacity is None:
            return None
        return self.capacity - self.used_bytes()

    def write(
        self,
        path: str,
        records: Sequence[Any] | Iterable[Any],
        compressed: bool = False,
        raw_hint: int | None = None,
    ) -> HDFSFile:
        """Create (or replace) a file from *records*.

        *raw_hint*, when given, must equal ``estimate_total_size`` of the
        records; callers that re-write an unchanged derived table (the
        engine pre-processing loaders) pass their once-computed size so
        the write skips re-walking every record.

        Raises :class:`HDFSOutOfSpaceError` when a capacity is set and
        the new file does not fit.
        """
        materialized = list(records)
        raw = raw_hint if raw_hint is not None else estimate_total_size(materialized)
        size = int(raw * self.compression_ratio) if compressed else raw
        existing = self._files.get(path)
        freed = existing.size_bytes if existing else 0
        if self.capacity is not None:
            available = self.capacity - self._used_bytes + freed
            if size > available:
                raise HDFSOutOfSpaceError(size, max(0, available), self.capacity)
        file = HDFSFile(path, materialized, size, raw, compressed)
        self._files[path] = file
        self._used_bytes += size - freed
        return file

    def read(self, path: str) -> HDFSFile:
        try:
            return self._files[path]
        except KeyError:
            raise HDFSError(f"no such file: {path!r}") from None

    def delete(self, path: str) -> None:
        removed = self._files.pop(path, None)
        if removed is not None:
            self._used_bytes -= removed.size_bytes

    def listdir(self, prefix: str = "") -> list[str]:
        """Paths under the directory *prefix*, sorted.

        The prefix is directory-boundary-aware: ``listdir("out")``
        matches ``out`` itself and ``out/part0``, but not ``out-join/
        part0`` or ``output2`` (a raw ``startswith`` matched both).  A
        trailing ``/`` is accepted and equivalent.
        """
        if not prefix:
            return sorted(self._files)
        directory = prefix.rstrip("/")
        marker = directory + "/"
        return sorted(
            p for p in self._files if p == directory or p.startswith(marker)
        )

    def total_records(self) -> int:
        return sum(len(f.records) for f in self._files.values())
