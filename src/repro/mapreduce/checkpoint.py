"""Workflow-level checkpoint/resume for the MapReduce simulator.

PR 2's fault layer models Hadoop's *task*-level recovery (retry,
backoff, speculation) but treated a job abort as fatal: the whole
workflow's committed outputs were thrown away.  Real Hadoop pipelines
restart from the last durable HDFS output — the driver re-submits the
workflow and every job whose output already exists is skipped.  That is
exactly where the paper's argument about workflow *length* matters most
for resilience: a 9-13 cycle naive-Hive plan re-validates (and, on a
mid-flight failure, loses) far more materialized state per failure than
a 3-4 cycle RAPIDAnalytics plan.

This module provides the durable pieces:

* :class:`CommitLedger` — the simulated-HDFS commit ledger.  Each
  successfully completed job records a :class:`LedgerEntry` keyed by
  the job's identity (name + output path) and an *input fingerprint*;
  a resubmitted workflow consults the ledger and skips any job whose
  entry is still valid.  A changed upstream output changes the
  fingerprint, invalidating the downstream checkpoint (the entry is
  dropped and the job recomputes).
* :class:`RecoveryPolicy` — the workflow-retry budget: how many times
  the driver re-submits before raising a typed
  :class:`~repro.errors.WorkflowAbortedError`.
* :class:`RecoveryStats` — the salvage accounting: resubmissions,
  checkpoint-skipped jobs, salvaged vs. wasted bytes/seconds, and the
  charged resubmission overhead.

Determinism contract
--------------------

Everything here is a pure function of simulated state: fingerprints
hash the byte/record accounting of the input files, never wall time or
object identity, so a resumed run recomputes exactly the failed suffix
and its results are bit-identical to the fault-free run (the chaos soak
harness in :mod:`repro.bench.chaos` pins this across a seed matrix).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterator

from repro.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (hdfs ↔ checkpoint)
    from repro.mapreduce.hdfs import HDFS
    from repro.mapreduce.job import JobStats, MapReduceJob

#: Counters owned by the checkpoint/resume layer, in the spirit of
#: :data:`repro.mapreduce.faults.FAULT_COUNTERS`: everything *not* in
#: the union of the two sets is a base counter, required to stay
#: bit-identical between a fault-free run and a faulted-then-resumed
#: run (the chaos soak checks this per run).
RECOVERY_COUNTERS = frozenset(
    {
        "workflow_resubmissions",
        "jobs_skipped_by_checkpoint",
        "salvaged_bytes",
    }
)


@dataclass(frozen=True)
class RecoveryPolicy:
    """Workflow-level recovery knobs.

    ``max_resubmissions`` bounds how many times a failing workflow is
    re-submitted (Hadoop drivers and workflow managers like Oozie retry
    a failed action a configurable number of times).  Exhausting the
    budget raises :class:`~repro.errors.WorkflowAbortedError` carrying
    the partial stats and the ledger state.
    """

    max_resubmissions: int = 8

    def __post_init__(self) -> None:
        if self.max_resubmissions < 1:
            raise CheckpointError(
                f"recovery policy max_resubmissions must be >= 1: "
                f"{self.max_resubmissions!r}"
            )


def fingerprint_inputs(hdfs: "HDFS", job: "MapReduceJob") -> str:
    """A deterministic digest of everything the job will read.

    Folds each input and side-input path together with its stored size,
    raw (uncompressed) size, and record count.  Any upstream change —
    a re-written file, a different record count, a compression flip —
    produces a different fingerprint, which invalidates the downstream
    job's ledger entry and forces a recompute.  Missing inputs
    fingerprint as absent rather than raising, so the lookup (not the
    fingerprint) decides how to handle them.
    """
    digest = hashlib.blake2b(digest_size=16)
    for kind, paths in (("in", job.inputs), ("side", job.side_inputs)):
        for path in paths:
            if hdfs.exists(path):
                file = hdfs.read(path)
                token = (
                    f"{kind}:{path}:{file.size_bytes}:{file.raw_bytes}:"
                    f"{len(file.records)}:{int(file.compressed)}"
                )
            else:
                token = f"{kind}:{path}:absent"
            digest.update(token.encode("utf-8"))
            digest.update(b"\x00")
    return digest.hexdigest()


@dataclass
class LedgerEntry:
    """One committed job in the durable ledger."""

    job_name: str
    output: str
    fingerprint: str
    output_bytes: int
    output_records: int
    cost_seconds: float
    stats: "JobStats"
    #: The job's counter contributions (base + fault counters), replayed
    #: into a resumed submission's counters when the job is skipped so
    #: the final counter bag is identical to an uninterrupted run.
    counters: dict[str, int] = field(default_factory=dict)


class CommitLedger:
    """Durable record of committed job outputs in simulated HDFS.

    The ledger lives on the :class:`~repro.mapreduce.hdfs.HDFS`
    instance — its durability unit is the filesystem, exactly like the
    ``_SUCCESS`` markers and job-history files a real Hadoop deployment
    keeps beside committed output directories.  Entries are keyed by
    job identity ``(name, output path)``; a lookup additionally checks
    the caller's input fingerprint and drops (invalidates) entries that
    no longer match, so stale checkpoints can never be resumed from.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], LedgerEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self._entries.values())

    def commit(self, entry: LedgerEntry) -> None:
        self._entries[(entry.job_name, entry.output)] = entry

    def lookup(
        self, job_name: str, output: str, fingerprint: str
    ) -> LedgerEntry | None:
        """The valid entry for this job, or None.

        An entry whose fingerprint does not match the current inputs is
        *invalidated* (removed) — the upstream data changed, so the
        checkpointed output must not be reused.
        """
        key = (job_name, output)
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.fingerprint != fingerprint:
            del self._entries[key]
            return None
        return entry

    def invalidate(self, job_name: str, output: str) -> None:
        self._entries.pop((job_name, output), None)

    def committed_jobs(self) -> tuple[str, ...]:
        return tuple(entry.job_name for entry in self._entries.values())

    @property
    def total_bytes(self) -> int:
        return sum(entry.output_bytes for entry in self._entries.values())

    @property
    def total_seconds(self) -> float:
        return sum(entry.cost_seconds for entry in self._entries.values())

    def entry_stats(self, entry: LedgerEntry) -> "JobStats":
        """A defensive copy of the stored stats for re-appending."""
        return replace(entry.stats)


@dataclass
class RecoveryStats:
    """Salvage accounting for one recovered engine execution.

    ``salvaged_*`` is the committed work a resubmission did *not* have
    to redo thanks to the ledger; ``wasted_*`` is the aborted attempts'
    discarded work; ``overhead_seconds`` is the charged resubmission
    cost (driver re-launch + checkpoint validation/re-read).  The
    workflow's total simulated cost grows by :attr:`extra_seconds`.
    """

    resubmissions: int = 0
    jobs_skipped: int = 0
    salvaged_bytes: int = 0
    salvaged_seconds: float = 0.0
    wasted_seconds: float = 0.0
    wasted_bytes: int = 0
    overhead_seconds: float = 0.0

    @property
    def extra_seconds(self) -> float:
        """Extra simulated seconds the recovery added to the workflow."""
        return self.wasted_seconds + self.overhead_seconds

    @property
    def salvage_ratio(self) -> float | None:
        """Fraction of at-risk work the checkpoints saved (None until a
        failure has actually occurred)."""
        at_risk = self.salvaged_seconds + self.extra_seconds
        if at_risk == 0.0:
            return None
        return self.salvaged_seconds / at_risk

    def as_dict(self) -> dict[str, object]:
        """Deterministic report form (floats rounded for stable JSON)."""
        return {
            "resubmissions": self.resubmissions,
            "jobs_skipped": self.jobs_skipped,
            "salvaged_bytes": self.salvaged_bytes,
            "salvaged_seconds": round(self.salvaged_seconds, 6),
            "wasted_seconds": round(self.wasted_seconds, 6),
            "wasted_bytes": self.wasted_bytes,
            "overhead_seconds": round(self.overhead_seconds, 6),
        }

    def describe(self) -> str:
        return (
            f"recovery: {self.resubmissions} resubmission(s), "
            f"{self.jobs_skipped} job(s) skipped by checkpoint, "
            f"salvaged={self.salvaged_bytes}B/{self.salvaged_seconds:.2f}s, "
            f"wasted={self.wasted_bytes}B/{self.wasted_seconds:.2f}s, "
            f"overhead={self.overhead_seconds:.2f}s"
        )
