"""Deterministic MapReduce simulator: HDFS, jobs, runner, cost model,
and seeded fault injection with Hadoop-style recovery."""

from repro.mapreduce.cost import ClusterConfig, CostModel, estimate_size
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import FAULT_COUNTERS, FaultPlan
from repro.mapreduce.hdfs import HDFS, HDFSFile
from repro.mapreduce.job import JobStats, MapReduceJob
from repro.mapreduce.runner import MapReduceRunner, WorkflowStats

__all__ = [
    "ClusterConfig",
    "CostModel",
    "Counters",
    "FAULT_COUNTERS",
    "FaultPlan",
    "HDFS",
    "HDFSFile",
    "JobStats",
    "MapReduceJob",
    "MapReduceRunner",
    "WorkflowStats",
    "estimate_size",
]
