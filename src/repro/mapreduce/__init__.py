"""Deterministic MapReduce simulator: HDFS, jobs, runner, cost model."""

from repro.mapreduce.cost import ClusterConfig, CostModel, estimate_size
from repro.mapreduce.counters import Counters
from repro.mapreduce.hdfs import HDFS, HDFSFile
from repro.mapreduce.job import JobStats, MapReduceJob
from repro.mapreduce.runner import MapReduceRunner, WorkflowStats

__all__ = [
    "ClusterConfig",
    "CostModel",
    "Counters",
    "HDFS",
    "HDFSFile",
    "JobStats",
    "MapReduceJob",
    "MapReduceRunner",
    "WorkflowStats",
    "estimate_size",
]
