"""Deterministic MapReduce simulator: HDFS, jobs, runner, cost model,
seeded fault injection with Hadoop-style recovery, and workflow-level
checkpoint/resume via the HDFS commit ledger."""

from repro.mapreduce.checkpoint import (
    RECOVERY_COUNTERS,
    CommitLedger,
    LedgerEntry,
    RecoveryPolicy,
    RecoveryStats,
)
from repro.mapreduce.cost import ClusterConfig, CostModel, estimate_size
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import FAULT_COUNTERS, FaultPlan
from repro.mapreduce.hdfs import HDFS, HDFSFile
from repro.mapreduce.job import JobStats, MapReduceJob
from repro.mapreduce.runner import MapReduceRunner, WorkflowStats

__all__ = [
    "ClusterConfig",
    "CommitLedger",
    "CostModel",
    "Counters",
    "FAULT_COUNTERS",
    "FaultPlan",
    "HDFS",
    "HDFSFile",
    "JobStats",
    "LedgerEntry",
    "MapReduceJob",
    "MapReduceRunner",
    "RECOVERY_COUNTERS",
    "RecoveryPolicy",
    "RecoveryStats",
    "WorkflowStats",
    "estimate_size",
]
