"""Deterministic fault injection for the MapReduce simulator.

The paper's measurements come from a real 10-node Hadoop cluster, where
task crashes, stragglers, and re-execution are routine.  A
:class:`FaultPlan` lets the simulator express the same failure modes
while keeping every run exactly reproducible:

* **map/reduce task crashes** — a task attempt fails and is retried
  (with backoff) up to a max-attempts budget; exhausting the budget
  aborts the job with a typed :class:`~repro.errors.TaskFailedError`,
  exactly like a Hadoop job killed after four failed attempts;
* **slow stragglers** — a task runs several times slower than its
  peers; with speculation enabled the runner launches a duplicate and
  takes the first finisher (Hadoop's speculative execution), otherwise
  the whole wave waits for the straggler;
* **transient HDFS write failures** — the job's output write fails and
  is re-driven, charging the re-written bytes.

Determinism contract
--------------------

Every fault decision is a pure function of ``(seed, job identity, task
kind, task index, attempt)`` — a keyed BLAKE2 hash mapped to a unit
float and compared against the configured rate.  Nothing reads the
wall clock or the global :mod:`random` state, so a given plan injects
the *same* faults into the same workflow on every run, on every
platform, regardless of ``PYTHONHASHSEED``.  The runner's job identity
folds the job's data volumes in with its name (planner job names like
``ra:agg-join`` repeat across queries; the volumes keep two different
queries from replaying one fault pattern).  Because an attempt's unit
float is fixed by its identity, raising a rate strictly grows the set
of injected faults: recovery cost is monotonically non-decreasing in
every rate (the property tests pin this).

Recovery never changes *what* a job computes — failed attempts are
re-executions of deterministic tasks, exactly as in Hadoop — so result
records and all base counters are identical to the fault-free run.
Only the fault counters (``failed_map_tasks``, ``retried_tasks``,
``speculative_tasks``, ``wasted_bytes``, ...) and the simulated cost
grow.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import MapReduceError

#: Counters owned by the recovery layer.  Everything *not* in this set
#: is a base counter, required to be bit-identical with and without a
#: fault plan (the invariant the resilience harness checks per run).
FAULT_COUNTERS = frozenset(
    {
        "failed_map_tasks",
        "failed_reduce_tasks",
        "retried_tasks",
        "speculative_tasks",
        "straggler_tasks",
        "wasted_bytes",
        "hdfs_write_retries",
    }
)

_UNIT_DENOMINATOR = float(2**64)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, per-run description of which faults to inject.

    Rates are probabilities in ``[0, 1)`` applied independently per
    task (or per attempt, for crashes and write failures).  The default
    plan (all rates zero) injects nothing and costs nothing.
    """

    seed: int = 0
    #: Probability that any single task *attempt* crashes.
    task_failure_rate: float = 0.0
    #: Probability that a task is a slow straggler.
    straggler_rate: float = 0.0
    #: How much slower a straggler runs than a healthy task.
    straggler_slowdown: float = 4.0
    #: Probability that one attempt of the job's output write fails.
    hdfs_write_failure_rate: float = 0.0
    #: Attempts budget per task (Hadoop's ``mapreduce.map.maxattempts``).
    max_attempts: int = 4
    #: Launch a duplicate of each straggler and take the first finisher.
    speculation: bool = True

    def __post_init__(self) -> None:
        for name in ("task_failure_rate", "straggler_rate", "hdfs_write_failure_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise MapReduceError(f"fault plan {name} must be in [0, 1): {rate!r}")
        if self.max_attempts < 1:
            raise MapReduceError(
                f"fault plan max_attempts must be >= 1: {self.max_attempts!r}"
            )
        if self.straggler_slowdown < 1.0:
            raise MapReduceError(
                f"fault plan straggler_slowdown must be >= 1: {self.straggler_slowdown!r}"
            )

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a CLI spec:
        ``seed,rate[,straggler_rate[,write_rate[,attempts]]]``.

        With only two fields the task-failure rate also drives the
        straggler and HDFS-write rates, so ``--faults 7,0.05`` exercises
        every recovery path with a single knob.  The optional fifth
        field lowers ``max_attempts`` (e.g. ``...,0,0,1`` turns every
        injected task failure into a job abort — the shape checkpointed
        workflow recovery exists for).
        """
        parts = [part.strip() for part in spec.split(",")]
        if not 2 <= len(parts) <= 5:
            raise MapReduceError(
                "fault spec must be "
                f"'seed,rate[,straggler_rate[,write_rate[,attempts]]]': {spec!r}"
            )
        try:
            seed = int(parts[0])
            rates = [float(part) for part in parts[1:4]]
            attempts = int(parts[4]) if len(parts) > 4 else cls.max_attempts
        except ValueError:
            raise MapReduceError(f"malformed fault spec {spec!r}") from None
        task_rate = rates[0]
        straggler_rate = rates[1] if len(rates) > 1 else task_rate
        write_rate = rates[2] if len(rates) > 2 else task_rate
        return cls(
            seed=seed,
            task_failure_rate=task_rate,
            straggler_rate=straggler_rate,
            hdfs_write_failure_rate=write_rate,
            max_attempts=attempts,
        )

    @property
    def is_noop(self) -> bool:
        return (
            self.task_failure_rate == 0.0
            and self.straggler_rate == 0.0
            and self.hdfs_write_failure_rate == 0.0
        )

    # -- the seeded decision function -------------------------------------------

    def _unit(self, *parts: object) -> float:
        """A uniform float in ``[0, 1)`` fully determined by the parts."""
        token = ":".join(str(part) for part in (self.seed, *parts))
        digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") / _UNIT_DENOMINATOR

    def task_failures(self, job_name: str, kind: str, index: int) -> int:
        """Failed attempts before this task succeeds.

        Returns a value in ``[0, max_attempts]``; ``max_attempts`` means
        every attempt in the budget failed and the job must abort.
        """
        rate = self.task_failure_rate
        if rate == 0.0:
            return 0
        failures = 0
        while failures < self.max_attempts:
            if self._unit("task", job_name, kind, index, failures) >= rate:
                return failures
            failures += 1
        return failures

    def is_straggler(self, job_name: str, kind: str, index: int) -> bool:
        rate = self.straggler_rate
        return rate > 0.0 and self._unit("straggler", job_name, kind, index) < rate

    def write_failures(self, job_name: str) -> int:
        """Transient failures of the job's output write, in
        ``[0, max_attempts]`` (``max_attempts`` aborts, as for tasks)."""
        rate = self.hdfs_write_failure_rate
        if rate == 0.0:
            return 0
        failures = 0
        while failures < self.max_attempts:
            if self._unit("hdfs-write", job_name, failures) >= rate:
                return failures
            failures += 1
        return failures
