"""Execution of simulated MapReduce jobs and workflows.

The runner faithfully models the dataflow of one Hadoop cycle:

1. the inputs are divided into splits (one map task per block);
2. each map task runs the mapper over its records;
3. with a combiner, each map task groups its own output by key and
   pre-aggregates it before anything is shuffled — this is exactly the
   mapper-side hash aggregation the paper's TG_AgJ operator relies on;
4. map output is shuffled (grouped by key across all tasks) and the
   reducer runs per key;
5. the reduce (or map, for map-only jobs) output is materialized to
   HDFS, where a capacity limit may fire.

Costs are charged by :class:`repro.mapreduce.cost.CostModel` from the
exact simulated byte/record volumes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro import obs, perf
from repro.errors import MapReduceError, TaskFailedError
from repro.mapreduce.cost import ClusterConfig, CostModel, estimate_size, estimate_total_size
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.job import JobStats, MapReduceJob
from repro.rdf.terms import BNode, IRI, Literal, Variable, term_interned_sort_key


@dataclass
class WorkflowStats:
    """Aggregate outcome of a job sequence (one engine execution)."""

    jobs: list[JobStats] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)

    @property
    def cycles(self) -> int:
        return len(self.jobs)

    @property
    def map_only_cycles(self) -> int:
        return sum(1 for job in self.jobs if job.map_only)

    @property
    def full_cycles(self) -> int:
        return self.cycles - self.map_only_cycles

    @property
    def total_cost(self) -> float:
        return sum(job.cost_seconds for job in self.jobs)

    @property
    def total_shuffle_bytes(self) -> int:
        return sum(job.shuffle_bytes for job in self.jobs)

    @property
    def total_materialized_bytes(self) -> int:
        return sum(job.output_bytes for job in self.jobs)

    def describe(self) -> str:
        lines = [job.describe() for job in self.jobs]
        lines.append(
            f"TOTAL: {self.cycles} cycles ({self.map_only_cycles} map-only), "
            f"cost={self.total_cost:.2f}s"
        )
        # Fault runs would otherwise hide their recovery work entirely:
        # the fault counters (retried_tasks, wasted_bytes, ...) live only
        # in the counter dict, so surface every counter here.
        values = self.counters.as_dict()
        if values:
            rendered = " ".join(f"{name}={values[name]}" for name in sorted(values))
            lines.append(f"counters: {rendered}")
        return "\n".join(lines)


def _chunk(records: Sequence[Any], tasks: int) -> list[Sequence[Any]]:
    """Split records into *tasks* contiguous chunks (some may be empty).

    Chunks are read-only views of the caller's sequence: the single-task
    case returns the sequence itself and the multi-task case slices it
    once (the seed wrapped both in an extra ``list(...)``, copying every
    record list a second time on the hottest path in the runner).
    """
    if tasks <= 1:
        return [records]
    size, remainder = divmod(len(records), tasks)
    chunks: list[Sequence[Any]] = []
    start = 0
    for index in range(tasks):
        end = start + size + (1 if index < remainder else 0)
        chunks.append(records[start:end])
        start = end
    return chunks


#: Master switch for the interned-sort-key fast path below;
#: :func:`repro.perf.reference_mode` flips it off to restore the seed's
#: per-comparison-pass ``repr`` rebuilds.
SORT_KEY_CACHE_ENABLED = True

_TERM_TYPES = (IRI, BNode, Literal, Variable)


def _raw_sort_key(key: Any) -> tuple[str, str]:
    """The seed's deterministic shuffle ordering: type name, then repr."""
    return (type(key).__name__, repr(key))


def _key_repr(key: Any) -> str:
    """``repr(key)`` rebuilt from interned per-term reprs.

    RDF terms pay their (slow) dataclass repr once ever; composite tuple
    keys re-assemble the exact tuple repr from the cached pieces.  The
    output is character-identical to ``repr(key)``, so sorting by it
    cannot reorder anything relative to :func:`_raw_sort_key`.
    """
    if isinstance(key, _TERM_TYPES):
        return term_interned_sort_key(key)[1]
    if key.__class__ is tuple:
        if len(key) == 1:
            return f"({_key_repr(key[0])},)"
        return f"({', '.join(_key_repr(item) for item in key)})"
    return repr(key)


def _sort_key(key: Any) -> tuple[str, str]:
    if not SORT_KEY_CACHE_ENABLED:
        return _raw_sort_key(key)
    return (key.__class__.__name__, _key_repr(key))


def _even_share(total: int, parts: int, index: int) -> int:
    """Task *index*'s share of *total* bytes split evenly over *parts*
    tasks — exact integer partition (the shares sum to *total*)."""
    return total * (index + 1) // parts - total * index // parts


class MapReduceRunner:
    """Runs jobs against one HDFS instance under one cost configuration.

    With a :class:`~repro.mapreduce.faults.FaultPlan`, the runner also
    simulates Hadoop-style recovery: per-task retry with exponential
    backoff, speculative duplicates for stragglers, and job abort (a
    typed :class:`~repro.errors.TaskFailedError`) once a task exhausts
    its attempts budget.  Recovery changes only the fault counters and
    the charged cost — results and base counters stay bit-identical to
    the fault-free run.
    """

    def __init__(
        self,
        hdfs: HDFS,
        cluster: ClusterConfig | None = None,
        cost_model: CostModel | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        self.hdfs = hdfs
        self.cluster = cluster or ClusterConfig()
        self.cost_model = cost_model or CostModel()
        if fault_plan is not None and fault_plan.is_noop:
            fault_plan = None  # zero rates: skip the recovery pass entirely
        self.fault_plan = fault_plan

    # -- single job ------------------------------------------------------------

    def run_job(self, job: MapReduceJob, counters: Counters | None = None) -> JobStats:
        if obs._ACTIVE is None:  # tracing off: skip the span bracket entirely
            return self._execute_job(job, counters, None)
        with obs.span(f"job:{job.name}", "job") as span:
            return self._execute_job(job, counters, span)

    def _execute_job(
        self,
        job: MapReduceJob,
        counters: Counters | None,
        span: obs.Span | None,
    ) -> JobStats:
        counters = counters if counters is not None else Counters()

        input_records: list[Any] = []
        input_bytes = 0  # on-disk bytes (drives split count and counters)
        input_work_bytes = 0  # decompressed bytes (drives scan cost)
        map_tasks = 0
        for path in job.inputs:
            file = self.hdfs.read(path)
            if job.tag_inputs:
                input_records.extend([(path, record) for record in file.records])
            else:
                input_records.extend(file.records)
            input_bytes += file.size_bytes
            input_work_bytes += file.raw_bytes
            # Splits come from the stored size: compressed tables occupy
            # fewer blocks, hence fewer mappers (the paper's ORC effect);
            # zero-byte files occupy no blocks and add no mapper.
            map_tasks += self.cluster.splits_for(file.size_bytes)
        # An executing job always runs at least one map task, even when
        # every input is an empty intermediate file (the implicit task
        # that discovers there is nothing to do still launches and must
        # be charged as a wave).
        map_tasks = max(1, map_tasks)

        side_data: dict[str, list[Any]] = {}
        side_bytes = 0
        side_work_bytes = 0
        for path in job.side_inputs:
            file = self.hdfs.read(path)
            side_data[path] = file.records
            side_bytes += file.size_bytes
            side_work_bytes += file.raw_bytes

        mapper = job.resolve_mapper(side_data)
        counters.increment("map_tasks", map_tasks)
        counters.increment("map_input_records", len(input_records))
        counters.increment("hdfs_bytes_read", input_bytes + side_bytes)

        if job.is_map_only:
            output_records: list[Any] = []
            with perf.phase("jobs"):
                for record in input_records:
                    output_records.extend(mapper(record))
            # A map-only mapper whose every output record is a 2-tuple
            # is almost certainly a shuffle mapper missing its reducer;
            # failing here names the producing job instead of letting a
            # downstream consumer crash confusingly.  (The first
            # non-tuple record short-circuits the scan.)
            if (
                output_records
                and not job.emits_pairs
                and all(
                    type(record) is tuple and len(record) == 2
                    for record in output_records
                )
            ):
                raise MapReduceError(
                    f"job {job.name!r}: map-only mapper emitted only "
                    f"(key, value) pairs — did you forget the reducer? "
                    f"(set emits_pairs=True if 2-tuple records are intended)"
                )
            counters.increment("map_output_records", len(output_records))
            shuffle_bytes = 0
            reduce_tasks = 0
        else:
            shuffle_pairs: list[tuple[Any, Any]] = []
            with perf.phase("jobs"):
                for chunk in _chunk(input_records, map_tasks):
                    task_output: list[tuple[Any, Any]] = []
                    for record in chunk:
                        task_output.extend(mapper(record))
                    counters.increment("map_output_records", len(task_output))
                    if job.combiner is not None:
                        grouped: dict[Any, list[Any]] = defaultdict(list)
                        try:
                            for key, value in task_output:
                                grouped[key].append(value)
                        except (TypeError, ValueError):
                            raise MapReduceError(
                                f"job {job.name!r}: mapper of a full MR job must "
                                f"emit (key, value) pairs"
                            ) from None
                        counters.increment("combine_input_records", len(task_output))
                        combined: list[tuple[Any, Any]] = []
                        for key in sorted(grouped, key=_sort_key):
                            combined.extend(job.combiner(key, grouped[key]))
                        counters.increment("combine_output_records", len(combined))
                        task_output = combined
                    shuffle_pairs.extend(task_output)

            with perf.phase("shuffle"):
                by_key: dict[Any, list[Any]] = defaultdict(list)
                # Validation of the pair shape happens via the unpacking
                # itself — per-pair isinstance checks in the map loop cost
                # real time at millions of emitted pairs.
                try:
                    for key, value in shuffle_pairs:
                        by_key[key].append(value)
                except (TypeError, ValueError):
                    raise MapReduceError(
                        f"job {job.name!r}: mapper of a full MR job must "
                        f"emit (key, value) pairs"
                    ) from None
                # Batched accounting: each distinct key is sized once and
                # multiplied by its multiplicity — arithmetic identical to
                # the seed's per-pair sum (equal keys have value-derived,
                # hence equal, sizes).
                shuffle_bytes = sum(
                    estimate_size(key) * len(values) + estimate_total_size(values)
                    for key, values in by_key.items()
                )
            counters.increment("shuffle_bytes", shuffle_bytes)
            counters.increment("reduce_input_records", len(shuffle_pairs))

            reduce_tasks = max(1, min(len(by_key), self.cluster.reduce_slots))
            counters.increment("reduce_tasks", reduce_tasks)

            output_records = []
            assert job.reducer is not None
            with perf.phase("jobs"):
                for key in sorted(by_key, key=_sort_key):
                    output_records.extend(job.reducer(key, by_key[key]))
            counters.increment("reduce_output_records", len(output_records))

        with perf.phase("materialize"):
            output_file = self.hdfs.write(job.output, output_records, job.output_compressed)
        counters.increment("hdfs_bytes_written", output_file.size_bytes)
        counters.increment("mr_cycles")
        if job.is_map_only:
            counters.increment("map_only_cycles")

        cost = self.cost_model.job_cost(
            self.cluster,
            input_bytes=input_work_bytes + side_work_bytes,
            shuffle_bytes=shuffle_bytes,
            output_bytes=output_file.raw_bytes,
            map_tasks=map_tasks,
            reduce_tasks=reduce_tasks,
        )
        tracer = obs.active_tracer()
        if span is not None and tracer is not None:
            span.attrs.update(
                map_only=job.is_map_only,
                map_tasks=map_tasks,
                reduce_tasks=reduce_tasks,
                input_bytes=input_bytes,
                side_input_bytes=side_bytes,
                shuffle_bytes=shuffle_bytes,
                output_bytes=output_file.size_bytes,
                input_records=len(input_records),
                output_records=len(output_records),
                cost_seconds=cost,
                labels=list(job.labels),
            )
            # Lay the cost model's phase decomposition back to back on
            # the simulated timeline, then advance the clock by the
            # job's (identical, up to float addition order) total.
            offset = tracer.sim_now
            for phase_name, seconds in self.cost_model.job_cost_phases(
                self.cluster,
                input_bytes=input_work_bytes + side_work_bytes,
                shuffle_bytes=shuffle_bytes,
                output_bytes=output_file.raw_bytes,
                map_tasks=map_tasks,
                reduce_tasks=reduce_tasks,
            ):
                tracer.add_closed_span(
                    phase_name, "phase", sim_start=offset, sim_dur=seconds
                )
                offset += seconds
            tracer.advance_sim(cost)
        retried = speculative = wasted = 0
        if self.fault_plan is not None:
            recovery, retried, speculative, wasted = self._recover_faults(
                job,
                counters,
                map_tasks=map_tasks,
                reduce_tasks=reduce_tasks,
                map_bytes=input_work_bytes,
                side_bytes=side_work_bytes,
                shuffle_bytes=shuffle_bytes,
                output_raw=output_file.raw_bytes,
            )
            cost += recovery
            if span is not None and tracer is not None:
                if recovery:
                    tracer.add_closed_span(
                        "recovery",
                        "phase",
                        sim_dur=recovery,
                        attrs={
                            "retried_tasks": retried,
                            "speculative_tasks": speculative,
                            "wasted_bytes": wasted,
                        },
                    )
                    tracer.advance_sim(recovery)
                span.attrs["cost_seconds"] = cost
        return JobStats(
            name=job.name,
            map_only=job.is_map_only,
            map_tasks=map_tasks,
            reduce_tasks=reduce_tasks,
            input_bytes=input_bytes,
            side_input_bytes=side_bytes,
            shuffle_bytes=shuffle_bytes,
            output_bytes=output_file.size_bytes,
            input_records=len(input_records),
            output_records=len(output_records),
            cost_seconds=cost,
            labels=job.labels,
            retried_tasks=retried,
            speculative_tasks=speculative,
            wasted_bytes=wasted,
        )

    # -- fault recovery ----------------------------------------------------------

    def _abort(self, job: MapReduceJob, kind: str, index: int) -> None:
        """Job-level abort: an aborted job commits no output."""
        assert self.fault_plan is not None
        obs.event(
            "job-abort",
            {"kind": kind, "index": index, "attempts": self.fault_plan.max_attempts},
        )
        self.hdfs.delete(job.output)
        raise TaskFailedError(job.name, kind, index, self.fault_plan.max_attempts)

    def _recover_faults(
        self,
        job: MapReduceJob,
        counters: Counters,
        *,
        map_tasks: int,
        reduce_tasks: int,
        map_bytes: int,
        side_bytes: int,
        shuffle_bytes: int,
        output_raw: int,
    ) -> tuple[float, int, int, int]:
        """Replay the fault plan against the completed job's task grid.

        Recovery is an accounting pass: the happy-path execution above
        already produced the (deterministic) results, so a simulated
        crash only re-charges the re-executed work — re-scanned input
        splits (plus re-broadcast side tables), re-fetched shuffle
        partitions, re-written output — plus exponential backoff, and
        bumps the fault counters.  Exhausting a task's attempts budget
        aborts the job with :class:`TaskFailedError`.

        Returns ``(extra_cost_seconds, retried, speculative, wasted)``.
        """
        plan = self.fault_plan
        assert plan is not None
        # The fault identity folds the job's data volumes in with its
        # name: planner-generated names repeat across queries (every
        # NTGA plan has an "ra:agg-join"), and keying on the name alone
        # would replay the same fault pattern into every query.
        token = f"{job.name}|{map_bytes}|{shuffle_bytes}|{output_raw}"
        failed_map = failed_reduce = 0
        retried = speculative = stragglers = write_retries = 0
        rescanned = reshuffled = rewritten = 0  # discarded-work bytes
        slow_scan = slow_shuffle = slow_write = 0.0  # unspeculated straggler drag
        backoff_units = 0.0
        slowdown = plan.straggler_slowdown - 1.0

        for index in range(map_tasks):
            failures = plan.task_failures(token, "map", index)
            if failures >= plan.max_attempts:
                self._abort(job, "map", index)
            share = _even_share(map_bytes, map_tasks, index)
            if failures:
                failed_map += failures
                retried += failures
                rescanned += (share + side_bytes) * failures
                backoff_units += float((1 << failures) - 1)
                obs.event(
                    "task-retry", {"kind": "map", "index": index, "failures": failures}
                )
            if plan.is_straggler(token, "map", index):
                stragglers += 1
                obs.event(
                    "straggler",
                    {"kind": "map", "index": index, "speculated": plan.speculation},
                )
                if plan.speculation:
                    # The duplicate re-reads the split (and side tables);
                    # the slow original's work is thrown away.
                    speculative += 1
                    rescanned += share + side_bytes
                else:
                    slow_scan += slowdown * share

        for index in range(reduce_tasks):
            failures = plan.task_failures(token, "reduce", index)
            if failures >= plan.max_attempts:
                self._abort(job, "reduce", index)
            shuffle_share = _even_share(shuffle_bytes, reduce_tasks, index)
            output_share = _even_share(output_raw, reduce_tasks, index)
            if failures:
                failed_reduce += failures
                retried += failures
                reshuffled += shuffle_share * failures
                rewritten += output_share * failures
                backoff_units += float((1 << failures) - 1)
                obs.event(
                    "task-retry",
                    {"kind": "reduce", "index": index, "failures": failures},
                )
            if plan.is_straggler(token, "reduce", index):
                stragglers += 1
                obs.event(
                    "straggler",
                    {"kind": "reduce", "index": index, "speculated": plan.speculation},
                )
                if plan.speculation:
                    speculative += 1
                    reshuffled += shuffle_share
                    rewritten += output_share
                else:
                    slow_shuffle += slowdown * shuffle_share
                    slow_write += slowdown * output_share

        write_failures = plan.write_failures(token)
        if write_failures >= plan.max_attempts:
            self._abort(job, "hdfs-write", 0)
        if write_failures:
            write_retries = write_failures
            rewritten += output_raw * write_failures
            backoff_units += float((1 << write_failures) - 1)
            obs.event("hdfs-write-retry", {"failures": write_failures})

        wasted = rescanned + reshuffled + rewritten
        cost = self.cost_model.recovery_cost(
            rescanned_bytes=rescanned + slow_scan,
            reshuffled_bytes=reshuffled + slow_shuffle,
            rewritten_bytes=rewritten + slow_write,
            backoff_units=backoff_units,
            speculative_tasks=speculative,
        )
        # Fault counters are created only when nonzero, so a faulted
        # run's counter dict is the fault-free dict plus fault entries.
        for name, value in (
            ("failed_map_tasks", failed_map),
            ("failed_reduce_tasks", failed_reduce),
            ("retried_tasks", retried),
            ("speculative_tasks", speculative),
            ("straggler_tasks", stragglers),
            ("wasted_bytes", wasted),
            ("hdfs_write_retries", write_retries),
        ):
            if value:
                counters.increment(name, value)
        return cost, retried, speculative, wasted

    # -- workflows ----------------------------------------------------------------

    def run_workflow(self, jobs: Sequence[MapReduceJob]) -> WorkflowStats:
        """Run jobs in order; later jobs may read earlier outputs."""
        stats = WorkflowStats()
        for job in jobs:
            stats.jobs.append(self.run_job(job, stats.counters))
        return stats
