"""Execution of simulated MapReduce jobs and workflows.

The runner faithfully models the dataflow of one Hadoop cycle:

1. the inputs are divided into splits (one map task per block);
2. each map task runs the mapper over its records;
3. with a combiner, each map task groups its own output by key and
   pre-aggregates it before anything is shuffled — this is exactly the
   mapper-side hash aggregation the paper's TG_AgJ operator relies on;
4. map output is shuffled (grouped by key across all tasks) and the
   reducer runs per key;
5. the reduce (or map, for map-only jobs) output is materialized to
   HDFS, where a capacity limit may fire.

Costs are charged by :class:`repro.mapreduce.cost.CostModel` from the
exact simulated byte/record volumes.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro import obs, perf
from repro.obs import metrics as obs_metrics
from repro.errors import (
    CheckpointError,
    MapReduceError,
    TaskFailedError,
    WorkflowAbortedError,
)
from repro.mapreduce.checkpoint import (
    LedgerEntry,
    RecoveryPolicy,
    RecoveryStats,
    fingerprint_inputs,
)
from repro.mapreduce.cost import ClusterConfig, CostModel, estimate_size, estimate_total_size
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.job import JobStats, MapReduceJob
from repro.rdf.terms import BNode, IRI, Literal, Variable, term_interned_sort_key


@dataclass
class WorkflowStats:
    """Aggregate outcome of a job sequence (one engine execution)."""

    jobs: list[JobStats] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)
    #: Salvage accounting, attached by ``MapReduceRunner.finalize`` when
    #: the runner carries a :class:`~repro.mapreduce.checkpoint.RecoveryPolicy`.
    #: ``None`` on every non-recovered run, so the default path's numbers
    #: are untouched.
    recovery: RecoveryStats | None = None
    #: Simulated seconds saved by shards executing concurrently: for
    #: each logical job the sharded driver runs N per-shard jobs whose
    #: costs the job list records serially, then credits back
    #: ``sum(shard costs) - max(shard costs)`` here (the shards overlap
    #: on the wall clock; only the slowest is on the critical path).
    #: Zero on unsharded runs.
    overlap_seconds: float = 0.0

    @property
    def cycles(self) -> int:
        return len(self.jobs)

    @property
    def map_only_cycles(self) -> int:
        return sum(1 for job in self.jobs if job.map_only)

    @property
    def full_cycles(self) -> int:
        return self.cycles - self.map_only_cycles

    @property
    def total_cost(self) -> float:
        cost = sum(job.cost_seconds for job in self.jobs) - self.overlap_seconds
        if self.recovery is not None:
            cost += self.recovery.extra_seconds
        return cost

    @property
    def total_shuffle_bytes(self) -> int:
        return sum(job.shuffle_bytes for job in self.jobs)

    @property
    def total_exchange_bytes(self) -> int:
        return sum(job.exchange_bytes for job in self.jobs)

    @property
    def total_materialized_bytes(self) -> int:
        return sum(job.output_bytes for job in self.jobs)

    def describe(self) -> str:
        lines = [job.describe() for job in self.jobs]
        lines.append(
            f"TOTAL: {self.cycles} cycles ({self.map_only_cycles} map-only), "
            f"cost={self.total_cost:.2f}s"
        )
        # Fault runs would otherwise hide their recovery work entirely:
        # the fault counters (retried_tasks, wasted_bytes, ...) live only
        # in the counter dict, so surface every counter here.
        values = self.counters.as_dict()
        if values:
            rendered = " ".join(f"{name}={values[name]}" for name in sorted(values))
            lines.append(f"counters: {rendered}")
        if self.recovery is not None and (
            self.recovery.resubmissions or self.recovery.jobs_skipped
        ):
            lines.append(self.recovery.describe())
        return "\n".join(lines)


def _chunk(records: Sequence[Any], tasks: int) -> list[Sequence[Any]]:
    """Split records into *tasks* contiguous chunks (some may be empty).

    Chunks are read-only views of the caller's sequence: the single-task
    case returns the sequence itself and the multi-task case slices it
    once (the seed wrapped both in an extra ``list(...)``, copying every
    record list a second time on the hottest path in the runner).
    """
    if tasks <= 1:
        return [records]
    size, remainder = divmod(len(records), tasks)
    chunks: list[Sequence[Any]] = []
    start = 0
    for index in range(tasks):
        end = start + size + (1 if index < remainder else 0)
        chunks.append(records[start:end])
        start = end
    return chunks


#: Master switch for the interned-sort-key fast path below;
#: :func:`repro.perf.reference_mode` flips it off to restore the seed's
#: per-comparison-pass ``repr`` rebuilds.
SORT_KEY_CACHE_ENABLED = True

_TERM_TYPES = (IRI, BNode, Literal, Variable)


def _raw_sort_key(key: Any) -> tuple[str, str]:
    """The seed's deterministic shuffle ordering: type name, then repr."""
    return (type(key).__name__, repr(key))


def _key_repr(key: Any) -> str:
    """``repr(key)`` rebuilt from interned per-term reprs.

    RDF terms pay their (slow) dataclass repr once ever; composite tuple
    keys re-assemble the exact tuple repr from the cached pieces.  The
    output is character-identical to ``repr(key)``, so sorting by it
    cannot reorder anything relative to :func:`_raw_sort_key`.
    """
    if isinstance(key, _TERM_TYPES):
        return term_interned_sort_key(key)[1]
    if key.__class__ is tuple:
        if len(key) == 1:
            return f"({_key_repr(key[0])},)"
        return f"({', '.join(_key_repr(item) for item in key)})"
    return repr(key)


def _sort_key(key: Any) -> tuple[str, str]:
    if not SORT_KEY_CACHE_ENABLED:
        return _raw_sort_key(key)
    return (key.__class__.__name__, _key_repr(key))


def _even_share(total: int, parts: int, index: int) -> int:
    """Task *index*'s share of *total* bytes split evenly over *parts*
    tasks — exact integer partition (the shares sum to *total*)."""
    return total * (index + 1) // parts - total * index // parts


class MapReduceRunner:
    """Runs jobs against one HDFS instance under one cost configuration.

    With a :class:`~repro.mapreduce.faults.FaultPlan`, the runner also
    simulates Hadoop-style recovery: per-task retry with exponential
    backoff, speculative duplicates for stragglers, and job abort (a
    typed :class:`~repro.errors.TaskFailedError`) once a task exhausts
    its attempts budget.  Recovery changes only the fault counters and
    the charged cost — results and base counters stay bit-identical to
    the fault-free run.

    With a :class:`~repro.mapreduce.checkpoint.RecoveryPolicy`, job
    aborts stop being fatal to the whole workflow: every successful job
    commits a checkpoint into the HDFS commit ledger, and a workflow
    re-submission (:meth:`run_workflow`'s retry loop, or an engine-level
    re-drive) skips ledger-committed jobs, recomputing only the failed
    suffix.  Skipped jobs replay their stored stats and counters, so a
    resumed run's rows and base counters are bit-identical to an
    uninterrupted one.
    """

    def __init__(
        self,
        hdfs: HDFS,
        cluster: ClusterConfig | None = None,
        cost_model: CostModel | None = None,
        fault_plan: FaultPlan | None = None,
        recovery: RecoveryPolicy | None = None,
    ):
        self.hdfs = hdfs
        self.cluster = cluster or ClusterConfig()
        self.cost_model = cost_model or CostModel()
        if fault_plan is not None and fault_plan.is_noop:
            fault_plan = None  # zero rates: skip the recovery pass entirely
        self.fault_plan = fault_plan
        self.recovery = recovery
        self.recovery_stats = RecoveryStats()
        #: Workflow submission ordinal, folded into the fault identity so
        #: a re-submission draws fresh faults (a deterministic plan would
        #: otherwise replay the identical abort forever).  Zero for the
        #: first submission, which keeps first-run fault draws
        #: bit-identical to the pre-checkpoint simulator.
        self._submission = 0

    # -- single job ------------------------------------------------------------

    def run_job(self, job: MapReduceJob, counters: Counters | None = None) -> JobStats:
        fingerprint: str | None = None
        if self.recovery is not None:
            fingerprint = fingerprint_inputs(self.hdfs, job)
            skipped = self._checkpoint_skip(job, fingerprint, counters)
            if skipped is not None:
                return skipped
        # The job's own counter contributions accumulate in a scratch bag
        # and merge into the caller's counters only on success, so an
        # aborted job never pollutes the workflow's accounting (the
        # scratch travels on the TaskFailedError instead).
        scratch = Counters()
        if obs._ACTIVE is None:  # tracing off: skip the span bracket entirely
            stats = self._execute_job(job, scratch, None)
        else:
            with obs.span(f"job:{job.name}", "job") as span:
                stats = self._execute_job(job, scratch, span)
        if counters is not None:
            counters.merge(scratch)
        if self.recovery is not None:
            assert fingerprint is not None
            self._checkpoint_commit(job, fingerprint, stats, scratch)
        return stats

    def _execute_job(
        self,
        job: MapReduceJob,
        counters: Counters,
        span: obs.Span | None,
    ) -> JobStats:
        registry = obs_metrics.active_registry()
        wall_start = time.perf_counter() if registry is not None else 0.0
        # Per-shard jobs run on their worker's slice of the cluster.
        cluster = job.cluster or self.cluster
        input_records: list[Any] = []
        input_bytes = 0  # on-disk bytes (drives split count and counters)
        input_work_bytes = 0  # decompressed bytes (drives scan cost)
        map_tasks = 0
        for path in job.inputs:
            file = self.hdfs.read(path)
            if job.tag_inputs:
                input_records.extend([(path, record) for record in file.records])
            else:
                input_records.extend(file.records)
            input_bytes += file.size_bytes
            input_work_bytes += file.raw_bytes
            # Splits come from the stored size: compressed tables occupy
            # fewer blocks, hence fewer mappers (the paper's ORC effect);
            # zero-byte files occupy no blocks and add no mapper.
            map_tasks += cluster.splits_for(file.size_bytes)
        # An executing job always runs at least one map task, even when
        # every input is an empty intermediate file (the implicit task
        # that discovers there is nothing to do still launches and must
        # be charged as a wave).
        map_tasks = max(1, map_tasks)

        side_data: dict[str, list[Any]] = {}
        side_bytes = 0
        side_work_bytes = 0
        for path in job.side_inputs:
            file = self.hdfs.read(path)
            side_data[path] = file.records
            side_bytes += file.size_bytes
            side_work_bytes += file.raw_bytes

        mapper = job.resolve_mapper(side_data)
        counters.increment("map_tasks", map_tasks)
        counters.increment("map_input_records", len(input_records))
        counters.increment("hdfs_bytes_read", input_bytes + side_bytes)

        if job.is_map_only:
            output_records: list[Any] = []
            with perf.phase("jobs"):
                for record in input_records:
                    output_records.extend(mapper(record))
            # A map-only mapper whose every output record is a 2-tuple
            # is almost certainly a shuffle mapper missing its reducer;
            # failing here names the producing job instead of letting a
            # downstream consumer crash confusingly.  (The first
            # non-tuple record short-circuits the scan.)
            if (
                output_records
                and not job.emits_pairs
                and all(
                    type(record) is tuple and len(record) == 2
                    for record in output_records
                )
            ):
                raise MapReduceError(
                    f"job {job.name!r}: map-only mapper emitted only "
                    f"(key, value) pairs — did you forget the reducer? "
                    f"(set emits_pairs=True if 2-tuple records are intended)"
                )
            counters.increment("map_output_records", len(output_records))
            shuffle_bytes = 0
            reduce_tasks = 0
        else:
            shuffle_pairs: list[tuple[Any, Any]] = []
            with perf.phase("jobs"):
                for chunk in _chunk(input_records, map_tasks):
                    task_output: list[tuple[Any, Any]] = []
                    for record in chunk:
                        task_output.extend(mapper(record))
                    counters.increment("map_output_records", len(task_output))
                    if job.combiner is not None:
                        grouped: dict[Any, list[Any]] = defaultdict(list)
                        try:
                            for key, value in task_output:
                                grouped[key].append(value)
                        except (TypeError, ValueError):
                            raise MapReduceError(
                                f"job {job.name!r}: mapper of a full MR job must "
                                f"emit (key, value) pairs"
                            ) from None
                        counters.increment("combine_input_records", len(task_output))
                        combined: list[tuple[Any, Any]] = []
                        for key in sorted(grouped, key=_sort_key):
                            combined.extend(job.combiner(key, grouped[key]))
                        counters.increment("combine_output_records", len(combined))
                        task_output = combined
                    shuffle_pairs.extend(task_output)

            with perf.phase("shuffle"):
                by_key: dict[Any, list[Any]] = defaultdict(list)
                # Validation of the pair shape happens via the unpacking
                # itself — per-pair isinstance checks in the map loop cost
                # real time at millions of emitted pairs.
                try:
                    for key, value in shuffle_pairs:
                        by_key[key].append(value)
                except (TypeError, ValueError):
                    raise MapReduceError(
                        f"job {job.name!r}: mapper of a full MR job must "
                        f"emit (key, value) pairs"
                    ) from None
                # Batched accounting: each distinct key is sized once and
                # multiplied by its multiplicity — arithmetic identical to
                # the seed's per-pair sum (equal keys have value-derived,
                # hence equal, sizes).
                shuffle_bytes = sum(
                    estimate_size(key) * len(values) + estimate_total_size(values)
                    for key, values in by_key.items()
                )
            counters.increment("shuffle_bytes", shuffle_bytes)
            counters.increment("reduce_input_records", len(shuffle_pairs))

            reduce_tasks = max(1, min(len(by_key), cluster.reduce_slots))
            counters.increment("reduce_tasks", reduce_tasks)

            output_records = []
            assert job.reducer is not None
            with perf.phase("jobs"):
                for key in sorted(by_key, key=_sort_key):
                    output_records.extend(job.reducer(key, by_key[key]))
            counters.increment("reduce_output_records", len(output_records))

        with perf.phase("materialize"):
            output_file = self.hdfs.write(job.output, output_records, job.output_compressed)
        counters.increment("hdfs_bytes_written", output_file.size_bytes)
        counters.increment("mr_cycles")
        if job.is_map_only:
            counters.increment("map_only_cycles")
        if job.exchange_bytes:
            # Gated: the counter family exists only on sharded runs, so
            # unsharded counter bags keep their historical key sets.
            counters.increment("exchange_bytes", job.exchange_bytes)

        cost = self.cost_model.job_cost(
            cluster,
            input_bytes=input_work_bytes + side_work_bytes,
            shuffle_bytes=shuffle_bytes,
            output_bytes=output_file.raw_bytes,
            map_tasks=map_tasks,
            reduce_tasks=reduce_tasks,
            exchange_bytes=job.exchange_bytes,
        )
        tracer = obs.active_tracer()
        if span is not None and tracer is not None:
            span.attrs.update(
                map_only=job.is_map_only,
                map_tasks=map_tasks,
                reduce_tasks=reduce_tasks,
                input_bytes=input_bytes,
                side_input_bytes=side_bytes,
                shuffle_bytes=shuffle_bytes,
                output_bytes=output_file.size_bytes,
                input_records=len(input_records),
                output_records=len(output_records),
                cost_seconds=cost,
                labels=list(job.labels),
            )
            if job.exchange_bytes:
                span.attrs["exchange_bytes"] = job.exchange_bytes
            # Lay the cost model's phase decomposition back to back on
            # the simulated timeline, then advance the clock by the
            # job's (identical, up to float addition order) total.
            offset = tracer.sim_now
            for phase_name, seconds in self.cost_model.job_cost_phases(
                cluster,
                input_bytes=input_work_bytes + side_work_bytes,
                shuffle_bytes=shuffle_bytes,
                output_bytes=output_file.raw_bytes,
                map_tasks=map_tasks,
                reduce_tasks=reduce_tasks,
                exchange_bytes=job.exchange_bytes,
            ):
                tracer.add_closed_span(
                    phase_name, "phase", sim_start=offset, sim_dur=seconds
                )
                offset += seconds
            tracer.advance_sim(cost)
        retried = speculative = wasted = 0
        recovery = 0.0
        if self.fault_plan is not None:
            try:
                recovery, retried, speculative, wasted = self._recover_faults(
                    job,
                    counters,
                    map_tasks=map_tasks,
                    reduce_tasks=reduce_tasks,
                    map_bytes=input_work_bytes,
                    side_bytes=side_work_bytes,
                    shuffle_bytes=shuffle_bytes,
                    output_raw=output_file.raw_bytes,
                )
            except TaskFailedError as error:
                # Attach the aborted attempt's work so post-mortems see
                # it: the scratch counters (never merged anywhere), the
                # attempt's charged base cost, and the discarded output.
                error.job_output = job.output
                error.job_counters = counters
                error.wasted_seconds = cost
                error.wasted_bytes = output_file.size_bytes
                raise
            cost += recovery
            if span is not None and tracer is not None:
                if recovery:
                    tracer.add_closed_span(
                        "recovery",
                        "phase",
                        sim_dur=recovery,
                        attrs={
                            "retried_tasks": retried,
                            "speculative_tasks": speculative,
                            "wasted_bytes": wasted,
                        },
                    )
                    tracer.advance_sim(recovery)
                span.attrs["cost_seconds"] = cost
        if registry is not None:
            self._record_job_metrics(
                registry,
                job,
                cost=cost,
                wall=time.perf_counter() - wall_start,
                input_bytes=input_work_bytes + side_work_bytes,
                shuffle_bytes=shuffle_bytes,
                output_bytes=output_file.raw_bytes,
                map_tasks=map_tasks,
                reduce_tasks=reduce_tasks,
                recovery=recovery,
                retried=retried,
                speculative=speculative,
                wasted=wasted,
            )
        return JobStats(
            name=job.name,
            map_only=job.is_map_only,
            map_tasks=map_tasks,
            reduce_tasks=reduce_tasks,
            input_bytes=input_bytes,
            side_input_bytes=side_bytes,
            shuffle_bytes=shuffle_bytes,
            output_bytes=output_file.size_bytes,
            input_records=len(input_records),
            output_records=len(output_records),
            cost_seconds=cost,
            labels=job.labels,
            retried_tasks=retried,
            speculative_tasks=speculative,
            wasted_bytes=wasted,
            exchange_bytes=job.exchange_bytes,
        )

    def _record_job_metrics(
        self,
        registry: obs_metrics.MetricsRegistry,
        job: MapReduceJob,
        *,
        cost: float,
        wall: float,
        input_bytes: int,
        shuffle_bytes: int,
        output_bytes: int,
        map_tasks: int,
        reduce_tasks: int,
        recovery: float,
        retried: int,
        speculative: int,
        wasted: int,
    ) -> None:
        """Fold one executed job into the active metrics registry: the
        cost model's phase decomposition as per-phase histograms, the
        dual-clock end-to-end cost, and fault/recovery events."""
        kind = "map_only" if job.is_map_only else "full"
        registry.counter(
            "mr_jobs_total", "MapReduce jobs executed", ("kind",)
        ).labels(kind=kind).inc()
        phase_hist = registry.histogram(
            "mr_phase_sim_seconds",
            "per-job cost-phase decomposition (simulated clock)",
            ("phase",),
        )
        for phase_name, seconds in self.cost_model.job_cost_phases(
            job.cluster or self.cluster,
            input_bytes=input_bytes,
            shuffle_bytes=shuffle_bytes,
            output_bytes=output_bytes,
            map_tasks=map_tasks,
            reduce_tasks=reduce_tasks,
            exchange_bytes=job.exchange_bytes,
        ):
            phase_hist.labels(phase=phase_name).observe(seconds)
        job_sim, job_wall = registry.dual_histogram(
            "mr_job_cost", "end-to-end job cost"
        )
        job_sim.labels().observe(cost)
        job_wall.labels().observe(wall)
        if self.fault_plan is None:
            return
        faults = registry.counter(
            "mr_fault_events_total", "recovered fault events", ("kind",)
        )
        if retried:
            faults.labels(kind="task_retry").inc(retried)
        if speculative:
            faults.labels(kind="speculative").inc(speculative)
        if wasted:
            registry.counter(
                "mr_fault_wasted_bytes_total",
                "bytes discarded by retried/speculative attempts",
            ).labels().inc(wasted)
        if recovery:
            registry.histogram(
                "mr_recovery_sim_seconds", "recovery time added per faulted job"
            ).labels().observe(recovery)

    # -- fault recovery ----------------------------------------------------------

    def _abort(self, job: MapReduceJob, kind: str, index: int) -> None:
        """Job-level abort: an aborted job commits no output."""
        assert self.fault_plan is not None
        obs.event(
            "job-abort",
            {"kind": kind, "index": index, "attempts": self.fault_plan.max_attempts},
        )
        self.hdfs.delete(job.output)
        raise TaskFailedError(job.name, kind, index, self.fault_plan.max_attempts)

    def _recover_faults(
        self,
        job: MapReduceJob,
        counters: Counters,
        *,
        map_tasks: int,
        reduce_tasks: int,
        map_bytes: int,
        side_bytes: int,
        shuffle_bytes: int,
        output_raw: int,
    ) -> tuple[float, int, int, int]:
        """Replay the fault plan against the completed job's task grid.

        Recovery is an accounting pass: the happy-path execution above
        already produced the (deterministic) results, so a simulated
        crash only re-charges the re-executed work — re-scanned input
        splits (plus re-broadcast side tables), re-fetched shuffle
        partitions, re-written output — plus exponential backoff, and
        bumps the fault counters.  Exhausting a task's attempts budget
        aborts the job with :class:`TaskFailedError`.

        Returns ``(extra_cost_seconds, retried, speculative, wasted)``.
        """
        plan = self.fault_plan
        assert plan is not None
        # The fault identity folds the job's data volumes in with its
        # name: planner-generated names repeat across queries (every
        # NTGA plan has an "ra:agg-join"), and keying on the name alone
        # would replay the same fault pattern into every query.
        token = f"{job.name}|{map_bytes}|{shuffle_bytes}|{output_raw}"
        if self._submission:
            # A re-submitted workflow is a new set of task attempts: fold
            # the submission ordinal into the fault identity so the plan
            # draws fresh faults instead of replaying the same abort.
            # First submissions (ordinal 0) keep the original token, so
            # runs that never fail are bit-identical to the
            # pre-checkpoint simulator.
            token = f"{token}|resubmit{self._submission}"
        failed_map = failed_reduce = 0
        retried = speculative = stragglers = write_retries = 0
        rescanned = reshuffled = rewritten = 0  # discarded-work bytes
        slow_scan = slow_shuffle = slow_write = 0.0  # unspeculated straggler drag
        backoff_units = 0.0
        slowdown = plan.straggler_slowdown - 1.0

        for index in range(map_tasks):
            failures = plan.task_failures(token, "map", index)
            if failures >= plan.max_attempts:
                self._abort(job, "map", index)
            share = _even_share(map_bytes, map_tasks, index)
            if failures:
                failed_map += failures
                retried += failures
                rescanned += (share + side_bytes) * failures
                backoff_units += float((1 << failures) - 1)
                obs.event(
                    "task-retry", {"kind": "map", "index": index, "failures": failures}
                )
            if plan.is_straggler(token, "map", index):
                stragglers += 1
                obs.event(
                    "straggler",
                    {"kind": "map", "index": index, "speculated": plan.speculation},
                )
                if plan.speculation:
                    # The duplicate re-reads the split (and side tables);
                    # the slow original's work is thrown away.
                    speculative += 1
                    rescanned += share + side_bytes
                else:
                    slow_scan += slowdown * share

        for index in range(reduce_tasks):
            failures = plan.task_failures(token, "reduce", index)
            if failures >= plan.max_attempts:
                self._abort(job, "reduce", index)
            shuffle_share = _even_share(shuffle_bytes, reduce_tasks, index)
            output_share = _even_share(output_raw, reduce_tasks, index)
            if failures:
                failed_reduce += failures
                retried += failures
                reshuffled += shuffle_share * failures
                rewritten += output_share * failures
                backoff_units += float((1 << failures) - 1)
                obs.event(
                    "task-retry",
                    {"kind": "reduce", "index": index, "failures": failures},
                )
            if plan.is_straggler(token, "reduce", index):
                stragglers += 1
                obs.event(
                    "straggler",
                    {"kind": "reduce", "index": index, "speculated": plan.speculation},
                )
                if plan.speculation:
                    speculative += 1
                    reshuffled += shuffle_share
                    rewritten += output_share
                else:
                    slow_shuffle += slowdown * shuffle_share
                    slow_write += slowdown * output_share

        write_failures = plan.write_failures(token)
        if write_failures >= plan.max_attempts:
            self._abort(job, "hdfs-write", 0)
        if write_failures:
            write_retries = write_failures
            rewritten += output_raw * write_failures
            backoff_units += float((1 << write_failures) - 1)
            obs.event("hdfs-write-retry", {"failures": write_failures})

        wasted = rescanned + reshuffled + rewritten
        cost = self.cost_model.recovery_cost(
            rescanned_bytes=rescanned + slow_scan,
            reshuffled_bytes=reshuffled + slow_shuffle,
            rewritten_bytes=rewritten + slow_write,
            backoff_units=backoff_units,
            speculative_tasks=speculative,
        )
        # Fault counters are created only when nonzero, so a faulted
        # run's counter dict is the fault-free dict plus fault entries.
        for name, value in (
            ("failed_map_tasks", failed_map),
            ("failed_reduce_tasks", failed_reduce),
            ("retried_tasks", retried),
            ("speculative_tasks", speculative),
            ("straggler_tasks", stragglers),
            ("wasted_bytes", wasted),
            ("hdfs_write_retries", write_retries),
        ):
            if value:
                counters.increment(name, value)
        return cost, retried, speculative, wasted

    # -- checkpoint / resume -------------------------------------------------------

    def _checkpoint_skip(
        self, job: MapReduceJob, fingerprint: str, counters: Counters | None
    ) -> JobStats | None:
        """Skip *job* if the commit ledger holds a valid checkpoint.

        A hit replays the stored stats and counter deltas, so the
        resumed workflow's accounting matches an uninterrupted run;
        the durable output in HDFS is reused as-is.  Returns ``None``
        (execute normally) on a miss or an invalidated entry.
        """
        entry = self.hdfs.ledger.lookup(job.name, job.output, fingerprint)
        if entry is None:
            return None
        if not self.hdfs.exists(entry.output):
            raise CheckpointError(
                f"commit ledger entry for job {job.name!r} points at "
                f"{entry.output!r}, which no longer exists in HDFS"
            )
        if counters is not None:
            for name, value in entry.counters.items():
                counters.increment(name, value)
        rec = self.recovery_stats
        rec.jobs_skipped += 1
        rec.salvaged_bytes += entry.output_bytes
        rec.salvaged_seconds += entry.cost_seconds
        obs.event(
            "checkpoint-skip",
            {"job": job.name, "output_bytes": entry.output_bytes},
        )
        return self.hdfs.ledger.entry_stats(entry)

    def _checkpoint_commit(
        self,
        job: MapReduceJob,
        fingerprint: str,
        stats: JobStats,
        scratch: Counters,
    ) -> None:
        """Record a successfully completed job in the commit ledger."""
        self.hdfs.ledger.commit(
            LedgerEntry(
                job_name=job.name,
                output=job.output,
                fingerprint=fingerprint,
                output_bytes=stats.output_bytes,
                output_records=stats.output_records,
                cost_seconds=stats.cost_seconds,
                stats=stats,
                counters=scratch.as_dict(),
            )
        )
        obs.event(
            "checkpoint-commit",
            {
                "job": job.name,
                "output_bytes": stats.output_bytes,
                "fingerprint": fingerprint,
            },
        )

    def note_workflow_failure(
        self, error: TaskFailedError, recovery: RecoveryPolicy, failures: int
    ) -> None:
        """Account one workflow-level job abort; authorize a resubmission.

        *failures* is the 1-based count of aborts seen by the caller's
        submission loop.  Within the
        :attr:`~repro.mapreduce.checkpoint.RecoveryPolicy.max_resubmissions`
        budget this charges the resubmission (driver re-launch plus
        checkpoint validation of the current ledger) and bumps the
        submission ordinal; past the budget it raises
        :class:`~repro.errors.WorkflowAbortedError` carrying the partial
        stats and ledger state.  Shared by :meth:`run_workflow`'s retry
        loop and the engine-level re-drives (Hive's stepwise executor).
        """
        rec = self.recovery_stats
        rec.wasted_seconds += error.wasted_seconds
        rec.wasted_bytes += error.wasted_bytes
        ledger = self.hdfs.ledger
        if failures > recovery.max_resubmissions:
            obs.event(
                "workflow-abort",
                {
                    "job": error.job_name,
                    "resubmissions": recovery.max_resubmissions,
                    "committed_jobs": len(ledger),
                },
            )
            raise WorkflowAbortedError(
                error.job_name,
                recovery.max_resubmissions,
                partial_stats=error.partial_stats,
                committed_jobs=ledger.committed_jobs(),
                cause=error,
            ) from error
        rec.resubmissions += 1
        rec.overhead_seconds += self.cost_model.resubmit_cost(
            committed_jobs=len(ledger), committed_bytes=ledger.total_bytes
        )
        self._submission += 1
        obs.event(
            "workflow-resume",
            {
                "job": error.job_name,
                "resubmission": rec.resubmissions,
                "committed_jobs": len(ledger),
            },
        )

    def finalize(self, stats: WorkflowStats) -> WorkflowStats:
        """Attach the runner's salvage accounting to an engine's stats.

        Called once per engine execution, after the last workflow step:
        injects the recovery counters (``workflow_resubmissions``,
        ``jobs_skipped_by_checkpoint``, ``salvaged_bytes``) and pins
        :attr:`WorkflowStats.recovery`.  A no-op without a
        :class:`~repro.mapreduce.checkpoint.RecoveryPolicy`, so
        non-recovered runs keep ``recovery=None`` and an unchanged
        counter bag.
        """
        if self.recovery is None:
            return stats
        rec = self.recovery_stats
        stats.recovery = rec
        for name, value in (
            ("workflow_resubmissions", rec.resubmissions),
            ("jobs_skipped_by_checkpoint", rec.jobs_skipped),
            ("salvaged_bytes", rec.salvaged_bytes),
        ):
            if value:
                stats.counters.increment(name, value)
        return stats

    # -- workflows ----------------------------------------------------------------

    def run_workflow(
        self,
        jobs: Sequence[MapReduceJob],
        recovery: RecoveryPolicy | None = None,
        stats: WorkflowStats | None = None,
    ) -> WorkflowStats:
        """Run jobs in order; later jobs may read earlier outputs.

        *recovery* (defaulting to the runner's policy) turns job aborts
        into workflow re-submissions: the failed submission's partial
        stats are attached to the error and discarded, the workflow is
        re-submitted against the same HDFS, ledger-committed jobs are
        skipped, and only the failed suffix recomputes — until the jobs
        all complete or the resubmission budget is exhausted
        (:class:`~repro.errors.WorkflowAbortedError`).

        *stats*, when given, is a continuation: the completed jobs and
        counters are appended to it (engines use this to run a trailing
        job sequence under the same aggregate stats).
        """
        if recovery is None:
            recovery = self.recovery
        if recovery is None:
            result = stats if stats is not None else WorkflowStats()
            for job in jobs:
                try:
                    result.jobs.append(self.run_job(job, result.counters))
                except TaskFailedError as error:
                    # Keep the committed prefix's accounting reachable
                    # from the error instead of losing it with the raise.
                    error.partial_stats = result
                    raise
            return result
        failures = 0
        while True:
            # Each submission accumulates into fresh stats: skipped jobs
            # replay their checkpointed stats/counters, so a successful
            # submission is complete on its own and a failed one can be
            # discarded wholesale (it still travels on the error).
            attempt = WorkflowStats()
            try:
                for job in jobs:
                    attempt.jobs.append(self.run_job(job, attempt.counters))
            except TaskFailedError as error:
                error.partial_stats = attempt
                failures += 1
                self.note_workflow_failure(error, recovery, failures)
                continue
            break
        if stats is None:
            return attempt
        stats.jobs.extend(attempt.jobs)
        stats.counters.merge(attempt.counters)
        return stats
