"""Hive baseline engines (naive and MQO)."""

from __future__ import annotations

from repro import obs, perf
from repro.core.query_model import AnalyticalQuery
from repro.core.results import EngineConfig, ExecutionReport
from repro.errors import TaskFailedError
from repro.hive.executor import HiveExecutor
from repro.hive.tables import load_vertical_partitions
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.runner import MapReduceRunner
from repro.rdf.graph import Graph


class HiveEngine:
    """Relational-style engine over VP tables on simulated MapReduce."""

    def __init__(self, mode: str):
        self.mode = mode
        self.name = f"hive-{mode}"

    def execute(
        self, query: AnalyticalQuery, graph: Graph, config: EngineConfig | None = None
    ) -> ExecutionReport:
        config = config or EngineConfig()
        hdfs = HDFS(capacity=config.hdfs_capacity)
        with obs.span(self.name, "engine", {"engine": self.name}):
            with obs.span("load", "stage"), perf.phase("load"):
                store = load_vertical_partitions(graph, hdfs)
            runner = MapReduceRunner(
                hdfs,
                config.cluster,
                config.cost_model,
                config.fault_plan,
                recovery=config.recovery,
            )
            # Hive's "planning" is interleaved with job submission inside
            # the executor, so checkpoint/resume works as an engine-level
            # re-drive: on a job abort, a fresh executor recompiles the
            # query against the same HDFS, where compilation is
            # deterministic (counter-based job names, size-driven
            # map-join decisions over unchanged files) — so every
            # ledger-committed job is skipped and only the failed suffix
            # recomputes, exactly the workflow-resubmission semantics.
            failures = 0
            while True:
                executor = HiveExecutor(hdfs, store, runner, config, self.mode)
                try:
                    rows, _final = executor.execute(query)
                except TaskFailedError as error:
                    error.partial_stats = executor.stats
                    if config.recovery is None:
                        raise
                    failures += 1
                    runner.note_workflow_failure(error, config.recovery, failures)
                    continue
                break
            runner.finalize(executor.stats)
        description = f"hive {self.mode} over {len(store.prop_paths)} VP tables"
        if executor.planner != "rule":
            description += f"; {executor.planner}-priced map-joins"
        return ExecutionReport(
            engine=self.name,
            rows=rows,
            stats=executor.stats,
            plan=[job.name for job in executor.stats.jobs],
            load_bytes=store.total_bytes,
            plan_description=description,
        )


def hive_naive_engine() -> HiveEngine:
    return HiveEngine("naive")


def hive_mqo_engine() -> HiveEngine:
    return HiveEngine("mqo")
