"""Vertically partitioned triple storage (the Hive baselines' layout).

Following the paper's pre-processing: one table per property holding
``(subject, object)`` pairs, with property-object partitions for
``rdf:type`` triples (one table per class), all stored in a compressed
columnar format (ORC) modeled as a size reduction factor on HDFS.
"""

from __future__ import annotations

import weakref
from collections import defaultdict
from dataclasses import dataclass, field
from hashlib import blake2s

from repro.core.query_model import PropKey
from repro.errors import PlanningError
from repro.mapreduce import cost
from repro.mapreduce.hdfs import HDFS
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Term
from repro.rdf.triples import RDF_TYPE


def _safe_name(text: str) -> str:
    digest = blake2s(text.encode(), digest_size=4).hexdigest()
    local = text.rsplit("/", 1)[-1].rsplit("#", 1)[-1]
    cleaned = "".join(c if c.isalnum() else "_" for c in local)[:40]
    return f"{cleaned}_{digest}"


@dataclass
class VPStore:
    """Manifest of vertically partitioned tables on HDFS."""

    prop_paths: dict[IRI, str] = field(default_factory=dict)
    type_paths: dict[Term, str] = field(default_factory=dict)
    #: Placeholder table returned for properties/classes absent from the
    #: data — a query over them is valid and simply yields no rows.
    empty_path: str = ""
    total_bytes: int = 0

    def path_for(self, key: PropKey) -> str:
        """The table backing one triple-pattern property key."""
        if key.type_object is not None:
            path = self.type_paths.get(key.type_object, self.empty_path)
        else:
            path = self.prop_paths.get(key.property, self.empty_path)
        if not path:
            raise PlanningError(f"no VP table (or empty placeholder) for {key}")
        return path

    def has(self, key: PropKey) -> bool:
        if key.type_object is not None:
            return key.type_object in self.type_paths
        return key.property in self.prop_paths


#: (graph -> (graph.version, (plain tables, typed tables))).  The VP
#: layout is a pure function of the graph; every Hive-family engine
#: execution re-derives it, so the partitioned record lists (and their
#: once-computed raw sizes) are cached per graph.  See the matching
#: triplegroup cache in :mod:`repro.ntga.physical`.
_PARTITION_CACHE: "weakref.WeakKeyDictionary[Graph, tuple[int, tuple[list, list]]]" = (
    weakref.WeakKeyDictionary()
)


def _partitioned(graph: Graph) -> tuple[list, list]:
    """The graph's VP tables in deterministic write order:
    ``([(property, records, raw_size)], [(class, records, raw_size)])``."""
    if cost.SIZE_CACHE_ENABLED:
        cached = _PARTITION_CACHE.get(graph)
        if cached is not None and cached[0] == graph.version:
            return cached[1]
    plain: dict[IRI, list[tuple[Term, Term]]] = defaultdict(list)
    typed: dict[Term, list[tuple[Term]]] = defaultdict(list)
    for triple in graph:
        if triple.property == RDF_TYPE:
            typed[triple.object].append((triple.subject,))
        else:
            plain[triple.property].append((triple.subject, triple.object))
    tables = (
        [
            (prop, plain[prop], cost.estimate_total_size(plain[prop]))
            for prop in sorted(plain, key=lambda p: p.value)
        ],
        [
            (cls, typed[cls], cost.estimate_total_size(typed[cls]))
            for cls in sorted(typed, key=str)
        ],
    )
    if cost.SIZE_CACHE_ENABLED:
        _PARTITION_CACHE[graph] = (graph.version, tables)
    return tables


def load_vertical_partitions(graph: Graph, hdfs: HDFS, prefix: str = "vp") -> VPStore:
    """Partition a graph into VP tables and write them (ORC-compressed)."""
    store = VPStore(empty_path=f"{prefix}/_empty")
    hdfs.write(store.empty_path, [], compressed=True)
    plain_tables, typed_tables = _partitioned(graph)
    for prop, records, raw in plain_tables:
        path = f"{prefix}/{_safe_name(prop.value)}"
        file = hdfs.write(path, records, compressed=True, raw_hint=raw)
        store.prop_paths[prop] = path
        store.total_bytes += file.size_bytes
    for cls, records, raw in typed_tables:
        name = _safe_name(cls.value if isinstance(cls, IRI) else str(cls))
        path = f"{prefix}/type/{name}"
        file = hdfs.write(path, records, compressed=True, raw_hint=raw)
        store.type_paths[cls] = path
        store.total_bytes += file.size_bytes
    return store
