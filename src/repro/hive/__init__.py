"""Hive-style baselines: VP tables, naive and MQO planners."""

from repro.hive.engine import HiveEngine, hive_mqo_engine, hive_naive_engine
from repro.hive.executor import HiveExecutor
from repro.hive.tables import VPStore, load_vertical_partitions

__all__ = [
    "HiveEngine",
    "HiveExecutor",
    "VPStore",
    "hive_mqo_engine",
    "hive_naive_engine",
    "load_vertical_partitions",
]
